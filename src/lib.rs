//! # kung-balance
//!
//! Facade crate for the executable reproduction of H. T. Kung,
//! *"Memory Requirements for Balanced Computer Architectures"*
//! (Journal of Complexity 1, 147–157, 1985).
//!
//! Each subsystem lives in its own crate, re-exported here as a module:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `balance-core` | the balance model: [`core::PeSpec`], intensity laws, the rebalancing solver, law fitting |
//! | [`machine`] | `balance-machine` | the counting PE simulator: capacity-enforced memory, counted I/O, LRU model, timelines |
//! | [`kernels`] | `balance-kernels` | instrumented, verified out-of-core kernels for every computation in the paper (+ extensions) |
//! | [`pebble`] | `balance-pebble` | the Hong–Kung red–blue pebble game: DAGs, rules, strategies, exact optima, lower bounds |
//! | [`parallel`] | `balance-parallel` | Section 4: linear arrays, square meshes, systolic algorithms, the Warp case study |
//! | [`roofline`] | `balance-roofline` | the balance law as a roofline: ridge points and balanced memories |
//!
//! The experiment harness (every table and figure of the paper as a
//! regenerable, self-checking report) lives in the `balance-bench` crate:
//! `cargo run --release -p balance-bench --bin repro -- all`.
//!
//! ## The paper in one expression
//!
//! ```
//! use kung_balance::core::prelude::*;
//!
//! // A PE balanced for blocked matmul whose C/IO then quadruples must
//! // grow its memory sixteen-fold (α² law, paper §3.1):
//! let plan = rebalance(
//!     &IntensityModel::sqrt_m(1.0),
//!     Alpha::new(4.0)?,
//!     Words::new(1024),
//! )?;
//! assert_eq!(plan.growth_factor(), 16.0);
//!
//! // …while no memory rebalances an I/O-bounded computation (§3.6):
//! assert!(rebalance(&IntensityModel::constant(2.0), Alpha::new(4.0)?, Words::new(1024)).is_err());
//! # Ok::<(), kung_balance::core::BalanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use balance_core as core;
pub use balance_kernels as kernels;
pub use balance_machine as machine;
pub use balance_parallel as parallel;
pub use balance_pebble as pebble;
pub use balance_roofline as roofline;
