//! Integration: every table and figure of the paper regenerates and its
//! findings hold. Each experiment is a separate test so the suite
//! parallelizes and failures are attributable.

use balance_bench::run_by_id;

fn check(id: &str) {
    let report = run_by_id(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    assert!(report.passed(), "{id} failed:\n{report}");
}

#[test]
fn fig1_pe_diagram() {
    check("F1");
}

#[test]
fn fig2_fft_decomposition() {
    check("F2");
}

#[test]
fn fig3_linear_array() {
    check("F3");
}

#[test]
fn fig4_mesh() {
    check("F4");
}

#[test]
fn e1_summary_table() {
    check("E1");
}

#[test]
fn e2_matmul() {
    check("E2");
}

#[test]
fn e3_triangularization() {
    check("E3");
}

#[test]
fn e4_grid() {
    check("E4");
}

#[test]
fn e5_fft() {
    check("E5");
}

#[test]
fn e6_sorting() {
    check("E6");
}

#[test]
fn e7_io_bounded() {
    check("E7");
}

#[test]
fn e8_linear_array() {
    check("E8");
}

#[test]
fn e9_mesh() {
    check("E9");
}

#[test]
fn e10_warp() {
    check("E10");
}

#[test]
fn e11_pebble() {
    check("E11");
}

#[test]
fn e12_roofline() {
    check("E12");
}

#[test]
fn e13_lru_ablation() {
    check("E13");
}

#[test]
fn e14_extension_kernels() {
    check("E14");
}

#[test]
fn e15_amdahl() {
    check("E15");
}

#[test]
fn e20_hierarchy() {
    check("E20");
    // The CI smoke step runs this experiment by its mnemonic alias.
    check("hierarchy");
}

#[test]
fn e21_parallel_measured() {
    check("E21");
    // The CI smoke step runs this experiment by its mnemonic alias.
    check("parallel");
}

#[test]
fn registry_is_complete_and_consistent() {
    for id in balance_bench::ALL_IDS {
        let report = run_by_id(id).unwrap();
        assert_eq!(report.id, id);
        assert!(!report.findings.is_empty(), "{id} has no findings");
    }
}
