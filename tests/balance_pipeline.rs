//! End-to-end pipeline tests: measure → fit → classify → rebalance →
//! validate, across every kernel in the registry.

use kung_balance::core::fit::FittedLaw;
use kung_balance::core::prelude::*;
use kung_balance::kernels::prelude::*;

/// Every kernel in the registry runs verified at a small size and its
/// measured intensity is positive and finite.
#[test]
fn all_kernels_run_verified() {
    for kernel in all_kernels() {
        let n = match kernel.name() {
            "fft" => 64,
            "sort" => 400,
            "grid2d" | "grid3d" => 4, // iterations
            _ => 24,
        };
        let m = kernel.min_memory(n).max(128);
        let run = kernel
            .run(n, m, 1)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kernel.name()));
        assert!(run.intensity().is_finite(), "{}", kernel.name());
        assert!(run.intensity() > 0.0, "{}", kernel.name());
        assert!(
            run.execution.peak_memory.get() as usize <= m,
            "{} overflowed its memory budget",
            kernel.name()
        );
    }
}

/// The full pipeline on matmul: the fitted law must predict the measured
/// curve, and the rebalanced memory must actually restore balance on the
/// simulated PE.
#[test]
fn pipeline_closes_the_loop_on_matmul() {
    let n = 64usize;
    let memories: Vec<usize> = [4usize, 8, 16, 32].iter().map(|b| 3 * b * b).collect();
    let cfg = SweepConfig {
        n,
        memories,
        seed: 3,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let result = intensity_sweep(&MatMul, &cfg).unwrap();
    let fit = result.fit().unwrap();

    // 1. The fit predicts held-out measurements within 10%.
    let held_out = MatMul.run(n, 3 * 12 * 12, 3).unwrap(); // b = 12, not in sweep
    let predicted = fit.best.predict(held_out.m as f64);
    let measured = held_out.intensity();
    assert!(
        (predicted / measured - 1.0).abs() < 0.10,
        "prediction {predicted:.2} vs measurement {measured:.2}"
    );

    // 2. Classification matches the paper.
    assert!(matches!(fit.best, FittedLaw::Power { .. }));

    // 3. Empirical rebalancing restores balance on a simulated PE. Start
    //    from a PE balanced at M = 192 and double its compute bandwidth.
    let m_old = 192.0;
    let r_old = result.curve().unwrap().ratio_at(m_old);
    let pe_old = PeSpec::new(
        OpsPerSec::new(r_old * 1.0e6),
        WordsPerSec::new(1.0e6),
        Words::new(m_old as u64),
    )
    .unwrap();
    let run_old = MatMul.run(n, m_old as usize, 3).unwrap();
    assert!(run_old
        .execution
        .cost
        .balance_state(&pe_old, 0.05)
        .is_balanced());

    let pe_fast = pe_old.with_comp_scaled(2.0).unwrap();
    assert!(!run_old
        .execution
        .cost
        .balance_state(&pe_fast, 0.05)
        .is_balanced());

    let m_new = result
        .curve()
        .unwrap()
        .empirical_rebalance(2.0, m_old)
        .unwrap();
    // Round to the nearest full-tile memory.
    let b_new = kung_balance::kernels::matmul::tile_side(m_new.round() as usize);
    let run_new = MatMul.run(n, 3 * b_new * b_new, 3).unwrap();
    assert!(
        run_new
            .execution
            .cost
            .balance_state(&pe_fast, 0.15)
            .is_balanced(),
        "rebalanced run is {} at intensity {:.2} (machine balance {:.2})",
        run_new.execution.cost.balance_state(&pe_fast, 0.15),
        run_new.intensity(),
        pe_fast.machine_balance(),
    );
}

/// The pipeline refuses to answer for I/O-bounded kernels, matching §3.6.
#[test]
fn pipeline_detects_impossible_kernels() {
    let cfg = SweepConfig::pow2(48, 3, 11, 4);
    for kernel in [&MatVec as &dyn Kernel, &TriSolve] {
        let result = intensity_sweep(kernel, &cfg).unwrap();
        let fit = result.fit().unwrap();
        assert_eq!(
            fit.best.growth_law(),
            GrowthLaw::Impossible,
            "{} must classify as I/O-bounded, got {}",
            kernel.name(),
            fit.best
        );
        assert!(result
            .curve()
            .unwrap()
            .empirical_rebalance(2.0, 512.0)
            .is_err());
    }
}

/// Seeds are honored end to end: identical seeds give identical measured
/// profiles; different seeds still verify.
#[test]
fn reproducibility_across_seeds() {
    let a = MatMul.run(24, 108, 1234).unwrap();
    let b = MatMul.run(24, 108, 1234).unwrap();
    assert_eq!(a.execution, b.execution);
    let c = MatMul.run(24, 108, 5678).unwrap();
    // Costs are input-independent for matmul (dense): counts match even
    // across seeds; the *data* differs but the verified counts agree.
    assert_eq!(a.execution.cost, c.execution.cost);
}

/// Growth factors measured across two different sweeps of the same kernel
/// agree (the law is a property of the kernel, not the sweep). Both sweeps
/// use tile sides dividing N, so neither contains edge-block noise.
#[test]
fn law_is_sweep_invariant() {
    let n = 96;
    let coarse = SweepConfig {
        n,
        memories: [4usize, 8, 16, 32].iter().map(|b| 3 * b * b).collect(),
        seed: 9,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let fine = SweepConfig {
        n,
        memories: [4usize, 6, 8, 12, 16, 24, 32, 48]
            .iter()
            .map(|b| 3 * b * b)
            .collect(),
        seed: 9,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let f_coarse = intensity_sweep(&MatMul, &coarse)
        .unwrap()
        .curve()
        .unwrap()
        .empirical_rebalance(2.0, 192.0)
        .unwrap();
    let f_fine = intensity_sweep(&MatMul, &fine)
        .unwrap()
        .curve()
        .unwrap()
        .empirical_rebalance(2.0, 192.0)
        .unwrap();
    assert!(
        (f_coarse / f_fine - 1.0).abs() < 0.15,
        "coarse {f_coarse:.0} vs fine {f_fine:.0}"
    );
}
