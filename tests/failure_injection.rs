//! Failure injection: the verification harness must *catch* broken kernels,
//! not just bless correct ones. Each test implements a deliberately buggy
//! out-of-core algorithm and asserts that the machinery rejects it.

use balance_core::{CostProfile, HierarchySpec, IntensityModel, Words};
use balance_machine::{ExternalStore, MachineError, Pe};
use kung_balance::kernels::matrix::{load_block, store_block, MatrixHandle};
use kung_balance::kernels::verify::Verify;
use kung_balance::kernels::{reference, workload, Kernel, KernelError, KernelRun};

/// A matmul whose blocking is wrong: it skips the final k-block of every
/// tile product (a classic off-by-one in the panel loop).
#[derive(Debug)]
struct SkippedPanelMatMul;

impl Kernel for SkippedPanelMatMul {
    fn name(&self) -> &'static str {
        "buggy-matmul"
    }
    fn description(&self) -> &'static str {
        "deliberately drops the last k-panel"
    }
    fn intensity_model(&self) -> IntensityModel {
        IntensityModel::sqrt_m(0.577)
    }
    fn analytic_cost(&self, _n: usize, _m: usize) -> CostProfile {
        CostProfile::new(0, 0)
    }
    fn min_memory(&self, _n: usize) -> usize {
        3
    }
    fn run_on(
        &self,
        n: usize,
        machine: &HierarchySpec,
        seed: u64,
        _verify: Verify,
    ) -> Result<KernelRun, KernelError> {
        let m = machine.local_capacity_words();
        let b = kung_balance::kernels::matmul::tile_side(m).min(n);
        let mut store = ExternalStore::new();
        let a_data = workload::random_matrix(n, seed);
        let b_data = workload::random_matrix(n, seed ^ 1);
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let bm = MatrixHandle::new(store.alloc_from(&b_data), n, n);
        let c = MatrixHandle::new(store.alloc(n * n), n, n);
        let mut pe = Pe::new(Words::new(m as u64));
        let (ba, bb, bc) = (pe.alloc(b * b)?, pe.alloc(b * b)?, pe.alloc(b * b)?);
        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                pe.buf_mut(bc)?[..ib * jb].fill(0.0);
                // BUG: `..n - b` drops the final panel.
                for k0 in (0..n.saturating_sub(b)).step_by(b) {
                    let kb = b.min(n - k0);
                    load_block(&mut pe, &store, &a, i0, k0, ib, kb, ba)?;
                    load_block(&mut pe, &store, &bm, k0, j0, kb, jb, bb)?;
                    pe.update(bc, &[ba, bb], |ct, srcs| {
                        let (at, bt) = (srcs[0], srcs[1]);
                        for i in 0..ib {
                            for k in 0..kb {
                                for j in 0..jb {
                                    ct[i * jb + j] += at[i * kb + k] * bt[k * jb + j];
                                }
                            }
                        }
                    })?;
                }
                store_block(&mut pe, &mut store, &c, i0, j0, ib, jb, bc)?;
            }
        }
        // The standard verification step every kernel performs:
        let want = reference::matmul(&a_data, &b_data, n);
        let err = reference::max_abs_diff(&want, &c.snapshot(&store));
        if err > 1e-9 * n as f64 {
            return Err(KernelError::VerificationFailed {
                what: "buggy-matmul",
                max_error: err,
                tolerance: 1e-9 * n as f64,
            });
        }
        Ok(KernelRun {
            n,
            m,
            execution: pe.execution(),
        })
    }
}

#[test]
fn verification_catches_wrong_blocking() {
    let err = SkippedPanelMatMul.run(16, 48, 7).unwrap_err();
    assert!(
        matches!(err, KernelError::VerificationFailed { .. }),
        "expected VerificationFailed, got {err}"
    );
}

/// A "kernel" that lies about its working set: it allocates more than M.
#[test]
fn capacity_enforcement_catches_oversized_working_sets() {
    let mut pe = Pe::new(Words::new(100));
    let _a = pe.alloc(60).unwrap();
    let err = pe.alloc(60).unwrap_err();
    assert!(matches!(err, MachineError::OutOfMemory { .. }));
    // And through the kernel layer: matmul demands at least 3 words.
    let e = kung_balance::kernels::matmul::MatMul
        .run(8, 2, 0)
        .unwrap_err();
    assert!(matches!(e, KernelError::MemoryTooSmall { .. }));
}

/// Corrupting a single word of a sorted run must flip verification.
#[test]
fn sort_verification_catches_single_word_corruption() {
    // Run the real sort, then simulate the corruption check directly: the
    // verifier logic is "sorted + permutation"; a single swapped pair fails.
    let mut keys = workload::random_keys(100, 3);
    keys.sort_by(f64::total_cmp);
    let mut corrupted = keys.clone();
    corrupted.swap(10, 50);
    assert!(corrupted.windows(2).any(|w| w[0] > w[1]));
}

/// The pebble game rejects schedules that skip a load (the analog of a
/// kernel reading memory it never fetched).
#[test]
fn pebble_game_rejects_uninitialized_reads() {
    use kung_balance::pebble::builders::tree_dag;
    use kung_balance::pebble::{Game, GameError, Move, NodeId};

    let dag = tree_dag(4);
    let mut game = Game::new(&dag, 4);
    game.apply(Move::ReadIn(NodeId(0))).unwrap();
    // Computing node 4 = f(inputs 0, 1) without loading input 1:
    let err = game.apply(Move::Compute(NodeId(4))).unwrap_err();
    assert!(matches!(err, GameError::PredNotRed { .. }));
}
