//! Cross-crate consistency: the same quantity computed through different
//! subsystems must agree.

use kung_balance::core::prelude::*;
use kung_balance::kernels::prelude::*;
use kung_balance::kernels::{matmul::tile_side, reference, workload};
use kung_balance::parallel::systolic::matmul::systolic_matmul;
use kung_balance::parallel::{warp_cell, LinearArray};
use kung_balance::pebble::builders::matmul_dag;
use kung_balance::pebble::strategies::blocked_matmul_order;
use kung_balance::pebble::{schedule_with_order, EvictionPolicy, Game};
use kung_balance::roofline::Roofline;

/// The analytic cost model and the instrumented kernel agree on matmul
/// whenever blocks divide the matrix evenly.
#[test]
fn analytic_matches_measured_matmul() {
    let (n, m) = (48usize, 3 * 12 * 12); // b = 12 divides 48
    let run = MatMul.run(n, m, 5).unwrap();
    let analytic = MatMul.analytic_cost(n, m);
    assert_eq!(run.execution.cost.comp_ops(), analytic.comp_ops());
    assert_eq!(run.execution.cost.io_words(), analytic.io_words());
}

/// The out-of-core kernel and the cycle-level systolic array compute the
/// same product (through completely different machinery).
#[test]
fn kernel_and_systolic_agree_with_reference() {
    let n = 16;
    let a = workload::random_matrix(n, 9);
    let b = workload::random_matrix(n, 10);
    let want = reference::matmul(&a, &b, n);
    let sys = systolic_matmul(&a, &b, n);
    assert!(reference::max_abs_diff(&sys.c, &want) < 1e-10);
    // The kernel verifies internally against the same reference.
    assert!(MatMul.run(n, 100, 9).is_ok());
}

/// The pebble game's blocked matmul schedule and the instrumented kernel
/// exhibit the same I/O scaling: quadrupling the tile area halves the
/// dominant streaming term.
#[test]
fn pebble_and_kernel_io_scale_identically() {
    let n = 8;
    let dag = matmul_dag(n);

    let io_small = schedule_with_order(&dag, &blocked_matmul_order(n, 1), 5, EvictionPolicy::Belady)
        .unwrap()
        .io as f64;
    let io_large = schedule_with_order(
        &dag,
        &blocked_matmul_order(n, 2),
        16,
        EvictionPolicy::Belady,
    )
    .unwrap()
    .io as f64;
    let pebble_gain = io_small / io_large;

    let k_small = MatMul.run(n, 3, 3).unwrap().execution.cost.io_words() as f64;
    let k_large = MatMul.run(n, 12, 3).unwrap().execution.cost.io_words() as f64;
    let kernel_gain = k_small / k_large;

    // Both should see roughly the b=1 → b=2 improvement (≈2× on the
    // streaming term); agree within 40%.
    assert!(
        (pebble_gain / kernel_gain - 1.0).abs() < 0.4,
        "pebble gain {pebble_gain:.2} vs kernel gain {kernel_gain:.2}"
    );
}

/// Pebble schedules replayed through the game report the same I/O the
/// strategy claimed.
#[test]
fn pebble_strategy_accounting_is_replayable() {
    let n = 6;
    let dag = matmul_dag(n);
    let out = schedule_with_order(
        &dag,
        &blocked_matmul_order(n, 2),
        14,
        EvictionPolicy::Belady,
    )
    .unwrap();
    let mut game = Game::new(&dag, 14);
    game.play(&out.schedule).unwrap();
    assert!(game.is_complete());
    assert_eq!(game.io(), out.io);
}

/// Roofline balanced memory and rebalance() answer the same question:
/// rebalancing to a machine with α-fold balance equals balancing the
/// α-scaled roofline.
#[test]
fn roofline_and_rebalance_agree() {
    // A compute-rich PE (balance 16) so the balanced memory is hundreds of
    // words and integer rounding is negligible.
    let pe = PeSpec::new(
        OpsPerSec::new(1.6e9),
        WordsPerSec::new(1.0e8),
        Words::new(4096),
    )
    .unwrap();
    let model = IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt());

    let m_bal = Roofline::from_pe(&pe).balanced_memory(&model).unwrap();
    let alpha = Alpha::new(8.0).unwrap();
    let plan = rebalance(&model, alpha, m_bal).unwrap();

    let scaled = pe.with_comp_scaled(8.0).unwrap();
    let m_scaled = Roofline::from_pe(&scaled).balanced_memory(&model).unwrap();

    let rel = (plan.new_memory.as_f64() - m_scaled.as_f64()).abs() / m_scaled.as_f64();
    assert!(
        rel < 0.02,
        "rebalance gave {}, scaled roofline gave {}",
        plan.new_memory,
        m_scaled
    );
}

/// The aggregate-PE view (core) and LinearArray (parallel) agree on alpha.
#[test]
fn aggregate_views_agree() {
    let cell = warp_cell();
    for p in [2u64, 5, 16] {
        let via_core = Alpha::between(&cell, &cell.aggregate(p).unwrap()).unwrap();
        let via_parallel = LinearArray::new(p, cell).unwrap().alpha();
        assert!((via_core.get() - via_parallel.get()).abs() < 1e-12);
    }
}

/// tile_side and the kernel's memory accounting are consistent: the peak
/// local memory equals exactly the three resident tiles.
#[test]
fn matmul_peak_memory_is_three_tiles() {
    for m in [27usize, 108, 300, 768] {
        let b = tile_side(m);
        let run = MatMul.run(32, m, 1).unwrap();
        assert_eq!(
            run.execution.peak_memory.get() as usize,
            3 * b * b,
            "m = {m}"
        );
    }
}

/// Executions measured by kernels plug directly into the core balance
/// predicate: a PE whose machine balance equals the measured intensity is
/// balanced for that run.
#[test]
fn measured_execution_balances_the_matching_pe() {
    let run = MatMul.run(48, 300, 2).unwrap();
    let intensity = run.intensity();
    let pe = PeSpec::new(
        OpsPerSec::new(intensity * 1.0e6),
        WordsPerSec::new(1.0e6),
        Words::new(300),
    )
    .unwrap();
    assert!(run.execution.cost.balance_state(&pe, 1e-6).is_balanced());
    // Quadrupling compute bandwidth breaks balance in the I/O direction.
    let faster = pe.with_comp_scaled(4.0).unwrap();
    assert!(matches!(
        run.execution.cost.balance_state(&faster, 1e-6),
        BalanceState::IoLimited { .. }
    ));
}
