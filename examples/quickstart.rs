//! Quickstart: the balance law in ten lines, then the paper's question.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use kung_balance::core::prelude::*;

fn main() -> Result<(), BalanceError> {
    // Characterize a PE (the paper's Fig. 1): 100 Mop/s compute, 10 Mword/s
    // I/O, 4096 words of local memory.
    let pe = PeSpec::builder()
        .comp_bw(OpsPerSec::new(100.0e6))
        .io_bw(WordsPerSec::new(10.0e6))
        .memory(Words::new(4096))
        .build()?;
    println!("{pe}\n");
    println!("machine balance C/IO = {} op/word\n", pe.machine_balance());

    // Blocked matrix multiplication has intensity r(M) ≈ 0.577·√M (§3.1).
    let matmul = IntensityModel::sqrt_m(1.0 / 3.0_f64.sqrt());
    println!("matmul intensity model: {matmul}");

    // Is the PE balanced at its current memory?
    let r = matmul.eval_words(pe.memory());
    println!(
        "r({}) = {:.2} op/word vs machine balance {:.2} → {}",
        pe.memory(),
        r,
        pe.machine_balance(),
        if r >= pe.machine_balance() {
            "compute-limited or balanced (memory suffices)"
        } else {
            "I/O-limited (memory too small)"
        }
    );

    // The memory that balances this machine exactly:
    let m_bal = matmul.balanced_memory(pe.machine_balance())?;
    println!("balanced memory for matmul: {m_bal}\n");

    // THE question of the paper: compute bandwidth rises 4× (I/O fixed).
    // How much memory does balance now require?
    let alpha = Alpha::new(4.0)?;
    let plan = rebalance(&matmul, alpha, m_bal)?;
    println!("after C/IO grows by α = 4:");
    println!("  {plan}");

    // And for an FFT workload the same α is catastrophically more expensive:
    let fft = IntensityModel::log2_m(1.5);
    let fft_bal = fft.balanced_memory(pe.machine_balance())?;
    match rebalance(&fft, alpha, fft_bal) {
        Ok(plan) => println!("  FFT: {plan}"),
        Err(e) => println!("  FFT from {fft_bal}: {e}"),
    }

    // While matrix–vector multiplication cannot be rebalanced at all (§3.6):
    match rebalance(&IntensityModel::constant(2.0), alpha, m_bal) {
        Ok(_) => unreachable!("matvec is I/O-bounded"),
        Err(e) => println!("  matvec: {e}"),
    }
    Ok(())
}
