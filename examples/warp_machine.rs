//! The CMU Warp case study (paper §5) plus the §4 array scaling rules.
//!
//! ```bash
//! cargo run --example warp_machine
//! ```

use kung_balance::core::{GrowthLaw, Words};
use kung_balance::parallel::topology::{render_linear_array, render_mesh};
use kung_balance::parallel::warp::{case_study, default_computations};
use kung_balance::parallel::{warp_array, warp_cell, LinearArray, SquareMesh};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The Warp cell (10 MFLOP/s, 20 Mword/s, 64K words):\n");
    println!("{}\n", warp_cell());

    println!("{}", case_study(&default_computations())?);

    // §4.1: a linear array of p such cells behind one I/O port.
    println!("\n{}", render_linear_array(6));
    let matrix_law = GrowthLaw::Polynomial { degree: 2.0 };
    let m_old = Words::new(4096);
    println!("linear array, matrix computations (M_old = {m_old}):");
    println!("{:>6} {:>16} {:>16}", "p", "per-PE memory", "total");
    for p in [1u64, 2, 4, 8, 16, 32] {
        let array = LinearArray::new(p, warp_cell())?;
        let per_pe = array.required_memory_per_pe(matrix_law, m_old)?;
        let total = array.required_total_memory(matrix_law, m_old)?;
        println!("{:>6} {:>16} {:>16}", p, per_pe.get(), total.get());
    }
    println!("→ each PE's memory must grow linearly with p (paper §4.1)\n");

    // §4.2: the square mesh is self-balancing for matrix computations.
    println!("{}", render_mesh(3));
    println!("square mesh, matrix computations (M_old = {m_old}):");
    println!("{:>6} {:>8} {:>16}", "p", "cells", "per-PE memory");
    for p in [1u64, 2, 4, 8, 16, 32] {
        let mesh = SquareMesh::new(p, warp_cell())?;
        let per_pe = mesh.required_memory_per_pe(matrix_law, m_old)?;
        println!("{:>6} {:>8} {:>16}", p, mesh.cells(), per_pe.get());
    }
    println!("→ constant per-PE memory: the mesh rebalances itself (paper §4.2)\n");

    // ... but not for 3-dimensional grid computations:
    let grid3 = GrowthLaw::Polynomial { degree: 3.0 };
    println!("square mesh, 3-d grid computations:");
    println!("{:>6} {:>16}", "p", "per-PE memory");
    for p in [2u64, 4, 8, 16] {
        let mesh = SquareMesh::new(p, warp_cell())?;
        println!(
            "{:>6} {:>16}",
            p,
            mesh.required_memory_per_pe(grid3, m_old)?.get()
        );
    }
    println!("→ grows like p: \"an automatically rebalanced, square processor");
    println!("   array is never possible\" for d > 2 (paper §4.2)");

    // The 10-cell production machine, summarized.
    let agg = warp_array().aggregate()?;
    println!(
        "\n10-cell Warp as one PE: C = {:.0e} op/s, IO = {:.0e} word/s, M = {}",
        agg.comp_bw().get(),
        agg.io_bw().get(),
        agg.memory()
    );
    Ok(())
}
