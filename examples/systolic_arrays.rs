//! The systolic arrays behind the paper's §4.2 mesh result.
//!
//! The claim that a square mesh is "automatically balanced" presumes that
//! matrix computations decompose onto it with constant per-PE memory. This
//! example runs both cited decompositions at cycle level:
//!
//! * Kung–Leiserson matrix multiplication (3 registers per cell),
//! * Gentleman–Kung Givens triangularization (2 words per cell),
//!
//! verifies their outputs, and reports the cost profiles.
//!
//! ```bash
//! cargo run --example systolic_arrays
//! ```

use kung_balance::kernels::{reference, workload};
use kung_balance::parallel::systolic::givens::triangularize;
use kung_balance::parallel::systolic::matmul::systolic_matmul;

fn main() {
    let n = 8usize;
    println!("=== Kung–Leiserson systolic matmul on an {n}×{n} mesh ===\n");
    let a = workload::random_matrix(n, 1);
    let b = workload::random_matrix(n, 2);
    let run = systolic_matmul(&a, &b, n);
    let want = reference::matmul(&a, &b, n);
    let err = reference::max_abs_diff(&run.c, &want);
    println!("cycles:           {}   (= 3n − 2)", run.cycles);
    println!("ops:              {}   (= 2n³)", run.cost.comp_ops());
    println!("boundary I/O:     {} words (= 3n²)", run.cost.io_words());
    println!(
        "memory per cell:  {} words (independent of n!)",
        run.memory_per_cell
    );
    println!("utilization:      {:.1}%", run.utilization * 100.0);
    println!("max |C - A·B|:    {err:.2e}");
    println!(
        "aggregate intensity: {:.2} op/word = Θ(p) — exactly the α = p\n\
         growth a p×p mesh must absorb, absorbed with O(1) memory per cell.\n",
        run.cost.intensity()
    );

    println!("=== Gentleman–Kung triangularization array ===\n");
    let m = workload::random_matrix(n, 3);
    let qr = triangularize(&m, n);
    println!(
        "cycles:           {}   (pipeline depth 2n − 1 + n rows)",
        qr.cycles
    );
    println!("rotation ops:     {}", qr.cost.comp_ops());
    println!(
        "boundary I/O:     {} words (A in, R out)",
        qr.cost.io_words()
    );
    println!("memory per cell:  {} words", qr.memory_per_cell);
    // Verify RᵀR = AᵀA (Q is orthogonal, so the Gram matrix is preserved).
    let mut max_err = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut rr = 0.0;
            let mut aa = 0.0;
            for k in 0..n {
                rr += qr.r[k * n + i] * qr.r[k * n + j];
                aa += m[k * n + i] * m[k * n + j];
            }
            max_err = max_err.max((rr - aa).abs());
        }
    }
    println!("max |RᵀR − AᵀA|:  {max_err:.2e}");
    println!("\nR (upper triangle, first rows):");
    for i in 0..n.min(4) {
        let row: Vec<String> = (0..n)
            .map(|j| format!("{:>7.3}", qr.r[i * n + j]))
            .collect();
        println!("  [{}]", row.join(" "));
    }
}
