//! External sorting under a memory microscope (paper §3.5).
//!
//! Runs the instrumented two-phase external merge sort in the paper's
//! `N = M²` regime and watches the comparisons-per-word intensity follow
//! the `Θ(log₂ M)` law — the law that makes rebalancing exponentially
//! expensive (`M_new = M_old^α`).
//!
//! ```bash
//! cargo run --release --example out_of_core_sort
//! ```

use kung_balance::core::fit::{fit_best, DataPoint};
use kung_balance::core::GrowthLaw;
use kung_balance::kernels::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("two-phase external merge sort, N = M² keys:\n");
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>10}",
        "M", "N", "comparisons", "I/O words", "cmp/word"
    );

    let mut points = Vec::new();
    for m in [32usize, 64, 128, 256, 512] {
        let n = m * m;
        let run = ExternalSort.run(n, m, 7)?; // verified internally
        let cost = run.execution.cost;
        println!(
            "{:>8} {:>10} {:>14} {:>12} {:>10.3}",
            m,
            n,
            cost.comp_ops(),
            cost.io_words(),
            run.intensity()
        );
        points.push(DataPoint::new(m as f64, run.intensity()));
    }

    let fit = fit_best(&points)?;
    println!("\nfitted law: {}", fit.best);
    println!("growth rule: {}", fit.best.growth_law());
    assert_eq!(fit.best.growth_law(), GrowthLaw::Exponential);

    println!(
        "\nConsequence (paper §5): to absorb a 2× compute-bandwidth increase,\n\
         a sorting PE with 4096 words of memory needs 4096² ≈ 16.8M words —\n\
         \"for these computations one should not expect any substantial\n\
         speedup without a significant increase in the PE's I/O bandwidth.\""
    );
    Ok(())
}
