//! Measure a balance law from scratch: sweep, fit, classify, rebalance.
//!
//! This walks the full experimental pipeline on blocked matrix
//! multiplication — the same machinery the `repro` harness uses for every
//! kernel — and cross-checks the empirical answer against the paper's
//! closed-form `M_new = α²·M_old`.
//!
//! ```bash
//! cargo run --release --example scaling_laws
//! ```

use kung_balance::core::fit::FittedLaw;
use kung_balance::kernels::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Measure: run the instrumented kernel across a memory sweep.
    //    (Memory sizes 3b² with b | N keep every block full.)
    let n = 96usize;
    let cfg = SweepConfig {
        n,
        memories: [4usize, 6, 8, 12, 16, 24, 32, 48]
            .iter()
            .map(|b| 3 * b * b)
            .collect(),
        seed: 42,
        // n = 96: anchored Freivalds verification (O(n²) per point, first
        // point fully verified) keeps the sweep fast without losing coverage.
        verify: Verify::auto(n),
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    // The parallel executor produces bit-identical points to the serial one.
    let result = intensity_sweep_par(&MatMul, &cfg)?;
    println!("measured intensity of blocked {n}×{n} matmul:");
    println!("{:>8} {:>12} {:>12} {:>10}", "M", "C_comp", "C_io", "ratio");
    for run in &result.runs {
        println!(
            "{:>8} {:>12} {:>12} {:>10.3}",
            run.m,
            run.execution.cost.comp_ops(),
            run.execution.cost.io_words(),
            run.intensity()
        );
    }

    // 2. Fit: which of the paper's law shapes explains the data?
    let fit = result.fit()?;
    println!("\nfitted: {}", fit.best);
    if let FittedLaw::Power { exponent, .. } = fit.best {
        println!("   (paper §3.1 predicts exponent 0.5 — got {exponent:.3})");
    }

    // 3. Classify: what does that mean for rebalancing?
    println!("growth rule: {}", fit.best.growth_law());

    // 4. Rebalance empirically: no law assumed, just the measured curve.
    let curve = result.curve()?;
    println!("\nempirical rebalancing from M = 108 words:");
    println!("{:>6} {:>14} {:>14}", "α", "paper (α²·M)", "measured");
    for alpha in [2.0, 3.0, 4.0] {
        let m_new = curve.empirical_rebalance(alpha, 108.0)?;
        println!(
            "{:>6} {:>14.0} {:>14.0}",
            alpha,
            alpha * alpha * 108.0,
            m_new
        );
    }
    println!("\n(measured values sit slightly above α²·M — the finite-N");
    println!(" write-back term; the gap closes as N grows, see E2)");
    Ok(())
}
