//! The balance law as a roofline (extension experiment E12).
//!
//! Kung's balance point `C/IO = C_comp/C_io` is the roofline ridge; each
//! kernel's memory-dependent intensity `r(M)` traces a path along the roof.
//!
//! ```bash
//! cargo run --example roofline_chart
//! ```

use kung_balance::core::{IntensityModel, OpsPerSec, WordsPerSec};
use kung_balance::roofline::{kernel_series, render, Roofline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compute-rich machine: 1.6 Gop/s over 100 Mword/s → ridge at 16.
    let rl = Roofline::new(OpsPerSec::new(1.6e9), WordsPerSec::new(1.0e8))?;
    let memories: Vec<u64> = (2..=22).map(|k| 1u64 << k).collect();

    let series = vec![
        kernel_series(
            "matmul (√M)",
            &rl,
            &IntensityModel::sqrt_m(1.0 / 3.0_f64.sqrt()),
            &memories,
        )?,
        kernel_series("fft (log₂M)", &rl, &IntensityModel::log2_m(1.5), &memories)?,
        kernel_series(
            "vec: matvec (Θ(1))",
            &rl,
            &IntensityModel::constant(2.0),
            &memories,
        )?,
    ];

    println!("{}", render(&rl, &series, 72, 20));
    println!("Reading the chart:");
    println!("  · the '/' slope is the bandwidth bound, '-' the compute roof,");
    println!("    '+' the ridge = Kung's balance point;");
    println!("  · matmul reaches the roof at its balanced memory (α² growth");
    println!("    keeps it reachable as machines scale);");
    println!("  · fft reaches it only at exponentially larger memory;");
    println!("  · matvec never reaches it — no memory size helps (§3.6).");
    Ok(())
}
