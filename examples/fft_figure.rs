//! Regenerates the paper's Figure 2 — the blocked FFT decomposition — and
//! runs the corresponding out-of-core FFT with verified numerics.
//!
//! ```bash
//! cargo run --example fft_figure
//! ```

use kung_balance::kernels::fft::{block_points, decomposition};
use kung_balance::kernels::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's exact example: a 16-point FFT through a 4-point memory.
    println!("{}", decomposition(16, 4)?);

    // Each block above runs entirely inside the PE: M·log₂M operations for
    // M words of traffic — the Θ(log₂M) ratio behind M_new = M_old^α.
    println!("running the instrumented blocked FFT (verified against the");
    println!("reference transform) at N = 4096 across memory sizes:\n");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "M", "block", "passes", "ops", "I/O words", "ops/word"
    );
    let n = 4096usize;
    for m in [4usize, 8, 16, 32, 128] {
        let run = Fft.run(n, m, 11)?;
        let b = block_points(m);
        let io = run.execution.cost.io_words();
        let passes = io / (4 * n as u64) - 1;
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>12} {:>10.3}",
            m,
            b,
            passes,
            run.execution.cost.comp_ops(),
            io,
            run.intensity()
        );
    }
    println!("\nLarger blocks ⇒ fewer passes ⇒ intensity 1.5·log₂(block):");
    println!("doubling the intensity requires *squaring* the block size.");
    Ok(())
}
