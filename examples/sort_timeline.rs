//! Phase-level balance analysis of external sorting.
//!
//! Runs the two-phase external sort with per-phase cost recording, then
//! projects the counted costs onto two machines — one balanced for the
//! sort's intensity, one with 4× the compute bandwidth — and renders the
//! resulting execution timelines. The second machine idles its compute units
//! during both phases: exactly the imbalance the paper says only an
//! exponentially larger memory (or more I/O bandwidth) can fix.
//!
//! ```bash
//! cargo run --release --example sort_timeline
//! ```

use kung_balance::core::{OpsPerSec, PeSpec, Words, WordsPerSec};
use kung_balance::kernels::sorting::ExternalSort;
use kung_balance::machine::Timeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 256usize;
    let n = m * m; // the paper's N = M² regime
    let (run, phases) = ExternalSort.run_with_phases(n, m, 7)?;

    println!("external sort of {n} keys with M = {m} words:\n");
    for p in &phases {
        println!(
            "  {:<14} {:>10} comparisons, {:>8} I/O words (ratio {:.2})",
            p.label,
            p.cost.comp_ops(),
            p.cost.io_words(),
            p.cost.intensity()
        );
    }
    let overall = run.intensity();
    println!("\noverall intensity: {overall:.2} comparisons/word");

    // A machine balanced for exactly this intensity (1 Mword/s port):
    let balanced_pe = PeSpec::new(
        OpsPerSec::new(overall * 1.0e6),
        WordsPerSec::new(1.0e6),
        Words::new(m as u64),
    )?;
    println!(
        "\n--- on a machine with C/IO = {:.2} (balanced) ---",
        balanced_pe.machine_balance()
    );
    println!("{}\n", Timeline::new(&phases, &balanced_pe));

    // The same machine after a 4x compute upgrade:
    let fast_pe = balanced_pe.with_comp_scaled(4.0)?;
    println!("--- after a 4× compute upgrade (I/O unchanged) ---");
    println!("{}\n", Timeline::new(&phases, &fast_pe));

    println!(
        "Restoring balance for sorting needs M_new = M_old^α = {m}^4 ≈ {:.1e} words\n\
         (paper §3.5) — the \"unrealistically large\" memory of §5, which is why\n\
         sorting machines buy I/O bandwidth instead.",
        (m as f64).powi(4)
    );
    Ok(())
}
