//! Intensity-ratio models `r(M)`: how a computation's operations-per-word
//! ratio grows with local memory.
//!
//! Section 3 of the paper derives, for each computation, the ratio
//! `C_comp / C_io` as a function of the local memory size `M` under the best
//! decomposition scheme:
//!
//! * blocked matrix multiplication, triangularization, 2-D relaxation:
//!   `r(M) = Θ(√M)`;
//! * d-dimensional relaxation: `r(M) = Θ(M^(1/d))`;
//! * FFT and sorting: `r(M) = Θ(log₂ M)`;
//! * matrix–vector multiply, triangular solve: `r(M) = Θ(1)`.
//!
//! [`IntensityModel`] captures those shapes with explicit leading constants,
//! evaluates them, inverts them exactly, and reports the induced
//! [`GrowthLaw`].

use core::fmt;

use crate::error::BalanceError;
use crate::growth::GrowthLaw;
use crate::units::Words;

/// A parametric model of operational intensity as a function of memory.
///
/// # Examples
///
/// ```
/// use balance_core::IntensityModel;
///
/// let matmul = IntensityModel::sqrt_m(0.5);        // r(M) = 0.5·√M
/// assert_eq!(matmul.eval(1600.0), 20.0);
/// assert_eq!(matmul.inverse(20.0).unwrap(), 1600.0);
///
/// let fft = IntensityModel::log2_m(1.0);           // r(M) = log₂ M
/// assert_eq!(fft.eval(1024.0), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntensityModel {
    /// `r(M) = coeff · M^exponent` with `exponent > 0`.
    ///
    /// The paper's polynomial family: `exponent = 1/2` for matrix
    /// computations and 2-D grids, `exponent = 1/d` for d-dimensional grids.
    Power {
        /// Leading constant.
        coeff: f64,
        /// Memory exponent (strictly positive).
        exponent: f64,
    },
    /// `r(M) = coeff · log₂ M` — the FFT/sorting family.
    Log2 {
        /// Leading constant.
        coeff: f64,
    },
    /// `r(M) = value` — I/O-bounded computations whose intensity saturates.
    Constant {
        /// The saturated intensity.
        value: f64,
    },
}

impl IntensityModel {
    /// `r(M) = c·√M` (matrix multiplication, triangularization, 2-D grids).
    #[must_use]
    pub fn sqrt_m(coeff: f64) -> Self {
        IntensityModel::Power {
            coeff,
            exponent: 0.5,
        }
    }

    /// `r(M) = c·M^(1/d)` (d-dimensional grid relaxation).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn root_m(d: u32, coeff: f64) -> Self {
        assert!(d > 0, "grid dimension must be positive");
        IntensityModel::Power {
            coeff,
            exponent: 1.0 / f64::from(d),
        }
    }

    /// `r(M) = c·log₂ M` (FFT, sorting).
    #[must_use]
    pub fn log2_m(coeff: f64) -> Self {
        IntensityModel::Log2 { coeff }
    }

    /// `r(M) = v` (I/O-bounded computations, paper §3.6).
    #[must_use]
    pub fn constant(value: f64) -> Self {
        IntensityModel::Constant { value }
    }

    /// Evaluates `r(M)`.
    ///
    /// For `m <= 1` the log model returns 0 at `m = 1` and is clamped to 0
    /// below (memory sizes below one word are meaningless; callers validate).
    #[must_use]
    pub fn eval(&self, m: f64) -> f64 {
        match *self {
            IntensityModel::Power { coeff, exponent } => coeff * m.powf(exponent),
            IntensityModel::Log2 { coeff } => {
                if m <= 1.0 {
                    0.0
                } else {
                    coeff * m.log2()
                }
            }
            IntensityModel::Constant { value } => value,
        }
    }

    /// Evaluates at an integral memory size.
    #[must_use]
    pub fn eval_words(&self, m: Words) -> f64 {
        self.eval(m.as_f64())
    }

    /// Inverts the model: the memory size at which the intensity reaches
    /// `target`.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::UnreachableIntensity`] for non-positive
    /// targets, [`BalanceError::IoBounded`] for the constant model (no
    /// memory size changes a saturated intensity — the paper's "impossible"
    /// row), and [`BalanceError::MemoryOverflow`] when the answer is not
    /// representable as a finite number of words.
    pub fn inverse(&self, target: f64) -> Result<f64, BalanceError> {
        if !(target.is_finite() && target > 0.0) {
            return Err(BalanceError::UnreachableIntensity { target });
        }
        let m = match *self {
            IntensityModel::Power { coeff, exponent } => {
                if !(coeff.is_finite() && coeff > 0.0 && exponent > 0.0) {
                    return Err(BalanceError::UnreachableIntensity { target });
                }
                (target / coeff).powf(1.0 / exponent)
            }
            IntensityModel::Log2 { coeff } => {
                if !(coeff.is_finite() && coeff > 0.0) {
                    return Err(BalanceError::UnreachableIntensity { target });
                }
                (target / coeff).exp2()
            }
            IntensityModel::Constant { .. } => return Err(BalanceError::IoBounded),
        };
        if !m.is_finite() {
            return Err(BalanceError::MemoryOverflow { requested: m });
        }
        Ok(m)
    }

    /// The memory size that balances a machine with compute-to-I/O ratio
    /// `machine_balance` (ops per word): solves `r(M) = C/IO`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`inverse`](Self::inverse); additionally the
    /// answer is checked for representability.
    pub fn balanced_memory(&self, machine_balance: f64) -> Result<Words, BalanceError> {
        let m = self.inverse(machine_balance)?;
        if m >= u64::MAX as f64 {
            return Err(BalanceError::MemoryOverflow { requested: m });
        }
        Ok(Words::from_f64_rounded(m))
    }

    /// The growth law induced by this ratio shape: how `M_new` relates to
    /// `M_old` when the machine balance rises by `α`.
    ///
    /// * power model with exponent `e` → `M_new = α^(1/e) · M_old`
    ///   (√M ⇒ α², M^(1/d) ⇒ α^d);
    /// * log model → `M_new = M_old^α`;
    /// * constant model → impossible.
    #[must_use]
    pub fn growth_law(&self) -> GrowthLaw {
        match *self {
            IntensityModel::Power { exponent, .. } => GrowthLaw::Polynomial {
                degree: 1.0 / exponent,
            },
            IntensityModel::Log2 { .. } => GrowthLaw::Exponential,
            IntensityModel::Constant { .. } => GrowthLaw::Impossible,
        }
    }

    /// True for models whose intensity does not grow with memory (paper
    /// §3.6: "I/O bounded computations").
    #[must_use]
    pub fn is_io_bounded(&self) -> bool {
        matches!(self, IntensityModel::Constant { .. })
    }

    /// The leading constant of the model.
    #[must_use]
    pub fn coeff(&self) -> f64 {
        match *self {
            IntensityModel::Power { coeff, .. } => coeff,
            IntensityModel::Log2 { coeff } => coeff,
            IntensityModel::Constant { value } => value,
        }
    }
}

impl fmt::Display for IntensityModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IntensityModel::Power { coeff, exponent } => {
                if (exponent - 0.5).abs() < 1e-12 {
                    write!(f, "r(M) = {coeff:.3}·√M")
                } else {
                    write!(f, "r(M) = {coeff:.3}·M^{exponent:.3}")
                }
            }
            IntensityModel::Log2 { coeff } => write!(f, "r(M) = {coeff:.3}·log₂M"),
            IntensityModel::Constant { value } => write!(f, "r(M) = {value:.3} (constant)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_model_matches_paper_matmul() {
        // Paper §3.1: C_comp/C_io = Θ(√M).
        let r = IntensityModel::sqrt_m(1.0);
        assert_eq!(r.eval(100.0), 10.0);
        assert_eq!(r.eval(10_000.0), 100.0);
        assert_eq!(r.inverse(10.0).unwrap(), 100.0);
    }

    #[test]
    fn root_model_matches_paper_grids() {
        // Paper §3.3: d-dimensional grid has ratio Θ(M^(1/d)).
        let r3 = IntensityModel::root_m(3, 1.0);
        assert!((r3.eval(27.0) - 3.0).abs() < 1e-12);
        assert!((r3.inverse(3.0).unwrap() - 27.0).abs() < 1e-9);
        // d = 2 coincides with sqrt.
        let r2 = IntensityModel::root_m(2, 2.0);
        assert_eq!(r2.eval(25.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "grid dimension")]
    fn root_model_rejects_dimension_zero() {
        let _ = IntensityModel::root_m(0, 1.0);
    }

    #[test]
    fn log_model_matches_paper_fft() {
        // Paper §3.4: C_comp/C_io = Θ(log₂ M).
        let r = IntensityModel::log2_m(1.0);
        assert_eq!(r.eval(4.0), 2.0);
        assert_eq!(r.eval(1024.0), 10.0);
        assert_eq!(r.eval(1.0), 0.0);
        assert_eq!(r.eval(0.5), 0.0);
        assert_eq!(r.inverse(10.0).unwrap(), 1024.0);
    }

    #[test]
    fn constant_model_cannot_be_inverted() {
        // Paper §3.6: having a local memory will not reduce the overall I/O
        // requirement after the size exceeds a certain constant.
        let r = IntensityModel::constant(2.0);
        assert_eq!(r.eval(10.0), 2.0);
        assert_eq!(r.eval(1.0e9), 2.0);
        assert_eq!(r.inverse(4.0), Err(BalanceError::IoBounded));
        assert!(r.is_io_bounded());
    }

    #[test]
    fn inverse_rejects_bad_targets() {
        let r = IntensityModel::sqrt_m(1.0);
        assert!(matches!(
            r.inverse(0.0),
            Err(BalanceError::UnreachableIntensity { .. })
        ));
        assert!(matches!(
            r.inverse(-3.0),
            Err(BalanceError::UnreachableIntensity { .. })
        ));
        assert!(matches!(
            r.inverse(f64::NAN),
            Err(BalanceError::UnreachableIntensity { .. })
        ));
    }

    #[test]
    fn inverse_rejects_degenerate_models() {
        let r = IntensityModel::Power {
            coeff: 0.0,
            exponent: 0.5,
        };
        assert!(r.inverse(1.0).is_err());
        let r = IntensityModel::Log2 { coeff: -1.0 };
        assert!(r.inverse(1.0).is_err());
    }

    #[test]
    fn balanced_memory_solves_the_design_point() {
        // Warp-like machine balance C/IO = 0.5 against √M matmul with c=0.5:
        // 0.5·√M = 0.5 => M = 1.
        let r = IntensityModel::sqrt_m(0.5);
        assert_eq!(r.balanced_memory(0.5).unwrap().get(), 1);
        // Balance 16 => M = 1024.
        assert_eq!(r.balanced_memory(16.0).unwrap().get(), 1024);
    }

    #[test]
    fn balanced_memory_detects_overflow() {
        let r = IntensityModel::log2_m(1.0);
        // 2^1000 words overflows u64.
        assert!(matches!(
            r.balanced_memory(1000.0),
            Err(BalanceError::MemoryOverflow { .. })
        ));
    }

    #[test]
    fn growth_laws_match_the_summary_table() {
        assert_eq!(
            IntensityModel::sqrt_m(1.0).growth_law(),
            GrowthLaw::Polynomial { degree: 2.0 }
        );
        match IntensityModel::root_m(4, 1.0).growth_law() {
            GrowthLaw::Polynomial { degree } => assert!((degree - 4.0).abs() < 1e-9),
            other => panic!("expected polynomial, got {other:?}"),
        }
        assert_eq!(
            IntensityModel::log2_m(1.0).growth_law(),
            GrowthLaw::Exponential
        );
        assert_eq!(
            IntensityModel::constant(2.0).growth_law(),
            GrowthLaw::Impossible
        );
    }

    #[test]
    fn display_is_readable() {
        assert!(IntensityModel::sqrt_m(1.0).to_string().contains("√M"));
        assert!(IntensityModel::root_m(3, 1.0)
            .to_string()
            .contains("M^0.333"));
        assert!(IntensityModel::log2_m(2.0).to_string().contains("log₂M"));
        assert!(IntensityModel::constant(2.0)
            .to_string()
            .contains("constant"));
    }

    #[test]
    fn eval_words_matches_eval() {
        let r = IntensityModel::sqrt_m(3.0);
        assert_eq!(r.eval_words(Words::new(49)), r.eval(49.0));
    }
}
