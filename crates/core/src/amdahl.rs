//! Amdahl's memory rule of thumb, for contrast with the paper's laws.
//!
//! The paper's introduction notes: *"It is well known that the size of the
//! local memory must be large if the computation bandwidth of the processing
//! element is large, as represented by 'Amdahl's rule'"* (Siewiorek, Bell &
//! Newell 1982). Amdahl's rule is linear — roughly one byte of memory per
//! instruction per second. Kung's contribution is showing that for concrete
//! computations the true requirement grows *faster* than linearly in the
//! compute bandwidth (quadratically for matrix work, exponentially for
//! FFT/sorting). The helpers here quantify that gap.

use crate::error::BalanceError;
use crate::growth::GrowthLaw;
use crate::units::{OpsPerSec, Words};

/// Amdahl's classic constant: one byte of memory per instruction per second.
pub const BYTES_PER_OPS: f64 = 1.0;

/// Memory suggested by Amdahl's rule for a given compute bandwidth, in bytes.
///
/// # Examples
///
/// ```
/// use balance_core::amdahl::amdahl_memory_bytes;
/// use balance_core::OpsPerSec;
///
/// // A 1-MIPS machine wants ~1 MB.
/// assert_eq!(amdahl_memory_bytes(OpsPerSec::new(1.0e6)), 1.0e6);
/// ```
#[must_use]
pub fn amdahl_memory_bytes(comp_bw: OpsPerSec) -> f64 {
    comp_bw.get() * BYTES_PER_OPS
}

/// Memory suggested by Amdahl's rule, in words of `bytes_per_word` bytes.
#[must_use]
pub fn amdahl_memory_words(comp_bw: OpsPerSec, bytes_per_word: u32) -> Words {
    Words::from_f64_rounded(amdahl_memory_bytes(comp_bw) / f64::from(bytes_per_word.max(1)))
}

/// How much faster than Amdahl's linear rule a computation's memory must grow
/// when the compute bandwidth is scaled by `alpha` with I/O held fixed.
///
/// Returns `M_kung_growth / alpha` — i.e. by what extra factor Kung's law
/// outpaces the linear rule. A value of 1 means Amdahl's rule suffices;
/// matrix computations give `alpha` (quadratic vs linear); FFT-class
/// computations diverge much faster.
///
/// # Errors
///
/// As [`GrowthLaw::growth_factor`]: [`BalanceError::IoBounded`] for
/// impossible laws, [`BalanceError::AlphaBelowOne`] for invalid `alpha`.
pub fn excess_over_amdahl(law: GrowthLaw, alpha: f64, m_old: Words) -> Result<f64, BalanceError> {
    Ok(law.growth_factor(alpha, m_old)? / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_byte_per_ops() {
        assert_eq!(amdahl_memory_bytes(OpsPerSec::new(10.0e6)), 10.0e6);
    }

    #[test]
    fn words_conversion() {
        // 10 Mops/s, 4-byte words -> 2.5 Mwords.
        assert_eq!(
            amdahl_memory_words(OpsPerSec::new(10.0e6), 4).get(),
            2_500_000
        );
        // Guard against division by zero.
        assert_eq!(amdahl_memory_words(OpsPerSec::new(8.0), 0).get(), 8);
    }

    #[test]
    fn matrix_law_exceeds_amdahl_by_alpha() {
        // Kung: α² growth; Amdahl: α growth; excess = α.
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        let excess = excess_over_amdahl(law, 4.0, Words::new(1024)).unwrap();
        assert!((excess - 4.0).abs() < 1e-12);
    }

    #[test]
    fn linear_law_matches_amdahl() {
        // A 1-D grid (degree 1) grows exactly like Amdahl's rule.
        let law = GrowthLaw::Polynomial { degree: 1.0 };
        let excess = excess_over_amdahl(law, 8.0, Words::new(1024)).unwrap();
        assert!((excess - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fft_law_dwarfs_amdahl() {
        // M_old = 2^10, α = 2: Kung growth = 2^10, Amdahl growth = 2.
        let excess = excess_over_amdahl(GrowthLaw::Exponential, 2.0, Words::new(1024)).unwrap();
        assert!((excess - 512.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_law_propagates() {
        assert_eq!(
            excess_over_amdahl(GrowthLaw::Impossible, 2.0, Words::new(64)),
            Err(BalanceError::IoBounded)
        );
    }
}
