//! Unit-safe newtypes for the quantities in the information model.
//!
//! The paper's model works with three kinds of quantities: memory sizes and
//! traffic volumes in *words*, bandwidths in *per-second* rates, and times in
//! *seconds*. Mixing them up is the classic source of silent errors in
//! balance arithmetic, so each gets its own newtype ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A memory size or traffic volume, in words.
///
/// One I/O operation transfers one word to or from the PE, so both local
/// memory capacity (`M`) and total I/O cost (`C_io`) are measured in words.
///
/// # Examples
///
/// ```
/// use balance_core::units::Words;
///
/// let m = Words::new(64 * 1024);
/// assert_eq!(m.get(), 65_536);
/// assert_eq!(format!("{m}"), "65536 words");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Words(u64);

impl Words {
    /// Zero words.
    pub const ZERO: Words = Words(0);

    /// Creates a word count.
    #[must_use]
    pub const fn new(words: u64) -> Self {
        Words(words)
    }

    /// Returns the raw count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the count as `f64` (for ratio arithmetic).
    #[must_use]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Creates a word count from a (non-negative, finite) float, rounding to
    /// the nearest integer.
    ///
    /// Values are clamped at zero; NaN maps to zero. Infinite values saturate
    /// at `u64::MAX`. This is the boundary where analytic answers (always
    /// real-valued) get materialized into physical memory sizes.
    #[must_use]
    pub fn from_f64_rounded(value: f64) -> Self {
        if value.is_nan() || value <= 0.0 {
            Words(0)
        } else if value >= u64::MAX as f64 {
            Words(u64::MAX)
        } else {
            Words(value.round() as u64)
        }
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Words) -> Words {
        Words(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a scalar.
    #[must_use]
    pub const fn checked_mul(self, factor: u64) -> Option<Words> {
        match self.0.checked_mul(factor) {
            Some(v) => Some(Words(v)),
            None => None,
        }
    }

    /// True when the count is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Words {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} words", self.0)
    }
}

impl Add for Words {
    type Output = Words;
    fn add(self, rhs: Words) -> Words {
        Words(self.0 + rhs.0)
    }
}

impl AddAssign for Words {
    fn add_assign(&mut self, rhs: Words) {
        self.0 += rhs.0;
    }
}

impl Sub for Words {
    type Output = Words;
    fn sub(self, rhs: Words) -> Words {
        Words(self.0 - rhs.0)
    }
}

impl Mul<u64> for Words {
    type Output = Words;
    fn mul(self, rhs: u64) -> Words {
        Words(self.0 * rhs)
    }
}

impl Sum for Words {
    fn sum<I: Iterator<Item = Words>>(iter: I) -> Words {
        Words(iter.map(|w| w.0).sum())
    }
}

impl From<u64> for Words {
    fn from(value: u64) -> Self {
        Words(value)
    }
}

/// A computation bandwidth `C`, in operations per second.
///
/// # Examples
///
/// ```
/// use balance_core::units::OpsPerSec;
///
/// // A 10-MFLOPS floating point unit (the Warp cell of the paper's Section 5).
/// let c = OpsPerSec::new(10.0e6);
/// assert_eq!(c.get(), 10.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct OpsPerSec(f64);

impl OpsPerSec {
    /// Creates a computation bandwidth.
    #[must_use]
    pub const fn new(ops_per_sec: f64) -> Self {
        OpsPerSec(ops_per_sec)
    }

    /// Returns the raw rate.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// True when the rate is finite and strictly positive.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }

    /// Scales the bandwidth by a factor (e.g. ganging `p` PEs together).
    #[must_use]
    pub fn scaled(self, factor: f64) -> OpsPerSec {
        OpsPerSec(self.0 * factor)
    }
}

impl fmt::Display for OpsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} op/s", self.0)
    }
}

/// An I/O bandwidth `IO`, in words per second.
///
/// # Examples
///
/// ```
/// use balance_core::units::WordsPerSec;
///
/// // A 20-Mword/s inter-cell link (Warp).
/// let io = WordsPerSec::new(20.0e6);
/// assert!(io.is_valid());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WordsPerSec(f64);

impl WordsPerSec {
    /// Creates an I/O bandwidth.
    #[must_use]
    pub const fn new(words_per_sec: f64) -> Self {
        WordsPerSec(words_per_sec)
    }

    /// Returns the raw rate.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// True when the rate is finite and strictly positive.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }

    /// Scales the bandwidth by a factor.
    #[must_use]
    pub fn scaled(self, factor: f64) -> WordsPerSec {
        WordsPerSec(self.0 * factor)
    }
}

impl fmt::Display for WordsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} word/s", self.0)
    }
}

/// A time duration, in seconds.
///
/// # Examples
///
/// ```
/// use balance_core::units::Seconds;
///
/// let t = Seconds::new(1.5) + Seconds::new(0.5);
/// assert_eq!(t.get(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Creates a duration.
    #[must_use]
    pub const fn new(seconds: f64) -> Self {
        Seconds(seconds)
    }

    /// Returns the raw duration.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s", self.0)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Div for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_arithmetic() {
        let a = Words::new(100);
        let b = Words::new(28);
        assert_eq!((a + b).get(), 128);
        assert_eq!((a - b).get(), 72);
        assert_eq!((a * 3).get(), 300);
        assert_eq!(a.saturating_sub(Words::new(200)), Words::ZERO);
    }

    #[test]
    fn words_from_f64_boundaries() {
        assert_eq!(Words::from_f64_rounded(-1.0), Words::ZERO);
        assert_eq!(Words::from_f64_rounded(f64::NAN), Words::ZERO);
        assert_eq!(Words::from_f64_rounded(2.4).get(), 2);
        assert_eq!(Words::from_f64_rounded(2.5).get(), 3);
        assert_eq!(Words::from_f64_rounded(f64::INFINITY).get(), u64::MAX);
    }

    #[test]
    fn words_sum_and_ordering() {
        let total: Words = [1u64, 2, 3].into_iter().map(Words::new).sum();
        assert_eq!(total.get(), 6);
        assert!(Words::new(5) < Words::new(6));
        assert!(Words::new(0).is_zero());
    }

    #[test]
    fn words_checked_mul_overflow() {
        assert_eq!(Words::new(2).checked_mul(3), Some(Words::new(6)));
        assert_eq!(Words::new(u64::MAX).checked_mul(2), None);
    }

    #[test]
    fn bandwidth_validity() {
        assert!(OpsPerSec::new(1.0).is_valid());
        assert!(!OpsPerSec::new(0.0).is_valid());
        assert!(!OpsPerSec::new(-5.0).is_valid());
        assert!(!OpsPerSec::new(f64::NAN).is_valid());
        assert!(!WordsPerSec::new(f64::INFINITY).is_valid());
    }

    #[test]
    fn bandwidth_scaling() {
        let c = OpsPerSec::new(10.0e6).scaled(4.0);
        assert_eq!(c.get(), 40.0e6);
        let io = WordsPerSec::new(20.0e6).scaled(0.5);
        assert_eq!(io.get(), 10.0e6);
    }

    #[test]
    fn seconds_arithmetic() {
        let t = Seconds::new(3.0);
        assert_eq!((t + Seconds::new(1.0)).get(), 4.0);
        assert_eq!((t - Seconds::new(1.0)).get(), 2.0);
        assert_eq!(t / Seconds::new(1.5), 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Words::new(42)), "42 words");
        assert_eq!(format!("{}", OpsPerSec::new(2.0)), "2 op/s");
        assert_eq!(format!("{}", WordsPerSec::new(3.0)), "3 word/s");
        assert_eq!(format!("{}", Seconds::new(0.5)), "0.5 s");
    }
}
