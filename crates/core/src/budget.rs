//! Resource budgets for long-running measurements.
//!
//! A billion-address replay (see `balance-machine`'s stack-distance
//! engines) runs for minutes and allocates tables proportional to the
//! address space — long enough to collide with a CI timeout, a container
//! memory cap, or an interactive user's patience. A [`Budget`] names the
//! resources a caller is willing to spend on one measurement: wall-clock
//! time, resident bytes for engine state, and engine-processed addresses.
//!
//! Budgets are *degradation* triggers, not abort triggers. Bell, Gray &
//! Szalay (*Petascale Computational Systems*, IEEE Computer 2006) argue
//! that balanced systems at scale are defined by how they behave when a
//! component limit is hit; in that spirit, the measurement executors in
//! `balance-kernels` respond to a tripped budget by stepping down an
//! engine ladder (exact parallel → exact serial → hash-sampled at an
//! escalating rate) and **tagging** the result with the substitution
//! ([`BudgetTrip`]), instead of hanging until killed or returning
//! nothing. Consumers that require exactness (the measured-balance fast
//! path in `balance-parallel`) check the profile's exactness bit and
//! refuse degraded artifacts.
//!
//! All three limits are optional; [`Budget::unlimited`] is the identity.

use core::fmt;
use core::time::Duration;

/// Resource limits for one measurement run. Every field is optional;
/// `None` means unlimited.
///
/// # Examples
///
/// ```
/// use balance_core::Budget;
/// use core::time::Duration;
///
/// let b = Budget::unlimited()
///     .with_max_wall(Duration::from_secs(60))
///     .with_max_resident_bytes(512 << 20);
/// assert_eq!(b.max_wall, Some(Duration::from_secs(60)));
/// assert_eq!(b.max_addresses, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock ceiling for the measurement, checked at streaming
    /// granularity (not only between points).
    pub max_wall: Option<Duration>,
    /// Ceiling on the *estimated* resident bytes of engine state (index
    /// tables, recency structures) — checked before an engine is built,
    /// so the process never allocates past the cap only to be OOM-killed.
    pub max_resident_bytes: Option<u64>,
    /// Ceiling on the number of addresses the engine may process through
    /// its histogram accounting. Sampling at rate `2^-s` divides a
    /// trace's processed-address cost by `2^s`.
    pub max_addresses: Option<u64>,
}

impl Budget {
    /// No limits at all (the default).
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// The same budget with a wall-clock ceiling.
    #[must_use]
    pub fn with_max_wall(mut self, wall: Duration) -> Budget {
        self.max_wall = Some(wall);
        self
    }

    /// The same budget with a resident-bytes ceiling.
    #[must_use]
    pub fn with_max_resident_bytes(mut self, bytes: u64) -> Budget {
        self.max_resident_bytes = Some(bytes);
        self
    }

    /// The same budget with an engine-processed-address ceiling.
    #[must_use]
    pub fn with_max_addresses(mut self, addresses: u64) -> Budget {
        self.max_addresses = Some(addresses);
        self
    }

    /// Whether every field is `None` (nothing can ever trip).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_wall.is_none() && self.max_resident_bytes.is_none() && self.max_addresses.is_none()
    }
}

/// Which budget limit tripped, with the numbers that tripped it — the tag
/// a degraded measurement carries so the substitution is explicit, never
/// silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetTrip {
    /// The wall-clock ceiling was exceeded mid-measurement.
    Wall {
        /// The configured ceiling.
        limit: Duration,
    },
    /// The estimated resident bytes of an engine exceeded the ceiling.
    Resident {
        /// Estimated bytes the engine would hold.
        estimated: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The engine-processed address count would exceed the ceiling.
    Addresses {
        /// Addresses the engine would process.
        needed: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

impl fmt::Display for BudgetTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetTrip::Wall { limit } => {
                write!(f, "wall-clock budget of {:.1}s exceeded", limit.as_secs_f64())
            }
            BudgetTrip::Resident { estimated, limit } => write!(
                f,
                "resident budget exceeded: engine needs ~{estimated} bytes, limit {limit}"
            ),
            BudgetTrip::Addresses { needed, limit } => write!(
                f,
                "address budget exceeded: engine would process {needed} addresses, limit {limit}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_each_field_independently() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let b = b.with_max_addresses(10);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_addresses, Some(10));
        assert_eq!(b.max_wall, None);
        let b = b
            .with_max_wall(Duration::from_millis(5))
            .with_max_resident_bytes(1 << 20);
        assert_eq!(b.max_resident_bytes, Some(1 << 20));
        assert_eq!(b.max_wall, Some(Duration::from_millis(5)));
    }

    #[test]
    fn trips_display_their_numbers() {
        let s = BudgetTrip::Resident {
            estimated: 4096,
            limit: 1024,
        }
        .to_string();
        assert!(s.contains("4096") && s.contains("1024"), "{s}");
        let s = BudgetTrip::Addresses {
            needed: 77,
            limit: 10,
        }
        .to_string();
        assert!(s.contains("77") && s.contains("10"), "{s}");
        let s = BudgetTrip::Wall {
            limit: Duration::from_secs(2),
        }
        .to_string();
        assert!(s.contains("2.0"), "{s}");
    }
}
