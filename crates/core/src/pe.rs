//! The processing-element characterization (the paper's Fig. 1).
//!
//! A PE is fully described, for the purposes of the balance analysis, by the
//! triple `(C, IO, M)`: computation bandwidth, I/O bandwidth, and local
//! memory size. [`PeSpec`] carries that triple; its [`Display`] impl renders
//! the paper's Figure 1 as ASCII art.
//!
//! [`Display`]: core::fmt::Display

use core::fmt;

use crate::error::BalanceError;
use crate::units::{OpsPerSec, Words, WordsPerSec};

/// The information-model characterization of a processing element.
///
/// # Examples
///
/// ```
/// use balance_core::{PeSpec, OpsPerSec, WordsPerSec, Words};
///
/// // The Warp cell of the paper's Section 5: 10 MFLOPS, 20 Mword/s, 64K words.
/// let warp = PeSpec::builder()
///     .comp_bw(OpsPerSec::new(10.0e6))
///     .io_bw(WordsPerSec::new(20.0e6))
///     .memory(Words::new(64 * 1024))
///     .build()?;
/// assert_eq!(warp.machine_balance(), 0.5); // ops per word of I/O
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeSpec {
    comp_bw: OpsPerSec,
    io_bw: WordsPerSec,
    memory: Words,
}

impl PeSpec {
    /// Starts building a PE specification.
    #[must_use]
    pub fn builder() -> PeSpecBuilder {
        PeSpecBuilder::default()
    }

    /// Creates a PE spec directly.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::InvalidQuantity`] if either bandwidth is not
    /// finite and positive, and [`BalanceError::ZeroMemory`] if `memory` is
    /// zero.
    pub fn new(
        comp_bw: OpsPerSec,
        io_bw: WordsPerSec,
        memory: Words,
    ) -> Result<Self, BalanceError> {
        if !comp_bw.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "computation bandwidth",
                value: comp_bw.get(),
            });
        }
        if !io_bw.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "io bandwidth",
                value: io_bw.get(),
            });
        }
        if memory.is_zero() {
            return Err(BalanceError::ZeroMemory);
        }
        Ok(PeSpec {
            comp_bw,
            io_bw,
            memory,
        })
    }

    /// The computation bandwidth `C`.
    #[must_use]
    pub fn comp_bw(&self) -> OpsPerSec {
        self.comp_bw
    }

    /// The I/O bandwidth `IO`.
    #[must_use]
    pub fn io_bw(&self) -> WordsPerSec {
        self.io_bw
    }

    /// The local memory size `M`.
    #[must_use]
    pub fn memory(&self) -> Words {
        self.memory
    }

    /// The machine balance `C / IO`, in operations per word.
    ///
    /// A computation whose operational intensity equals this value runs the
    /// compute and I/O subsystems at equal utilization.
    #[must_use]
    pub fn machine_balance(&self) -> f64 {
        self.comp_bw.get() / self.io_bw.get()
    }

    /// Returns a copy with the computation bandwidth scaled by `factor`,
    /// I/O bandwidth and memory unchanged.
    ///
    /// This is the paper's scaling move: "the computation bandwidth of the PE
    /// is increased by a factor of α relative to its I/O bandwidth".
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::InvalidQuantity`] if `factor` is not finite
    /// and positive.
    pub fn with_comp_scaled(&self, factor: f64) -> Result<PeSpec, BalanceError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(BalanceError::InvalidQuantity {
                what: "scale factor",
                value: factor,
            });
        }
        PeSpec::new(self.comp_bw.scaled(factor), self.io_bw, self.memory)
    }

    /// Returns a copy with a different memory size.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::ZeroMemory`] if `memory` is zero.
    pub fn with_memory(&self, memory: Words) -> Result<PeSpec, BalanceError> {
        PeSpec::new(self.comp_bw, self.io_bw, memory)
    }

    /// Views a collection of `p` such PEs, all hidden behind the *same* I/O
    /// port, as one aggregate PE: `p`-fold compute and memory, unchanged I/O.
    ///
    /// This is the "new processing element" viewpoint of the paper's
    /// Section 4.1 (the linear array). For the mesh of Section 4.2 use
    /// [`aggregate_scaled`](Self::aggregate_scaled) with `io_factor = p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p == 0` or the aggregate memory overflows.
    pub fn aggregate(&self, p: u64) -> Result<PeSpec, BalanceError> {
        self.aggregate_scaled(p, 1.0)
    }

    /// Aggregates `p` PEs with an I/O bandwidth scaled by `io_factor`.
    ///
    /// A `p×p` mesh whose perimeter PEs all talk to the outside world has
    /// `p²` compute and `p`-fold I/O: `spec.aggregate_scaled(p * p, p as f64)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p == 0`, `io_factor` is invalid, or memory
    /// overflows.
    pub fn aggregate_scaled(&self, p: u64, io_factor: f64) -> Result<PeSpec, BalanceError> {
        if p == 0 {
            return Err(BalanceError::InvalidQuantity {
                what: "PE count",
                value: 0.0,
            });
        }
        let memory = self
            .memory
            .checked_mul(p)
            .ok_or(BalanceError::MemoryOverflow {
                requested: self.memory.as_f64() * p as f64,
            })?;
        if !(io_factor.is_finite() && io_factor > 0.0) {
            return Err(BalanceError::InvalidQuantity {
                what: "io scale factor",
                value: io_factor,
            });
        }
        PeSpec::new(
            self.comp_bw.scaled(p as f64),
            self.io_bw.scaled(io_factor),
            memory,
        )
    }
}

impl fmt::Display for PeSpec {
    /// Renders the paper's Figure 1: a PE characterized by `C`, `IO`, `M`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = format!("C  = {:>12.4e} op/s", self.comp_bw.get());
        let io = format!("IO = {:>12.4e} word/s", self.io_bw.get());
        let m = format!("M  = {:>12} words", self.memory.get());
        let width = c.len().max(io.len()).max(m.len()) + 4;
        writeln!(f, "        +{}+", "-".repeat(width))?;
        writeln!(f, "        |{:^width$}|", "processing element")?;
        writeln!(f, "  IO    |{:^width$}|", c)?;
        writeln!(f, "<=====> |{:^width$}|", io)?;
        writeln!(f, "        |{:^width$}|", m)?;
        write!(f, "        +{}+", "-".repeat(width))
    }
}

/// Builder for [`PeSpec`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Default)]
pub struct PeSpecBuilder {
    comp_bw: Option<OpsPerSec>,
    io_bw: Option<WordsPerSec>,
    memory: Option<Words>,
}

impl PeSpecBuilder {
    /// Sets the computation bandwidth `C`.
    #[must_use]
    pub fn comp_bw(mut self, comp_bw: OpsPerSec) -> Self {
        self.comp_bw = Some(comp_bw);
        self
    }

    /// Sets the I/O bandwidth `IO`.
    #[must_use]
    pub fn io_bw(mut self, io_bw: WordsPerSec) -> Self {
        self.io_bw = Some(io_bw);
        self
    }

    /// Sets the local memory size `M`.
    #[must_use]
    pub fn memory(mut self, memory: Words) -> Self {
        self.memory = Some(memory);
        self
    }

    /// Builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::InvalidQuantity`] / [`BalanceError::ZeroMemory`]
    /// for missing or invalid fields (missing fields are reported as invalid
    /// zero values).
    pub fn build(self) -> Result<PeSpec, BalanceError> {
        PeSpec::new(
            self.comp_bw.unwrap_or(OpsPerSec::new(0.0)),
            self.io_bw.unwrap_or(WordsPerSec::new(0.0)),
            self.memory.unwrap_or(Words::ZERO),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp_cell() -> PeSpec {
        PeSpec::new(
            OpsPerSec::new(10.0e6),
            WordsPerSec::new(20.0e6),
            Words::new(64 * 1024),
        )
        .expect("valid spec")
    }

    #[test]
    fn machine_balance_is_c_over_io() {
        assert_eq!(warp_cell().machine_balance(), 0.5);
    }

    #[test]
    fn builder_round_trips() {
        let spec = PeSpec::builder()
            .comp_bw(OpsPerSec::new(1.0e6))
            .io_bw(WordsPerSec::new(2.0e6))
            .memory(Words::new(1024))
            .build()
            .unwrap();
        assert_eq!(spec.comp_bw().get(), 1.0e6);
        assert_eq!(spec.io_bw().get(), 2.0e6);
        assert_eq!(spec.memory().get(), 1024);
    }

    #[test]
    fn builder_rejects_missing_fields() {
        assert!(PeSpec::builder().build().is_err());
        assert!(PeSpec::builder()
            .comp_bw(OpsPerSec::new(1.0))
            .io_bw(WordsPerSec::new(1.0))
            .build()
            .is_err());
    }

    #[test]
    fn rejects_invalid_quantities() {
        assert!(matches!(
            PeSpec::new(OpsPerSec::new(0.0), WordsPerSec::new(1.0), Words::new(1)),
            Err(BalanceError::InvalidQuantity {
                what: "computation bandwidth",
                ..
            })
        ));
        assert!(matches!(
            PeSpec::new(
                OpsPerSec::new(1.0),
                WordsPerSec::new(f64::NAN),
                Words::new(1)
            ),
            Err(BalanceError::InvalidQuantity {
                what: "io bandwidth",
                ..
            })
        ));
        assert_eq!(
            PeSpec::new(OpsPerSec::new(1.0), WordsPerSec::new(1.0), Words::ZERO),
            Err(BalanceError::ZeroMemory)
        );
    }

    #[test]
    fn comp_scaling_changes_balance() {
        let spec = warp_cell().with_comp_scaled(4.0).unwrap();
        assert_eq!(spec.machine_balance(), 2.0);
        assert_eq!(spec.memory(), warp_cell().memory());
        assert!(warp_cell().with_comp_scaled(0.0).is_err());
        assert!(warp_cell().with_comp_scaled(f64::NAN).is_err());
    }

    #[test]
    fn with_memory_replaces_memory_only() {
        let spec = warp_cell().with_memory(Words::new(1)).unwrap();
        assert_eq!(spec.memory().get(), 1);
        assert_eq!(spec.comp_bw(), warp_cell().comp_bw());
        assert!(warp_cell().with_memory(Words::ZERO).is_err());
    }

    #[test]
    fn aggregate_linear_array_raises_balance_p_fold() {
        // Section 4.1: p PEs behind one I/O port => alpha = p.
        let one = warp_cell();
        let agg = one.aggregate(10).unwrap();
        assert_eq!(agg.machine_balance(), one.machine_balance() * 10.0);
        assert_eq!(agg.memory().get(), one.memory().get() * 10);
        assert_eq!(agg.io_bw(), one.io_bw());
    }

    #[test]
    fn aggregate_mesh_raises_balance_p_fold() {
        // Section 4.2: p*p PEs with p-fold I/O => alpha = p.
        let one = warp_cell();
        let p = 8u64;
        let agg = one.aggregate_scaled(p * p, p as f64).unwrap();
        let ratio = agg.machine_balance() / one.machine_balance();
        assert!((ratio - p as f64).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rejects_degenerate_inputs() {
        assert!(warp_cell().aggregate(0).is_err());
        assert!(warp_cell().aggregate_scaled(2, 0.0).is_err());
        let huge = PeSpec::new(
            OpsPerSec::new(1.0),
            WordsPerSec::new(1.0),
            Words::new(u64::MAX),
        )
        .unwrap();
        assert!(matches!(
            huge.aggregate(2),
            Err(BalanceError::MemoryOverflow { .. })
        ));
    }

    #[test]
    fn display_renders_figure_1() {
        let art = warp_cell().to_string();
        assert!(art.contains("processing element"));
        assert!(art.contains("C  ="));
        assert!(art.contains("IO ="));
        assert!(art.contains("M  ="));
        assert!(art.contains("<=====>"));
    }
}
