//! Numeric utilities: monotone bisection and measured-curve inversion.
//!
//! The closed-form laws in [`crate::intensity`] invert exactly; experiments,
//! however, produce *measured* intensity curves with lower-order terms. This
//! module inverts those numerically: [`MeasuredCurve`] interpolates a set of
//! `(M, r)` samples monotonically in log–log space and answers the empirical
//! rebalancing question "what memory did the measurements say we need?"
//! without assuming any law shape.

use crate::error::BalanceError;
use crate::fit::DataPoint;

/// Finds `x ∈ [lo, hi]` with `f(x) = target` for a non-decreasing `f`,
/// by bisection.
///
/// # Errors
///
/// * [`BalanceError::SolverFailure`] if the bracket is invalid or the target
///   is not enclosed by `[f(lo), f(hi)]`.
///
/// # Examples
///
/// ```
/// use balance_core::solver::bisect_increasing;
///
/// let root = bisect_increasing(|x| x * x, 9.0, 0.0, 10.0, 1e-12, 200)?;
/// assert!((root - 3.0).abs() < 1e-9);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
pub fn bisect_increasing(
    f: impl Fn(f64) -> f64,
    target: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, BalanceError> {
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(BalanceError::SolverFailure {
            reason: "invalid bracket",
        });
    }
    let flo = f(lo);
    let fhi = f(hi);
    if !(flo <= target && target <= fhi) {
        return Err(BalanceError::SolverFailure {
            reason: "target not bracketed",
        });
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if (fm - target).abs() <= tol || (hi - lo) <= tol * mid.abs().max(1.0) {
            return Ok(mid);
        }
        if fm < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// A measured intensity curve: sorted `(M, r)` samples with log–log
/// interpolation and extrapolation.
///
/// The curve need not follow any particular law; it only needs to be
/// (weakly) increasing in `M`, which every computation in the paper
/// satisfies — more memory never hurts the best decomposition scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCurve {
    // Sorted by memory, strictly increasing memory, positive ratios.
    points: Vec<DataPoint>,
}

impl MeasuredCurve {
    /// Builds a curve from samples.
    ///
    /// Samples with non-positive memory or ratio are discarded; duplicates
    /// (same `M`) are averaged.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::InsufficientData`] if fewer than two distinct
    /// memory sizes remain.
    pub fn new(samples: &[DataPoint]) -> Result<Self, BalanceError> {
        let mut pts: Vec<DataPoint> = samples
            .iter()
            .filter(|p| {
                p.memory.is_finite() && p.memory > 0.0 && p.ratio.is_finite() && p.ratio > 0.0
            })
            .copied()
            .collect();
        pts.sort_by(|a, b| a.memory.total_cmp(&b.memory));
        // Average duplicates.
        let mut merged: Vec<DataPoint> = Vec::with_capacity(pts.len());
        for p in pts {
            match merged.last_mut() {
                Some(last) if (last.memory - p.memory).abs() < f64::EPSILON * last.memory => {
                    last.ratio = 0.5 * (last.ratio + p.ratio);
                }
                _ => merged.push(p),
            }
        }
        if merged.len() < 2 {
            return Err(BalanceError::InsufficientData {
                points: merged.len(),
            });
        }
        Ok(MeasuredCurve { points: merged })
    }

    /// The retained samples, sorted by memory.
    #[must_use]
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// Interpolated ratio at memory `m` (log–log linear; extrapolates with
    /// the slope of the nearest segment).
    #[must_use]
    pub fn ratio_at(&self, m: f64) -> f64 {
        let pts = &self.points;
        let lm = m.ln();
        // Locate the segment.
        let seg = match pts.iter().position(|p| p.memory >= m) {
            Some(0) => (0, 1),
            Some(i) => (i - 1, i),
            None => (pts.len() - 2, pts.len() - 1),
        };
        let (a, b) = (pts[seg.0], pts[seg.1]);
        let (xa, xb) = (a.memory.ln(), b.memory.ln());
        let (ya, yb) = (a.ratio.ln(), b.ratio.ln());
        let t = if (xb - xa).abs() < 1e-300 {
            0.0
        } else {
            (lm - xa) / (xb - xa)
        };
        (ya + t * (yb - ya)).exp()
    }

    /// Inverts the curve: the memory at which the ratio reaches `target`.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::SolverFailure`] when the curve is not
    /// increasing enough to extrapolate (flat tail — the I/O-bounded
    /// signature) and the target lies above the measured range.
    pub fn memory_for_ratio(&self, target: f64) -> Result<f64, BalanceError> {
        if !(target.is_finite() && target > 0.0) {
            return Err(BalanceError::UnreachableIntensity { target });
        }
        let first = self.points[0];
        let last = *self.points.last().expect("at least two points");
        if target <= first.ratio {
            // Extrapolate below with the head segment slope.
            return self.extrapolate(target, self.points[0], self.points[1]);
        }
        if target > last.ratio {
            // Extrapolate above with the tail segment slope.
            let n = self.points.len();
            return self.extrapolate(target, self.points[n - 2], self.points[n - 1]);
        }
        // In range: bisect on the interpolated curve.
        bisect_increasing(
            |m| self.ratio_at(m),
            target,
            first.memory,
            last.memory,
            1e-9,
            200,
        )
    }

    /// The empirical rebalancing answer: the memory at which the measured
    /// ratio is `alpha` times the measured ratio at `m_old`.
    ///
    /// # Errors
    ///
    /// As [`memory_for_ratio`](Self::memory_for_ratio).
    pub fn empirical_rebalance(&self, alpha: f64, m_old: f64) -> Result<f64, BalanceError> {
        if !(alpha.is_finite()) || alpha < 1.0 {
            return Err(BalanceError::AlphaBelowOne { value: alpha });
        }
        let r_old = self.ratio_at(m_old);
        self.memory_for_ratio(alpha * r_old)
    }

    /// The local log–log slope of the tail (an estimate of the exponent `e`
    /// in `r ∝ M^e` at large `M`). Near-zero slope signals an I/O-bounded
    /// computation.
    #[must_use]
    pub fn tail_slope(&self) -> f64 {
        let n = self.points.len();
        let a = self.points[n - 2];
        let b = self.points[n - 1];
        (b.ratio.ln() - a.ratio.ln()) / (b.memory.ln() - a.memory.ln())
    }

    fn extrapolate(&self, target: f64, a: DataPoint, b: DataPoint) -> Result<f64, BalanceError> {
        let slope = (b.ratio.ln() - a.ratio.ln()) / (b.memory.ln() - a.memory.ln());
        if slope <= 1e-6 {
            return Err(BalanceError::SolverFailure {
                reason: "curve is flat: intensity does not grow with memory",
            });
        }
        // ln r = ln r_b + slope (ln m - ln m_b)  =>  ln m = ln m_b + (ln target - ln r_b)/slope
        Ok((b.memory.ln() + (target.ln() - b.ratio.ln()) / slope).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sqrt_curve() -> MeasuredCurve {
        let pts: Vec<DataPoint> = (4..=14)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, 0.5 * m.sqrt())
            })
            .collect();
        MeasuredCurve::new(&pts).unwrap()
    }

    #[test]
    fn bisection_finds_roots() {
        let x = bisect_increasing(|x| x.powi(3), 27.0, 0.0, 100.0, 1e-12, 300).unwrap();
        assert!((x - 3.0).abs() < 1e-8);
    }

    #[test]
    fn bisection_rejects_bad_brackets() {
        assert!(bisect_increasing(|x| x, 5.0, 10.0, 0.0, 1e-9, 100).is_err());
        assert!(bisect_increasing(|x| x, 50.0, 0.0, 10.0, 1e-9, 100).is_err());
        assert!(bisect_increasing(|x| x, 5.0, f64::NAN, 10.0, 1e-9, 100).is_err());
    }

    #[test]
    fn interpolation_is_exact_on_power_data() {
        let curve = sqrt_curve();
        // Log-log interpolation reproduces a pure power law exactly,
        // including between samples.
        assert!((curve.ratio_at(100.0) - 5.0).abs() < 1e-9);
        assert!((curve.ratio_at(10_000.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn inversion_recovers_memory() {
        let curve = sqrt_curve();
        let m = curve.memory_for_ratio(10.0).unwrap(); // 0.5·√M = 10 → M = 400
        assert!((m - 400.0).abs() / 400.0 < 1e-6);
    }

    #[test]
    fn extrapolation_beyond_measured_range() {
        let curve = sqrt_curve(); // up to M = 16384, r = 64
        let m = curve.memory_for_ratio(128.0).unwrap(); // → M = 65536
        assert!((m - 65536.0).abs() / 65536.0 < 1e-6);
        let m = curve.memory_for_ratio(1.0).unwrap(); // below range → M = 4
        assert!((m - 4.0).abs() / 4.0 < 1e-6);
    }

    #[test]
    fn empirical_rebalance_matches_alpha_squared() {
        // The whole point: measured √M data must yield M_new ≈ α²·M_old.
        let curve = sqrt_curve();
        for alpha in [2.0, 3.0, 4.0] {
            let m_new = curve.empirical_rebalance(alpha, 256.0).unwrap();
            let expected = alpha * alpha * 256.0;
            assert!(
                (m_new - expected).abs() / expected < 1e-6,
                "alpha={alpha}: {m_new} vs {expected}"
            );
        }
    }

    #[test]
    fn empirical_rebalance_rejects_alpha_below_one() {
        assert!(sqrt_curve().empirical_rebalance(0.5, 256.0).is_err());
    }

    #[test]
    fn flat_curve_signals_io_bounded() {
        let pts: Vec<DataPoint> = (4..=14)
            .map(|k| DataPoint::new((1u64 << k) as f64, 2.0))
            .collect();
        let curve = MeasuredCurve::new(&pts).unwrap();
        assert!(curve.tail_slope().abs() < 1e-9);
        assert!(matches!(
            curve.memory_for_ratio(4.0),
            Err(BalanceError::SolverFailure { .. })
        ));
    }

    #[test]
    fn log_curve_tail_slope_shrinks() {
        let pts: Vec<DataPoint> = (4..=20)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, m.log2())
            })
            .collect();
        let curve = MeasuredCurve::new(&pts).unwrap();
        // d(ln log2 m)/d(ln m) = 1/ln(m)·(1/log2(m))·... ≈ 0.075 at m = 2^20.
        assert!(curve.tail_slope() < 0.12);
        assert!(curve.tail_slope() > 0.0);
    }

    #[test]
    fn duplicates_are_averaged_and_junk_filtered() {
        let pts = [
            DataPoint::new(64.0, 4.0),
            DataPoint::new(64.0, 6.0),
            DataPoint::new(256.0, 10.0),
            DataPoint::new(-1.0, 3.0),
            DataPoint::new(128.0, f64::NAN),
        ];
        let curve = MeasuredCurve::new(&pts).unwrap();
        assert_eq!(curve.points().len(), 2);
        assert_eq!(curve.points()[0].ratio, 5.0);
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(MeasuredCurve::new(&[]).is_err());
        assert!(MeasuredCurve::new(&[DataPoint::new(4.0, 1.0)]).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let pts = [
            DataPoint::new(1024.0, 16.0),
            DataPoint::new(64.0, 4.0),
            DataPoint::new(256.0, 8.0),
        ];
        let curve = MeasuredCurve::new(&pts).unwrap();
        let ms: Vec<f64> = curve.points().iter().map(|p| p.memory).collect();
        assert_eq!(ms, vec![64.0, 256.0, 1024.0]);
    }
}
