//! Memory-hierarchy specifications: the balance law, per level.
//!
//! Kung states the balance condition for one PE/memory/I-O boundary, but
//! §5 of the paper (and essentially all of its successors) applies it *per
//! level* of a memory hierarchy: between every pair of adjacent levels there
//! is a boundary with its own traffic `IO_i`, its own capacity `M_i`, and
//! therefore its own balanced-memory point. A machine is balanced only when
//! every boundary is.
//!
//! [`HierarchySpec`] is the declarative description: an ordered list of
//! [`LevelSpec`]s, innermost (smallest, fastest) first, each carrying a
//! capacity, the bandwidth of the channel *below* it (toward the outside
//! world), and an optional access latency. Validation enforces the physical
//! shape — capacities strictly growing outward, positive bandwidths — so
//! every consumer (the `balance-machine` simulator, the hierarchical
//! roofline, the CLI) can assume a well-formed ladder.
//!
//! The numbering convention used across the workspace: **level 0** is the
//! PE's local memory; **boundary `i`** is the channel between level `i` and
//! level `i+1` (the last boundary faces the external world). A traffic
//! vector therefore has one entry per level.

use core::fmt;

use crate::error::BalanceError;
use crate::units::{Seconds, Words, WordsPerSec};

/// The maximum number of levels a hierarchy (and a traffic vector) may
/// have. Eight covers every real machine ladder (registers → L1 → L2 → L3
/// → HBM → DRAM → CXL → disk) while keeping traffic vectors inline and
/// `Copy`.
pub const MAX_MEMORY_LEVELS: usize = 8;

/// One level of a memory hierarchy: capacity, the bandwidth of the channel
/// below it, an access latency, and the device-realistic transfer knobs —
/// the line (block) size fetches into this level move at, and an optional
/// separate write-back bandwidth.
///
/// # Device taxonomy
///
/// The default (`line_words = 1`, no write bandwidth) is the paper's
/// word-granular read-priced channel, and every pre-refactor consumer
/// keeps its numbers bit for bit. The two knobs describe real devices:
///
/// * **SRAM/DRAM-class** levels move cache lines (8–16 words): set
///   [`LevelSpec::with_line_words`] and spatial locality starts to matter
///   — a blocked kernel's contiguous tiles amortize each fetched line,
///   where a strided naive trace wastes most of it.
/// * **NVRAM-class** levels read fast but write slowly (and wear):
///   [`LevelSpec::with_write_bandwidth`] prices the write-back stream on
///   its own, slower channel.
/// * **HDD/SSD-class** levels move large blocks (KB-scale `line_words`)
///   with strongly asymmetric sequential bandwidths — both knobs at once.
///
/// With a separate write bandwidth the two streams overlap (full-duplex
/// channels, elapsed I/O time is the max of the two); without one they
/// serialize on the shared channel (time prices the sum) — see
/// [`CostProfile::io_time_at`](crate::cost::CostProfile::io_time_at).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSpec {
    capacity: Words,
    bandwidth: WordsPerSec,
    latency: Seconds,
    line_words: u64,
    write_bandwidth: Option<WordsPerSec>,
}

impl LevelSpec {
    /// Creates a level with zero latency.
    ///
    /// # Errors
    ///
    /// [`BalanceError::ZeroMemory`] for a zero capacity,
    /// [`BalanceError::InvalidQuantity`] for a non-positive or non-finite
    /// bandwidth.
    pub fn new(capacity: Words, bandwidth: WordsPerSec) -> Result<Self, BalanceError> {
        if capacity.is_zero() {
            return Err(BalanceError::ZeroMemory);
        }
        if !bandwidth.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "level bandwidth",
                value: bandwidth.get(),
            });
        }
        Ok(LevelSpec {
            capacity,
            bandwidth,
            latency: Seconds::new(0.0),
            line_words: 1,
            write_bandwidth: None,
        })
    }

    /// The same level with an access latency attached.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for a negative or non-finite
    /// latency.
    pub fn with_latency(mut self, latency: Seconds) -> Result<Self, BalanceError> {
        if !latency.get().is_finite() || latency.get() < 0.0 {
            return Err(BalanceError::InvalidQuantity {
                what: "level latency",
                value: latency.get(),
            });
        }
        self.latency = latency;
        Ok(self)
    }

    /// The same level with a transfer-line size attached: fetches across
    /// this level's boundary move whole lines of `line_words` words
    /// (`line_words = 1` is the paper's word-granular model).
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for a zero or non-power-of-two
    /// line size (line-granular replay maps addresses with a shift, and a
    /// power-of-two keeps word capacities expressible in whole lines).
    pub fn with_line_words(mut self, line_words: u64) -> Result<Self, BalanceError> {
        if line_words == 0 || !line_words.is_power_of_two() {
            return Err(BalanceError::InvalidQuantity {
                what: "level line size (must be a power of two)",
                value: line_words as f64,
            });
        }
        self.line_words = line_words;
        Ok(self)
    }

    /// The same level with a separate write-back bandwidth: the read
    /// (fetch) stream keeps [`LevelSpec::bandwidth`], while write-backs
    /// drain at `write_bandwidth` on their own channel and the elapsed
    /// I/O time is the max of the two streams.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for a non-positive or non-finite
    /// bandwidth.
    pub fn with_write_bandwidth(
        mut self,
        write_bandwidth: WordsPerSec,
    ) -> Result<Self, BalanceError> {
        if !write_bandwidth.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "level write bandwidth",
                value: write_bandwidth.get(),
            });
        }
        self.write_bandwidth = Some(write_bandwidth);
        Ok(self)
    }

    /// Capacity `M_i`, in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.capacity
    }

    /// Bandwidth `IO_i` of the boundary below this level, in words/s.
    #[must_use]
    pub fn bandwidth(&self) -> WordsPerSec {
        self.bandwidth
    }

    /// Access latency of this level.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// Transfer-line size of this level's boundary, in words (1 = the
    /// paper's word-granular model).
    #[must_use]
    pub fn line_words(&self) -> u64 {
        self.line_words
    }

    /// The separate write-back bandwidth, when this level prices its two
    /// streams asymmetrically (`None` = writes share
    /// [`LevelSpec::bandwidth`]).
    #[must_use]
    pub fn write_bandwidth(&self) -> Option<WordsPerSec> {
        self.write_bandwidth
    }

    /// True when this level needs the device-realistic replay path:
    /// line-granular transfers or asymmetric write pricing.
    #[must_use]
    pub fn is_device_real(&self) -> bool {
        self.line_words > 1 || self.write_bandwidth.is_some()
    }

    /// Seconds to move one word across this level's boundary: the
    /// bandwidth term `1/IO_i` plus the per-word access latency.
    ///
    /// This is the *serial* latency model: the ladders simulated in this
    /// workspace transfer word-granularly, so each word pays the level's
    /// access latency in full (no pipelining). A zero latency recovers the
    /// pure-streaming model exactly.
    #[must_use]
    pub fn seconds_per_word(&self) -> Seconds {
        Seconds::new(1.0 / self.bandwidth.get() + self.latency.get())
    }

    /// The bandwidth this level actually sustains once its access latency
    /// is charged per word: `1 / (1/IO_i + latency_i)`, in words/s.
    ///
    /// Equal to [`LevelSpec::bandwidth`] when the latency is zero (bit for
    /// bit — no `1/(1/IO)` round trip, so every pre-latency consumer keeps
    /// its exact numbers); strictly smaller otherwise. Every time
    /// computation (elapsed time, timelines, the hierarchical roofline)
    /// consumes this, so a nonzero latency always shows up in the numbers —
    /// it is not a display-only field.
    #[must_use]
    pub fn effective_bandwidth(&self) -> WordsPerSec {
        if self.latency.get() == 0.0 {
            self.bandwidth
        } else {
            WordsPerSec::new(1.0 / self.seconds_per_word().get())
        }
    }
}

impl fmt::Display for LevelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.capacity, self.bandwidth)?;
        if self.latency.get() > 0.0 {
            write!(f, " (+{})", self.latency)?;
        }
        if self.line_words > 1 {
            write!(f, " [line {}]", self.line_words)?;
        }
        if let Some(wbw) = self.write_bandwidth {
            write!(f, " [wb {wbw}]")?;
        }
        Ok(())
    }
}

/// An ordered memory hierarchy, innermost level first.
///
/// # Examples
///
/// ```
/// use balance_core::hierarchy::{HierarchySpec, LevelSpec};
/// use balance_core::{Words, WordsPerSec};
///
/// // 1 K words of fast memory over 64 K words of slow memory.
/// let spec = HierarchySpec::new(vec![
///     LevelSpec::new(Words::new(1024), WordsPerSec::new(1.0e8))?,
///     LevelSpec::new(Words::new(65_536), WordsPerSec::new(1.0e7))?,
/// ])?;
/// assert_eq!(spec.depth(), 2);
/// assert_eq!(spec.local_capacity().get(), 1024);
///
/// // The one-level world every existing experiment runs in:
/// let flat = HierarchySpec::flat(Words::new(4096));
/// assert_eq!(flat.depth(), 1);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySpec {
    levels: Vec<LevelSpec>,
}

impl HierarchySpec {
    /// Creates a validated hierarchy.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidHierarchy`] when the level list is empty,
    /// deeper than [`MAX_MEMORY_LEVELS`], or its capacities do not grow
    /// strictly outward (each level must be larger than the one above it —
    /// a smaller outer level could never hold the inner one's working set).
    pub fn new(levels: Vec<LevelSpec>) -> Result<Self, BalanceError> {
        if levels.is_empty() {
            return Err(BalanceError::InvalidHierarchy {
                reason: "a hierarchy needs at least one level".into(),
            });
        }
        if levels.len() > MAX_MEMORY_LEVELS {
            return Err(BalanceError::InvalidHierarchy {
                reason: format!(
                    "{} levels exceed the supported maximum of {MAX_MEMORY_LEVELS}",
                    levels.len()
                ),
            });
        }
        for (i, pair) in levels.windows(2).enumerate() {
            if pair[1].capacity <= pair[0].capacity {
                return Err(BalanceError::InvalidHierarchy {
                    reason: format!(
                        "level {} capacity ({}) must exceed level {} capacity ({}): \
                         capacities grow outward",
                        i + 1,
                        pair[1].capacity,
                        i,
                        pair[0].capacity
                    ),
                });
            }
        }
        Ok(HierarchySpec { levels })
    }

    /// The trivial one-level hierarchy every pre-hierarchy experiment runs
    /// in: capacity `m`, unit bandwidth (counting simulators never consult
    /// it), zero latency.
    ///
    /// Unlike [`HierarchySpec::new`] this performs no validation: even a
    /// zero capacity passes through unchanged, so consumers that reject
    /// undersized memories themselves (kernels, via their `min_memory`)
    /// see exactly the value the caller supplied.
    #[must_use]
    pub fn flat(m: Words) -> Self {
        HierarchySpec {
            levels: vec![LevelSpec {
                capacity: m,
                bandwidth: WordsPerSec::new(1.0),
                latency: Seconds::new(0.0),
                line_words: 1,
                write_bandwidth: None,
            }],
        }
    }

    /// [`HierarchySpec::flat`] from a raw word count (the historical `m:
    /// usize` kernel parameter).
    #[must_use]
    pub fn flat_words(m: usize) -> Self {
        HierarchySpec::flat(Words::new(m as u64))
    }

    /// The levels, innermost first.
    #[must_use]
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Number of levels (= number of boundaries in a traffic vector).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The level at `index` (0 = innermost).
    ///
    /// # Panics
    ///
    /// Panics when `index ≥ depth()`.
    #[must_use]
    pub fn level(&self, index: usize) -> &LevelSpec {
        &self.levels[index]
    }

    /// Capacity of level 0, the PE's local memory `M_1`.
    #[must_use]
    pub fn local_capacity(&self) -> Words {
        self.levels[0].capacity
    }

    /// [`HierarchySpec::local_capacity`] as `usize` (the historical kernel
    /// `m` parameter), saturating on 32-bit targets.
    #[must_use]
    pub fn local_capacity_words(&self) -> usize {
        usize::try_from(self.levels[0].capacity.get()).unwrap_or(usize::MAX)
    }

    /// Sum of all level latencies — the cost of a word missing all the way
    /// down the ladder.
    #[must_use]
    pub fn total_latency(&self) -> Seconds {
        Seconds::new(self.levels.iter().map(|l| l.latency().get()).sum())
    }

    /// True when any level needs the device-realistic replay path
    /// (line-granular transfers or asymmetric write pricing) — the
    /// word-granular analytic fast paths must decline such ladders.
    #[must_use]
    pub fn is_device_real(&self) -> bool {
        self.levels.iter().any(LevelSpec::is_device_real)
    }
}

impl fmt::Display for HierarchySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, " / ")?;
            }
            write!(f, "L{}: {level}", i + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(cap: u64, bw: f64) -> LevelSpec {
        LevelSpec::new(Words::new(cap), WordsPerSec::new(bw)).unwrap()
    }

    #[test]
    fn valid_hierarchies_build() {
        let spec = HierarchySpec::new(vec![level(64, 1e8), level(4096, 1e7), level(65536, 1e6)])
            .unwrap();
        assert_eq!(spec.depth(), 3);
        assert_eq!(spec.local_capacity().get(), 64);
        assert_eq!(spec.local_capacity_words(), 64);
        assert_eq!(spec.level(2).capacity().get(), 65536);
        assert_eq!(spec.levels().len(), 3);
    }

    #[test]
    fn level_validation() {
        assert_eq!(
            LevelSpec::new(Words::ZERO, WordsPerSec::new(1.0)),
            Err(BalanceError::ZeroMemory)
        );
        assert!(matches!(
            LevelSpec::new(Words::new(4), WordsPerSec::new(0.0)),
            Err(BalanceError::InvalidQuantity { .. })
        ));
        assert!(matches!(
            LevelSpec::new(Words::new(4), WordsPerSec::new(f64::NAN)),
            Err(BalanceError::InvalidQuantity { .. })
        ));
        assert!(level(4, 1.0).with_latency(Seconds::new(-1.0)).is_err());
        let l = level(4, 1.0).with_latency(Seconds::new(0.25)).unwrap();
        assert_eq!(l.latency().get(), 0.25);
    }

    #[test]
    fn empty_and_oversized_hierarchies_rejected() {
        assert!(matches!(
            HierarchySpec::new(vec![]),
            Err(BalanceError::InvalidHierarchy { .. })
        ));
        let too_deep: Vec<LevelSpec> = (0..=MAX_MEMORY_LEVELS as u64)
            .map(|i| level(1 << (i + 2), 1.0))
            .collect();
        assert!(matches!(
            HierarchySpec::new(too_deep),
            Err(BalanceError::InvalidHierarchy { .. })
        ));
    }

    #[test]
    fn non_monotone_capacities_rejected() {
        let err = HierarchySpec::new(vec![level(1024, 1.0), level(512, 1.0)]).unwrap_err();
        match err {
            BalanceError::InvalidHierarchy { reason } => {
                assert!(reason.contains("grow outward"), "{reason}");
            }
            other => panic!("expected InvalidHierarchy, got {other:?}"),
        }
        // Equal capacities are just as impossible.
        assert!(HierarchySpec::new(vec![level(64, 1.0), level(64, 2.0)]).is_err());
    }

    #[test]
    fn flat_is_one_level_and_unvalidated() {
        let flat = HierarchySpec::flat_words(4096);
        assert_eq!(flat.depth(), 1);
        assert_eq!(flat.local_capacity().get(), 4096);
        // flat passes even a zero capacity through: kernels report their
        // own MemoryTooSmall with the caller's exact value.
        assert_eq!(HierarchySpec::flat(Words::ZERO).local_capacity().get(), 0);
    }

    #[test]
    fn latency_reduces_effective_bandwidth() {
        // Zero latency: effective bandwidth is the nominal bandwidth.
        let fast = level(64, 4.0);
        assert_eq!(fast.effective_bandwidth().get(), 4.0);
        assert_eq!(fast.seconds_per_word().get(), 0.25);
        // 0.25 s/word of latency on a 4 word/s channel: 0.5 s/word total,
        // i.e. the channel sustains only 2 words/s.
        let slow = level(64, 4.0).with_latency(Seconds::new(0.25)).unwrap();
        assert_eq!(slow.seconds_per_word().get(), 0.5);
        assert_eq!(slow.effective_bandwidth().get(), 2.0);
    }

    #[test]
    fn latency_accumulates() {
        let spec = HierarchySpec::new(vec![
            level(64, 1.0).with_latency(Seconds::new(0.5)).unwrap(),
            level(128, 1.0).with_latency(Seconds::new(1.5)).unwrap(),
        ])
        .unwrap();
        assert_eq!(spec.total_latency().get(), 2.0);
    }

    #[test]
    fn line_words_validation() {
        // Default is the word-granular model.
        let l = level(64, 1.0);
        assert_eq!(l.line_words(), 1);
        assert_eq!(l.write_bandwidth(), None);
        assert!(!l.is_device_real());
        // Powers of two pass; zero and non-powers are rejected.
        assert_eq!(level(64, 1.0).with_line_words(8).unwrap().line_words(), 8);
        assert!(matches!(
            level(64, 1.0).with_line_words(0),
            Err(BalanceError::InvalidQuantity { .. })
        ));
        assert!(matches!(
            level(64, 1.0).with_line_words(6),
            Err(BalanceError::InvalidQuantity { .. })
        ));
        // line_words = 1 explicitly is fine and stays word-granular.
        assert!(!level(64, 1.0).with_line_words(1).unwrap().is_device_real());
    }

    #[test]
    fn write_bandwidth_validation() {
        let l = level(64, 4.0)
            .with_write_bandwidth(WordsPerSec::new(1.0))
            .unwrap();
        assert_eq!(l.write_bandwidth().unwrap().get(), 1.0);
        assert!(l.is_device_real());
        assert!(matches!(
            level(64, 4.0).with_write_bandwidth(WordsPerSec::new(0.0)),
            Err(BalanceError::InvalidQuantity { .. })
        ));
        assert!(matches!(
            level(64, 4.0).with_write_bandwidth(WordsPerSec::new(f64::NAN)),
            Err(BalanceError::InvalidQuantity { .. })
        ));
    }

    #[test]
    fn device_real_ladders_are_flagged() {
        let word = HierarchySpec::new(vec![level(64, 2.0), level(128, 1.0)]).unwrap();
        assert!(!word.is_device_real());
        let lined = HierarchySpec::new(vec![
            level(64, 2.0),
            level(128, 1.0).with_line_words(16).unwrap(),
        ])
        .unwrap();
        assert!(lined.is_device_real());
    }

    #[test]
    fn display_shows_device_knobs() {
        let l = level(64, 2.0)
            .with_line_words(8)
            .unwrap()
            .with_write_bandwidth(WordsPerSec::new(0.5))
            .unwrap();
        let s = l.to_string();
        assert!(s.contains("[line 8]"), "{s}");
        assert!(s.contains("[wb 0.5 word/s]"), "{s}");
        // Word-granular levels keep the pre-refactor rendering exactly.
        assert_eq!(level(64, 2.0).to_string(), "64 words @ 2 word/s");
    }

    #[test]
    fn display_labels_levels() {
        let spec = HierarchySpec::new(vec![
            level(64, 2.0),
            level(128, 1.0).with_latency(Seconds::new(0.5)).unwrap(),
        ])
        .unwrap();
        let s = spec.to_string();
        assert!(s.contains("L1: 64 words @ 2 word/s"), "{s}");
        assert!(s.contains("L2: 128 words @ 1 word/s (+0.5 s)"), "{s}");
    }
}
