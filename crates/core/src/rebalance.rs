//! The rebalancing solver: the paper's central question, answered.
//!
//! > *Assume that a PE is balanced for a given computation. Now `C/IO` is
//! > increased by a factor of α. To rebalance the PE for the same computation
//! > (without increasing IO), by how much must `M` be increased?*
//!
//! [`rebalance`] answers it for any [`IntensityModel`]; [`RebalancePlan`]
//! packages the answer together with the law that produced it.

use core::fmt;

use crate::error::BalanceError;
use crate::growth::GrowthLaw;
use crate::intensity::IntensityModel;
use crate::pe::PeSpec;
use crate::units::Words;

/// The rebalance factor `α ≥ 1` by which `C/IO` increased.
///
/// A newtype so that α cannot be confused with intensities, balances, or
/// memory growth factors in call sites.
///
/// # Examples
///
/// ```
/// use balance_core::Alpha;
///
/// let a = Alpha::new(4.0)?;
/// assert_eq!(a.get(), 4.0);
/// assert!(Alpha::new(0.5).is_err());
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Alpha(f64);

impl Alpha {
    /// Validates and wraps a rebalance factor.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::AlphaBelowOne`] unless `value` is finite and
    /// at least 1.
    pub fn new(value: f64) -> Result<Self, BalanceError> {
        if value.is_finite() && value >= 1.0 {
            Ok(Alpha(value))
        } else {
            Err(BalanceError::AlphaBelowOne { value })
        }
    }

    /// The raw factor.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The α implied by two machine configurations: the ratio of their
    /// machine balances (new over old).
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError::AlphaBelowOne`] if the balance decreased
    /// (the paper's question assumes growth).
    pub fn between(old: &PeSpec, new: &PeSpec) -> Result<Self, BalanceError> {
        Alpha::new(new.machine_balance() / old.machine_balance())
    }
}

impl fmt::Display for Alpha {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α = {}", self.0)
    }
}

/// The answer to the rebalancing question for one computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePlan {
    /// The rebalance factor applied.
    pub alpha: f64,
    /// The memory before the bandwidth change.
    pub old_memory: Words,
    /// The minimum memory that restores balance.
    pub new_memory: Words,
    /// The growth law that produced `new_memory`.
    pub law: GrowthLaw,
}

impl RebalancePlan {
    /// The growth factor `M_new / M_old`.
    #[must_use]
    pub fn growth_factor(&self) -> f64 {
        self.new_memory.as_f64() / self.old_memory.as_f64()
    }
}

impl fmt::Display for RebalancePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "α = {:.3}: M {} → {} ({}, growth ×{:.3})",
            self.alpha,
            self.old_memory,
            self.new_memory,
            self.law,
            self.growth_factor()
        )
    }
}

/// Computes the minimum new memory size that rebalances a PE whose `C/IO`
/// rose by `alpha`, for a computation with intensity model `model`.
///
/// This is equation (1) of the paper applied to the model: the new memory
/// must satisfy `r(M_new) = α · r(M_old)`.
///
/// # Errors
///
/// * [`BalanceError::IoBounded`] when the computation's intensity is
///   constant in `M` (rebalancing impossible, §3.6);
/// * [`BalanceError::ZeroMemory`] for degenerate old sizes;
/// * [`BalanceError::MemoryOverflow`] when the answer exceeds `u64` (the
///   paper's "unrealistically large" regime for FFT/sorting).
///
/// # Examples
///
/// ```
/// use balance_core::{rebalance, Alpha, IntensityModel, Words};
///
/// // Matrix multiplication, α = 2 ⇒ memory must quadruple (§3.1).
/// let plan = rebalance(&IntensityModel::sqrt_m(1.0), Alpha::new(2.0)?, Words::new(256))?;
/// assert_eq!(plan.new_memory.get(), 1024);
///
/// // FFT, α = 2 ⇒ memory must square (§3.4).
/// let plan = rebalance(&IntensityModel::log2_m(1.0), Alpha::new(2.0)?, Words::new(1024))?;
/// assert_eq!(plan.new_memory.get(), 1024 * 1024);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
pub fn rebalance(
    model: &IntensityModel,
    alpha: Alpha,
    old_memory: Words,
) -> Result<RebalancePlan, BalanceError> {
    let law = model.growth_law();
    let new_memory = law.new_memory(alpha.get(), old_memory)?;
    Ok(RebalancePlan {
        alpha: alpha.get(),
        old_memory,
        new_memory,
        law,
    })
}

/// Computes `M_new` directly from the model by inverting the target
/// intensity, rather than through the closed-form growth law.
///
/// Useful as a cross-check: for exact models the two answers agree (up to
/// rounding); for fitted models with intercepts they may differ slightly.
///
/// # Errors
///
/// As [`rebalance`].
pub fn rebalance_by_inversion(
    model: &IntensityModel,
    alpha: Alpha,
    old_memory: Words,
) -> Result<RebalancePlan, BalanceError> {
    if old_memory.is_zero() {
        return Err(BalanceError::ZeroMemory);
    }
    let r_old = model.eval_words(old_memory);
    if r_old <= 0.0 {
        return Err(BalanceError::ZeroMemory);
    }
    let m_new = model.inverse(alpha.get() * r_old)?;
    if m_new >= u64::MAX as f64 {
        return Err(BalanceError::MemoryOverflow { requested: m_new });
    }
    Ok(RebalancePlan {
        alpha: alpha.get(),
        old_memory,
        new_memory: Words::from_f64_rounded(m_new),
        law: model.growth_law(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{OpsPerSec, WordsPerSec};

    #[test]
    fn alpha_validation() {
        assert!(Alpha::new(1.0).is_ok());
        assert!(Alpha::new(7.5).is_ok());
        assert!(Alpha::new(0.99).is_err());
        assert!(Alpha::new(f64::INFINITY).is_err());
        assert_eq!(Alpha::new(2.0).unwrap().to_string(), "α = 2");
    }

    #[test]
    fn alpha_between_specs() {
        let old = PeSpec::new(OpsPerSec::new(10.0), WordsPerSec::new(10.0), Words::new(4)).unwrap();
        let new = PeSpec::new(OpsPerSec::new(40.0), WordsPerSec::new(10.0), Words::new(4)).unwrap();
        assert_eq!(Alpha::between(&old, &new).unwrap().get(), 4.0);
        assert!(Alpha::between(&new, &old).is_err());
    }

    #[test]
    fn paper_summary_table_via_rebalance() {
        let m0 = Words::new(4096);
        let a = Alpha::new(2.0).unwrap();

        // Matrix computations: α² = 4×.
        let plan = rebalance(&IntensityModel::sqrt_m(0.5), a, m0).unwrap();
        assert_eq!(plan.new_memory.get(), 4 * 4096);

        // 3-D grid: α³ = 8×.
        let plan = rebalance(&IntensityModel::root_m(3, 1.0), a, m0).unwrap();
        assert_eq!(plan.new_memory.get(), 8 * 4096);

        // FFT: M² (α = 2).
        let plan = rebalance(&IntensityModel::log2_m(1.0), a, m0).unwrap();
        assert_eq!(plan.new_memory.get(), 4096 * 4096);

        // I/O-bounded: impossible.
        assert_eq!(
            rebalance(&IntensityModel::constant(2.0), a, m0),
            Err(BalanceError::IoBounded)
        );
    }

    #[test]
    fn inversion_agrees_with_growth_law() {
        let m0 = Words::new(900);
        let a = Alpha::new(3.0).unwrap();
        for model in [
            IntensityModel::sqrt_m(0.7),
            IntensityModel::root_m(3, 1.3),
            IntensityModel::log2_m(0.9),
        ] {
            let by_law = rebalance(&model, a, m0).unwrap();
            let by_inv = rebalance_by_inversion(&model, a, m0).unwrap();
            let rel = (by_law.new_memory.as_f64() - by_inv.new_memory.as_f64()).abs()
                / by_law.new_memory.as_f64();
            assert!(rel < 1e-9, "{model}: law {by_law}, inv {by_inv}");
        }
    }

    #[test]
    fn inversion_rejects_degenerate_inputs() {
        let a = Alpha::new(2.0).unwrap();
        assert!(rebalance_by_inversion(&IntensityModel::sqrt_m(1.0), a, Words::ZERO).is_err());
        // log2(1) = 0 intensity cannot be scaled.
        assert!(rebalance_by_inversion(&IntensityModel::log2_m(1.0), a, Words::new(1)).is_err());
        assert_eq!(
            rebalance_by_inversion(&IntensityModel::constant(1.0), a, Words::new(64)),
            Err(BalanceError::IoBounded)
        );
    }

    #[test]
    fn plan_reports_growth_factor_and_displays() {
        let plan = rebalance(
            &IntensityModel::sqrt_m(1.0),
            Alpha::new(2.0).unwrap(),
            Words::new(100),
        )
        .unwrap();
        assert_eq!(plan.growth_factor(), 4.0);
        let text = plan.to_string();
        assert!(text.contains("100 words"));
        assert!(text.contains("400 words"));
        assert!(text.contains("×4"));
    }
}
