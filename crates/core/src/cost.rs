//! Computation cost profiles and the balance predicate.
//!
//! For a given computation, `C_comp` is the total number of operations the PE
//! must deliver and `C_io` the total number of words it must exchange with
//! the outside world. Running on a PE with bandwidths `(C, IO)` the computing
//! time is `C_comp / C` and the I/O time is `C_io / IO`; the PE is *balanced*
//! when the two are equal (paper, Section 2, equation (1)).
//!
//! On a memory hierarchy the scalar `C_io` generalizes to a **traffic
//! vector** ([`LevelTraffic`]): one word count per boundary, innermost
//! first, with the balance law holding per level (`r_i = C_comp / IO_i`
//! against the level's bandwidth). The scalar accessors ([`CostProfile::
//! io_words`], [`CostProfile::intensity`]) read boundary 0 — the PE port —
//! so every one-level consumer keeps its pre-hierarchy meaning bit for bit.

use core::fmt;

use crate::hierarchy::{HierarchySpec, MAX_MEMORY_LEVELS};
use crate::pe::PeSpec;
use crate::units::{OpsPerSec, Seconds, Words};

/// Per-boundary I/O traffic, innermost boundary first — a **dual ledger**
/// of read (fetch) words and write-back words per boundary.
///
/// Stored inline (up to [`MAX_MEMORY_LEVELS`] entries) so cost profiles
/// stay `Copy` and hashable. Entry `i` is the number of words that crossed
/// the boundary between level `i` and level `i+1` (the last entry faces the
/// external world).
///
/// The historical scalar view survives as the **sum** of the two streams:
/// [`LevelTraffic::get`], [`LevelTraffic::as_slice`], and `Display` all
/// report `read + writeback` words, so every word-granular consumer (where
/// write-backs are always zero) keeps its numbers bit for bit. The split
/// is read back with [`LevelTraffic::read_at`] /
/// [`LevelTraffic::writeback_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LevelTraffic {
    len: u8,
    /// Total words per boundary: read (fetch) + write-back.
    words: [u64; MAX_MEMORY_LEVELS],
    /// The write-back share of `words`, per boundary (all-zero in the
    /// word-granular read-priced model).
    writebacks: [u64; MAX_MEMORY_LEVELS],
}

impl LevelTraffic {
    /// A one-boundary vector — the flat, pre-hierarchy world.
    #[must_use]
    pub const fn single(io_words: u64) -> Self {
        let mut words = [0u64; MAX_MEMORY_LEVELS];
        words[0] = io_words;
        LevelTraffic {
            len: 1,
            words,
            writebacks: [0u64; MAX_MEMORY_LEVELS],
        }
    }

    /// A one-boundary dual ledger: `reads` fetch words plus `writebacks`
    /// write-back words (the scalar view reports their sum).
    #[must_use]
    pub const fn single_rw(reads: u64, writebacks: u64) -> Self {
        let mut words = [0u64; MAX_MEMORY_LEVELS];
        words[0] = reads + writebacks;
        let mut wb = [0u64; MAX_MEMORY_LEVELS];
        wb[0] = writebacks;
        LevelTraffic {
            len: 1,
            words,
            writebacks: wb,
        }
    }

    /// A traffic vector from per-boundary word counts.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_MEMORY_LEVELS`] boundaries are supplied.
    #[must_use]
    pub fn from_slice(traffic: &[u64]) -> Self {
        assert!(
            traffic.len() <= MAX_MEMORY_LEVELS,
            "{} boundaries exceed the supported maximum of {MAX_MEMORY_LEVELS}",
            traffic.len()
        );
        let mut words = [0u64; MAX_MEMORY_LEVELS];
        words[..traffic.len()].copy_from_slice(traffic);
        LevelTraffic {
            len: traffic.len() as u8,
            words,
            writebacks: [0u64; MAX_MEMORY_LEVELS],
        }
    }

    /// A dual-ledger traffic vector from per-boundary read (fetch) and
    /// write-back word counts. The scalar view ([`LevelTraffic::get`],
    /// [`LevelTraffic::as_slice`]) reports `read + writeback` per boundary.
    ///
    /// # Panics
    ///
    /// Panics when the two slices differ in length or exceed
    /// [`MAX_MEMORY_LEVELS`] boundaries.
    #[must_use]
    pub fn from_reads_and_writebacks(reads: &[u64], writebacks: &[u64]) -> Self {
        assert_eq!(
            reads.len(),
            writebacks.len(),
            "read and write-back ledgers must cover the same boundaries"
        );
        let mut t = LevelTraffic::from_slice(reads);
        for (i, &wb) in writebacks.iter().enumerate() {
            t.words[i] += wb;
            t.writebacks[i] = wb;
        }
        t
    }

    /// Number of recorded boundaries.
    ///
    /// Clamped to [`MAX_MEMORY_LEVELS`]: the constructors never exceed
    /// it, but a value rebuilt from external bytes could carry an
    /// oversized `len`, and every slice accessor routes through here —
    /// corrupt input degrades to a truncated vector instead of a panic.
    #[must_use]
    pub const fn len(&self) -> usize {
        if (self.len as usize) < MAX_MEMORY_LEVELS {
            self.len as usize
        } else {
            MAX_MEMORY_LEVELS
        }
    }

    /// True when no boundary has been recorded.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Traffic at boundary `level`, or `None` beyond the recorded depth.
    #[must_use]
    pub const fn get(&self, level: usize) -> Option<u64> {
        if level < self.len() {
            Some(self.words[level])
        } else {
            None
        }
    }

    /// Read (fetch) words at boundary `level` — the total minus the
    /// write-back share — or `None` beyond the recorded depth.
    #[must_use]
    pub const fn read_at(&self, level: usize) -> Option<u64> {
        if level < self.len() {
            Some(self.words[level] - self.writebacks[level])
        } else {
            None
        }
    }

    /// Write-back words at boundary `level` (zero in the word-granular
    /// read-priced model), or `None` beyond the recorded depth.
    #[must_use]
    pub const fn writeback_at(&self, level: usize) -> Option<u64> {
        if level < self.len() {
            Some(self.writebacks[level])
        } else {
            None
        }
    }

    /// True when any boundary recorded write-back traffic.
    #[must_use]
    pub fn has_writebacks(&self) -> bool {
        self.writebacks[..self.len()].iter().any(|&w| w > 0)
    }

    /// The recorded boundaries as a slice (total words: read +
    /// write-back — the historical scalar view).
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.words[..self.len()]
    }

    /// Component-wise sum; the result spans the deeper of the two vectors,
    /// treating missing boundaries as zero traffic.
    #[must_use]
    pub const fn combined(&self, other: &LevelTraffic) -> LevelTraffic {
        let len = if self.len() > other.len() {
            self.len()
        } else {
            other.len()
        };
        let mut words = [0u64; MAX_MEMORY_LEVELS];
        let mut writebacks = [0u64; MAX_MEMORY_LEVELS];
        let mut i = 0;
        while i < len {
            words[i] = self.words[i] + other.words[i];
            writebacks[i] = self.writebacks[i] + other.writebacks[i];
            i += 1;
        }
        LevelTraffic {
            len: len as u8,
            words,
            writebacks,
        }
    }

    /// True when traffic never grows with depth — a word can only reach
    /// level `i+1` by missing at level `i` (inclusive accounting).
    #[must_use]
    pub fn is_monotone_non_increasing(&self) -> bool {
        self.as_slice().windows(2).all(|w| w[1] <= w[0])
    }
}

impl fmt::Display for LevelTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            // All-read boundaries keep the pre-refactor rendering; dual
            // ledgers annotate the write-back share ("10+4w" = 10 read
            // words plus 4 write-back words, 14 total on the scalar view).
            let wb = self.writebacks[i];
            if wb == 0 {
                write!(f, "{w}")?;
            } else {
                write!(f, "{}+{}w", w - wb, wb)?;
            }
        }
        write!(f, "]")
    }
}

/// Total operation and I/O-word counts for one computation.
///
/// # Examples
///
/// ```
/// use balance_core::CostProfile;
///
/// // Blocked 512x512 matmul with b=32 tiles: 2N^3 ops, ~2N^3/b + N^2 words.
/// let cost = CostProfile::new(2 * 512u64.pow(3), 2 * 512u64.pow(3) / 32 + 512 * 512);
/// assert!((cost.intensity() - 30.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostProfile {
    comp_ops: u64,
    io: LevelTraffic,
}

/// The empty one-level profile, equal to `CostProfile::new(0, 0)` — every
/// profile, including the default, has at least one boundary.
impl Default for CostProfile {
    fn default() -> Self {
        CostProfile::new(0, 0)
    }
}

impl CostProfile {
    /// Creates a one-level cost profile from raw counts (the historical
    /// constructor; every pre-hierarchy call site keeps its meaning).
    #[must_use]
    pub const fn new(comp_ops: u64, io_words: u64) -> Self {
        CostProfile {
            comp_ops,
            io: LevelTraffic::single(io_words),
        }
    }

    /// Creates a cost profile with per-boundary traffic, innermost first.
    ///
    /// An empty slice is normalized to one zero-traffic boundary, so every
    /// profile has at least one level and `with_levels(ops, &[])` equals
    /// `new(ops, 0)` (both fully-resident computations).
    ///
    /// # Panics
    ///
    /// As [`LevelTraffic::from_slice`]: more than
    /// [`MAX_MEMORY_LEVELS`] boundaries panic.
    #[must_use]
    pub fn with_levels(comp_ops: u64, traffic: &[u64]) -> Self {
        let io = if traffic.is_empty() {
            LevelTraffic::single(0)
        } else {
            LevelTraffic::from_slice(traffic)
        };
        CostProfile { comp_ops, io }
    }

    /// Creates a cost profile with per-boundary dual ledgers: read (fetch)
    /// and write-back word counts, innermost first. The scalar accessors
    /// report their sum per boundary.
    ///
    /// Empty slices normalize to one zero-traffic boundary, as
    /// [`CostProfile::with_levels`] does.
    ///
    /// # Panics
    ///
    /// As [`LevelTraffic::from_reads_and_writebacks`]: mismatched slice
    /// lengths or more than [`MAX_MEMORY_LEVELS`] boundaries panic.
    #[must_use]
    pub fn with_dual_levels(comp_ops: u64, reads: &[u64], writebacks: &[u64]) -> Self {
        let io = if reads.is_empty() && writebacks.is_empty() {
            LevelTraffic::single(0)
        } else {
            LevelTraffic::from_reads_and_writebacks(reads, writebacks)
        };
        CostProfile { comp_ops, io }
    }

    /// Creates a cost profile around an already-built traffic vector.
    #[must_use]
    pub const fn with_traffic(comp_ops: u64, io: LevelTraffic) -> Self {
        CostProfile { comp_ops, io }
    }

    /// Total operations `C_comp`.
    #[must_use]
    pub const fn comp_ops(&self) -> u64 {
        self.comp_ops
    }

    /// I/O traffic `C_io` at the PE port (boundary 0), in words.
    ///
    /// On a one-level profile this is the only boundary — the historical
    /// scalar. Deeper boundaries are read with [`CostProfile::io_at`].
    #[must_use]
    pub const fn io_words(&self) -> u64 {
        match self.io.get(0) {
            Some(w) => w,
            None => 0,
        }
    }

    /// Traffic at boundary `level` (0 = PE port, last = external world),
    /// or `None` beyond the recorded depth. The total of both streams:
    /// read (fetch) + write-back words.
    #[must_use]
    pub const fn io_at(&self, level: usize) -> Option<u64> {
        self.io.get(level)
    }

    /// Read (fetch) words at boundary `level`, or `None` beyond the
    /// recorded depth.
    #[must_use]
    pub const fn read_at(&self, level: usize) -> Option<u64> {
        self.io.read_at(level)
    }

    /// Write-back words at boundary `level`, or `None` beyond the
    /// recorded depth.
    #[must_use]
    pub const fn writeback_at(&self, level: usize) -> Option<u64> {
        self.io.writeback_at(level)
    }

    /// Number of recorded boundaries (1 for every flat profile).
    #[must_use]
    pub const fn level_count(&self) -> usize {
        self.io.len()
    }

    /// The whole traffic vector.
    #[must_use]
    pub const fn traffic(&self) -> LevelTraffic {
        self.io
    }

    /// The operational intensity `C_comp / C_io` at the PE port, in
    /// operations per word.
    ///
    /// Returns `f64::INFINITY` when the computation performs no I/O (a fully
    /// resident computation) and `0.0` when it performs no operations.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        self.intensity_at(0).unwrap_or(0.0)
    }

    /// The per-level intensity `r_i = C_comp / IO_i` at boundary `level`,
    /// or `None` beyond the recorded depth.
    ///
    /// Zero traffic at a boundary yields `f64::INFINITY` for a computation
    /// with operations (fully resident above that boundary) and `0.0` for
    /// an empty computation.
    #[must_use]
    pub fn intensity_at(&self, level: usize) -> Option<f64> {
        let io = self.io.get(level)?;
        Some(if io == 0 {
            if self.comp_ops == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.comp_ops as f64 / io as f64
        })
    }

    /// Component-wise sum of two profiles (e.g. phases of one computation).
    /// Traffic vectors add per boundary, spanning the deeper of the two.
    #[must_use]
    pub const fn combined(&self, other: &CostProfile) -> CostProfile {
        CostProfile {
            comp_ops: self.comp_ops + other.comp_ops,
            io: self.io.combined(&other.io),
        }
    }

    /// Time to execute the operations on a PE with compute bandwidth `C`.
    #[must_use]
    pub fn compute_time(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.comp_ops as f64 / pe.comp_bw().get())
    }

    /// Time to move the words on a PE with I/O bandwidth `IO` (boundary 0).
    #[must_use]
    pub fn io_time(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.io_words() as f64 / pe.io_bw().get())
    }

    /// Time to move the traffic at boundary `level` of `spec`: the level's
    /// bandwidth term plus its per-word access latency
    /// (`io_i · (1/IO_i + latency_i)`, see [`LevelSpec::seconds_per_word`]).
    ///
    /// When the level prices its write-back stream on a separate channel
    /// ([`LevelSpec::write_bandwidth`] is `Some`), the two streams overlap
    /// (full duplex) and the boundary's time is the **max** of the read
    /// channel's time and the write channel's time, each charging its own
    /// words at its own bandwidth (the per-word access latency applies on
    /// both). Without a separate write bandwidth the streams serialize on
    /// the shared channel: the total (read + write-back) words are priced
    /// at the one bandwidth, which at zero write-back traffic is exactly
    /// the historical word-granular formula, bit for bit.
    ///
    /// Returns `None` beyond the recorded traffic depth. Boundaries of
    /// `spec` deeper than the recorded traffic are simply not consulted
    /// (they saw no traffic); traffic deeper than `spec` is a caller error
    /// and also yields `None`.
    ///
    /// [`LevelSpec::seconds_per_word`]: crate::hierarchy::LevelSpec::seconds_per_word
    /// [`LevelSpec::write_bandwidth`]: crate::hierarchy::LevelSpec::write_bandwidth
    #[must_use]
    pub fn io_time_at(&self, spec: &HierarchySpec, level: usize) -> Option<Seconds> {
        if level >= spec.depth() {
            return None;
        }
        let total = self.io.get(level)? as f64;
        let l = spec.level(level);
        match l.write_bandwidth() {
            // Shared channel: price the sum. Sum form rather than
            // io·seconds_per_word: at zero latency this is exactly the
            // historical io/IO_i, bit for bit.
            None => Some(Seconds::new(
                total / l.bandwidth().get() + total * l.latency().get(),
            )),
            // Split channels: reads and write-backs overlap; the boundary
            // is done when the slower stream drains.
            Some(wbw) => {
                let wb = self.io.writeback_at(level).unwrap_or(0) as f64;
                let rd = total - wb;
                let t_read = rd / l.bandwidth().get() + rd * l.latency().get();
                let t_write = wb / wbw.get() + wb * l.latency().get();
                Some(Seconds::new(t_read.max(t_write)))
            }
        }
    }

    /// The slowest boundary's I/O time on `spec` — the I/O subsystem is
    /// done only when every level's channel is.
    ///
    /// This is where a level's latency enters elapsed-time accounting:
    /// each boundary's time is `io_i/IO_i + io_i·latency_i`, so a
    /// nonzero-latency level can become the binding channel even when its
    /// nominal bandwidth would clear the traffic comfortably.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the profile records no traffic deeper than
    /// `spec` has levels — a mismatched spec (e.g. a flat spec for a
    /// hierarchy run) would otherwise silently drop the deeper
    /// boundaries' time. A *shallower* profile is fine: the spec's extra
    /// levels simply saw no traffic.
    #[must_use]
    pub fn io_time_on(&self, spec: &HierarchySpec) -> Seconds {
        debug_assert!(
            self.level_count() <= spec.depth(),
            "profile records {} boundaries but the spec has only {} levels",
            self.level_count(),
            spec.depth()
        );
        let depth = self.level_count().min(spec.depth());
        Seconds::new(
            (0..depth)
                .filter_map(|i| self.io_time_at(spec, i))
                .map(Seconds::get)
                .fold(0.0, f64::max),
        )
    }

    /// Elapsed time on a machine with peak compute `peak` over the memory
    /// system `spec`, with compute and I/O perfectly overlapped:
    /// `max(C_comp/peak, max_i io_time_at(i))`.
    ///
    /// The hierarchy generalization of [`CostProfile::elapsed`] — and the
    /// per-level latency knob's consumer: two specs differing only in a
    /// level's latency yield different elapsed times whenever that level
    /// carried traffic.
    #[must_use]
    pub fn elapsed_on(&self, peak: OpsPerSec, spec: &HierarchySpec) -> Seconds {
        let tc = self.comp_ops as f64 / peak.get();
        Seconds::new(tc.max(self.io_time_on(spec).get()))
    }

    /// Classifies the execution on `pe` (compute and I/O fully overlapped).
    ///
    /// The PE is [`BalanceState::Balanced`] when the two times agree to
    /// within `tolerance` (a relative tolerance, e.g. `0.05` for ±5 %).
    #[must_use]
    pub fn balance_state(&self, pe: &PeSpec, tolerance: f64) -> BalanceState {
        BalanceState::from_times(self.compute_time(pe), self.io_time(pe), tolerance)
    }

    /// Elapsed time assuming perfect overlap of compute and I/O: the maximum
    /// of the two subsystem times.
    #[must_use]
    pub fn elapsed(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.compute_time(pe).get().max(self.io_time(pe).get()))
    }
}

impl fmt::Display for CostProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C_comp = {} ops, C_io = {} words (intensity {:.3} op/word)",
            self.comp_ops,
            self.io_words(),
            self.intensity()
        )?;
        if self.level_count() > 1 {
            write!(f, " over {} boundaries {}", self.level_count(), self.io)?;
        }
        Ok(())
    }
}

/// Which subsystem limits the execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BalanceState {
    /// Compute time equals I/O time (within tolerance): the design point the
    /// paper is after.
    Balanced,
    /// I/O time dominates; the compute units idle for `idle_fraction` of the
    /// run. This is the "imbalanced, has to wait for I/O" situation that
    /// enlarging `M` is meant to fix.
    IoLimited {
        /// Fraction of the elapsed time the compute subsystem is idle.
        idle_fraction: f64,
    },
    /// Compute time dominates; the I/O port idles for `idle_fraction`.
    ComputeLimited {
        /// Fraction of the elapsed time the I/O subsystem is idle.
        idle_fraction: f64,
    },
}

impl BalanceState {
    /// Classifies a pair of subsystem times: balanced when they agree to
    /// within the relative `tolerance`, otherwise the slower subsystem
    /// limits and the other idles for the reported fraction of the run.
    ///
    /// The single source of the classifier semantics — used by
    /// [`CostProfile::balance_state`] and by the hierarchy/parallel
    /// timeline builders, so the tolerance convention cannot drift.
    #[must_use]
    pub fn from_times(compute_time: Seconds, io_time: Seconds, tolerance: f64) -> BalanceState {
        let (tc, tio) = (compute_time.get(), io_time.get());
        let max = tc.max(tio);
        if max == 0.0 || (tc - tio).abs() <= tolerance * max {
            BalanceState::Balanced
        } else if tio > tc {
            // The PE waits for I/O: the compute subsystem is over-designed.
            BalanceState::IoLimited {
                idle_fraction: (tio - tc) / tio,
            }
        } else {
            BalanceState::ComputeLimited {
                idle_fraction: (tc - tio) / tc,
            }
        }
    }

    /// True for [`BalanceState::Balanced`].
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        matches!(self, BalanceState::Balanced)
    }
}

impl fmt::Display for BalanceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceState::Balanced => write!(f, "balanced"),
            BalanceState::IoLimited { idle_fraction } => {
                write!(
                    f,
                    "I/O-limited (compute idle {:.1}%)",
                    idle_fraction * 100.0
                )
            }
            BalanceState::ComputeLimited { idle_fraction } => {
                write!(
                    f,
                    "compute-limited (I/O idle {:.1}%)",
                    idle_fraction * 100.0
                )
            }
        }
    }
}

/// The result of executing a computation on a concrete PE: the measured cost
/// plus the memory actually used.
///
/// Produced by the `balance-machine` simulator and by analytic models alike;
/// keeping it here lets every crate in the workspace speak the same type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Execution {
    /// Measured operation and word counts.
    pub cost: CostProfile,
    /// Peak local-memory footprint during the run.
    pub peak_memory: Words,
}

impl Execution {
    /// Creates an execution record.
    #[must_use]
    pub const fn new(cost: CostProfile, peak_memory: Words) -> Self {
        Execution { cost, peak_memory }
    }

    /// The measured operational intensity at the PE port.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        self.cost.intensity()
    }

    /// The measured per-level intensity `r_i` at boundary `level`.
    #[must_use]
    pub fn intensity_at(&self, level: usize) -> Option<f64> {
        self.cost.intensity_at(level)
    }

    /// Traffic at boundary `level`, in words.
    #[must_use]
    pub fn io_at(&self, level: usize) -> Option<u64> {
        self.cost.io_at(level)
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} using peak {}", self.cost, self.peak_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{OpsPerSec, WordsPerSec};

    fn pe(c: f64, io: f64) -> PeSpec {
        PeSpec::new(OpsPerSec::new(c), WordsPerSec::new(io), Words::new(1024)).unwrap()
    }

    #[test]
    fn intensity_basics() {
        assert_eq!(CostProfile::new(100, 50).intensity(), 2.0);
        assert_eq!(CostProfile::new(0, 50).intensity(), 0.0);
        assert_eq!(CostProfile::new(5, 0).intensity(), f64::INFINITY);
        assert_eq!(CostProfile::new(0, 0).intensity(), 0.0);
    }

    #[test]
    fn times_follow_bandwidths() {
        let cost = CostProfile::new(1000, 100);
        let spec = pe(100.0, 10.0);
        assert_eq!(cost.compute_time(&spec).get(), 10.0);
        assert_eq!(cost.io_time(&spec).get(), 10.0);
        assert_eq!(cost.elapsed(&spec).get(), 10.0);
    }

    #[test]
    fn balance_condition_matches_paper_equation_1() {
        // Balanced iff C_comp / C == C_io / IO, i.e. C/IO == C_comp/C_io.
        let cost = CostProfile::new(1000, 100); // intensity 10
        assert!(cost.balance_state(&pe(100.0, 10.0), 1e-9).is_balanced());
        // Raise C 4x: now compute takes 2.5, io takes 10 -> I/O-limited.
        match cost.balance_state(&pe(400.0, 10.0), 1e-9) {
            BalanceState::IoLimited { idle_fraction } => {
                assert!((idle_fraction - 0.75).abs() < 1e-12);
            }
            other => panic!("expected IoLimited, got {other:?}"),
        }
        // Lower C 4x: compute-limited.
        match cost.balance_state(&pe(25.0, 10.0), 1e-9) {
            BalanceState::ComputeLimited { idle_fraction } => {
                assert!((idle_fraction - 0.75).abs() < 1e-12);
            }
            other => panic!("expected ComputeLimited, got {other:?}"),
        }
    }

    #[test]
    fn tolerance_widens_balanced_band() {
        let cost = CostProfile::new(1050, 100); // 5% off at C/IO = 10
        let spec = pe(100.0, 10.0);
        assert!(!cost.balance_state(&spec, 0.01).is_balanced());
        assert!(cost.balance_state(&spec, 0.10).is_balanced());
    }

    #[test]
    fn zero_cost_is_trivially_balanced() {
        let cost = CostProfile::new(0, 0);
        assert!(cost.balance_state(&pe(1.0, 1.0), 0.0).is_balanced());
    }

    #[test]
    fn combined_sums_componentwise() {
        let a = CostProfile::new(10, 4);
        let b = CostProfile::new(5, 6);
        let c = a.combined(&b);
        assert_eq!(c.comp_ops(), 15);
        assert_eq!(c.io_words(), 10);
    }

    #[test]
    fn leveled_profiles_expose_per_boundary_traffic() {
        let cost = CostProfile::with_levels(1000, &[100, 40, 10]);
        assert_eq!(cost.level_count(), 3);
        assert_eq!(cost.io_words(), 100, "scalar C_io reads the PE port");
        assert_eq!(cost.io_at(0), Some(100));
        assert_eq!(cost.io_at(2), Some(10));
        assert_eq!(cost.io_at(3), None);
        assert_eq!(cost.intensity(), 10.0);
        assert_eq!(cost.intensity_at(1), Some(25.0));
        assert_eq!(cost.intensity_at(2), Some(100.0));
        assert_eq!(cost.intensity_at(5), None);
        assert!(cost.traffic().is_monotone_non_increasing());
        assert!(!CostProfile::with_levels(1, &[3, 9])
            .traffic()
            .is_monotone_non_increasing());
    }

    #[test]
    fn flat_profile_is_one_level() {
        let cost = CostProfile::new(100, 50);
        assert_eq!(cost.level_count(), 1);
        assert_eq!(cost.io_at(0), Some(50));
        assert_eq!(cost.io_at(1), None);
        assert_eq!(cost, CostProfile::with_levels(100, &[50]));
    }

    #[test]
    fn empty_traffic_normalizes_to_one_zero_boundary() {
        let cost = CostProfile::with_levels(100, &[]);
        assert_eq!(cost, CostProfile::new(100, 0));
        assert_eq!(cost.level_count(), 1);
        assert_eq!(cost.intensity(), f64::INFINITY);
        // The default profile keeps the at-least-one-boundary invariant
        // and its historical equality with new(0, 0).
        assert_eq!(CostProfile::default(), CostProfile::new(0, 0));
        assert_eq!(CostProfile::default().io_at(0), Some(0));
    }

    #[test]
    fn combined_pads_shallower_vectors_with_zero() {
        let flat = CostProfile::new(10, 4);
        let deep = CostProfile::with_levels(5, &[6, 2]);
        let sum = flat.combined(&deep);
        assert_eq!(sum.comp_ops(), 15);
        assert_eq!(sum.io_at(0), Some(10));
        assert_eq!(sum.io_at(1), Some(2));
        assert_eq!(sum.level_count(), 2);
    }

    #[test]
    fn zero_traffic_boundaries_have_infinite_intensity() {
        let cost = CostProfile::with_levels(7, &[4, 0]);
        assert_eq!(cost.intensity_at(1), Some(f64::INFINITY));
        let idle = CostProfile::with_levels(0, &[0, 0]);
        assert_eq!(idle.intensity_at(1), Some(0.0));
    }

    #[test]
    fn level_traffic_display_and_accessors() {
        let t = LevelTraffic::from_slice(&[8, 4, 2]);
        assert_eq!(t.to_string(), "[8, 4, 2]");
        assert_eq!(t.as_slice(), &[8, 4, 2]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(LevelTraffic::default().is_empty());
        let deep = CostProfile::with_levels(1, &[9, 3, 1]);
        assert!(deep.to_string().contains("[9, 3, 1]"), "{deep}");
    }

    #[test]
    #[should_panic(expected = "exceed the supported maximum")]
    fn too_many_levels_panic() {
        let _ = LevelTraffic::from_slice(&[1; 9]);
    }

    #[test]
    fn dual_ledger_scalar_view_is_the_sum() {
        let t = LevelTraffic::from_reads_and_writebacks(&[10, 4], &[4, 1]);
        assert_eq!(t.as_slice(), &[14, 5], "scalar view sums both streams");
        assert_eq!(t.get(0), Some(14));
        assert_eq!(t.read_at(0), Some(10));
        assert_eq!(t.writeback_at(0), Some(4));
        assert_eq!(t.read_at(1), Some(4));
        assert_eq!(t.writeback_at(1), Some(1));
        assert_eq!(t.read_at(2), None);
        assert_eq!(t.writeback_at(2), None);
        assert!(t.has_writebacks());
        // Read-only vectors report a zero write-back stream everywhere.
        let ro = LevelTraffic::from_slice(&[8, 4]);
        assert_eq!(ro.read_at(0), Some(8));
        assert_eq!(ro.writeback_at(0), Some(0));
        assert!(!ro.has_writebacks());
        // single_rw matches the general constructor.
        assert_eq!(
            LevelTraffic::single_rw(10, 4),
            LevelTraffic::from_reads_and_writebacks(&[10], &[4])
        );
        assert_eq!(LevelTraffic::single_rw(7, 0), LevelTraffic::single(7));
    }

    #[test]
    #[should_panic(expected = "same boundaries")]
    fn mismatched_dual_ledgers_panic() {
        let _ = LevelTraffic::from_reads_and_writebacks(&[1, 2], &[1]);
    }

    #[test]
    fn dual_ledger_combines_both_streams() {
        let a = LevelTraffic::from_reads_and_writebacks(&[10], &[4]);
        let b = LevelTraffic::from_reads_and_writebacks(&[5, 2], &[1, 2]);
        let c = a.combined(&b);
        assert_eq!(c.read_at(0), Some(15));
        assert_eq!(c.writeback_at(0), Some(5));
        assert_eq!(c.read_at(1), Some(2));
        assert_eq!(c.writeback_at(1), Some(2));
        assert_eq!(c.as_slice(), &[20, 4]);
    }

    #[test]
    fn dual_ledger_display_annotates_writebacks() {
        let t = LevelTraffic::from_reads_and_writebacks(&[10, 4], &[4, 0]);
        assert_eq!(t.to_string(), "[10+4w, 4]");
        // All-read vectors keep the pre-refactor rendering exactly.
        assert_eq!(LevelTraffic::from_slice(&[8, 4, 2]).to_string(), "[8, 4, 2]");
    }

    #[test]
    fn dual_profile_accessors() {
        let cost = CostProfile::with_dual_levels(100, &[10, 4], &[4, 1]);
        assert_eq!(cost.io_at(0), Some(14), "io_at is the scalar sum");
        assert_eq!(cost.read_at(0), Some(10));
        assert_eq!(cost.writeback_at(0), Some(4));
        assert_eq!(cost.io_words(), 14);
        // Empty dual ledgers normalize like with_levels.
        assert_eq!(
            CostProfile::with_dual_levels(7, &[], &[]),
            CostProfile::new(7, 0)
        );
        // with_traffic wraps a prebuilt vector.
        let t = LevelTraffic::single_rw(10, 4);
        assert_eq!(
            CostProfile::with_traffic(100, t),
            CostProfile::with_dual_levels(100, &[10], &[4])
        );
    }

    #[test]
    fn split_write_channel_prices_the_max_stream() {
        use crate::hierarchy::{HierarchySpec, LevelSpec};
        // Read channel 10 word/s, write-back channel 2 word/s.
        let asym = HierarchySpec::new(vec![LevelSpec::new(
            Words::new(64),
            WordsPerSec::new(10.0),
        )
        .unwrap()
        .with_write_bandwidth(WordsPerSec::new(2.0))
        .unwrap()])
        .unwrap();
        // 100 read words (10 s) vs 40 write-back words (20 s): the write
        // channel binds even though the shared-channel sum would be 14 s.
        let cost = CostProfile::with_dual_levels(0, &[100], &[40]);
        assert_eq!(cost.io_time_at(&asym, 0).unwrap().get(), 20.0);
        // Drop the write-backs to 10 words (5 s): reads bind at 10 s.
        let read_heavy = CostProfile::with_dual_levels(0, &[100], &[10]);
        assert_eq!(read_heavy.io_time_at(&asym, 0).unwrap().get(), 10.0);
        // Without a write bandwidth the same dual ledger serializes on the
        // shared channel: (100 + 40) / 10 = 14 s.
        let shared = spec_with_latencies(&[0.0]);
        assert_eq!(cost.io_time_at(&shared, 0).unwrap().get(), 14.0);
    }

    #[test]
    fn split_write_channel_charges_latency_on_both_streams() {
        use crate::hierarchy::{HierarchySpec, LevelSpec};
        let asym = HierarchySpec::new(vec![LevelSpec::new(
            Words::new(64),
            WordsPerSec::new(10.0),
        )
        .unwrap()
        .with_write_bandwidth(WordsPerSec::new(2.0))
        .unwrap()
        .with_latency(Seconds::new(0.5))
        .unwrap()])
        .unwrap();
        // Reads: 100·(0.1 + 0.5) = 60 s; write-backs: 40·(0.5 + 0.5) = 40 s.
        let cost = CostProfile::with_dual_levels(0, &[100], &[40]);
        assert_eq!(cost.io_time_at(&asym, 0).unwrap().get(), 60.0);
    }

    #[test]
    fn elapsed_takes_the_max() {
        let cost = CostProfile::new(1000, 10);
        let spec = pe(10.0, 10.0);
        assert_eq!(cost.elapsed(&spec).get(), 100.0);
    }

    fn spec_with_latencies(lats: &[f64]) -> crate::hierarchy::HierarchySpec {
        use crate::hierarchy::LevelSpec;
        use crate::units::WordsPerSec;
        crate::hierarchy::HierarchySpec::new(
            lats.iter()
                .enumerate()
                .map(|(i, &lat)| {
                    LevelSpec::new(Words::new(64 << i), WordsPerSec::new(10.0))
                        .unwrap()
                        .with_latency(Seconds::new(lat))
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn io_time_charges_per_word_latency() {
        let cost = CostProfile::with_levels(1000, &[100, 40]);
        let zero = spec_with_latencies(&[0.0, 0.0]);
        // Pure bandwidth: 100/10 = 10 s at the port, 40/10 = 4 s outside.
        assert_eq!(cost.io_time_at(&zero, 0).unwrap().get(), 10.0);
        assert_eq!(cost.io_time_at(&zero, 1).unwrap().get(), 4.0);
        assert_eq!(cost.io_time_on(&zero).get(), 10.0);
        // 0.4 s/word of latency at the outer level: 40·(0.1 + 0.4) = 20 s —
        // the outer boundary becomes the binding channel.
        let lat = spec_with_latencies(&[0.0, 0.4]);
        assert_eq!(cost.io_time_at(&lat, 1).unwrap().get(), 20.0);
        assert_eq!(cost.io_time_on(&lat).get(), 20.0);
        // Beyond the recorded depth (or the spec's): None.
        assert_eq!(cost.io_time_at(&lat, 2), None);
        assert_eq!(CostProfile::new(1, 1).io_time_at(&lat, 1), None);
    }

    #[test]
    fn nonzero_latency_changes_elapsed_time() {
        // The dead-knob regression: a spec differing ONLY in latency must
        // produce a different elapsed time.
        let cost = CostProfile::with_levels(1000, &[100, 40]);
        let peak = OpsPerSec::new(100.0); // compute time 10 s
        let zero = spec_with_latencies(&[0.0, 0.0]);
        let lat = spec_with_latencies(&[0.0, 0.4]);
        assert_eq!(cost.elapsed_on(peak, &zero).get(), 10.0);
        assert_eq!(cost.elapsed_on(peak, &lat).get(), 20.0);
        assert!(
            cost.elapsed_on(peak, &lat) > cost.elapsed_on(peak, &zero),
            "latency must enter the elapsed-time computation"
        );
    }

    #[test]
    fn elapsed_on_flat_spec_matches_elapsed() {
        // One zero-latency level with the PeSpec's bandwidths: identical
        // numbers through either entry point.
        let cost = CostProfile::new(1000, 100);
        let spec = pe(100.0, 10.0);
        let flat = spec_with_latencies(&[0.0]);
        assert_eq!(
            cost.elapsed_on(OpsPerSec::new(100.0), &flat).get(),
            cost.elapsed(&spec).get()
        );
    }

    #[test]
    fn display_variants() {
        assert_eq!(BalanceState::Balanced.to_string(), "balanced");
        assert!(BalanceState::IoLimited { idle_fraction: 0.5 }
            .to_string()
            .contains("50.0%"));
        assert!(BalanceState::ComputeLimited {
            idle_fraction: 0.25
        }
        .to_string()
        .contains("25.0%"));
        let e = Execution::new(CostProfile::new(4, 2), Words::new(7));
        assert!(e.to_string().contains("peak 7 words"));
        assert_eq!(e.intensity(), 2.0);
        assert_eq!(e.intensity_at(0), Some(2.0));
        assert_eq!(e.io_at(0), Some(2));
        assert_eq!(e.io_at(1), None);
    }
}
