//! Computation cost profiles and the balance predicate.
//!
//! For a given computation, `C_comp` is the total number of operations the PE
//! must deliver and `C_io` the total number of words it must exchange with
//! the outside world. Running on a PE with bandwidths `(C, IO)` the computing
//! time is `C_comp / C` and the I/O time is `C_io / IO`; the PE is *balanced*
//! when the two are equal (paper, Section 2, equation (1)).

use core::fmt;

use crate::pe::PeSpec;
use crate::units::{Seconds, Words};

/// Total operation and I/O-word counts for one computation.
///
/// # Examples
///
/// ```
/// use balance_core::CostProfile;
///
/// // Blocked 512x512 matmul with b=32 tiles: 2N^3 ops, ~2N^3/b + N^2 words.
/// let cost = CostProfile::new(2 * 512u64.pow(3), 2 * 512u64.pow(3) / 32 + 512 * 512);
/// assert!((cost.intensity() - 30.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostProfile {
    comp_ops: u64,
    io_words: u64,
}

impl CostProfile {
    /// Creates a cost profile from raw counts.
    #[must_use]
    pub const fn new(comp_ops: u64, io_words: u64) -> Self {
        CostProfile { comp_ops, io_words }
    }

    /// Total operations `C_comp`.
    #[must_use]
    pub const fn comp_ops(&self) -> u64 {
        self.comp_ops
    }

    /// Total I/O traffic `C_io`, in words.
    #[must_use]
    pub const fn io_words(&self) -> u64 {
        self.io_words
    }

    /// The operational intensity `C_comp / C_io`, in operations per word.
    ///
    /// Returns `f64::INFINITY` when the computation performs no I/O (a fully
    /// resident computation) and `0.0` when it performs no operations.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        if self.io_words == 0 {
            if self.comp_ops == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.comp_ops as f64 / self.io_words as f64
        }
    }

    /// Component-wise sum of two profiles (e.g. phases of one computation).
    #[must_use]
    pub const fn combined(&self, other: &CostProfile) -> CostProfile {
        CostProfile {
            comp_ops: self.comp_ops + other.comp_ops,
            io_words: self.io_words + other.io_words,
        }
    }

    /// Time to execute the operations on a PE with compute bandwidth `C`.
    #[must_use]
    pub fn compute_time(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.comp_ops as f64 / pe.comp_bw().get())
    }

    /// Time to move the words on a PE with I/O bandwidth `IO`.
    #[must_use]
    pub fn io_time(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.io_words as f64 / pe.io_bw().get())
    }

    /// Classifies the execution on `pe` (compute and I/O fully overlapped).
    ///
    /// The PE is [`BalanceState::Balanced`] when the two times agree to
    /// within `tolerance` (a relative tolerance, e.g. `0.05` for ±5 %).
    #[must_use]
    pub fn balance_state(&self, pe: &PeSpec, tolerance: f64) -> BalanceState {
        let tc = self.compute_time(pe).get();
        let tio = self.io_time(pe).get();
        let max = tc.max(tio);
        if max == 0.0 || (tc - tio).abs() <= tolerance * max {
            BalanceState::Balanced
        } else if tio > tc {
            // The PE waits for I/O: the compute subsystem is over-designed.
            BalanceState::IoLimited {
                idle_fraction: (tio - tc) / tio,
            }
        } else {
            BalanceState::ComputeLimited {
                idle_fraction: (tc - tio) / tc,
            }
        }
    }

    /// Elapsed time assuming perfect overlap of compute and I/O: the maximum
    /// of the two subsystem times.
    #[must_use]
    pub fn elapsed(&self, pe: &PeSpec) -> Seconds {
        Seconds::new(self.compute_time(pe).get().max(self.io_time(pe).get()))
    }
}

impl fmt::Display for CostProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C_comp = {} ops, C_io = {} words (intensity {:.3} op/word)",
            self.comp_ops,
            self.io_words,
            self.intensity()
        )
    }
}

/// Which subsystem limits the execution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BalanceState {
    /// Compute time equals I/O time (within tolerance): the design point the
    /// paper is after.
    Balanced,
    /// I/O time dominates; the compute units idle for `idle_fraction` of the
    /// run. This is the "imbalanced, has to wait for I/O" situation that
    /// enlarging `M` is meant to fix.
    IoLimited {
        /// Fraction of the elapsed time the compute subsystem is idle.
        idle_fraction: f64,
    },
    /// Compute time dominates; the I/O port idles for `idle_fraction`.
    ComputeLimited {
        /// Fraction of the elapsed time the I/O subsystem is idle.
        idle_fraction: f64,
    },
}

impl BalanceState {
    /// True for [`BalanceState::Balanced`].
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        matches!(self, BalanceState::Balanced)
    }
}

impl fmt::Display for BalanceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceState::Balanced => write!(f, "balanced"),
            BalanceState::IoLimited { idle_fraction } => {
                write!(
                    f,
                    "I/O-limited (compute idle {:.1}%)",
                    idle_fraction * 100.0
                )
            }
            BalanceState::ComputeLimited { idle_fraction } => {
                write!(
                    f,
                    "compute-limited (I/O idle {:.1}%)",
                    idle_fraction * 100.0
                )
            }
        }
    }
}

/// The result of executing a computation on a concrete PE: the measured cost
/// plus the memory actually used.
///
/// Produced by the `balance-machine` simulator and by analytic models alike;
/// keeping it here lets every crate in the workspace speak the same type.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Execution {
    /// Measured operation and word counts.
    pub cost: CostProfile,
    /// Peak local-memory footprint during the run.
    pub peak_memory: Words,
}

impl Execution {
    /// Creates an execution record.
    #[must_use]
    pub const fn new(cost: CostProfile, peak_memory: Words) -> Self {
        Execution { cost, peak_memory }
    }

    /// The measured operational intensity.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        self.cost.intensity()
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} using peak {}", self.cost, self.peak_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{OpsPerSec, WordsPerSec};

    fn pe(c: f64, io: f64) -> PeSpec {
        PeSpec::new(OpsPerSec::new(c), WordsPerSec::new(io), Words::new(1024)).unwrap()
    }

    #[test]
    fn intensity_basics() {
        assert_eq!(CostProfile::new(100, 50).intensity(), 2.0);
        assert_eq!(CostProfile::new(0, 50).intensity(), 0.0);
        assert_eq!(CostProfile::new(5, 0).intensity(), f64::INFINITY);
        assert_eq!(CostProfile::new(0, 0).intensity(), 0.0);
    }

    #[test]
    fn times_follow_bandwidths() {
        let cost = CostProfile::new(1000, 100);
        let spec = pe(100.0, 10.0);
        assert_eq!(cost.compute_time(&spec).get(), 10.0);
        assert_eq!(cost.io_time(&spec).get(), 10.0);
        assert_eq!(cost.elapsed(&spec).get(), 10.0);
    }

    #[test]
    fn balance_condition_matches_paper_equation_1() {
        // Balanced iff C_comp / C == C_io / IO, i.e. C/IO == C_comp/C_io.
        let cost = CostProfile::new(1000, 100); // intensity 10
        assert!(cost.balance_state(&pe(100.0, 10.0), 1e-9).is_balanced());
        // Raise C 4x: now compute takes 2.5, io takes 10 -> I/O-limited.
        match cost.balance_state(&pe(400.0, 10.0), 1e-9) {
            BalanceState::IoLimited { idle_fraction } => {
                assert!((idle_fraction - 0.75).abs() < 1e-12);
            }
            other => panic!("expected IoLimited, got {other:?}"),
        }
        // Lower C 4x: compute-limited.
        match cost.balance_state(&pe(25.0, 10.0), 1e-9) {
            BalanceState::ComputeLimited { idle_fraction } => {
                assert!((idle_fraction - 0.75).abs() < 1e-12);
            }
            other => panic!("expected ComputeLimited, got {other:?}"),
        }
    }

    #[test]
    fn tolerance_widens_balanced_band() {
        let cost = CostProfile::new(1050, 100); // 5% off at C/IO = 10
        let spec = pe(100.0, 10.0);
        assert!(!cost.balance_state(&spec, 0.01).is_balanced());
        assert!(cost.balance_state(&spec, 0.10).is_balanced());
    }

    #[test]
    fn zero_cost_is_trivially_balanced() {
        let cost = CostProfile::new(0, 0);
        assert!(cost.balance_state(&pe(1.0, 1.0), 0.0).is_balanced());
    }

    #[test]
    fn combined_sums_componentwise() {
        let a = CostProfile::new(10, 4);
        let b = CostProfile::new(5, 6);
        let c = a.combined(&b);
        assert_eq!(c.comp_ops(), 15);
        assert_eq!(c.io_words(), 10);
    }

    #[test]
    fn elapsed_takes_the_max() {
        let cost = CostProfile::new(1000, 10);
        let spec = pe(10.0, 10.0);
        assert_eq!(cost.elapsed(&spec).get(), 100.0);
    }

    #[test]
    fn display_variants() {
        assert_eq!(BalanceState::Balanced.to_string(), "balanced");
        assert!(BalanceState::IoLimited { idle_fraction: 0.5 }
            .to_string()
            .contains("50.0%"));
        assert!(BalanceState::ComputeLimited {
            idle_fraction: 0.25
        }
        .to_string()
        .contains("25.0%"));
        let e = Execution::new(CostProfile::new(4, 2), Words::new(7));
        assert!(e.to_string().contains("peak 7 words"));
        assert_eq!(e.intensity(), 2.0);
    }
}
