//! # balance-core
//!
//! The analytical heart of H. T. Kung's *"Memory Requirements for Balanced
//! Computer Architectures"* (Journal of Complexity 1, 147–157, 1985).
//!
//! The paper characterizes a processing element (PE) by three numbers — its
//! computation bandwidth `C` (operations per second), its I/O bandwidth `IO`
//! (words per second), and its local memory size `M` (words) — and calls the
//! PE **balanced** for a computation when the computing time equals the I/O
//! time:
//!
//! ```text
//! C_comp / C = C_io / IO        ⇔        C / IO = C_comp / C_io
//! ```
//!
//! The right-hand quantity `C_comp / C_io` is the computation's
//! *operational intensity* (operations per word of traffic), a function
//! `r(M)` of the local memory size. The central question of the paper: if the
//! machine's compute-to-I/O ratio `C/IO` grows by a factor `α`, how much must
//! `M` grow to restore balance? The answer depends on the *shape* of `r(M)`:
//!
//! | `r(M)`            | rebalance rule          | examples                      |
//! |-------------------|-------------------------|-------------------------------|
//! | `Θ(√M)`           | `M_new = α² · M_old`    | matmul, LU, 2-D relaxation    |
//! | `Θ(M^(1/d))`      | `M_new = α^d · M_old`   | d-dimensional relaxation      |
//! | `Θ(log₂ M)`       | `M_new = M_old^α`       | FFT, sorting                  |
//! | `Θ(1)`            | impossible              | matvec, triangular solve      |
//!
//! This crate provides:
//!
//! * unit-safe quantities ([`Words`], [`OpsPerSec`], [`WordsPerSec`], …) in
//!   [`units`];
//! * the PE characterization [`PeSpec`] (the paper's Fig. 1) in [`pe`];
//! * measured/analytic cost profiles and the balance predicate in [`cost`];
//! * the intensity-ratio models `r(M)` with exact inverses in [`intensity`];
//! * the growth laws and the rebalancing solver in [`growth`] and
//!   [`mod@rebalance`];
//! * empirical law fitting (recover the exponent from measured `(M, r)`
//!   sweeps) in [`fit`];
//! * numeric utilities (monotone bisection, measured-curve inversion) in
//!   [`solver`];
//! * the classical Amdahl memory rule of thumb, for contrast, in [`amdahl`].
//!
//! This crate deliberately has **no serialization dependency or feature**:
//! durable artifacts are hand-rolled, versioned, checksummed binary images
//! owned by the crates that define them (`balance-machine`'s `KBSD` engine
//! checkpoints and `KBCP` profile-store images), which keeps the offline
//! build dependency-free and the on-disk formats explicit about
//! validation — an old optional `serde` cfg-gate here was never enabled
//! and has been removed in favor of that discipline.
//!
//! ## Quickstart
//!
//! ```
//! use balance_core::prelude::*;
//!
//! // A PE delivering 100 Mop/s over a 10 Mword/s port: machine balance = 10.
//! let pe = PeSpec::builder()
//!     .comp_bw(OpsPerSec::new(100.0e6))
//!     .io_bw(WordsPerSec::new(10.0e6))
//!     .memory(Words::new(4096))
//!     .build()?;
//!
//! // Blocked matrix multiplication has intensity r(M) = c·√M.
//! let matmul = IntensityModel::sqrt_m(1.0);
//!
//! // Memory that balances this PE for matmul: r(M) = C/IO  ⇒  M = 100.
//! let balanced = matmul.balanced_memory(pe.machine_balance())?;
//! assert_eq!(balanced.get(), 100);
//!
//! // Now compute bandwidth rises 4× (I/O unchanged): α = 4 ⇒ M must grow α² = 16×.
//! let plan = rebalance(&matmul, Alpha::new(4.0)?, balanced)?;
//! assert_eq!(plan.new_memory.get(), 1600);
//! # Ok::<(), balance_core::BalanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod amdahl;
pub mod budget;
pub mod cost;
pub mod error;
pub mod fit;
pub mod growth;
pub mod hierarchy;
pub mod intensity;
pub mod pe;
pub mod rebalance;
pub mod solver;
pub mod units;

pub use access::{Access, AccessKind};
pub use budget::{Budget, BudgetTrip};
pub use cost::{BalanceState, CostProfile, Execution, LevelTraffic};
pub use error::BalanceError;
pub use hierarchy::{HierarchySpec, LevelSpec, MAX_MEMORY_LEVELS};
pub use fit::{fit_best, FitReport, FittedLaw};
pub use growth::GrowthLaw;
pub use intensity::IntensityModel;
pub use pe::{PeSpec, PeSpecBuilder};
pub use rebalance::{rebalance, Alpha, RebalancePlan};
pub use units::{OpsPerSec, Seconds, Words, WordsPerSec};

/// Convenient glob import: `use balance_core::prelude::*;`.
pub mod prelude {
    pub use crate::access::{Access, AccessKind};
    pub use crate::amdahl;
    pub use crate::budget::{Budget, BudgetTrip};
    pub use crate::cost::{BalanceState, CostProfile, Execution, LevelTraffic};
    pub use crate::error::BalanceError;
    pub use crate::hierarchy::{HierarchySpec, LevelSpec, MAX_MEMORY_LEVELS};
    pub use crate::fit::{fit_best, FitReport, FittedLaw};
    pub use crate::growth::GrowthLaw;
    pub use crate::intensity::IntensityModel;
    pub use crate::pe::{PeSpec, PeSpecBuilder};
    pub use crate::rebalance::{rebalance, Alpha, RebalancePlan};
    pub use crate::units::{OpsPerSec, Seconds, Words, WordsPerSec};
}
