//! Memory growth laws: the paper's answers to "by how much must `M` grow?".
//!
//! When the machine balance `C/IO` rises by a factor `α`, restoring balance
//! requires raising the intensity ratio `r(M)` by the same `α` (equation (1)
//! of the paper). Depending on the shape of `r`, the memory must grow:
//!
//! * **polynomially in α** — `M_new = α^k · M_old` (matrix computations:
//!   `k = 2`; d-dimensional grids: `k = d`);
//! * **exponentially** — `M_new = M_old^α` (FFT, sorting);
//! * **not at all, because no size works** — I/O-bounded computations.

use core::fmt;

use crate::error::BalanceError;
use crate::units::Words;

/// How the balanced memory size scales with the rebalance factor `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrowthLaw {
    /// `M_new = α^degree · M_old`.
    ///
    /// Matrix multiplication and triangularization have `degree = 2`
    /// (paper §3.1–3.2); a d-dimensional grid has `degree = d` (§3.3).
    Polynomial {
        /// The exponent `k` in `M_new = α^k · M_old`.
        degree: f64,
    },
    /// `M_new = M_old^α` — FFT and sorting (§3.4–3.5).
    Exponential,
    /// No enlargement of local memory restores balance (§3.6).
    Impossible,
}

impl GrowthLaw {
    /// Computes `M_new` for a given `α` and `M_old`, as an exact real value.
    ///
    /// # Errors
    ///
    /// * [`BalanceError::IoBounded`] for [`GrowthLaw::Impossible`];
    /// * [`BalanceError::AlphaBelowOne`] when `alpha < 1`;
    /// * [`BalanceError::ZeroMemory`] when `m_old` is zero (and, for the
    ///   exponential law, when `m_old == 1`, which the law cannot grow).
    pub fn new_memory_f64(&self, alpha: f64, m_old: Words) -> Result<f64, BalanceError> {
        if !(alpha.is_finite()) || alpha < 1.0 {
            return Err(BalanceError::AlphaBelowOne { value: alpha });
        }
        if m_old.is_zero() {
            return Err(BalanceError::ZeroMemory);
        }
        match *self {
            GrowthLaw::Polynomial { degree } => Ok(alpha.powf(degree) * m_old.as_f64()),
            GrowthLaw::Exponential => {
                if m_old.get() == 1 {
                    // log₂ 1 = 0: intensity is stuck at zero, cannot scale.
                    return Err(BalanceError::ZeroMemory);
                }
                Ok(m_old.as_f64().powf(alpha))
            }
            GrowthLaw::Impossible => Err(BalanceError::IoBounded),
        }
    }

    /// Computes `M_new` rounded to whole words.
    ///
    /// # Errors
    ///
    /// As [`new_memory_f64`](Self::new_memory_f64), plus
    /// [`BalanceError::MemoryOverflow`] when the answer exceeds `u64`.
    pub fn new_memory(&self, alpha: f64, m_old: Words) -> Result<Words, BalanceError> {
        let m = self.new_memory_f64(alpha, m_old)?;
        if m >= u64::MAX as f64 {
            return Err(BalanceError::MemoryOverflow { requested: m });
        }
        Ok(Words::from_f64_rounded(m))
    }

    /// The memory *growth factor* `M_new / M_old`.
    ///
    /// # Errors
    ///
    /// As [`new_memory_f64`](Self::new_memory_f64).
    pub fn growth_factor(&self, alpha: f64, m_old: Words) -> Result<f64, BalanceError> {
        Ok(self.new_memory_f64(alpha, m_old)? / m_old.as_f64())
    }

    /// True when rebalancing by memory alone is possible.
    #[must_use]
    pub fn is_possible(&self) -> bool {
        !matches!(self, GrowthLaw::Impossible)
    }
}

impl fmt::Display for GrowthLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GrowthLaw::Polynomial { degree } => {
                if (degree - degree.round()).abs() < 1e-9 {
                    write!(f, "M_new = α^{} · M_old", degree.round() as i64)
                } else {
                    write!(f, "M_new = α^{degree:.2} · M_old")
                }
            }
            GrowthLaw::Exponential => write!(f, "M_new = M_old^α"),
            GrowthLaw::Impossible => write!(f, "impossible (I/O-bounded)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_law_alpha_squared() {
        // Paper §3.1: M_new = α²·M_old.
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        assert_eq!(law.new_memory(2.0, Words::new(100)).unwrap().get(), 400);
        assert_eq!(law.new_memory(3.0, Words::new(100)).unwrap().get(), 900);
        assert_eq!(law.growth_factor(4.0, Words::new(10)).unwrap(), 16.0);
    }

    #[test]
    fn grid_law_alpha_to_the_d() {
        // Paper §3.3: M_new = α^d·M_old for a d-dimensional grid.
        for d in 1..=4u32 {
            let law = GrowthLaw::Polynomial {
                degree: f64::from(d),
            };
            let got = law.growth_factor(2.0, Words::new(64)).unwrap();
            assert!((got - 2.0f64.powi(d as i32)).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn fft_law_memory_to_the_alpha() {
        // Paper §3.4: M_new = M_old^α.
        let law = GrowthLaw::Exponential;
        assert_eq!(
            law.new_memory(2.0, Words::new(1024)).unwrap().get(),
            1024 * 1024
        );
        assert_eq!(law.new_memory(3.0, Words::new(4)).unwrap().get(), 64);
    }

    #[test]
    fn exponential_law_explodes_fast() {
        // Paper §5: "the size of the local memory may become unrealistically
        // large" — with M_old = 2^16 and α = 4, M_new = 2^64 overflows.
        let law = GrowthLaw::Exponential;
        assert!(matches!(
            law.new_memory(4.0, Words::new(1 << 16)),
            Err(BalanceError::MemoryOverflow { .. })
        ));
    }

    #[test]
    fn impossible_law_always_errors() {
        let law = GrowthLaw::Impossible;
        assert_eq!(
            law.new_memory(2.0, Words::new(100)),
            Err(BalanceError::IoBounded)
        );
        assert!(!law.is_possible());
        assert!(GrowthLaw::Exponential.is_possible());
    }

    #[test]
    fn alpha_below_one_rejected() {
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        assert!(matches!(
            law.new_memory(0.5, Words::new(8)),
            Err(BalanceError::AlphaBelowOne { .. })
        ));
        assert!(matches!(
            law.new_memory(f64::NAN, Words::new(8)),
            Err(BalanceError::AlphaBelowOne { .. })
        ));
    }

    #[test]
    fn alpha_one_is_identity() {
        for law in [
            GrowthLaw::Polynomial { degree: 2.0 },
            GrowthLaw::Polynomial { degree: 3.0 },
            GrowthLaw::Exponential,
        ] {
            assert_eq!(law.new_memory(1.0, Words::new(64)).unwrap().get(), 64);
        }
    }

    #[test]
    fn degenerate_memories_rejected() {
        let law = GrowthLaw::Exponential;
        assert_eq!(
            law.new_memory(2.0, Words::ZERO),
            Err(BalanceError::ZeroMemory)
        );
        assert_eq!(
            law.new_memory(2.0, Words::new(1)),
            Err(BalanceError::ZeroMemory)
        );
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        assert_eq!(
            law.new_memory(2.0, Words::ZERO),
            Err(BalanceError::ZeroMemory)
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            GrowthLaw::Polynomial { degree: 2.0 }.to_string(),
            "M_new = α^2 · M_old"
        );
        assert_eq!(GrowthLaw::Exponential.to_string(), "M_new = M_old^α");
        assert!(GrowthLaw::Impossible.to_string().contains("impossible"));
        assert!(GrowthLaw::Polynomial { degree: 2.5 }
            .to_string()
            .contains("2.50"));
    }
}
