//! Empirical law fitting: recover the intensity model from measured data.
//!
//! The experiments in this workspace *measure* `(M, r)` pairs by running
//! instrumented out-of-core kernels, then ask which of the paper's law
//! shapes — power `c·M^e`, logarithmic `a + c·log₂M`, or constant — explains
//! the data. Fitting is by least squares (log–log for the power law), model
//! selection by the coefficient of determination R² computed in the original
//! data space so the three candidates are directly comparable.

use core::fmt;

use crate::error::BalanceError;
use crate::growth::GrowthLaw;
use crate::intensity::IntensityModel;

/// One measured sample: local memory size and observed intensity ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// Local memory size, in words.
    pub memory: f64,
    /// Observed `C_comp / C_io`.
    pub ratio: f64,
}

impl DataPoint {
    /// Creates a data point.
    #[must_use]
    pub const fn new(memory: f64, ratio: f64) -> Self {
        DataPoint { memory, ratio }
    }

    fn is_usable(&self) -> bool {
        self.memory.is_finite() && self.memory > 1.0 && self.ratio.is_finite() && self.ratio > 0.0
    }
}

/// A fitted candidate law with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FittedLaw {
    /// `r ≈ coeff · M^exponent`.
    Power {
        /// Fitted leading constant.
        coeff: f64,
        /// Fitted exponent.
        exponent: f64,
        /// R² in the original space.
        r2: f64,
    },
    /// `r ≈ intercept + coeff · log₂ M`.
    Log2 {
        /// Fitted slope per doubling of memory.
        coeff: f64,
        /// Fitted intercept (absorbs lower-order terms).
        intercept: f64,
        /// R² in the original space.
        r2: f64,
    },
    /// `r ≈ value` independent of `M`.
    Constant {
        /// Fitted mean ratio.
        value: f64,
        /// 1 minus the normalized spread (1 = perfectly flat).
        r2: f64,
    },
}

impl FittedLaw {
    /// The goodness of fit, in the original data space.
    #[must_use]
    pub fn r2(&self) -> f64 {
        match *self {
            FittedLaw::Power { r2, .. }
            | FittedLaw::Log2 { r2, .. }
            | FittedLaw::Constant { r2, .. } => r2,
        }
    }

    /// Converts to the closest [`IntensityModel`] (intercepts dropped).
    #[must_use]
    pub fn to_model(&self) -> IntensityModel {
        match *self {
            FittedLaw::Power {
                coeff, exponent, ..
            } => IntensityModel::Power { coeff, exponent },
            FittedLaw::Log2 { coeff, .. } => IntensityModel::Log2 { coeff },
            FittedLaw::Constant { value, .. } => IntensityModel::Constant { value },
        }
    }

    /// The growth law this fit implies for the rebalancing question.
    #[must_use]
    pub fn growth_law(&self) -> GrowthLaw {
        self.to_model().growth_law()
    }

    /// Predicted ratio at memory `m`.
    #[must_use]
    pub fn predict(&self, m: f64) -> f64 {
        match *self {
            FittedLaw::Power {
                coeff, exponent, ..
            } => coeff * m.powf(exponent),
            FittedLaw::Log2 {
                coeff, intercept, ..
            } => intercept + coeff * m.log2(),
            FittedLaw::Constant { value, .. } => value,
        }
    }
}

impl fmt::Display for FittedLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FittedLaw::Power {
                coeff,
                exponent,
                r2,
            } => {
                write!(f, "r ≈ {coeff:.3}·M^{exponent:.3} (R²={r2:.4})")
            }
            FittedLaw::Log2 {
                coeff,
                intercept,
                r2,
            } => {
                write!(f, "r ≈ {intercept:.3} + {coeff:.3}·log₂M (R²={r2:.4})")
            }
            FittedLaw::Constant { value, r2 } => {
                write!(f, "r ≈ {value:.3} (constant, R²={r2:.4})")
            }
        }
    }
}

/// The result of fitting all candidate laws to a data set.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// The selected law.
    pub best: FittedLaw,
    /// All fitted candidates (power, log, constant) for inspection.
    pub candidates: Vec<FittedLaw>,
}

impl fmt::Display for FitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "best: {}", self.best)
    }
}

fn usable(points: &[DataPoint]) -> Result<Vec<DataPoint>, BalanceError> {
    let pts: Vec<DataPoint> = points
        .iter()
        .copied()
        .filter(DataPoint::is_usable)
        .collect();
    let distinct = {
        let mut ms: Vec<f64> = pts.iter().map(|p| p.memory).collect();
        ms.sort_by(f64::total_cmp);
        ms.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);
        ms.len()
    };
    if distinct < 2 {
        return Err(BalanceError::InsufficientData { points: distinct });
    }
    Ok(pts)
}

/// Ordinary least squares for `y = a + b·x`; returns `(a, b)`.
fn ols(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// R² of `predict` against the points, in the original space.
fn r_squared(points: &[DataPoint], predict: impl Fn(f64) -> f64) -> f64 {
    let mean = points.iter().map(|p| p.ratio).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|p| (p.ratio - mean).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.ratio - predict(p.memory)).powi(2))
        .sum();
    if ss_tot <= 0.0 {
        // Perfectly flat data: a model is "perfect" iff it has no residual.
        if ss_res <= 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fits `r = c·M^e` by log–log least squares.
///
/// # Errors
///
/// Returns [`BalanceError::InsufficientData`] without two distinct usable
/// memory sizes.
pub fn fit_power(points: &[DataPoint]) -> Result<FittedLaw, BalanceError> {
    let pts = usable(points)?;
    let xs: Vec<f64> = pts.iter().map(|p| p.memory.ln()).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.ratio.ln()).collect();
    let (a, b) = ols(&xs, &ys);
    let coeff = a.exp();
    let r2 = r_squared(&pts, |m| coeff * m.powf(b));
    Ok(FittedLaw::Power {
        coeff,
        exponent: b,
        r2,
    })
}

/// Fits `r = a + c·log₂ M` by least squares.
///
/// # Errors
///
/// Returns [`BalanceError::InsufficientData`] without two distinct usable
/// memory sizes.
pub fn fit_log2(points: &[DataPoint]) -> Result<FittedLaw, BalanceError> {
    let pts = usable(points)?;
    let xs: Vec<f64> = pts.iter().map(|p| p.memory.log2()).collect();
    let ys: Vec<f64> = pts.iter().map(|p| p.ratio).collect();
    let (a, b) = ols(&xs, &ys);
    let r2 = r_squared(&pts, |m| a + b * m.log2());
    Ok(FittedLaw::Log2 {
        coeff: b,
        intercept: a,
        r2,
    })
}

/// Fits `r = const` (the mean), scoring by flatness.
///
/// # Errors
///
/// Returns [`BalanceError::InsufficientData`] without two distinct usable
/// memory sizes.
pub fn fit_constant(points: &[DataPoint]) -> Result<FittedLaw, BalanceError> {
    let pts = usable(points)?;
    let mean = pts.iter().map(|p| p.ratio).sum::<f64>() / pts.len() as f64;
    // Score flatness by relative spread: 1 - (max-min)/mean, clamped to [0,1].
    let max = pts.iter().map(|p| p.ratio).fold(f64::MIN, f64::max);
    let min = pts.iter().map(|p| p.ratio).fold(f64::MAX, f64::min);
    let spread = if mean > 0.0 { (max - min) / mean } else { 0.0 };
    let r2 = (1.0 - spread).clamp(0.0, 1.0);
    Ok(FittedLaw::Constant { value: mean, r2 })
}

/// Relative spread threshold below which data counts as constant.
const FLATNESS_THRESHOLD: f64 = 0.15;

/// Relative spread threshold for the *tail* (largest memories): an
/// I/O-bounded computation may ramp up at small `M` but must saturate.
const TAIL_FLATNESS_THRESHOLD: f64 = 0.10;

/// Fits all candidate laws and selects the best.
///
/// Selection rule, mirroring the paper's taxonomy:
///
/// 1. if the data is nearly flat overall (relative spread below 15 %), or
///    the *tail half* of the sweep is flat (below 10 % — the saturation
///    signature of an I/O-bounded computation whose intensity stops growing
///    once the memory exceeds "a certain constant", §3.6), classify
///    constant;
/// 2. otherwise the power and logarithmic fits compete on R² in the
///    original space.
///
/// # Errors
///
/// Returns [`BalanceError::InsufficientData`] without two distinct usable
/// memory sizes.
///
/// # Examples
///
/// ```
/// use balance_core::fit::{fit_best, snap_degree, DataPoint};
/// use balance_core::GrowthLaw;
///
/// // Synthetic matmul-like data: r = 0.6·√M.
/// let pts: Vec<DataPoint> = (6..=16)
///     .map(|k| {
///         let m = (1u64 << k) as f64;
///         DataPoint::new(m, 0.6 * m.sqrt())
///     })
///     .collect();
/// let report = fit_best(&pts)?;
/// let law = snap_degree(report.best.growth_law(), 0.05);
/// assert_eq!(law, GrowthLaw::Polynomial { degree: 2.0 });
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
pub fn fit_best(points: &[DataPoint]) -> Result<FitReport, BalanceError> {
    let power = fit_power(points)?;
    let log = fit_log2(points)?;
    let constant = fit_constant(points)?;
    let candidates = vec![power, log, constant];

    let mut pts = usable(points)?;
    pts.sort_by(|a, b| a.memory.total_cmp(&b.memory));
    let mean = pts.iter().map(|p| p.ratio).sum::<f64>() / pts.len() as f64;
    let max = pts.iter().map(|p| p.ratio).fold(f64::MIN, f64::max);
    let min = pts.iter().map(|p| p.ratio).fold(f64::MAX, f64::min);
    let spread = if mean > 0.0 { (max - min) / mean } else { 0.0 };

    // Saturation test on the tail half of the sweep (at least 3 points).
    let tail_flat = if pts.len() >= 4 {
        let tail = &pts[pts.len() / 2..];
        let t_mean = tail.iter().map(|p| p.ratio).sum::<f64>() / tail.len() as f64;
        let t_max = tail.iter().map(|p| p.ratio).fold(f64::MIN, f64::max);
        let t_min = tail.iter().map(|p| p.ratio).fold(f64::MAX, f64::min);
        t_mean > 0.0 && (t_max - t_min) / t_mean < TAIL_FLATNESS_THRESHOLD
    } else {
        false
    };

    let best = if spread < FLATNESS_THRESHOLD || tail_flat {
        // Report the saturated value, not the ramp-polluted mean.
        let tail = &pts[pts.len() / 2..];
        let value = tail.iter().map(|p| p.ratio).sum::<f64>() / tail.len() as f64;
        FittedLaw::Constant {
            value,
            r2: constant.r2(),
        }
    } else if power.r2() >= log.r2() {
        power
    } else {
        log
    };
    Ok(FitReport { best, candidates })
}

/// Rounds a fitted polynomial growth degree to the nearest integer when it is
/// within `tol`, leaving other laws untouched.
///
/// Measured exponents come out as e.g. `0.497`; for reporting against the
/// paper's table it is convenient to snap `1/0.497 ≈ 2.01` to `2`.
#[must_use]
pub fn snap_degree(law: GrowthLaw, tol: f64) -> GrowthLaw {
    match law {
        GrowthLaw::Polynomial { degree } => {
            let nearest = degree.round();
            if (degree - nearest).abs() <= tol && nearest >= 1.0 {
                GrowthLaw::Polynomial { degree: nearest }
            } else {
                GrowthLaw::Polynomial { degree }
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(f: impl Fn(f64) -> f64) -> Vec<DataPoint> {
        (6..=16)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, f(m))
            })
            .collect()
    }

    #[test]
    fn recovers_planted_power_law() {
        let report = fit_best(&sweep(|m| 0.57 * m.powf(0.5))).unwrap();
        match report.best {
            FittedLaw::Power {
                coeff,
                exponent,
                r2,
            } => {
                assert!((coeff - 0.57).abs() < 1e-6);
                assert!((exponent - 0.5).abs() < 1e-9);
                assert!(r2 > 0.999_999);
            }
            other => panic!("expected power, got {other}"),
        }
    }

    #[test]
    fn recovers_planted_cube_root_law() {
        let report = fit_best(&sweep(|m| 1.4 * m.powf(1.0 / 3.0))).unwrap();
        match report.best {
            FittedLaw::Power { exponent, .. } => assert!((exponent - 1.0 / 3.0).abs() < 1e-9),
            other => panic!("expected power, got {other}"),
        }
        assert_eq!(
            snap_degree(report.best.growth_law(), 0.05),
            GrowthLaw::Polynomial { degree: 3.0 }
        );
    }

    #[test]
    fn recovers_planted_log_law() {
        let report = fit_best(&sweep(|m| 0.8 * m.log2())).unwrap();
        match report.best {
            FittedLaw::Log2 {
                coeff,
                intercept,
                r2,
            } => {
                assert!((coeff - 0.8).abs() < 1e-9);
                assert!(intercept.abs() < 1e-9);
                assert!(r2 > 0.999_999);
            }
            other => panic!("expected log, got {other}"),
        }
        assert_eq!(report.best.growth_law(), GrowthLaw::Exponential);
    }

    #[test]
    fn recovers_log_law_with_offset() {
        // Sorting-style data: the merge phase adds a constant offset.
        let report = fit_best(&sweep(|m| 1.5 + 0.5 * m.log2())).unwrap();
        assert!(matches!(report.best, FittedLaw::Log2 { .. }));
    }

    #[test]
    fn recovers_constant_law() {
        let report = fit_best(&sweep(|_| 2.0)).unwrap();
        match report.best {
            FittedLaw::Constant { value, .. } => assert!((value - 2.0).abs() < 1e-12),
            other => panic!("expected constant, got {other}"),
        }
        assert_eq!(report.best.growth_law(), GrowthLaw::Impossible);
    }

    #[test]
    fn recovers_constant_law_with_saturation_noise() {
        // Matvec-style data: ratio approaches 2 from below as M grows.
        let report = fit_best(&sweep(|m| 2.0 * (1.0 - 1.0 / m.sqrt()))).unwrap();
        assert!(
            matches!(report.best, FittedLaw::Constant { .. }),
            "got {}",
            report.best
        );
    }

    #[test]
    fn distinguishes_log_from_power_on_kernel_like_data() {
        // FFT-like measured data with a lower-order perturbation.
        let pts = sweep(|m| m.log2() * (1.0 + 0.02 * (m.log2() / 16.0)));
        let report = fit_best(&pts).unwrap();
        assert!(
            matches!(report.best, FittedLaw::Log2 { .. }),
            "got {}",
            report.best
        );
    }

    #[test]
    fn distinguishes_power_from_log_on_kernel_like_data() {
        // Matmul-like measured data including the N² write-back term:
        // r = 2N³ / (2N³/b + N²) with b = sqrt(M/3), N = 768.
        let n = 768.0f64;
        let pts = sweep(|m| {
            let b = (m / 3.0).sqrt();
            2.0 * n.powi(3) / (2.0 * n.powi(3) / b + n * n)
        });
        let report = fit_best(&pts).unwrap();
        match report.best {
            FittedLaw::Power { exponent, .. } => {
                assert!((exponent - 0.5).abs() < 0.1, "exponent {exponent}");
            }
            other => panic!("expected power, got {other}"),
        }
    }

    #[test]
    fn insufficient_data_is_rejected() {
        assert!(matches!(
            fit_best(&[]),
            Err(BalanceError::InsufficientData { .. })
        ));
        assert!(matches!(
            fit_best(&[DataPoint::new(64.0, 8.0)]),
            Err(BalanceError::InsufficientData { .. })
        ));
        // Two points at the same memory size are still insufficient.
        assert!(matches!(
            fit_best(&[DataPoint::new(64.0, 8.0), DataPoint::new(64.0, 8.1)]),
            Err(BalanceError::InsufficientData { .. })
        ));
    }

    #[test]
    fn unusable_points_are_filtered() {
        let mut pts = sweep(|m| m.sqrt());
        pts.push(DataPoint::new(f64::NAN, 1.0));
        pts.push(DataPoint::new(128.0, -3.0));
        pts.push(DataPoint::new(0.5, 1.0));
        let report = fit_best(&pts).unwrap();
        assert!(matches!(report.best, FittedLaw::Power { .. }));
    }

    #[test]
    fn snap_degree_behaviour() {
        assert_eq!(
            snap_degree(GrowthLaw::Polynomial { degree: 2.03 }, 0.05),
            GrowthLaw::Polynomial { degree: 2.0 }
        );
        assert_eq!(
            snap_degree(GrowthLaw::Polynomial { degree: 2.3 }, 0.05),
            GrowthLaw::Polynomial { degree: 2.3 }
        );
        assert_eq!(
            snap_degree(GrowthLaw::Exponential, 0.05),
            GrowthLaw::Exponential
        );
    }

    #[test]
    fn predict_matches_law_shape() {
        let p = FittedLaw::Power {
            coeff: 2.0,
            exponent: 0.5,
            r2: 1.0,
        };
        assert_eq!(p.predict(25.0), 10.0);
        let l = FittedLaw::Log2 {
            coeff: 1.0,
            intercept: 3.0,
            r2: 1.0,
        };
        assert_eq!(l.predict(8.0), 6.0);
        let c = FittedLaw::Constant {
            value: 2.0,
            r2: 1.0,
        };
        assert_eq!(c.predict(1.0e9), 2.0);
    }

    #[test]
    fn report_display() {
        let report = fit_best(&sweep(|m| m.sqrt())).unwrap();
        assert!(report.to_string().contains("best:"));
        assert_eq!(report.candidates.len(), 3);
    }
}
