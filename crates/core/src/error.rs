//! Error type shared by the balance-model APIs.

use core::fmt;

use crate::units::Words;

/// Errors produced by balance-model computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BalanceError {
    /// A bandwidth, ratio, or scale factor must be finite and positive.
    InvalidQuantity {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The rebalance factor `α` must be ≥ 1 (the paper's question assumes the
    /// compute-to-I/O ratio *increased*).
    AlphaBelowOne {
        /// The offending value.
        value: f64,
    },
    /// The computation is I/O-bounded (`r(M) = Θ(1)`): no memory size can
    /// restore balance without raising the I/O bandwidth (paper §3.6).
    IoBounded,
    /// A memory size of zero words was supplied where a positive size is
    /// required.
    ZeroMemory,
    /// The requested memory exceeds what can be represented.
    MemoryOverflow {
        /// The uncapped analytic answer, in words.
        requested: f64,
    },
    /// The intensity value cannot be reached by the model (e.g. inverting a
    /// constant model, or a non-positive target).
    UnreachableIntensity {
        /// The target intensity.
        target: f64,
    },
    /// Not enough data points to fit a law (at least two distinct memory
    /// sizes with positive ratios are required).
    InsufficientData {
        /// Number of usable points supplied.
        points: usize,
    },
    /// A numeric solver failed to bracket or converge.
    SolverFailure {
        /// Human-readable cause.
        reason: &'static str,
    },
    /// The supplied memory is too small for the computation's minimum working
    /// set.
    MemoryTooSmall {
        /// The supplied size.
        have: Words,
        /// The minimum required size.
        need: Words,
    },
    /// A memory-hierarchy specification is malformed (empty, too deep, or
    /// capacities not growing outward).
    InvalidHierarchy {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::InvalidQuantity { what, value } => {
                write!(f, "invalid {what}: {value} (must be finite and positive)")
            }
            BalanceError::AlphaBelowOne { value } => {
                write!(f, "rebalance factor alpha must be >= 1, got {value}")
            }
            BalanceError::IoBounded => write!(
                f,
                "computation is I/O-bounded: no local memory size restores balance \
                 without increasing I/O bandwidth"
            ),
            BalanceError::ZeroMemory => write!(f, "memory size must be positive"),
            BalanceError::MemoryOverflow { requested } => {
                write!(f, "required memory overflows u64: {requested:.3e} words")
            }
            BalanceError::UnreachableIntensity { target } => {
                write!(f, "intensity {target} is unreachable for this model")
            }
            BalanceError::InsufficientData { points } => {
                write!(f, "need at least 2 usable data points, got {points}")
            }
            BalanceError::SolverFailure { reason } => write!(f, "solver failure: {reason}"),
            BalanceError::MemoryTooSmall { have, need } => {
                write!(f, "memory too small: have {have}, need at least {need}")
            }
            BalanceError::InvalidHierarchy { reason } => {
                write!(f, "invalid memory hierarchy: {reason}")
            }
        }
    }
}

impl std::error::Error for BalanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BalanceError::InvalidQuantity {
            what: "io bandwidth",
            value: -1.0,
        };
        assert!(e.to_string().contains("io bandwidth"));
        assert!(e.to_string().contains("-1"));

        assert!(BalanceError::IoBounded.to_string().contains("I/O-bounded"));
        assert!(BalanceError::AlphaBelowOne { value: 0.5 }
            .to_string()
            .contains("0.5"));
        let e = BalanceError::MemoryTooSmall {
            have: Words::new(3),
            need: Words::new(12),
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("12"));
        let e = BalanceError::InvalidHierarchy {
            reason: "capacities shrink".into(),
        };
        assert!(e.to_string().contains("capacities shrink"));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&BalanceError::ZeroMemory);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(BalanceError::IoBounded, BalanceError::IoBounded);
        assert_ne!(
            BalanceError::ZeroMemory,
            BalanceError::AlphaBelowOne { value: 0.0 }
        );
    }
}
