//! Tagged memory accesses: the device-realistic trace item.
//!
//! The paper's model prices a single scalar stream of words, but every
//! real memory boundary distinguishes the direction of a transfer: a
//! *read* (fetch) fills a line from the outer level, a *write* dirties it
//! and eventually forces a write-back. [`Access`] is the trace item that
//! carries that distinction — a word address plus an [`AccessKind`] tag —
//! and is what every kernel's canonical trace yields (see
//! `balance-kernels`' trace builders) and what the line-granular replay
//! engines consume (`balance-machine`'s dirty-bit `LruCache` and the
//! write-back ledger of its `TrafficProfile`).
//!
//! A read-modify-write (e.g. matmul's `C[i][j] += …` accumulation) is
//! tagged [`AccessKind::Write`]: the fetch it implies is accounted anyway
//! (a write miss allocates the line — write-allocate semantics), and the
//! tag is what records that the line leaves dirty.

use core::fmt;

/// The direction of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load: fills the line, leaves it clean.
    Read,
    /// A store (or read-modify-write): fills the line under write-allocate
    /// semantics and marks it dirty, so its eventual eviction emits a
    /// write-back.
    Write,
}

/// One tagged memory access: a word address and its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The word address touched.
    pub addr: u64,
    /// Whether the access reads or writes the word.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `addr`.
    #[must_use]
    pub const fn read(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write of `addr`.
    #[must_use]
    pub const fn write(addr: u64) -> Self {
        Access {
            addr,
            kind: AccessKind::Write,
        }
    }

    /// True for [`AccessKind::Write`].
    #[must_use]
    pub const fn is_write(&self) -> bool {
        matches!(self.kind, AccessKind::Write)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::Read => write!(f, "R {}", self.addr),
            AccessKind::Write => write!(f, "W {}", self.addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_direction() {
        assert_eq!(Access::read(7).kind, AccessKind::Read);
        assert_eq!(Access::write(7).kind, AccessKind::Write);
        assert!(!Access::read(7).is_write());
        assert!(Access::write(7).is_write());
        assert_eq!(Access::read(7).addr, 7);
    }

    #[test]
    fn display_shows_direction() {
        assert_eq!(Access::read(3).to_string(), "R 3");
        assert_eq!(Access::write(12).to_string(), "W 12");
    }
}
