//! Fast executable checks of the paper's headline claims (Kung 1985).
//!
//! Each test pins one of the quantitative statements the paper is cited for,
//! straight through the public `balance-core` API:
//!
//! * §3.1–3.2 — `r(M) = Θ(√M)` computations (matmul, LU) need `M_new = α²·M_old`;
//! * §3.3 — `r(M) = Θ(M^(1/d))` (d-dimensional grids) need `M_new = α^d·M_old`;
//! * §3.4–3.5 — `r(M) = Θ(log₂ M)` (FFT, sorting) need `M_new = M_old^α`;
//! * §3.6 — constant intensity (matvec, trisolve) cannot be rebalanced by any
//!   memory enlargement.
//!
//! Everything here is closed-form arithmetic: the whole suite runs in
//! microseconds and acts as the tier-1 smoke check for the model crate.

use balance_core::{rebalance, Alpha, BalanceError, GrowthLaw, IntensityModel, Words};

const M_OLD: u64 = 4096;

fn growth(model: &IntensityModel, alpha: f64) -> f64 {
    rebalance(model, Alpha::new(alpha).unwrap(), Words::new(M_OLD))
        .expect("rebalanceable model")
        .growth_factor()
}

/// §3.1: when C/IO grows by α, a √M-intensity computation (blocked matmul)
/// must grow its memory by exactly α².
#[test]
fn sqrt_m_rebalances_as_alpha_squared() {
    for alpha in [1.0, 1.5, 2.0, 3.0, 4.0, 8.0] {
        let g = growth(&IntensityModel::sqrt_m(1.0), alpha);
        let expected = alpha * alpha;
        assert!(
            (g - expected).abs() / expected < 1e-9,
            "alpha {alpha}: growth {g}, expected {expected}"
        );
    }
}

/// §3.1 as the paper states it: quadrupling C/IO means sixteen-fold memory.
#[test]
fn quadrupled_balance_needs_sixteenfold_memory() {
    let plan = rebalance(
        &IntensityModel::sqrt_m(1.0),
        Alpha::new(4.0).unwrap(),
        Words::new(1024),
    )
    .unwrap();
    assert_eq!(plan.growth_factor(), 16.0);
    assert_eq!(plan.new_memory, Words::new(16 * 1024));
}

/// §3.3 specialised to d = 3: cube-root intensity (3-D grid relaxation)
/// rebalances as α³.
#[test]
fn cube_root_rebalances_as_alpha_cubed() {
    for alpha in [1.0, 2.0, 3.0, 4.0] {
        let g = growth(&IntensityModel::root_m(3, 1.0), alpha);
        let expected = alpha.powi(3);
        assert!(
            (g - expected).abs() / expected < 1e-9,
            "alpha {alpha}: growth {g}, expected {expected}"
        );
    }
}

/// §3.3 in general: M^(1/d) intensity rebalances as α^d, and the model
/// reports exactly that polynomial growth law.
#[test]
fn root_m_rebalances_as_alpha_to_the_d() {
    for d in 1..=4u32 {
        let model = IntensityModel::root_m(d, 1.0);
        assert_eq!(
            model.growth_law(),
            GrowthLaw::Polynomial { degree: d as f64 }
        );
        for alpha in [1.5, 2.0, 4.0] {
            let g = growth(&model, alpha);
            let expected = alpha.powi(d as i32);
            assert!(
                (g - expected).abs() / expected < 1e-9,
                "d {d}, alpha {alpha}: growth {g}, expected {expected}"
            );
        }
    }
}

/// §3.4–3.5: log₂ M intensity (FFT, sorting) needs M_new = M_old^α — the
/// exponential law, with its catastrophic growth even at small α.
#[test]
fn log2_m_rebalances_exponentially() {
    let model = IntensityModel::log2_m(1.0);
    assert_eq!(model.growth_law(), GrowthLaw::Exponential);
    let plan = rebalance(&model, Alpha::new(2.0).unwrap(), Words::new(M_OLD)).unwrap();
    let expected = (M_OLD as f64).powf(2.0); // 4096² = 16,777,216 words
    let got = plan.new_memory.as_f64();
    assert!(
        (got - expected).abs() / expected < 1e-9,
        "expected M_old^2 = {expected}, got {got}"
    );
    // The growth factor equals M_old^(α-1) = 4096 — already dwarfing the α²=4
    // a matrix computation would need (the paper's FFT-vs-matmul contrast).
    assert!((plan.growth_factor() - 4096.0).abs() < 1e-6);
}

/// §3.6: constant intensity (matvec, triangular solve with large bandwidth)
/// is I/O-bounded — no memory enlargement restores balance, and the solver
/// says so with a structured error rather than a huge number.
#[test]
fn constant_intensity_cannot_be_rebalanced() {
    for value in [0.5, 1.0, 2.0, 100.0] {
        let model = IntensityModel::constant(value);
        assert!(model.is_io_bounded());
        assert_eq!(model.growth_law(), GrowthLaw::Impossible);
        for alpha in [1.5, 2.0, 4.0] {
            match rebalance(&model, Alpha::new(alpha).unwrap(), Words::new(M_OLD)) {
                Err(BalanceError::IoBounded) => {}
                other => panic!("expected IoBounded for r(M)={value}, got {other:?}"),
            }
        }
    }
}

/// The degenerate α = 1 case: nothing changed, so no model asks for more
/// memory (growth factor exactly 1 for every rebalanceable law).
#[test]
fn alpha_one_is_a_no_op() {
    for model in [
        IntensityModel::sqrt_m(2.0),
        IntensityModel::root_m(3, 1.0),
        IntensityModel::log2_m(1.0),
    ] {
        let plan = rebalance(&model, Alpha::new(1.0).unwrap(), Words::new(M_OLD)).unwrap();
        assert_eq!(
            plan.growth_factor(),
            1.0,
            "model {model} grew at alpha = 1"
        );
    }
}
