//! Property-based tests for the balance-model invariants.

use balance_core::fit::{fit_best, DataPoint, FittedLaw};
use balance_core::solver::{bisect_increasing, MeasuredCurve};
use balance_core::{
    rebalance, Alpha, BalanceError, CostProfile, GrowthLaw, IntensityModel, OpsPerSec, PeSpec,
    Words, WordsPerSec,
};
use proptest::prelude::*;

fn arb_power_model() -> impl Strategy<Value = IntensityModel> {
    (0.05f64..10.0, 0.1f64..1.0)
        .prop_map(|(coeff, exponent)| IntensityModel::Power { coeff, exponent })
}

fn arb_model() -> impl Strategy<Value = IntensityModel> {
    prop_oneof![
        arb_power_model(),
        (0.05f64..10.0).prop_map(IntensityModel::log2_m),
        (0.05f64..10.0).prop_map(IntensityModel::constant),
    ]
}

proptest! {
    /// r(inverse(t)) == t for every invertible model.
    #[test]
    fn inverse_is_right_inverse(model in arb_model(), target in 0.5f64..500.0) {
        match model.inverse(target) {
            Ok(m) => {
                let r = model.eval(m);
                prop_assert!((r - target).abs() / target < 1e-9,
                    "model {model}: eval(inverse({target})) = {r}");
            }
            Err(BalanceError::IoBounded) => prop_assert!(model.is_io_bounded()),
            Err(BalanceError::MemoryOverflow { .. }) => {
                // Log models with tiny coefficients can demand > u64 memory.
                let is_log = matches!(model, IntensityModel::Log2 { .. });
                prop_assert!(is_log);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// inverse(r(M)) == M for invertible models over sensible memory sizes.
    #[test]
    fn inverse_is_left_inverse(model in arb_model(), m in 4.0f64..1.0e9) {
        let r = model.eval(m);
        if r > 0.0 {
            match model.inverse(r) {
                Ok(m2) => prop_assert!((m2 - m).abs() / m < 1e-6,
                    "model {model}: inverse(eval({m})) = {m2}"),
                Err(BalanceError::IoBounded) => prop_assert!(model.is_io_bounded()),
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    /// The rebalanced memory indeed raises the model ratio by alpha.
    #[test]
    fn rebalance_achieves_alpha(
        model in arb_model(),
        alpha in 1.0f64..4.0,
        m_old in 16u64..100_000,
    ) {
        let m_old = Words::new(m_old);
        match rebalance(&model, Alpha::new(alpha).unwrap(), m_old) {
            Ok(plan) => {
                let r_old = model.eval_words(m_old);
                let r_new = model.eval_words(plan.new_memory);
                // Rounding to whole words costs a little accuracy at small M.
                prop_assert!((r_new / r_old - alpha).abs() / alpha < 0.02,
                    "model {model}, alpha {alpha}: ratio grew {}", r_new / r_old);
            }
            Err(BalanceError::IoBounded) => prop_assert!(model.is_io_bounded()),
            Err(BalanceError::MemoryOverflow { .. }) => {
                // Exponential law can overflow; that is the paper's point.
                prop_assert!(matches!(model.growth_law(), GrowthLaw::Exponential));
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Growth factors are monotone in alpha.
    #[test]
    fn growth_monotone_in_alpha(
        degree in 1.0f64..4.0,
        a1 in 1.0f64..4.0,
        a2 in 1.0f64..4.0,
    ) {
        let law = GrowthLaw::Polynomial { degree };
        let m = Words::new(1024);
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        let g_lo = law.growth_factor(lo, m).unwrap();
        let g_hi = law.growth_factor(hi, m).unwrap();
        prop_assert!(g_lo <= g_hi + 1e-12);
    }

    /// Fitting recovers a planted power exponent to within 2%.
    #[test]
    fn fit_recovers_power_exponent(coeff in 0.1f64..5.0, exponent in 0.2f64..0.9) {
        let pts: Vec<DataPoint> = (5..=17)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, coeff * m.powf(exponent))
            })
            .collect();
        let report = fit_best(&pts).unwrap();
        match report.best {
            FittedLaw::Power { exponent: e, .. } =>
                prop_assert!((e - exponent).abs() < 0.02 * exponent.max(0.2)),
            other => prop_assert!(false, "expected power law, got {other}"),
        }
    }

    /// Fitting recovers a planted log law.
    #[test]
    fn fit_recovers_log_law(coeff in 0.2f64..5.0, intercept in 0.0f64..3.0) {
        let pts: Vec<DataPoint> = (5..=17)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, intercept + coeff * m.log2())
            })
            .collect();
        let report = fit_best(&pts).unwrap();
        prop_assert!(matches!(report.best, FittedLaw::Log2 { .. }),
            "got {}", report.best);
    }

    /// MeasuredCurve::empirical_rebalance on planted power data matches
    /// the alpha^(1/e) law without being told the law.
    #[test]
    fn curve_rebalance_matches_law(
        exponent in 0.25f64..0.75,
        alpha in 1.1f64..3.0,
    ) {
        let pts: Vec<DataPoint> = (4..=20)
            .map(|k| {
                let m = (1u64 << k) as f64;
                DataPoint::new(m, 2.0 * m.powf(exponent))
            })
            .collect();
        let curve = MeasuredCurve::new(&pts).unwrap();
        let m_old = 4096.0;
        let m_new = curve.empirical_rebalance(alpha, m_old).unwrap();
        let expected = alpha.powf(1.0 / exponent) * m_old;
        prop_assert!((m_new - expected).abs() / expected < 1e-3,
            "exponent {exponent}, alpha {alpha}: {m_new} vs {expected}");
    }

    /// Bisection solves monotone targets it brackets.
    #[test]
    fn bisection_solves(target in 0.1f64..99.0) {
        let x = bisect_increasing(|x| x, target, 0.0, 100.0, 1e-12, 200).unwrap();
        prop_assert!((x - target).abs() < 1e-6);
    }

    /// Balance predicate: scaling C and IO by the same factor preserves the
    /// balance state.
    #[test]
    fn balance_invariant_under_uniform_scaling(
        comp in 1u64..1_000_000,
        io in 1u64..1_000_000,
        scale in 0.1f64..100.0,
    ) {
        let cost = CostProfile::new(comp, io);
        let pe1 = PeSpec::new(OpsPerSec::new(50.0), WordsPerSec::new(10.0), Words::new(64)).unwrap();
        let pe2 = PeSpec::new(
            OpsPerSec::new(50.0 * scale),
            WordsPerSec::new(10.0 * scale),
            Words::new(64),
        ).unwrap();
        let s1 = cost.balance_state(&pe1, 0.05);
        let s2 = cost.balance_state(&pe2, 0.05);
        prop_assert_eq!(s1.is_balanced(), s2.is_balanced());
    }

    /// Aggregating p PEs behind one port multiplies machine balance by p.
    #[test]
    fn aggregate_alpha_is_p(p in 1u64..1000) {
        let pe = PeSpec::new(OpsPerSec::new(7.0), WordsPerSec::new(3.0), Words::new(128)).unwrap();
        let agg = pe.aggregate(p).unwrap();
        let alpha = Alpha::between(&pe, &agg).unwrap();
        prop_assert!((alpha.get() - p as f64).abs() < 1e-9);
    }
}
