//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, API-compatible subset of proptest sufficient for the six
//! `crates/*/tests/proptests.rs` suites:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples, and the combinators below;
//! * [`prop_oneof!`], [`collection::vec`], [`bool::ANY`];
//! * the [`proptest!`] test-harness macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning structured failures.
//!
//! ## Determinism
//!
//! Unlike upstream proptest (OS-entropy seeds + shrinking), every test case
//! here is derived from a fixed per-test seed: the FNV-1a hash of the test's
//! `module_path!()::name`. Runs are therefore bit-for-bit reproducible across
//! machines and CI runs — no flakes, no regression files. Case counts are
//! bounded (default 64) and can be overridden per-suite with
//! `ProptestConfig::with_cases(n)` or globally with the `PROPTEST_CASES`
//! environment variable. There is no shrinking: failures report the case
//! index and seed, which replays exactly.

#![forbid(unsafe_code)]

pub use rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// The source of randomness handed to strategies: the workspace's
    /// deterministic SplitMix64 generator.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
    /// replaces `new_tree` + `current`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that yields a fixed value (upstream's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased generation closure, as stored by [`Union`].
    pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice among boxed alternatives; built by [`crate::prop_oneof!`].
    pub struct Union<V> {
        variants: Vec<BoxedGen<V>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} variants)", self.variants.len())
        }
    }

    impl<V> Union<V> {
        /// Build from the closures produced by [`Union::boxed`].
        pub fn new(variants: Vec<BoxedGen<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }

        /// Erase a strategy into a generation closure.
        pub fn boxed<S>(s: S) -> BoxedGen<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            Box::new(move |rng| s.generate(rng))
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng as _;
            let idx = rng.gen_range(0..self.variants.len());
            (self.variants[idx])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `elem` and a length drawn
    /// from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(elem, 1..20)`: vectors of 1–19 elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                // Empty ranges fall through and panic in gen_range, matching
                // upstream proptest's rejection of them.
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::Rng as _;
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use rand::SeedableRng as _;

    /// Per-suite configuration, exposed in the prelude as `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs. Bounded by design; override
        /// globally with the `PROPTEST_CASES` env var.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Cases to actually run: `PROPTEST_CASES` env override, else the
        /// configured count.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256 with shrinking; 64 deterministic cases
            // keeps tier-1 fast while still sweeping each strategy broadly.
            Config { cases: 64 }
        }
    }

    /// A failed property case (what `prop_assert!` returns).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic per-test seed: FNV-1a over the fully qualified test name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// RNG for case `case` of the test named `test_name`.
    pub fn rng_for(test_name: &str, case: u32) -> crate::strategy::TestRng {
        crate::strategy::TestRng::seed_from_u64(
            seed_for(test_name).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        )
    }
}

/// Everything the test suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies (all must share a `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($strat)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failures abort only the current case
/// with a structured message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` ({:?} != {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// The proptest harness macro: wraps each `fn name(arg in strategy, …)` into
/// a `#[test]` that runs `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.effective_cases();
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut rng = $crate::test_runner::rng_for(test_name, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} of {} failed: {}\n(deterministic; rerun reproduces this case)",
                            case + 1, cases, test_name, err
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}
