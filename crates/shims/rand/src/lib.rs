//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, API-compatible subset of `rand 0.8`: a deterministic [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over the
//! half-open and inclusive integer/float ranges the workspace actually uses.
//!
//! The generator is SplitMix64 — statistically solid for test-data generation
//! and fully deterministic, which is exactly what the reproduction needs
//! (every `random_*` workload and proptest case is replayable from its seed).
//! It does **not** promise the same streams as upstream `rand`, and it is not
//! cryptographically secure.

#![forbid(unsafe_code)]

/// A random number generator seedable from simple integer state.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds yield identical
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample from, producing values of `T`.
///
/// Generic over the output type (matching upstream `rand`) so that integer
/// literals in `gen_range(0..100)` infer their width from the use site.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // 53 high bits -> uniform in [0, 1].
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                // Clamp rounding overshoot so a..=b never exceeds b.
                (start + unit * (end - start)).min(end)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Drop-in for `rand::rngs::StdRng` in this workspace: seedable from a
    /// `u64`, with reproducible streams across runs and platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when used
            // as a stream; one multiply-xor-shift pipeline per output.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng as _};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let k = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }
}
