//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal harness with criterion's bench-target API surface: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It measures median wall-clock time over `sample_size` samples (after a
//! warm-up pass) and prints one line per benchmark — no statistics engine,
//! plots, or baselines. `cargo bench` compiles and runs; `cargo test` builds
//! bench targets in test mode and runs nothing, exactly like upstream.
//!
//! Two environment knobs drive the CI bench-smoke step
//! (`scripts/bench_smoke.sh`):
//!
//! * `BENCH_SMOKE=1` clamps every benchmark to ≤ 3 samples of ≤ 3 iters —
//!   coarse medians, but the whole suite finishes in seconds;
//! * `BENCH_JSON=<path>` appends one JSON object-member line per benchmark
//!   (`"group/name": <median ns>`); the smoke script wraps the lines into
//!   the `BENCH_<n>.json` perf-trajectory file at the repo root.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    samples_target: usize,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: size the inner loop so one sample is ≥ ~1ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iter_cap = if smoke_mode() { 3 } else { 10_000 };
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, iter_cap) as u32;
        self.iters_per_sample = iters;

        let samples = if smoke_mode() {
            self.samples_target.clamp(1, 3)
        } else {
            self.samples_target.max(1)
        };
        self.samples.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }

    fn reserve_samples(&mut self, n: usize) {
        self.samples_target = n;
        self.samples = Vec::with_capacity(n);
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream default 100; this
    /// shim defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        b.reserve_samples(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run a benchmark that closes over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        b.reserve_samples(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Finish the group (upstream consumes `self`; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        b.reserve_samples(10);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Upstream finalization hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// True when `BENCH_SMOKE` asks for reduced iterations (CI smoke step).
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn report(name: &str, b: &Bencher) {
    let med = b.median();
    println!(
        "bench: {name:<40} median {:>12} ({} samples x {} iters)",
        format_duration(med),
        b.samples.len(),
        b.iters_per_sample,
    );
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        append_json_line(&path, name, med);
    }
}

/// Appends `"name": <median ns>` to the `BENCH_JSON` file — one JSON
/// object member per line, assembled into a full object by the bench-smoke
/// script. Bench names contain no characters needing JSON escaping.
fn append_json_line(path: &std::ffi::OsStr, name: &str, med: Duration) {
    use std::io::Write as _;
    let line = format!("\"{name}\": {}\n", med.as_nanos());
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: BENCH_JSON write to {path:?} failed: {e}");
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundle benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate `main` running the listed groups, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
        c.bench_function("solo", |b| b.iter(|| 40 + 2));
    }

    #[test]
    fn json_lines_are_object_members() {
        let path = std::env::temp_dir().join("criterion_shim_json_test.jsonl");
        let _ = std::fs::remove_file(&path);
        append_json_line(path.as_os_str(), "grp/bench", Duration::from_nanos(1234));
        append_json_line(path.as_os_str(), "solo", Duration::from_micros(5));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "\"grp/bench\": 1234\n\"solo\": 5000\n");
        let _ = std::fs::remove_file(&path);
    }
}
