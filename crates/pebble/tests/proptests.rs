//! Property-based tests for the pebble game: random DAGs, random orders,
//! random capacities — schedules must always be legal, complete, and no
//! better than the exact optimum.

use balance_pebble::bounds::compulsory_lower_bound;
use balance_pebble::builders::{fft_dag, matmul_dag, stencil1d_dag, tree_dag};
use balance_pebble::dag::Dag;
use balance_pebble::optimal::minimum_io;
use balance_pebble::strategies::{natural_order, schedule_with_order};
use balance_pebble::{EvictionPolicy, Game};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A random layered DAG: `layers × width` vertices, each non-input vertex
/// drawing 1–3 predecessors from the previous layer; last layer = outputs.
fn random_layered_dag(layers: usize, width: usize, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dag = Dag::new();
    let mut prev: Vec<_> = (0..width).map(|_| dag.add_input()).collect();
    for _ in 1..layers {
        let next: Vec<_> = (0..width)
            .map(|_| {
                let fan = rng.gen_range(1..=3.min(width));
                let mut preds = Vec::with_capacity(fan);
                while preds.len() < fan {
                    let p = prev[rng.gen_range(0..width)];
                    if !preds.contains(&p) {
                        preds.push(p);
                    }
                }
                dag.add_node(&preds)
            })
            .collect();
        prev = next;
    }
    for v in prev {
        dag.mark_output(v);
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated schedule replays legally and completes the DAG, with
    /// matching I/O accounting — for random DAGs, policies, and capacities.
    #[test]
    fn schedules_are_legal_and_complete(
        layers in 2usize..5,
        width in 2usize..6,
        seed in 0u64..500,
        extra_capacity in 0usize..8,
        lru in proptest::bool::ANY,
    ) {
        let dag = random_layered_dag(layers, width, seed);
        let s = dag.max_fan_in() + 1 + extra_capacity;
        let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Belady };
        let out = schedule_with_order(&dag, &natural_order(&dag), s, policy).unwrap();

        let mut game = Game::new(&dag, s);
        game.play(&out.schedule).unwrap();
        prop_assert!(game.is_complete());
        prop_assert_eq!(game.io(), out.io);
        prop_assert_eq!(game.computes(), out.computes);
        // Each non-input vertex computed exactly once (no recompute in this
        // strategy family).
        prop_assert_eq!(out.computes as usize, dag.compute_count());
    }

    /// I/O never beats the compulsory bound.
    #[test]
    fn io_respects_compulsory_bound(
        layers in 2usize..5,
        width in 2usize..6,
        seed in 0u64..500,
    ) {
        let dag = random_layered_dag(layers, width, seed);
        let s = dag.max_fan_in() + 2;
        let out = schedule_with_order(&dag, &natural_order(&dag), s, EvictionPolicy::Belady)
            .unwrap();
        prop_assert!(out.io >= compulsory_lower_bound(&dag));
    }

    /// With unbounded capacity the greedy schedule reads each consumed
    /// input exactly once and writes each output exactly once. (The
    /// strategy computes every vertex, so inputs consumed only by dead
    /// vertices are still read — it does no dead-code elimination; the
    /// compulsory bound may be strictly lower.)
    #[test]
    fn unbounded_capacity_is_compulsory(
        layers in 2usize..5,
        width in 2usize..5,
        seed in 0u64..500,
    ) {
        let dag = random_layered_dag(layers, width, seed);
        let out = schedule_with_order(
            &dag,
            &natural_order(&dag),
            dag.len() + 1,
            EvictionPolicy::Belady,
        )
        .unwrap();
        let consumed_inputs = dag
            .inputs()
            .iter()
            .filter(|v| !dag.succs(**v).is_empty())
            .count() as u64;
        prop_assert_eq!(out.io, consumed_inputs + dag.outputs().len() as u64);
        prop_assert!(out.io >= compulsory_lower_bound(&dag));
    }

    /// Belady's classical guarantee: for a fixed reference order it never
    /// performs more *fetches* (R1 reads) than any other eviction policy.
    /// (Total I/O can differ either way: a far-future victim may be dirty
    /// and cost a write-back where LRU happened to evict a clean value —
    /// proptest found exactly such a case, pinned in the regression file.)
    #[test]
    fn belady_never_fetches_more_than_lru(
        layers in 2usize..5,
        width in 2usize..5,
        seed in 0u64..300,
        extra in 0usize..4,
    ) {
        let dag = random_layered_dag(layers, width, seed);
        let s = dag.max_fan_in() + 1 + extra;
        let order = natural_order(&dag);
        let belady = schedule_with_order(&dag, &order, s, EvictionPolicy::Belady).unwrap();
        let lru = schedule_with_order(&dag, &order, s, EvictionPolicy::Lru).unwrap();
        let reads = |schedule: &[balance_pebble::Move]| {
            schedule
                .iter()
                .filter(|m| matches!(m, balance_pebble::Move::ReadIn(_)))
                .count()
        };
        prop_assert!(
            reads(&belady.schedule) <= reads(&lru.schedule),
            "belady {} reads > lru {} reads",
            reads(&belady.schedule),
            reads(&lru.schedule)
        );
    }

    /// Greedy I/O is monotone non-increasing in capacity (Belady).
    #[test]
    fn io_monotone_in_capacity(seed in 0u64..200) {
        let dag = random_layered_dag(4, 4, seed);
        let order = natural_order(&dag);
        let base = dag.max_fan_in() + 1;
        let mut last = u64::MAX;
        for s in [base, base + 2, base + 4, base + 8, base + 16] {
            let out = schedule_with_order(&dag, &order, s, EvictionPolicy::Belady).unwrap();
            prop_assert!(out.io <= last);
            last = out.io;
        }
    }

    /// Greedy never beats the exact optimum on tiny random DAGs.
    #[test]
    fn greedy_never_beats_optimal(seed in 0u64..150) {
        let dag = random_layered_dag(3, 3, seed); // 9 nodes: solvable exactly
        let s = dag.max_fan_in() + 1;
        if let Some(opt) = minimum_io(&dag, s) {
            let greedy =
                schedule_with_order(&dag, &natural_order(&dag), s, EvictionPolicy::Belady)
                    .unwrap();
            prop_assert!(greedy.io >= opt, "greedy {} < optimal {opt}", greedy.io);
        }
    }
}

#[test]
fn classic_dags_all_schedule() {
    // A non-random sweep over the builder menagerie at assorted capacities.
    let cases: Vec<(Dag, usize)> = vec![
        (fft_dag(16), 8),
        (fft_dag(32), 12),
        (matmul_dag(4), 6),
        (stencil1d_dag(8, 3), 6),
        (tree_dag(16), 5),
    ];
    for (dag, s) in cases {
        let out = schedule_with_order(&dag, &natural_order(&dag), s, EvictionPolicy::Belady)
            .expect("schedulable");
        let mut game = Game::new(&dag, s);
        game.play(&out.schedule).expect("legal");
        assert!(game.is_complete());
    }
}
