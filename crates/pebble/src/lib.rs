//! # balance-pebble
//!
//! The red–blue pebble game of Hong & Kung (STOC 1981) — the machinery
//! behind the optimality claims in Kung (1985): *"It has been shown that for
//! matrix multiplication / the FFT, any decomposition scheme yields [the
//! stated ratio], … the best possible."*
//!
//! * [`dag`] — computation DAGs (built by [`builders`]: FFT butterflies,
//!   matmul chains, stencils, trees, diamonds);
//! * [`game`] — the four rules (R1 input, R2 compute, R3 output, R4 delete),
//!   legality checking, and I/O counting under a red-pebble budget `S`;
//! * [`strategies`] — schedule generation from computation orders (the
//!   paper's blocked schemes expressed as pebbling orders) with Belady or
//!   LRU spilling;
//! * [`optimal`] — exact minimum-I/O search for tiny DAGs (0-1 BFS over
//!   game states);
//! * [`bounds`] — conservative explicit-constant Hong–Kung lower bounds.
//!
//! ## Example
//!
//! ```
//! use balance_pebble::builders::fft_dag;
//! use balance_pebble::strategies::{blocked_fft_order, schedule_with_order, EvictionPolicy};
//! use balance_pebble::bounds::fft_lower_bound;
//!
//! let n = 16;
//! let dag = fft_dag(n);
//! let out = schedule_with_order(&dag, &blocked_fft_order(n, 4), 12, EvictionPolicy::Belady)?;
//! assert!(out.io >= fft_lower_bound(n, 12)); // never beats the lower bound
//! # Ok::<(), balance_pebble::strategies::StrategyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod builders;
pub mod dag;
pub mod game;
pub mod optimal;
pub mod strategies;

pub use dag::{Dag, NodeId};
pub use game::{Game, GameError, Move};
pub use strategies::{schedule_with_order, EvictionPolicy, StrategyOutcome};
