//! Computation DAGs for the pebble game.
//!
//! A [`Dag`] is the directed acyclic graph of a straight-line computation:
//! vertices are values, edges point from operands to results. Vertices with
//! no predecessors are **inputs**; vertices marked as results are
//! **outputs**. Acyclicity is guaranteed by construction — a node may only
//! name already-existing nodes as predecessors, so node ids are a
//! topological order.

use core::fmt;

/// A vertex in a computation DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A computation DAG under construction / in use.
///
/// # Examples
///
/// ```
/// use balance_pebble::dag::Dag;
///
/// // c = a + b
/// let mut dag = Dag::new();
/// let a = dag.add_input();
/// let b = dag.add_input();
/// let c = dag.add_node(&[a, b]);
/// dag.mark_output(c);
/// assert_eq!(dag.inputs().len(), 2);
/// assert_eq!(dag.outputs(), &[c]);
/// assert_eq!(dag.preds(c), &[a, b]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dag {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
    is_output: Vec<bool>,
}

impl Dag {
    /// Creates an empty DAG.
    #[must_use]
    pub fn new() -> Self {
        Dag::default()
    }

    /// Adds an input vertex (no predecessors).
    pub fn add_input(&mut self) -> NodeId {
        self.add_node(&[])
    }

    /// Adds a vertex computed from `preds` (all must already exist).
    ///
    /// # Panics
    ///
    /// Panics if a predecessor id is out of range (construction bug).
    pub fn add_node(&mut self, preds: &[NodeId]) -> NodeId {
        let id = NodeId(u32::try_from(self.preds.len()).expect("dag too large"));
        for p in preds {
            assert!(
                p.index() < self.preds.len(),
                "predecessor {p} does not exist yet"
            );
            self.succs[p.index()].push(id);
        }
        self.preds.push(preds.to_vec());
        self.succs.push(Vec::new());
        self.is_output.push(false);
        id
    }

    /// Marks a vertex as an output of the computation.
    ///
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn mark_output(&mut self, v: NodeId) {
        assert!(v.index() < self.preds.len(), "no such node {v}");
        if !self.is_output[v.index()] {
            self.is_output[v.index()] = true;
            self.outputs.push(v);
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The predecessors (operands) of `v`.
    #[must_use]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.preds[v.index()]
    }

    /// The successors (uses) of `v`.
    #[must_use]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succs[v.index()]
    }

    /// All input vertices (no predecessors), in id order.
    #[must_use]
    pub fn inputs(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// The output vertices, in marking order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// True if `v` is an input.
    #[must_use]
    pub fn is_input(&self, v: NodeId) -> bool {
        self.preds[v.index()].is_empty()
    }

    /// True if `v` is an output.
    #[must_use]
    pub fn is_output(&self, v: NodeId) -> bool {
        self.is_output[v.index()]
    }

    /// All vertices in id order (a valid topological order by construction).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        (0..self.len()).map(|i| NodeId(i as u32)).collect()
    }

    /// The number of non-input vertices (the "computation size").
    #[must_use]
    pub fn compute_count(&self) -> usize {
        (0..self.len())
            .filter(|&i| !self.preds[i].is_empty())
            .count()
    }

    /// The maximum in-degree (operand fan-in) in the DAG.
    #[must_use]
    pub fn max_fan_in(&self) -> usize {
        self.preds.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let mut dag = Dag::new();
        let a = dag.add_input();
        let b = dag.add_input();
        let c = dag.add_node(&[a, b]);
        let d = dag.add_node(&[c]);
        dag.mark_output(d);

        assert_eq!(dag.len(), 4);
        assert!(!dag.is_empty());
        assert_eq!(dag.inputs(), vec![a, b]);
        assert_eq!(dag.outputs(), &[d]);
        assert!(dag.is_input(a));
        assert!(!dag.is_input(c));
        assert!(dag.is_output(d));
        assert!(!dag.is_output(c));
        assert_eq!(dag.succs(a), &[c]);
        assert_eq!(dag.succs(c), &[d]);
        assert_eq!(dag.preds(d), &[c]);
        assert_eq!(dag.compute_count(), 2);
        assert_eq!(dag.max_fan_in(), 2);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut dag = Dag::new();
        let a = dag.add_input();
        dag.mark_output(a);
        dag.mark_output(a);
        assert_eq!(dag.outputs().len(), 1);
    }

    #[test]
    fn ids_are_topological() {
        let mut dag = Dag::new();
        let a = dag.add_input();
        let b = dag.add_node(&[a]);
        let c = dag.add_node(&[a, b]);
        for v in dag.topo_order() {
            for p in dag.preds(v) {
                assert!(p.0 < v.0, "edge {p} -> {v} violates id order");
            }
        }
        assert_eq!(dag.topo_order(), vec![a, b, c]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_references_panic() {
        let mut dag = Dag::new();
        let _ = dag.add_node(&[NodeId(5)]);
    }

    #[test]
    fn empty_dag() {
        let dag = Dag::new();
        assert!(dag.is_empty());
        assert_eq!(dag.inputs().len(), 0);
        assert_eq!(dag.max_fan_in(), 0);
    }
}
