//! DAG builders for the computations the paper cites.
//!
//! The Hong–Kung results the paper leans on ("best possible among all
//! decomposition schemes") are theorems about these graphs: the FFT
//! butterfly network and the matrix-multiplication DAG. Stencil, tree, and
//! diamond graphs round out the test menagerie.

use crate::dag::{Dag, NodeId};

/// The radix-2 FFT butterfly graph on `n = 2^t` points: `t` ranks of `n`
/// vertices; the vertex for value `i` at rank `r+1` depends on the rank-`r`
/// vertices of `i` and `i XOR 2^r`. Inputs are rank 0 (in bit-reversed
/// signal order, matching decimation-in-time); the last rank is the output.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
#[must_use]
pub fn fft_dag(n: usize) -> Dag {
    assert!(n.is_power_of_two() && n >= 2, "fft size must be 2^t >= 2");
    let t = n.trailing_zeros() as usize;
    let mut dag = Dag::new();
    let mut rank: Vec<NodeId> = (0..n).map(|_| dag.add_input()).collect();
    for r in 0..t {
        let bit = 1usize << r;
        let next: Vec<NodeId> = (0..n)
            .map(|i| dag.add_node(&[rank[i], rank[i ^ bit]]))
            .collect();
        rank = next;
    }
    for v in &rank {
        dag.mark_output(*v);
    }
    dag
}

/// The naive matrix-multiplication DAG for `C = A·B` (`n × n`): inputs
/// `a[i][k]` and `b[k][j]`; for each `(i,j)` a chain of `n` multiply-add
/// vertices (each multiply vertex feeds an accumulate vertex); the final
/// accumulate of each `(i,j)` is an output.
///
/// Vertex count: `2n²` inputs + `2n³` internal (n multiplies and n adds per
/// output element, with the first "add" being a copy of the first product).
#[must_use]
pub fn matmul_dag(n: usize) -> Dag {
    let mut dag = Dag::new();
    let a: Vec<NodeId> = (0..n * n).map(|_| dag.add_input()).collect();
    let b: Vec<NodeId> = (0..n * n).map(|_| dag.add_input()).collect();
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<NodeId> = None;
            for k in 0..n {
                let prod = dag.add_node(&[a[i * n + k], b[k * n + j]]);
                acc = Some(match acc {
                    None => prod,
                    Some(prev) => dag.add_node(&[prev, prod]),
                });
            }
            dag.mark_output(acc.expect("n >= 1"));
        }
    }
    dag
}

/// A 1-D three-point stencil iterated `t` times on `n` points with periodic
/// boundary: rank `r+1` point `i` depends on rank-`r` points `i-1, i, i+1`.
/// Rank 0 is the input; rank `t` is the output.
///
/// # Panics
///
/// Panics if `n < 3` or `t == 0`.
#[must_use]
pub fn stencil1d_dag(n: usize, t: usize) -> Dag {
    assert!(n >= 3, "stencil needs at least 3 points");
    assert!(t >= 1, "stencil needs at least one step");
    let mut dag = Dag::new();
    let mut rank: Vec<NodeId> = (0..n).map(|_| dag.add_input()).collect();
    for _ in 0..t {
        let next: Vec<NodeId> = (0..n)
            .map(|i| {
                let left = rank[(i + n - 1) % n];
                let right = rank[(i + 1) % n];
                dag.add_node(&[left, rank[i], right])
            })
            .collect();
        rank = next;
    }
    for v in &rank {
        dag.mark_output(*v);
    }
    dag
}

/// A binary reduction tree over `n = 2^k` inputs; the root is the output.
///
/// # Panics
///
/// Panics unless `n` is a power of two ≥ 2.
#[must_use]
pub fn tree_dag(n: usize) -> Dag {
    assert!(n.is_power_of_two() && n >= 2, "tree size must be 2^k >= 2");
    let mut dag = Dag::new();
    let mut level: Vec<NodeId> = (0..n).map(|_| dag.add_input()).collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| dag.add_node(&[pair[0], pair[1]]))
            .collect();
    }
    dag.mark_output(level[0]);
    dag
}

/// The diamond DAG: one input fans out to `width` middle vertices which all
/// feed one output vertex. Classic worst case for tiny red-pebble budgets.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn diamond_dag(width: usize) -> Dag {
    assert!(width >= 1);
    let mut dag = Dag::new();
    let src = dag.add_input();
    let mid: Vec<NodeId> = (0..width).map(|_| dag.add_node(&[src])).collect();
    let out = dag.add_node(&mid);
    dag.mark_output(out);
    dag
}

/// A simple dependency chain of `len` compute vertices after one input.
///
/// # Panics
///
/// Panics if `len == 0`.
#[must_use]
pub fn chain_dag(len: usize) -> Dag {
    assert!(len >= 1);
    let mut dag = Dag::new();
    let mut prev = dag.add_input();
    for _ in 0..len {
        prev = dag.add_node(&[prev]);
    }
    dag.mark_output(prev);
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_dag_shape() {
        let n = 8;
        let dag = fft_dag(n);
        let t = 3;
        assert_eq!(dag.len(), n * (t + 1));
        assert_eq!(dag.inputs().len(), n);
        assert_eq!(dag.outputs().len(), n);
        assert_eq!(dag.max_fan_in(), 2);
        // Every non-input vertex has exactly 2 predecessors.
        for v in dag.topo_order() {
            if !dag.is_input(v) {
                assert_eq!(dag.preds(v).len(), 2);
            }
        }
    }

    #[test]
    fn fft_dag_butterfly_partners() {
        // At rank 1 (first butterfly level) node for index i pairs with i^1.
        let dag = fft_dag(4);
        // Inputs are ids 0..4; rank-1 nodes are ids 4..8.
        let v = crate::dag::NodeId(4); // index 0, rank 1
        let preds = dag.preds(v);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].0, 0);
        assert_eq!(preds[1].0, 1); // 0 XOR 1
    }

    #[test]
    #[should_panic(expected = "fft size must be 2^t")]
    fn fft_dag_rejects_non_power() {
        let _ = fft_dag(6);
    }

    #[test]
    fn matmul_dag_shape() {
        let n = 3;
        let dag = matmul_dag(n);
        // 2n² inputs + n³ products + n²(n-1) accumulates.
        assert_eq!(dag.len(), 2 * n * n + n * n * n + n * n * (n - 1));
        assert_eq!(dag.inputs().len(), 2 * n * n);
        assert_eq!(dag.outputs().len(), n * n);
    }

    #[test]
    fn matmul_dag_n1_degenerates_to_products() {
        let dag = matmul_dag(1);
        assert_eq!(dag.len(), 3); // a, b, a*b
        assert_eq!(dag.outputs().len(), 1);
    }

    #[test]
    fn stencil_dag_shape() {
        let dag = stencil1d_dag(5, 2);
        assert_eq!(dag.len(), 5 * 3);
        assert_eq!(dag.inputs().len(), 5);
        assert_eq!(dag.outputs().len(), 5);
        assert_eq!(dag.max_fan_in(), 3);
    }

    #[test]
    fn tree_dag_shape() {
        let dag = tree_dag(8);
        assert_eq!(dag.len(), 15);
        assert_eq!(dag.outputs().len(), 1);
        assert_eq!(dag.compute_count(), 7);
    }

    #[test]
    fn diamond_and_chain() {
        let d = diamond_dag(4);
        assert_eq!(d.len(), 6);
        assert_eq!(d.max_fan_in(), 4);
        let c = chain_dag(5);
        assert_eq!(c.len(), 6);
        assert_eq!(c.outputs().len(), 1);
    }
}
