//! The red–blue pebble game of Hong & Kung (1981).
//!
//! The game models a two-level memory: **red** pebbles are words in fast
//! memory (at most `S` at a time — the paper's `M`), **blue** pebbles are
//! words in slow memory (unbounded). The rules:
//!
//! * **R1 (input)** — a red pebble may be placed on any vertex that has a
//!   blue pebble *(one I/O)*;
//! * **R2 (compute)** — a red pebble may be placed on a vertex all of whose
//!   predecessors carry red pebbles;
//! * **R3 (output)** — a blue pebble may be placed on any vertex that has a
//!   red pebble *(one I/O)*;
//! * **R4 (delete)** — a red pebble may be removed from any vertex.
//!
//! Initially every input vertex carries a blue pebble. The game is won when
//! every output vertex carries a blue pebble. The minimum number of
//! R1/R3 moves over all strategies is the I/O complexity `Q(S)` — the
//! quantity whose lower bounds make the paper's schemes "best possible".

use core::fmt;

use crate::dag::{Dag, NodeId};

/// A move in the red–blue pebble game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// R1: load a blue-pebbled vertex into fast memory (1 I/O).
    ReadIn(NodeId),
    /// R2: compute a vertex whose predecessors are all red.
    Compute(NodeId),
    /// R3: write a red-pebbled vertex to slow memory (1 I/O).
    WriteOut(NodeId),
    /// R4: discard a red pebble.
    Delete(NodeId),
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::ReadIn(v) => write!(f, "R1 read {v}"),
            Move::Compute(v) => write!(f, "R2 compute {v}"),
            Move::WriteOut(v) => write!(f, "R3 write {v}"),
            Move::Delete(v) => write!(f, "R4 delete {v}"),
        }
    }
}

/// Rule violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GameError {
    /// R1 on a vertex without a blue pebble.
    NotBlue(NodeId),
    /// R2 with a predecessor lacking a red pebble.
    PredNotRed {
        /// The vertex being computed.
        vertex: NodeId,
        /// The offending predecessor.
        missing: NodeId,
    },
    /// R3/R4 on a vertex without a red pebble.
    NotRed(NodeId),
    /// Placing a red pebble would exceed the capacity `S`.
    CapacityExceeded {
        /// The capacity.
        s: usize,
    },
    /// Placing a red pebble where one already is (wasteful; treated as
    /// illegal to keep schedules canonical).
    AlreadyRed(NodeId),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::NotBlue(v) => write!(f, "{v} has no blue pebble to read"),
            GameError::PredNotRed { vertex, missing } => {
                write!(f, "cannot compute {vertex}: predecessor {missing} not red")
            }
            GameError::NotRed(v) => write!(f, "{v} has no red pebble"),
            GameError::CapacityExceeded { s } => {
                write!(f, "red pebble capacity {s} exceeded")
            }
            GameError::AlreadyRed(v) => write!(f, "{v} already has a red pebble"),
        }
    }
}

impl std::error::Error for GameError {}

/// A game in progress.
#[derive(Debug, Clone)]
pub struct Game<'a> {
    dag: &'a Dag,
    s: usize,
    red: Vec<bool>,
    blue: Vec<bool>,
    red_count: usize,
    io: u64,
    computes: u64,
}

impl<'a> Game<'a> {
    /// Starts a game with red-pebble capacity `s`; inputs start blue.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    #[must_use]
    pub fn new(dag: &'a Dag, s: usize) -> Self {
        assert!(s > 0, "need at least one red pebble");
        let mut blue = vec![false; dag.len()];
        for v in dag.inputs() {
            blue[v.index()] = true;
        }
        Game {
            dag,
            s,
            red: vec![false; dag.len()],
            blue,
            red_count: 0,
            io: 0,
            computes: 0,
        }
    }

    /// Applies one move.
    ///
    /// # Errors
    ///
    /// A [`GameError`] describing the rule violation; the state is unchanged
    /// on error.
    pub fn apply(&mut self, mv: Move) -> Result<(), GameError> {
        match mv {
            Move::ReadIn(v) => {
                if !self.blue[v.index()] {
                    return Err(GameError::NotBlue(v));
                }
                self.place_red(v)?;
                self.io += 1;
            }
            Move::Compute(v) => {
                if self.dag.is_input(v) {
                    // Inputs are given, not computed; they enter via R1.
                    return Err(GameError::PredNotRed {
                        vertex: v,
                        missing: v,
                    });
                }
                for &p in self.dag.preds(v) {
                    if !self.red[p.index()] {
                        return Err(GameError::PredNotRed {
                            vertex: v,
                            missing: p,
                        });
                    }
                }
                self.place_red(v)?;
                self.computes += 1;
            }
            Move::WriteOut(v) => {
                if !self.red[v.index()] {
                    return Err(GameError::NotRed(v));
                }
                self.blue[v.index()] = true;
                self.io += 1;
            }
            Move::Delete(v) => {
                if !self.red[v.index()] {
                    return Err(GameError::NotRed(v));
                }
                self.red[v.index()] = false;
                self.red_count -= 1;
            }
        }
        Ok(())
    }

    fn place_red(&mut self, v: NodeId) -> Result<(), GameError> {
        if self.red[v.index()] {
            return Err(GameError::AlreadyRed(v));
        }
        if self.red_count == self.s {
            return Err(GameError::CapacityExceeded { s: self.s });
        }
        self.red[v.index()] = true;
        self.red_count += 1;
        Ok(())
    }

    /// Replays a whole schedule.
    ///
    /// # Errors
    ///
    /// The first rule violation, with the offending move index attached via
    /// the error's `Display`.
    pub fn play(&mut self, schedule: &[Move]) -> Result<(), GameError> {
        for &mv in schedule {
            self.apply(mv)?;
        }
        Ok(())
    }

    /// True when every output vertex carries a blue pebble.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dag.outputs().iter().all(|v| self.blue[v.index()])
    }

    /// I/O moves so far (R1 + R3).
    #[must_use]
    pub fn io(&self) -> u64 {
        self.io
    }

    /// Compute moves so far (R2).
    #[must_use]
    pub fn computes(&self) -> u64 {
        self.computes
    }

    /// Red pebbles currently placed.
    #[must_use]
    pub fn red_count(&self) -> usize {
        self.red_count
    }

    /// The red-pebble capacity `S`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.s
    }

    /// Whether `v` currently has a red pebble.
    #[must_use]
    pub fn is_red(&self, v: NodeId) -> bool {
        self.red[v.index()]
    }

    /// Whether `v` currently has a blue pebble.
    #[must_use]
    pub fn is_blue(&self, v: NodeId) -> bool {
        self.blue[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain_dag, tree_dag};
    use crate::dag::Dag;

    fn tiny() -> Dag {
        // c = a + b, output c.
        let mut dag = Dag::new();
        let a = dag.add_input();
        let b = dag.add_input();
        let c = dag.add_node(&[a, b]);
        dag.mark_output(c);
        dag
    }

    #[test]
    fn happy_path_costs_three_io() {
        let dag = tiny();
        let mut g = Game::new(&dag, 3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        g.play(&[
            Move::ReadIn(a),
            Move::ReadIn(b),
            Move::Compute(c),
            Move::WriteOut(c),
        ])
        .unwrap();
        assert!(g.is_complete());
        assert_eq!(g.io(), 3);
        assert_eq!(g.computes(), 1);
    }

    #[test]
    fn compute_requires_red_predecessors() {
        let dag = tiny();
        let mut g = Game::new(&dag, 3);
        let err = g.apply(Move::Compute(NodeId(2))).unwrap_err();
        assert!(matches!(err, GameError::PredNotRed { .. }));
    }

    #[test]
    fn inputs_cannot_be_computed_for_free() {
        let dag = tiny();
        let mut g = Game::new(&dag, 3);
        assert!(g.apply(Move::Compute(NodeId(0))).is_err());
    }

    #[test]
    fn read_requires_blue() {
        let dag = tiny();
        let mut g = Game::new(&dag, 3);
        // c has no blue pebble initially.
        assert_eq!(
            g.apply(Move::ReadIn(NodeId(2))),
            Err(GameError::NotBlue(NodeId(2)))
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let dag = tiny();
        let mut g = Game::new(&dag, 1);
        g.apply(Move::ReadIn(NodeId(0))).unwrap();
        assert_eq!(
            g.apply(Move::ReadIn(NodeId(1))),
            Err(GameError::CapacityExceeded { s: 1 })
        );
        // Delete frees the slot.
        g.apply(Move::Delete(NodeId(0))).unwrap();
        g.apply(Move::ReadIn(NodeId(1))).unwrap();
        assert_eq!(g.red_count(), 1);
    }

    #[test]
    fn cannot_double_place_or_delete() {
        let dag = tiny();
        let mut g = Game::new(&dag, 3);
        g.apply(Move::ReadIn(NodeId(0))).unwrap();
        assert_eq!(
            g.apply(Move::ReadIn(NodeId(0))),
            Err(GameError::AlreadyRed(NodeId(0)))
        );
        g.apply(Move::Delete(NodeId(0))).unwrap();
        assert_eq!(
            g.apply(Move::Delete(NodeId(0))),
            Err(GameError::NotRed(NodeId(0)))
        );
        assert_eq!(
            g.apply(Move::WriteOut(NodeId(0))),
            Err(GameError::NotRed(NodeId(0)))
        );
    }

    #[test]
    fn recompute_after_delete_is_legal() {
        // The red pebble game allows recomputation — pinning that semantics.
        let dag = chain_dag(2); // input v0 -> v1 -> v2(out)
        let mut g = Game::new(&dag, 2);
        g.play(&[
            Move::ReadIn(NodeId(0)),
            Move::Compute(NodeId(1)),
            Move::Delete(NodeId(1)),
            Move::Compute(NodeId(1)), // recompute from the still-red input
        ])
        .unwrap();
        assert_eq!(g.computes(), 2);
    }

    #[test]
    fn errors_leave_state_unchanged() {
        let dag = tiny();
        let mut g = Game::new(&dag, 1);
        g.apply(Move::ReadIn(NodeId(0))).unwrap();
        let io_before = g.io();
        let _ = g.apply(Move::ReadIn(NodeId(1))).unwrap_err();
        assert_eq!(g.io(), io_before);
        assert_eq!(g.red_count(), 1);
        assert!(g.is_red(NodeId(0)));
    }

    #[test]
    fn completion_requires_all_outputs_blue() {
        let dag = tree_dag(4); // 4 inputs, 3 computes, 1 output
        let mut g = Game::new(&dag, 4);
        assert!(!g.is_complete());
        g.play(&[
            Move::ReadIn(NodeId(0)),
            Move::ReadIn(NodeId(1)),
            Move::Compute(NodeId(4)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
            Move::ReadIn(NodeId(2)),
            Move::ReadIn(NodeId(3)),
            Move::Compute(NodeId(5)),
            Move::Delete(NodeId(2)),
            Move::Delete(NodeId(3)),
            Move::Compute(NodeId(6)),
            Move::WriteOut(NodeId(6)),
        ])
        .unwrap();
        assert!(g.is_complete());
        assert_eq!(g.io(), 5); // 4 reads + 1 write
        assert!(g.is_blue(NodeId(6)));
    }

    #[test]
    #[should_panic(expected = "at least one red")]
    fn zero_capacity_panics() {
        let dag = tiny();
        let _ = Game::new(&dag, 0);
    }
}
