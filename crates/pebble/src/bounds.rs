//! I/O lower bounds: the "best possible" half of the paper's claims.
//!
//! The paper cites two optimality results:
//!
//! * **Matrix multiplication** (Hong & Kung 1981): any schedule moving data
//!   through a fast memory of `S` words performs `Q = Ω(n³/√S)` I/O, so the
//!   blocked scheme's `Θ(√M)` intensity — and hence `M_new = α²·M_old` — is
//!   the best possible.
//! * **FFT** (Hong & Kung 1981): `Q = Ω(n·log n / log S)`, making the
//!   blocked-pass scheme and `M_new = M_old^α` optimal.
//!
//! The functions here provide *conservative explicit-constant* versions of
//! those bounds (constants chosen safely below the published ones), plus the
//! trivial compulsory-I/O bound (every input read, every output written at
//! least once). Experiments check `measured ≥ bound` and
//! `measured / bound = O(1)`.

/// Conservative lower bound on pebble-game I/O for `n × n` matrix
/// multiplication with `S` red pebbles:
/// `max(compulsory, n³ / (8·√S))`.
///
/// Compulsory I/O = `2n²` input reads + `n²` output writes.
#[must_use]
pub fn matmul_lower_bound(n: usize, s: usize) -> u64 {
    let n = n as u64;
    let compulsory = 3 * n * n;
    let hk = ((n * n * n) as f64 / (8.0 * (s as f64).sqrt())).floor() as u64;
    compulsory.max(hk)
}

/// Conservative lower bound on pebble-game I/O for an `n`-point FFT with
/// `S` red pebbles: `max(compulsory, n·log₂n / (8·log₂(2S)))`.
///
/// Compulsory I/O = `n` input reads + `n` output writes.
#[must_use]
pub fn fft_lower_bound(n: usize, s: usize) -> u64 {
    let nf = n as f64;
    let compulsory = 2 * n as u64;
    let hk = (nf * nf.log2() / (8.0 * (2.0 * s as f64).log2())).floor() as u64;
    compulsory.max(hk)
}

/// The compulsory bound for an arbitrary DAG: every input an output
/// depends on must be read at least once, and every output written at
/// least once. Inputs no output depends on are excluded (they never need a
/// pebble at all).
#[must_use]
pub fn compulsory_lower_bound(dag: &crate::dag::Dag) -> u64 {
    // Reverse reachability from the outputs.
    let mut needed = vec![false; dag.len()];
    let mut stack: Vec<crate::dag::NodeId> = dag.outputs().to_vec();
    while let Some(v) = stack.pop() {
        if needed[v.index()] {
            continue;
        }
        needed[v.index()] = true;
        stack.extend_from_slice(dag.preds(v));
    }
    let needed_inputs = dag.inputs().iter().filter(|v| needed[v.index()]).count();
    (needed_inputs + dag.outputs().len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fft_dag, matmul_dag};
    use crate::strategies::{
        blocked_fft_order, blocked_matmul_order, schedule_with_order, EvictionPolicy,
    };

    #[test]
    fn matmul_bound_shapes() {
        // Small S: the n³/√S term dominates.
        assert!(matmul_lower_bound(64, 4) > 3 * 64 * 64);
        // Huge S: compulsory dominates.
        assert_eq!(matmul_lower_bound(8, 1 << 20), 3 * 64);
        // Monotone decreasing in S.
        assert!(matmul_lower_bound(32, 4) >= matmul_lower_bound(32, 64));
    }

    #[test]
    fn fft_bound_shapes() {
        assert_eq!(fft_lower_bound(16, 1 << 20), 32);
        assert!(fft_lower_bound(1 << 12, 4) >= 2 << 12);
        // With S = 1 and huge N the Hong-Kung term finally dominates.
        assert!(fft_lower_bound(1 << 17, 1) > 2 << 17);
        assert!(fft_lower_bound(256, 4) >= fft_lower_bound(256, 64));
    }

    #[test]
    fn blocked_matmul_respects_and_approaches_bound() {
        let n = 8;
        for (b, s) in [(1usize, 5usize), (2, 16)] {
            let dag = matmul_dag(n);
            let out =
                schedule_with_order(&dag, &blocked_matmul_order(n, b), s, EvictionPolicy::Belady)
                    .unwrap();
            let bound = matmul_lower_bound(n, s);
            assert!(
                out.io >= bound,
                "b={b}, s={s}: measured {} below bound {bound}",
                out.io
            );
            // Within a constant factor (generous: 64 given the /8 constant).
            assert!(
                out.io <= 64 * bound,
                "b={b}, s={s}: measured {} too far above bound {bound}",
                out.io
            );
        }
    }

    #[test]
    fn blocked_fft_respects_and_approaches_bound() {
        for (n, block, s) in [(16usize, 4usize, 12usize), (32, 4, 12), (64, 8, 24)] {
            let dag = fft_dag(n);
            let out = schedule_with_order(
                &dag,
                &blocked_fft_order(n, block),
                s,
                EvictionPolicy::Belady,
            )
            .unwrap();
            let bound = fft_lower_bound(n, s);
            assert!(
                out.io >= bound,
                "n={n}: measured {} below bound {bound}",
                out.io
            );
            assert!(
                out.io <= 64 * bound,
                "n={n}: measured {} too far above bound {bound}",
                out.io
            );
        }
    }

    #[test]
    fn compulsory_bound_counts_boundary() {
        let dag = matmul_dag(3);
        assert_eq!(compulsory_lower_bound(&dag), (2 * 9 + 9) as u64);
    }
}
