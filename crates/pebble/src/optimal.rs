//! Exact minimum-I/O search for tiny DAGs.
//!
//! For DAGs of up to a couple dozen vertices the full game state — which
//! vertices are red, which are blue — fits in a pair of bitmasks, and the
//! minimum I/O is a shortest-path problem: R1/R3 cost one, R2/R4 cost zero.
//! [`minimum_io`] solves it with 0-1 BFS. Used to sanity-check the greedy
//! strategies and to pin known-optimal values in tests.

use std::collections::{HashMap, VecDeque};

use crate::dag::Dag;

/// Hard cap on DAG size for the exact solver (state space `4^len`).
pub const MAX_NODES: usize = 24;

/// Computes the exact minimum number of I/O moves (R1 + R3) needed to win
/// the red–blue pebble game on `dag` with `s` red pebbles, or `None` if the
/// DAG exceeds [`MAX_NODES`] (state space too large) or cannot be pebbled
/// (capacity below fan-in + 1).
///
/// # Panics
///
/// Panics if `s == 0`.
#[must_use]
pub fn minimum_io(dag: &Dag, s: usize) -> Option<u64> {
    assert!(s > 0, "need at least one red pebble");
    let n = dag.len();
    if n > MAX_NODES {
        return None;
    }

    let mut initial_blue: u32 = 0;
    for v in dag.inputs() {
        initial_blue |= 1 << v.index();
    }
    let mut goal: u32 = 0;
    for v in dag.outputs() {
        goal |= 1 << v.index();
    }

    // 0-1 BFS over (red, blue) states.
    let start = (0u32, initial_blue);
    let mut dist: HashMap<(u32, u32), u64> = HashMap::new();
    let mut dq: VecDeque<((u32, u32), u64)> = VecDeque::new();
    dist.insert(start, 0);
    dq.push_back((start, 0));

    while let Some(((red, blue), d)) = dq.pop_front() {
        if dist.get(&(red, blue)) != Some(&d) {
            continue; // stale entry
        }
        if blue & goal == goal {
            return Some(d);
        }
        let red_count = red.count_ones() as usize;

        let push = |dq: &mut VecDeque<((u32, u32), u64)>,
                    dist: &mut HashMap<(u32, u32), u64>,
                    state: (u32, u32),
                    nd: u64,
                    zero_cost: bool| {
            let better = dist.get(&state).is_none_or(|&old| nd < old);
            if better {
                dist.insert(state, nd);
                if zero_cost {
                    dq.push_front((state, nd));
                } else {
                    dq.push_back((state, nd));
                }
            }
        };

        for i in 0..n {
            let bit = 1u32 << i;
            let v = crate::dag::NodeId(i as u32);
            // R4: delete (cost 0).
            if red & bit != 0 {
                push(&mut dq, &mut dist, (red & !bit, blue), d, true);
                // R3: write out (cost 1) — skip if already blue (useless).
                if blue & bit == 0 {
                    push(&mut dq, &mut dist, (red, blue | bit), d + 1, false);
                }
            } else if red_count < s {
                // R1: read in (cost 1).
                if blue & bit != 0 {
                    push(&mut dq, &mut dist, (red | bit, blue), d + 1, false);
                }
                // R2: compute (cost 0).
                if !dag.is_input(v) {
                    let ready = dag.preds(v).iter().all(|p| red & (1 << p.index()) != 0);
                    if ready {
                        push(&mut dq, &mut dist, (red | bit, blue), d, true);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain_dag, diamond_dag, tree_dag};
    use crate::dag::Dag;
    use crate::strategies::{natural_order, schedule_with_order, EvictionPolicy};

    #[test]
    fn single_add_needs_three_io() {
        let mut dag = Dag::new();
        let a = dag.add_input();
        let b = dag.add_input();
        let c = dag.add_node(&[a, b]);
        dag.mark_output(c);
        assert_eq!(minimum_io(&dag, 3), Some(3));
        // Capacity 2 cannot hold both operands and the result... but the
        // result can only be placed when a slot exists. With s=3 it's 3 io;
        // with s=2 the game is unwinnable for fan-in 2? No: compute places
        // a third pebble — requires capacity 3.
        assert_eq!(minimum_io(&dag, 2), None);
    }

    #[test]
    fn chain_costs_two_io_regardless_of_length() {
        // Read the input, compute along the chain deleting as we go, write
        // the final value: 2 I/O with s = 2.
        for len in [1usize, 3, 6] {
            let dag = chain_dag(len);
            assert_eq!(minimum_io(&dag, 2), Some(2), "len = {len}");
        }
    }

    #[test]
    fn diamond_optimal_known_values() {
        // diamond(2): src -> m1, m2 -> out (fan-in 2).
        let dag = diamond_dag(2);
        // s = 3: read src (1), compute m1, m2 needs src+m2+... states:
        // {src,m1,m2} exceeds 3? src+m1+m2 = 3 pebbles, then out needs
        // m1,m2 red + its own slot: delete src first -> {m1,m2,out}. 2 io.
        assert_eq!(minimum_io(&dag, 3), Some(2));
        // s = 4: trivially 2 (read src, write out).
        assert_eq!(minimum_io(&dag, 4), Some(2));
    }

    #[test]
    fn diamond_with_tight_memory_pays_extra_io() {
        // diamond(3): out has fan-in 3; s = 4 is the minimum capacity.
        let dag = diamond_dag(3);
        let tight = minimum_io(&dag, 4).unwrap();
        assert_eq!(tight, 2); // {m1,m2,m3,out}: src deleted after computing mids
                              // Fan-in 3 with s = 3 is impossible.
        assert_eq!(minimum_io(&dag, 3), None);
    }

    #[test]
    fn tree_optimal_depends_on_capacity() {
        // tree(4): 4 inputs + 1 output. With s = 4 the left subtree result
        // can stay resident: compulsory 5 I/O. With s = 3 it must be spilled
        // and reloaded once: 7 I/O. The solver proves both exactly.
        let dag = tree_dag(4);
        assert_eq!(minimum_io(&dag, 4), Some(5));
        assert_eq!(minimum_io(&dag, 3), Some(7));
    }

    #[test]
    fn greedy_strategy_is_never_better_than_optimal() {
        for (dag, s) in [
            (tree_dag(8), 4usize),
            (diamond_dag(3), 5),
            (chain_dag(6), 3),
            (crate::builders::stencil1d_dag(4, 2), 5),
        ] {
            let opt = minimum_io(&dag, s).expect("solvable");
            let greedy = schedule_with_order(&dag, &natural_order(&dag), s, EvictionPolicy::Belady)
                .expect("schedulable");
            assert!(
                greedy.io >= opt,
                "greedy {} beat optimal {opt} — game or strategy bug",
                greedy.io
            );
            // And greedy should be within a small factor on these toys.
            assert!(
                greedy.io <= 3 * opt,
                "greedy {} vs optimal {opt}",
                greedy.io
            );
        }
    }

    #[test]
    fn oversized_dags_return_none() {
        let dag = crate::builders::matmul_dag(3); // 45 nodes
        assert_eq!(minimum_io(&dag, 8), None);
    }

    #[test]
    fn recomputation_can_save_io() {
        // A value used twice far apart can be recomputed instead of spilled.
        // dag: in -> x; out1 = f(x); out2 = g(x). s = 2.
        let mut dag = Dag::new();
        let input = dag.add_input();
        let x = dag.add_node(&[input]);
        let o1 = dag.add_node(&[x]);
        let o2 = dag.add_node(&[x]);
        dag.mark_output(o1);
        dag.mark_output(o2);
        // With s = 2: read in, compute x (in,x), delete in, compute o1 (x,o1),
        // write o1, delete o1, compute o2 (x,o2), write o2: io = 3.
        assert_eq!(minimum_io(&dag, 2), Some(3));
    }
}
