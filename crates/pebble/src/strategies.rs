//! Pebbling strategies: turn a computation order into a legal schedule.
//!
//! A *strategy* decides the order in which vertices are computed and which
//! red pebbles to spill when fast memory is full. [`schedule_with_order`]
//! handles the mechanics (loads, write-backs, deletes, capacity) for any
//! computation order and eviction policy; the `blocked_*_order` functions
//! produce the orders corresponding to the paper's decomposition schemes, so
//! that the resulting I/O can be compared directly against both the
//! instrumented kernels and the Hong–Kung lower bounds.

use std::collections::VecDeque;

use crate::dag::{Dag, NodeId};
use crate::game::{Game, Move};

/// Which red pebble to spill when memory is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the value whose next use is furthest in the future (optimal
    /// for a fixed computation order).
    Belady,
    /// Evict the least recently touched value.
    Lru,
}

/// A generated schedule plus its cost.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The legal move sequence.
    pub schedule: Vec<Move>,
    /// I/O moves in the schedule (R1 + R3).
    pub io: u64,
    /// Compute moves in the schedule (R2).
    pub computes: u64,
}

/// Errors from strategy construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StrategyError {
    /// The capacity cannot hold one vertex plus its operands.
    CapacityTooSmall {
        /// Provided capacity.
        s: usize,
        /// Minimum needed (`max fan-in + 1`).
        need: usize,
    },
    /// The order is not a permutation of the non-input vertices.
    InvalidOrder,
}

impl core::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StrategyError::CapacityTooSmall { s, need } => {
                write!(
                    f,
                    "capacity {s} too small: need at least {need} red pebbles"
                )
            }
            StrategyError::InvalidOrder => {
                write!(
                    f,
                    "order must list every non-input vertex exactly once, topologically"
                )
            }
        }
    }
}

impl std::error::Error for StrategyError {}

/// Builds a legal schedule that computes the DAG in the given order with at
/// most `s` red pebbles, spilling by `policy`. Every intermediate that is
/// still needed is written back before deletion, so no recomputation occurs.
///
/// # Errors
///
/// [`StrategyError::CapacityTooSmall`] if `s < max_fan_in + 1`;
/// [`StrategyError::InvalidOrder`] if `order` is not a topological
/// permutation of the non-input vertices.
pub fn schedule_with_order(
    dag: &Dag,
    order: &[NodeId],
    s: usize,
    policy: EvictionPolicy,
) -> Result<StrategyOutcome, StrategyError> {
    let need = dag.max_fan_in() + 1;
    if s < need {
        return Err(StrategyError::CapacityTooSmall { s, need });
    }
    // Validate the order: every non-input exactly once, predecessors before
    // their uses (or inputs).
    {
        let mut seen = vec![false; dag.len()];
        for v in dag.inputs() {
            seen[v.index()] = true;
        }
        let mut count = 0usize;
        for &v in order {
            if dag.is_input(v) || seen[v.index()] {
                return Err(StrategyError::InvalidOrder);
            }
            for &p in dag.preds(v) {
                if !seen[p.index()] {
                    return Err(StrategyError::InvalidOrder);
                }
            }
            seen[v.index()] = true;
            count += 1;
        }
        if count != dag.compute_count() {
            return Err(StrategyError::InvalidOrder);
        }
    }

    // Precompute use positions (as operand) per vertex.
    let mut use_positions: Vec<VecDeque<usize>> = vec![VecDeque::new(); dag.len()];
    for (pos, &v) in order.iter().enumerate() {
        for &p in dag.preds(v) {
            use_positions[p.index()].push_back(pos);
        }
    }

    // All spill/load mechanics share this state; methods on a context
    // struct keep the borrow checker happy without unsafe tricks.
    struct Ctx<'d> {
        dag: &'d Dag,
        schedule: Vec<Move>,
        red: Vec<bool>,
        blue: Vec<bool>,
        red_list: Vec<NodeId>,
        last_touch: Vec<u64>,
        io: u64,
        policy: EvictionPolicy,
        s: usize,
    }

    impl Ctx<'_> {
        fn delete(&mut self, v: NodeId) {
            self.red[v.index()] = false;
            self.red_list.retain(|&x| x != v);
            self.schedule.push(Move::Delete(v));
        }

        fn spill(&mut self, v: NodeId) {
            if !self.blue[v.index()] {
                self.schedule.push(Move::WriteOut(v));
                self.blue[v.index()] = true;
                self.io += 1;
            }
            self.delete(v);
        }

        /// Frees one slot, never evicting a vertex in `pinned`.
        fn evict_one(&mut self, pinned: &[NodeId], use_positions: &[VecDeque<usize>]) {
            let victim = self
                .red_list
                .iter()
                .copied()
                .filter(|v| !pinned.contains(v))
                .max_by_key(|v| match self.policy {
                    EvictionPolicy::Belady => (
                        use_positions[v.index()]
                            .front()
                            .copied()
                            .map_or(usize::MAX, |p| p),
                        0u64,
                    ),
                    EvictionPolicy::Lru => (usize::MAX, u64::MAX - self.last_touch[v.index()]),
                })
                .expect("capacity >= fan-in + 1 guarantees an evictable vertex");
            // A victim with no future uses and no output obligation can be
            // dropped without write-back.
            let needs_writeback = !use_positions[victim.index()].is_empty()
                || (self.dag.is_output(victim) && !self.blue[victim.index()]);
            if needs_writeback {
                self.spill(victim);
            } else {
                self.delete(victim);
            }
        }

        fn make_room(&mut self, pinned: &[NodeId], use_positions: &[VecDeque<usize>]) {
            while self.red_list.len() >= self.s {
                self.evict_one(pinned, use_positions);
            }
        }

        fn load(&mut self, v: NodeId, pinned: &[NodeId], use_positions: &[VecDeque<usize>]) {
            debug_assert!(self.blue[v.index()], "loading a value never written");
            self.make_room(pinned, use_positions);
            self.schedule.push(Move::ReadIn(v));
            self.red[v.index()] = true;
            self.red_list.push(v);
            self.io += 1;
        }
    }

    let mut blue = vec![false; dag.len()];
    for v in dag.inputs() {
        blue[v.index()] = true;
    }
    let mut ctx = Ctx {
        dag,
        schedule: Vec::new(),
        red: vec![false; dag.len()],
        blue,
        red_list: Vec::new(),
        last_touch: vec![0u64; dag.len()],
        io: 0,
        policy,
        s,
    };
    let mut clock = 0u64;

    for (pos, &v) in order.iter().enumerate() {
        // Bring all operands into fast memory.
        let pinned: Vec<NodeId> = dag.preds(v).to_vec();
        for &p in dag.preds(v) {
            if !ctx.red[p.index()] {
                ctx.load(p, &pinned, &use_positions);
            }
            clock += 1;
            ctx.last_touch[p.index()] = clock;
        }
        // Room for the result itself.
        ctx.make_room(&pinned, &use_positions);
        ctx.schedule.push(Move::Compute(v));
        ctx.red[v.index()] = true;
        ctx.red_list.push(v);
        clock += 1;
        ctx.last_touch[v.index()] = clock;

        // Consume this use from each operand; drop operands that are dead.
        for &p in dag.preds(v) {
            let q = &mut use_positions[p.index()];
            debug_assert_eq!(q.front().copied(), Some(pos));
            q.pop_front();
            if q.is_empty() && ctx.red[p.index()] {
                if dag.is_output(p) && !ctx.blue[p.index()] {
                    ctx.spill(p);
                } else {
                    ctx.delete(p);
                }
            }
        }
        // Outputs go to slow memory; dead results leave fast memory.
        if dag.is_output(v) {
            ctx.schedule.push(Move::WriteOut(v));
            ctx.blue[v.index()] = true;
            ctx.io += 1;
        }
        if use_positions[v.index()].is_empty() && ctx.red[v.index()] {
            ctx.delete(v);
        }
    }

    let computes = order.len() as u64;
    Ok(StrategyOutcome {
        schedule: ctx.schedule,
        io: ctx.io,
        computes,
    })
}

/// Runs a schedule through the game and returns the final game for
/// inspection.
///
/// # Panics
///
/// Panics if the schedule is illegal — generated schedules are supposed to
/// be legal by construction, so a panic here is a strategy bug.
#[must_use]
pub fn replay<'a>(dag: &'a Dag, s: usize, schedule: &[Move]) -> Game<'a> {
    let mut game = Game::new(dag, s);
    for (i, &mv) in schedule.iter().enumerate() {
        if let Err(e) = game.apply(mv) {
            panic!("illegal move #{i} ({mv}): {e}");
        }
    }
    game
}

/// The natural (row-by-row, `ijk`) computation order of
/// [`crate::builders::matmul_dag`]: simply id order of non-input vertices.
#[must_use]
pub fn natural_order(dag: &Dag) -> Vec<NodeId> {
    dag.topo_order()
        .into_iter()
        .filter(|&v| !dag.is_input(v))
        .collect()
}

/// The blocked computation order for [`crate::builders::matmul_dag`]`(n)`
/// with `b × b` tiles: all multiply-accumulate chains of a `C` tile advance
/// through one `k`-tile before the next — the paper's §3.1 scheme as a
/// pebbling order.
///
/// # Panics
///
/// Panics if `b == 0` or `b > n`.
#[must_use]
pub fn blocked_matmul_order(n: usize, b: usize) -> Vec<NodeId> {
    assert!(b >= 1 && b <= n, "tile must satisfy 1 <= b <= n");
    let base = 2 * n * n;
    let per_elem = 2 * n - 1; // n products + (n-1) accumulates
    let node =
        |i: usize, j: usize, idx: usize| NodeId((base + (i * n + j) * per_elem + idx) as u32);
    let mut order = Vec::with_capacity(n * n * per_elem);
    for i0 in (0..n).step_by(b) {
        let ib = b.min(n - i0);
        for j0 in (0..n).step_by(b) {
            let jb = b.min(n - j0);
            for k0 in (0..n).step_by(b) {
                let kb = b.min(n - k0);
                for i in i0..i0 + ib {
                    for j in j0..j0 + jb {
                        for k in k0..k0 + kb {
                            // product node for (i,j,k): idx = 2k - (k>0)
                            if k == 0 {
                                order.push(node(i, j, 0));
                            } else {
                                order.push(node(i, j, 2 * k - 1)); // product
                                order.push(node(i, j, 2 * k)); // accumulate
                            }
                        }
                    }
                }
            }
        }
    }
    order
}

/// The blocked pass order for [`crate::builders::fft_dag`]`(n)` with
/// `block`-point in-memory blocks — the paper's Fig. 2 as a pebbling order.
///
/// # Panics
///
/// Panics unless `n` and `block` are powers of two with `2 ≤ block ≤ n`.
#[must_use]
pub fn blocked_fft_order(n: usize, block: usize) -> Vec<NodeId> {
    assert!(
        n.is_power_of_two() && block.is_power_of_two() && block >= 2 && block <= n,
        "need powers of two with 2 <= block <= n"
    );
    let t = n.trailing_zeros() as usize;
    let mu = block.trailing_zeros() as usize;
    let node = |rank: usize, i: usize| NodeId((rank * n + i) as u32);
    let mut order = Vec::with_capacity(n * t);
    let mut s0 = 0usize;
    while s0 < t {
        let mu_p = mu.min(t - s0);
        let bp = 1usize << mu_p;
        let stride = 1usize << s0;
        let outer = 1usize << (s0 + mu_p);
        for high in 0..(n / outer) {
            for low in 0..stride {
                let base = high * outer + low;
                for ls in 0..mu_p {
                    let rank = s0 + ls + 1;
                    for j in 0..bp {
                        order.push(node(rank, base + j * stride));
                    }
                }
            }
        }
        s0 += mu_p;
    }
    order
}

/// The stage-by-stage (unblocked) order for [`crate::builders::fft_dag`].
#[must_use]
pub fn staged_fft_order(n: usize) -> Vec<NodeId> {
    let t = n.trailing_zeros() as usize;
    let mut order = Vec::with_capacity(n * t);
    for rank in 1..=t {
        for i in 0..n {
            order.push(NodeId((rank * n + i) as u32));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fft_dag, matmul_dag, stencil1d_dag, tree_dag};

    fn run(dag: &Dag, order: &[NodeId], s: usize, policy: EvictionPolicy) -> StrategyOutcome {
        let out = schedule_with_order(dag, order, s, policy).unwrap();
        let game = replay(dag, s, &out.schedule);
        assert!(game.is_complete(), "schedule does not complete the DAG");
        assert_eq!(game.io(), out.io, "io accounting mismatch");
        assert_eq!(game.computes(), out.computes);
        out
    }

    #[test]
    fn tree_is_pebbled_exactly_once() {
        let dag = tree_dag(8);
        let order = natural_order(&dag);
        // The level-by-level order holds up to 4 subtree results while
        // loading 2 leaves: S = 6 avoids all spills.
        let out = run(&dag, &order, 6, EvictionPolicy::Belady);
        assert_eq!(out.io, 9); // 8 leaf reads + 1 root write
        assert_eq!(out.computes, 7);
        // At S = 4 the same order must spill: still legal, just costlier.
        let tight = run(&dag, &order, 4, EvictionPolicy::Belady);
        assert!(tight.io > 9);
    }

    #[test]
    fn capacity_too_small_is_rejected() {
        let dag = tree_dag(4);
        let order = natural_order(&dag);
        assert!(matches!(
            schedule_with_order(&dag, &order, 2, EvictionPolicy::Belady),
            Err(StrategyError::CapacityTooSmall { need: 3, .. })
        ));
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let dag = tree_dag(4);
        let mut order = natural_order(&dag);
        // Duplicate a vertex.
        let dup = order[0];
        order.push(dup);
        assert!(matches!(
            schedule_with_order(&dag, &order, 4, EvictionPolicy::Belady),
            Err(StrategyError::InvalidOrder)
        ));
        // Missing vertex.
        let order = &natural_order(&dag)[1..];
        assert!(schedule_with_order(&dag, order, 4, EvictionPolicy::Belady).is_err());
        // Including an input.
        let mut order = natural_order(&dag);
        order.insert(0, crate::dag::NodeId(0));
        assert!(schedule_with_order(&dag, &order, 4, EvictionPolicy::Belady).is_err());
    }

    #[test]
    fn stencil_pebbles_with_small_memory() {
        let dag = stencil1d_dag(8, 3);
        let order = natural_order(&dag);
        for s in [4, 6, 12] {
            let out = run(&dag, &order, s, EvictionPolicy::Belady);
            assert!(out.io >= 16, "must at least read inputs + write outputs");
        }
    }

    #[test]
    fn blocked_matmul_order_is_valid_and_cheaper() {
        let n = 6;
        let dag = matmul_dag(n);
        let s = 14; // fits ~3 tiles of b=2 plus operands
        let b = 2;
        let blocked = run(&dag, &blocked_matmul_order(n, b), s, EvictionPolicy::Belady);
        let naive = run(&dag, &natural_order(&dag), s, EvictionPolicy::Belady);
        assert!(
            blocked.io <= naive.io,
            "blocked {} should not exceed naive {}",
            blocked.io,
            naive.io
        );
    }

    #[test]
    fn blocked_matmul_io_scales_like_n3_over_b() {
        let n = 8;
        let dag = matmul_dag(n);
        // b = 1 vs b = 2 with capacities 3b² + 2 operand slots.
        let io1 = run(&dag, &blocked_matmul_order(n, 1), 5, EvictionPolicy::Belady).io;
        let io2 = run(
            &dag,
            &blocked_matmul_order(n, 2),
            16,
            EvictionPolicy::Belady,
        )
        .io;
        // Doubling b should cut the streaming term roughly in half.
        assert!((io2 as f64) < 0.75 * io1 as f64, "io1 = {io1}, io2 = {io2}");
    }

    #[test]
    fn blocked_fft_matches_pass_structure() {
        let n = 16;
        let dag = fft_dag(n);
        let block = 4;
        let out = run(
            &dag,
            &blocked_fft_order(n, block),
            12,
            EvictionPolicy::Belady,
        );
        // Fig. 2: 2 passes; each moves ~2n words: io ≈ read 16 + boundary
        // writes/reads 32 + write 16.
        let staged = run(&dag, &staged_fft_order(n), 12, EvictionPolicy::Belady);
        assert!(
            out.io <= staged.io,
            "blocked {} vs staged {}",
            out.io,
            staged.io
        );
    }

    #[test]
    fn lru_also_yields_legal_schedules() {
        let dag = matmul_dag(4);
        let out = run(&dag, &natural_order(&dag), 8, EvictionPolicy::Lru);
        assert!(out.io > 0);
    }

    #[test]
    fn more_memory_never_hurts_belady() {
        let n = 6;
        let dag = matmul_dag(n);
        let order = blocked_matmul_order(n, 2);
        let mut last = u64::MAX;
        for s in [5usize, 8, 16, 32, 64] {
            let out = run(&dag, &order, s, EvictionPolicy::Belady);
            assert!(out.io <= last, "s={s}: io {} > previous {last}", out.io);
            last = out.io;
        }
    }

    #[test]
    fn big_memory_reaches_compulsory_io_only() {
        // With S >= |V|, io = inputs + outputs exactly.
        let n = 4;
        let dag = matmul_dag(n);
        let out = run(
            &dag,
            &natural_order(&dag),
            dag.len(),
            EvictionPolicy::Belady,
        );
        assert_eq!(out.io as usize, 2 * n * n + n * n);
    }
}
