//! Property-based tests for the PE simulator.

use balance_core::Words;
use balance_machine::{
    resumable_replay, sampled_profile_of, segmented_profile_of, segmented_profile_resumable,
    CapacityProfile, CheckpointPolicy, ExternalStore, FaultPlan, Hierarchy, LruCache,
    MemorySystem, Pe, ReplayControl, StackDistance,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Worst sampled-vs-exact miss-*ratio* error over a capacity range — the
/// SHARDS error metric: absolute miss-count gap normalized by total
/// accesses, which stays meaningful at capacities where exact misses
/// shrink to the compulsory floor.
fn max_miss_ratio_err(sampled: &CapacityProfile, exact: &CapacityProfile, max_m: u64) -> f64 {
    let accesses = exact.accesses().max(1) as f64;
    (1..=max_m)
        .map(|m| sampled.misses_at(m).abs_diff(exact.misses_at(m)) as f64 / accesses)
        .fold(0.0, f64::max)
}

/// Brute-force reference LRU: a plain recency-ordered vector of resident
/// line ids (MRU first). Deliberately the most obvious possible
/// implementation, against which both production backends are pinned.
struct ModelLru {
    capacity: usize,
    line_words: u64,
    lines: Vec<u64>,
}

impl ModelLru {
    fn new(capacity: usize, line_words: u64) -> Self {
        ModelLru {
            capacity,
            line_words,
            lines: Vec::new(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let key = addr / self.line_words;
        if let Some(pos) = self.lines.iter().position(|&k| k == key) {
            self.lines.remove(pos);
            self.lines.insert(0, key);
            true
        } else {
            self.lines.insert(0, key);
            self.lines.truncate(self.capacity);
            false
        }
    }

    fn resident(&self) -> usize {
        self.lines.len()
    }
}

proptest! {
    /// Every successful load/store transfer counts exactly its word count,
    /// and contents round-trip.
    #[test]
    fn io_accounting_is_exact(chunks in proptest::collection::vec(1usize..32, 1..20)) {
        let total: usize = chunks.iter().sum();
        let mut store = ExternalStore::new();
        let data: Vec<f64> = (0..total).map(|i| i as f64).collect();
        let region = store.alloc_from(&data);
        let out_region = store.alloc(total);

        let mut pe = Pe::new(Words::new(64));
        let buf = pe.alloc(32).unwrap();
        let mut offset = 0usize;
        for len in &chunks {
            pe.load(&store, region.at(offset, *len).unwrap(), buf, 0).unwrap();
            pe.store(&mut store, buf, 0, out_region.at(offset, *len).unwrap()).unwrap();
            offset += len;
        }
        prop_assert_eq!(pe.io_reads() as usize, total);
        prop_assert_eq!(pe.io_writes() as usize, total);
        prop_assert_eq!(store.slice(out_region), store.slice(region));
    }

    /// Allocation never exceeds capacity; in_use + available == capacity.
    #[test]
    fn memory_conservation(
        capacity in 1usize..256,
        sizes in proptest::collection::vec(0usize..64, 0..32),
    ) {
        let mut pe = Pe::new(Words::new(capacity as u64));
        let mut live = Vec::new();
        for len in sizes {
            if let Ok(id) = pe.alloc(len) {
                live.push((id, len));
            }
            let in_use: usize = live.iter().map(|(_, l)| *l).sum();
            prop_assert!(in_use <= capacity);
            prop_assert_eq!(pe.mem().in_use().get() as usize, in_use);
            prop_assert_eq!(
                pe.mem().available().get() as usize,
                capacity - in_use
            );
        }
        for (id, _) in live {
            pe.free(id).unwrap();
        }
        prop_assert_eq!(pe.mem().in_use().get(), 0);
    }

    /// LRU hit/miss counts always sum to the number of accesses, and
    /// residency never exceeds capacity.
    #[test]
    fn lru_counts_are_consistent(
        capacity in 1usize..64,
        trace in proptest::collection::vec(0u64..128, 0..500),
    ) {
        let mut c = LruCache::with_capacity_words(capacity);
        for &a in &trace {
            c.access(a);
            prop_assert!(c.resident_lines() <= capacity);
        }
        prop_assert_eq!(c.hits() + c.misses(), trace.len() as u64);
    }

    /// LRU with capacity >= distinct addresses only misses cold.
    #[test]
    fn lru_compulsory_misses_only(trace in proptest::collection::vec(0u64..32, 1..300)) {
        let mut distinct: Vec<u64> = trace.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut c = LruCache::with_capacity_words(64); // > 32 possible addresses
        for &a in &trace {
            c.access(a);
        }
        prop_assert_eq!(c.misses() as usize, distinct.len());
    }

    /// LRU inclusion property: a larger cache never misses more on the same
    /// trace (LRU is a stack algorithm).
    #[test]
    fn lru_stack_property(seed in 0u64..1000, small in 2usize..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace: Vec<u64> = (0..400).map(|_| rng.gen_range(0..100)).collect();
        let mut c_small = LruCache::with_capacity_words(small);
        let mut c_big = LruCache::with_capacity_words(small * 2);
        for &a in &trace {
            c_small.access(a);
            c_big.access(a);
        }
        prop_assert!(c_big.misses() <= c_small.misses());
    }

    /// The direct-indexed cache backend is bit-identical to a brute-force
    /// model LRU on every access of a random trace.
    #[test]
    fn direct_backend_matches_model_lru(
        capacity in 1usize..48,
        line_words in 1u64..8,
        trace in proptest::collection::vec(0u64..512, 0..600),
    ) {
        let mut cache = LruCache::with_address_bound(capacity, line_words, 512);
        let mut model = ModelLru::new(capacity, line_words);
        for (step, &a) in trace.iter().enumerate() {
            prop_assert_eq!(cache.access(a), model.access(a), "step {}", step);
        }
        prop_assert_eq!(cache.resident_lines(), model.resident());
    }

    /// The open-addressed fallback backend is bit-identical to the model
    /// LRU — including under eviction churn, which exercises the
    /// backward-shift deletion in the probe table.
    #[test]
    fn fx_backend_matches_model_lru(
        capacity in 1usize..48,
        line_words in 1u64..8,
        trace in proptest::collection::vec(0u64..512, 0..600),
    ) {
        let mut cache = LruCache::new(capacity, line_words);
        let mut model = ModelLru::new(capacity, line_words);
        for (step, &a) in trace.iter().enumerate() {
            prop_assert_eq!(cache.access(a), model.access(a), "step {}", step);
        }
        prop_assert_eq!(cache.resident_lines(), model.resident());
    }

    /// Both production backends agree with each other on sparse address
    /// spaces (large strides stress hash collisions in the fallback map).
    #[test]
    fn cache_backends_agree(
        capacity in 1usize..32,
        stride in 1u64..4096,
        trace in proptest::collection::vec(0u64..64, 0..400),
    ) {
        let mut fx = LruCache::new(capacity, 1);
        let mut direct = LruCache::with_address_bound(capacity, 1, 64 * stride + 1);
        for &a in &trace {
            prop_assert_eq!(fx.access(a * stride), direct.access(a * stride));
        }
        prop_assert_eq!(fx.misses(), direct.misses());
        prop_assert_eq!(fx.hits(), direct.hits());
    }

    /// Inclusion property of the chained hierarchy: for any trace and any
    /// 2–3 level ladder, the words reaching level `i+1` never exceed the
    /// words reaching level `i` — traffic is monotone non-increasing with
    /// depth, and bounded by the access count at the top.
    #[test]
    fn hierarchy_traffic_is_inclusive(
        l1 in 1u64..24,
        growth2 in 1u64..24,
        growth3 in 0u64..24,
        trace in proptest::collection::vec(0u64..256, 0..600),
    ) {
        let mut caps = vec![Words::new(l1), Words::new(l1 + growth2)];
        if growth3 > 0 {
            caps.push(Words::new(l1 + growth2 + growth3));
        }
        let mut h = Hierarchy::new(&caps);
        for &a in &trace {
            h.access(a);
        }
        let t = h.traffic();
        prop_assert_eq!(t.len(), caps.len());
        prop_assert!(t.is_monotone_non_increasing(), "traffic {}", t);
        prop_assert!(t.get(0).unwrap() <= trace.len() as u64);
    }

    /// A one-level Hierarchy is bit-identical to a bare LruCache of the
    /// same capacity: same hit/miss outcome on every access, same counters,
    /// same traffic.
    #[test]
    fn one_level_hierarchy_is_bit_identical_to_lru(
        capacity in 1u64..48,
        trace in proptest::collection::vec(0u64..256, 0..600),
    ) {
        let mut h = Hierarchy::new(&[Words::new(capacity)]);
        let mut c = LruCache::new(capacity as usize, 1);
        for (step, &a) in trace.iter().enumerate() {
            let hit_level = h.access_returning_level(a);
            let hit = c.access(a);
            prop_assert_eq!(hit_level == 0, hit, "step {}", step);
        }
        prop_assert_eq!(h.traffic(), MemorySystem::traffic(&c));
        prop_assert_eq!(h.level(0).hits(), c.hits());
        prop_assert_eq!(h.level(0).misses(), c.misses());
        prop_assert_eq!(h.level(0).resident_lines(), c.resident_lines());
    }

    /// Every level of a hierarchy behaves exactly like a standalone LRU of
    /// the same capacity fed the *full* access stream — the Mattson stack
    /// model that makes per-level traffic a pure function of the reuse
    /// (stack) distance histogram, which is what lets the one-pass
    /// `stackdist` engine answer every level from one replay.
    #[test]
    fn hierarchy_levels_match_standalone_caches(
        l1 in 1u64..16,
        l2 in 16u64..48,
        trace in proptest::collection::vec(0u64..128, 0..500),
    ) {
        let mut h = Hierarchy::new(&[Words::new(l1), Words::new(l2)]);
        let mut top = LruCache::new(l1 as usize, 1);
        let mut bottom = LruCache::new(l2 as usize, 1);
        for &a in &trace {
            h.access(a);
            top.access(a);
            bottom.access(a);
        }
        prop_assert_eq!(h.level(0).misses(), top.misses());
        prop_assert_eq!(h.level(1).misses(), bottom.misses());
        let traffic = h.traffic();
        prop_assert_eq!(
            traffic.as_slice(),
            &[top.miss_words(), bottom.miss_words()][..]
        );
    }

    /// The one-pass stack-distance engine answers *every* capacity
    /// bit-identically to replaying the trace through an actual LRU of
    /// that capacity — the Mattson stack property, made executable. Both
    /// engine backends are checked against both cache backends.
    #[test]
    fn stack_distance_matches_lru_replay_at_every_capacity(
        trace in proptest::collection::vec(0u64..96, 0..400),
    ) {
        let hashed = StackDistance::profile_of(trace.iter().copied());
        let direct = StackDistance::profile_of_bounded(trace.iter().copied(), 96);
        prop_assert_eq!(&hashed, &direct);
        for m in 1..=100u64 {
            let mut fx = LruCache::with_capacity_words(m as usize);
            let mut dx = LruCache::with_address_bound(m as usize, 1, 96);
            let fx_misses = fx.run_trace(trace.iter().copied());
            prop_assert_eq!(dx.run_trace(trace.iter().copied()), fx_misses);
            prop_assert_eq!(hashed.misses_at(m), fx_misses, "capacity {}", m);
        }
        prop_assert_eq!(hashed.misses_at(u64::MAX), hashed.compulsory_misses());
    }

    /// The multi-level read off one histogram equals replaying the trace
    /// through a whole `Hierarchy` ladder, and inclusion holds exactly.
    #[test]
    fn stack_distance_multi_level_read_matches_hierarchy(
        l1 in 1u64..16,
        growth2 in 1u64..16,
        growth3 in 1u64..16,
        trace in proptest::collection::vec(0u64..128, 0..500),
    ) {
        let caps = [
            Words::new(l1),
            Words::new(l1 + growth2),
            Words::new(l1 + growth2 + growth3),
        ];
        let mut ladder = Hierarchy::new(&caps);
        for &a in &trace {
            ladder.access(a);
        }
        let profile = StackDistance::profile_of(trace.iter().copied());
        let read = profile.traffic_at(&caps);
        prop_assert_eq!(read, ladder.traffic());
        prop_assert!(read.is_monotone_non_increasing(), "traffic {}", read);
    }

    /// The segmented parallel engine is bit-identical to the serial
    /// engine — same histogram, same compulsory count, same profile —
    /// for *any* trace and *any* segment count, on both index backends.
    /// The segment count sweep covers the adversarial splits: a single
    /// segment (merge of one), more segments than accesses (every range
    /// is length 0 or 1, so every non-cold access straddles a boundary),
    /// and everything between.
    #[test]
    fn segmented_engine_is_bit_identical_under_any_boundaries(
        trace in proptest::collection::vec(0u64..96, 0..400),
        segments in 1usize..12,
    ) {
        let serial = StackDistance::profile_of(trace.iter().copied());
        let len = trace.len() as u64;
        let slice = |start: u64, end: u64| {
            trace[usize::try_from(start).unwrap()..usize::try_from(end).unwrap()]
                .iter()
                .copied()
        };
        for bound in [None, Some(96)] {
            let seg = segmented_profile_of(len, bound, segments, slice);
            prop_assert_eq!(&seg, &serial, "bound {:?}, {} segments", bound, segments);
            let shredded = segmented_profile_of(len, bound, trace.len() + 7, slice);
            prop_assert_eq!(&shredded, &serial, "bound {:?}, one access per segment", bound);
        }
    }

    /// The hash-sampled profile converges on the exact profile as the
    /// sampling rate rises: rate 1 (shift 0) is bit-exact, and on traces
    /// with enough reuse for the law of large numbers to bite, the
    /// SHARDS miss-ratio error at rate 1/2 stays within statistical
    /// slack of the rate-1/8 error (and is itself small).
    #[test]
    fn sampled_profile_error_shrinks_as_rate_rises(
        seed in 0u64..500,
        rounds in 8usize..24,
    ) {
        // Structured trace: 192 addresses each touched once per round in
        // a per-round shuffled order — every non-cold access has a
        // distance in [1, 384), so each capacity sees real reuse.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut addrs: Vec<u64> = (0..192).collect();
        let mut trace = Vec::with_capacity(192 * rounds);
        for _ in 0..rounds {
            for i in (1..addrs.len()).rev() {
                addrs.swap(i, rng.gen_range(0..i + 1));
            }
            trace.extend_from_slice(&addrs);
        }

        let exact = StackDistance::profile_of(trace.iter().copied());
        let bit_exact = sampled_profile_of(trace.iter().copied(), 0);
        prop_assert!(bit_exact.is_exact());
        prop_assert_eq!(&bit_exact, &exact);

        let max_m = exact.saturating_capacity() + 2;
        let fine = sampled_profile_of(trace.iter().copied(), 1);
        let coarse = sampled_profile_of(trace.iter().copied(), 3);
        let err_fine = max_miss_ratio_err(&fine, &exact, max_m);
        let err_coarse = max_miss_ratio_err(&coarse, &exact, max_m);
        prop_assert!(
            err_fine <= err_coarse + 0.05,
            "rate 1/2 err {} vs rate 1/8 err {}",
            err_fine,
            err_coarse
        );
        prop_assert!(err_fine < 0.12, "rate 1/2 err {}", err_fine);
    }

    /// Strided gather matches a manual gather.
    #[test]
    fn strided_gather_matches_reference(
        start in 0usize..8,
        stride in 1usize..8,
        count in 1usize..16,
    ) {
        let n = start + stride * count + 1;
        let data: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut store = ExternalStore::new();
        let _ = store.alloc_from(&data);
        let mut pe = Pe::new(Words::new(64));
        let buf = pe.alloc(16).unwrap();
        pe.load_strided(&store, start, stride, count, buf, 0).unwrap();
        let got = &pe.buf(buf).unwrap()[..count];
        let want: Vec<f64> = (0..count).map(|i| data[start + i * stride]).collect();
        prop_assert_eq!(got, &want[..]);
    }
}

proptest! {
    /// Tentpole pin (PR 7): a replay killed at an *arbitrary* address,
    /// checkpointing at an *arbitrary* interval, resumes from its last
    /// persisted image to a curve bit-identical to the uninterrupted
    /// replay — on both index backends (hash and direct-indexed).
    #[test]
    fn killed_replay_resumes_bit_identically_on_both_backends(
        trace in proptest::collection::vec(0u64..64, 2..250),
        every in 1u64..64,
        die_frac in 0.05f64..0.95,
        bounded in proptest::bool::ANY,
    ) {
        let len = trace.len() as u64;
        let die_at = (((len as f64) * die_frac) as u64).clamp(1, len - 1);
        let fresh = || if bounded {
            StackDistance::with_address_bound(64)
        } else {
            StackDistance::new()
        };
        let uninterrupted = {
            let mut e = fresh();
            e.observe_trace(trace.iter().copied());
            e.into_profile()
        };
        let dir = std::env::temp_dir().join(format!(
            "balance-prop-resume-{len}-{every}-{die_at}-{}-{}",
            u8::from(bounded),
            std::process::id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::every(dir.clone(), every);
        let faults = FaultPlan::none().with_die_at(die_at);
        let mut ctl = ReplayControl::new("prop");
        ctl.policy = Some(&policy);
        ctl.faults = &faults;
        let killed = resumable_replay(len, trace.iter().copied(), fresh, &ctl);
        prop_assert!(killed.is_err(), "kill at {} of {} must interrupt", die_at, len);
        let none = FaultPlan::none();
        let mut ctl = ReplayControl::new("prop");
        ctl.policy = Some(&policy);
        ctl.faults = &none;
        let (engine, stats) = resumable_replay(len, trace.iter().copied(), fresh, &ctl)
            .unwrap();
        // Any resume position must be a checkpoint boundary at or before
        // the kill; no image at all (kill before the first checkpoint)
        // restarts from scratch. Either way the curve is bit-identical.
        if let Some(p) = stats.resumed_at {
            prop_assert!(p <= die_at && p % every == 0, "resumed at {}", p);
        }
        prop_assert_eq!(engine.into_profile(), uninterrupted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same guarantee through the segmented parallel engine: a
    /// segment worker killed by the harness is retried (bounded) and the
    /// merged curve stays bit-identical to the serial replay.
    #[test]
    fn killed_segment_worker_retries_to_the_serial_curve(
        trace in proptest::collection::vec(0u64..96, 8..300),
        segments in 2usize..8,
        victim in 0usize..8,
        every in 1u64..64,
    ) {
        let serial = StackDistance::profile_of(trace.iter().copied());
        let len = trace.len() as u64;
        let victim = victim % segments;
        let slice = |start: u64, end: u64| {
            trace[usize::try_from(start).unwrap()..usize::try_from(end).unwrap()]
                .iter()
                .copied()
        };
        let dir = std::env::temp_dir().join(format!(
            "balance-prop-segkill-{len}-{segments}-{victim}-{every}-{}",
            std::process::id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::every(dir.clone(), every);
        let faults = FaultPlan::none().with_kill_segment(victim, 1);
        let (profile, stats) = segmented_profile_resumable(
            len,
            Some(96),
            segments,
            slice,
            Some(&policy),
            &faults,
            None,
        )
        .unwrap();
        prop_assert!(stats.segment_retries >= 1, "worker {} was armed to die once", victim);
        prop_assert_eq!(profile, serial);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Durability honesty: flipping any single byte of a snapshot image
    /// is caught by the trailing checksum (or the structural validation
    /// behind it), and truncation is never accepted — for arbitrary
    /// traces, cut points, and backends.
    #[test]
    fn corrupted_or_truncated_snapshots_are_rejected(
        trace in proptest::collection::vec(0u64..64, 1..200),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        bounded in proptest::bool::ANY,
    ) {
        let cut = ((trace.len() as f64) * cut_frac) as usize;
        let mut e = if bounded {
            StackDistance::with_address_bound(64)
        } else {
            StackDistance::new()
        };
        e.observe_trace(trace[..cut].iter().copied());
        let image = e.snapshot();
        // Round trip is bit-identical...
        let restored = StackDistance::restore(&image).unwrap();
        prop_assert_eq!(restored.accesses(), cut as u64);
        // ...a single byte flip anywhere is rejected...
        let pos = ((image.len() as f64) * flip_frac) as usize % image.len();
        let mut bad = image.clone();
        bad[pos] ^= 0x40;
        prop_assert!(StackDistance::restore(&bad).is_err(), "flip at {} accepted", pos);
        // ...and so is any proper truncation.
        let trunc = &image[..image.len() - 1];
        prop_assert!(StackDistance::restore(trunc).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// KBCP codec round trip (PR 10): an arbitrary profile — exact, or
    /// sampled with an arbitrary rate — survives encode/decode
    /// structurally equal, provenance header included.
    #[test]
    fn kbcp_capacity_images_round_trip_structurally_equal(
        trace in proptest::collection::vec(0u64..512, 1..400),
        shift in 0u32..6,
    ) {
        use balance_machine::{decode_profile, encode_profile, ProfileMeta, ProfilePayload};
        let profile = if shift == 0 {
            StackDistance::profile_of(trace.iter().copied())
        } else {
            sampled_profile_of(trace.iter().copied(), shift)
        };
        let meta = ProfileMeta {
            kernel: "matmul".to_string(),
            n: 64,
            engine: if shift == 0 { "stackdist".to_string() } else { format!("sampled:{shift}") },
            sample_shift: profile.sample_shift(),
            line_words: 1,
            writebacks: false,
        };
        let payload = ProfilePayload::Capacity(profile);
        let bytes = encode_profile(&meta, &payload);
        let (meta2, payload2) = decode_profile(&bytes).unwrap();
        prop_assert_eq!(meta, meta2);
        prop_assert_eq!(payload, payload2);
    }

    /// The traffic dual-ledger twin round-trips too: read curve,
    /// write-back chains, closed/open totals, line size.
    #[test]
    fn kbcp_traffic_images_round_trip_structurally_equal(
        trace in proptest::collection::vec((0u64..256, proptest::bool::ANY), 1..300),
        lw_shift in 0u32..4,
    ) {
        use balance_core::Access;
        use balance_machine::{decode_profile, encode_profile, ProfileMeta, ProfilePayload};
        let line_words = 1u64 << lw_shift;
        let accesses = trace.iter().map(|&(addr, w)| {
            if w { Access::write(addr) } else { Access::read(addr) }
        });
        let traffic = StackDistance::traffic_profile_of(accesses, line_words);
        let meta = ProfileMeta {
            kernel: "sort".to_string(),
            n: 128,
            engine: "stackdist".to_string(),
            sample_shift: 0,
            line_words,
            writebacks: true,
        };
        let payload = ProfilePayload::Traffic(traffic);
        let bytes = encode_profile(&meta, &payload);
        let (meta2, payload2) = decode_profile(&bytes).unwrap();
        prop_assert_eq!(meta, meta2);
        prop_assert_eq!(payload, payload2);
    }

    /// Adversarial pin: *every* 1-byte truncation and *every* single
    /// bit-flip of a KBCP image is rejected with a typed error — never a
    /// panic, never a silently different profile.
    #[test]
    fn kbcp_rejects_every_truncation_and_single_bit_flip(
        trace in proptest::collection::vec(0u64..64, 1..40),
        writeback in proptest::bool::ANY,
    ) {
        use balance_core::Access;
        use balance_machine::{decode_profile, encode_profile, ProfileMeta, ProfilePayload};
        let (payload, writebacks, line_words) = if writeback {
            let accesses = trace.iter().map(|&a| {
                if a & 1 == 0 { Access::read(a) } else { Access::write(a) }
            });
            (
                ProfilePayload::Traffic(StackDistance::traffic_profile_of(accesses, 2)),
                true,
                2,
            )
        } else {
            (
                ProfilePayload::Capacity(StackDistance::profile_of(trace.iter().copied())),
                false,
                1,
            )
        };
        let meta = ProfileMeta {
            kernel: "fft".to_string(),
            n: 32,
            engine: "stackdist".to_string(),
            sample_shift: 0,
            line_words,
            writebacks,
        };
        let bytes = encode_profile(&meta, &payload);
        for len in 0..bytes.len() {
            prop_assert!(
                decode_profile(&bytes[..len]).is_err(),
                "truncation to {} of {} bytes accepted",
                len,
                bytes.len()
            );
        }
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                prop_assert!(
                    decode_profile(&bad).is_err(),
                    "flip of bit {} at byte {} accepted",
                    bit,
                    pos
                );
            }
        }
    }
}
