//! Exact segmented parallel Mattson: split the address stream into K
//! time ranges, run independent [`StackDistance`] passes concurrently,
//! then merge the boundary state exactly — the merged
//! [`CapacityProfile`] is **bit-identical** to the serial engine's
//! (pinned by property test on both backends).
//!
//! The decomposition follows the PARDA observation (Niu, Dong, Jiang &
//! Shen, *PARDA: A Fast Parallel Reuse Distance Analysis Algorithm*,
//! IPDPS 2012): an access whose previous touch of the same address lies
//! in the *same* time range has a stack distance computable entirely
//! inside that range, so per-range passes already resolve the vast
//! majority of accesses. Only each range's **first touches** — at most
//! one access per distinct address per range — need the earlier ranges'
//! state. Each worker therefore exports three artifacts:
//!
//! 1. its local distance histogram (in-range reuses, final),
//! 2. its first-touch addresses in touch order (the boundary accesses),
//! 3. its final LRU stack, bottom to top (its distinct addresses in
//!    last-access order).
//!
//! The sequential merge keeps one global recency structure holding every
//! address of the ranges consumed so far, in true last-access order. For
//! range k it replays the first-touch list: a boundary access of address
//! `a` found at stack position `p` has true distance `count_after(p) + 1`
//! — the markers above `p` are exactly the addresses last-touched after
//! `a`'s previous access in earlier ranges (not yet re-touched in range
//! k) plus the range-k first touches already replayed, whose union is the
//! distinct-intervening set. An absent address is a global compulsory
//! miss. Afterwards the worker's final stack is replayed with silent
//! move-to-top touches, restoring true last-access order (first-touch
//! order within a range is *not* last-access order) before the next
//! range merges.
//!
//! Cost: the parallel phase is `O(len/K · log U)` per worker; the merge
//! is `O(K · U · log U)` — independent of trace length, so for
//! billion-address traces the serial fraction vanishes and the speedup
//! approaches K (memory: one last-access table per concurrent worker).

use crate::stackdist::{CapacityProfile, StackDistance};

/// One worker's exported boundary state (see module docs).
struct SegmentPass {
    hist: Vec<u64>,
    first_touches: Vec<u64>,
    final_stack: Vec<u64>,
    accesses: u64,
}

/// Runs one per-range pass over `addrs`.
fn segment_pass(
    addrs: impl IntoIterator<Item = u64>,
    addr_bound: Option<u64>,
) -> SegmentPass {
    let mut engine = match addr_bound {
        Some(bound) => StackDistance::with_address_bound(bound),
        None => StackDistance::new(),
    };
    engine.record_first_touches();
    engine.observe_trace(addrs);
    let final_stack = engine.final_stack();
    let first_touches = engine.take_first_touches();
    let (hist, accesses) = engine.into_parts();
    SegmentPass {
        hist,
        first_touches,
        final_stack,
        accesses,
    }
}

/// Splits `len` accesses into `segments` near-equal contiguous ranges.
fn ranges(len: u64, segments: usize) -> Vec<(u64, u64)> {
    let k = u64::try_from(segments.max(1)).expect("segment count fits u64");
    // At most one (non-empty) segment per access.
    let k = k.min(len).max(1);
    let base = len / k;
    let rem = len % k;
    let mut out = Vec::with_capacity(usize::try_from(k).expect("segments fit usize"));
    let mut start = 0u64;
    for i in 0..k {
        let extra = u64::from(i < rem);
        let end = start + base + extra;
        out.push((start, end));
        start = end;
    }
    out
}

/// The segmented parallel profile: runs `segments` concurrent
/// [`StackDistance`] passes over time ranges of the trace (one scoped
/// thread per range — callers pick `segments` ≈ available cores) and
/// merges them exactly. Bit-identical to
/// [`StackDistance::profile_of`]/[`profile_of_bounded`]
/// (pinned by property test).
///
/// `make_range(start, end)` must produce the trace's addresses in
/// positions `[start, end)`; it is called concurrently from worker
/// threads. `len` is the total trace length; `addr_bound`, when given,
/// promises every address lies in `[0, addr_bound)` and selects the
/// direct-indexed backend in every worker (one flat table per worker).
///
/// [`profile_of_bounded`]: StackDistance::profile_of_bounded
///
/// # Panics
///
/// As [`StackDistance::with_address_bound`] when `addr_bound` is
/// `Some(0)` or an address breaks its promise; propagates worker panics.
///
/// # Examples
///
/// ```
/// use balance_machine::{segmented_profile_of, StackDistance};
///
/// let trace: Vec<u64> = (0..256u64).map(|i| (i * 7) % 40).collect();
/// let par = segmented_profile_of(trace.len() as u64, Some(40), 4, |s, e| {
///     trace[s as usize..e as usize].iter().copied()
/// });
/// let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 40);
/// assert_eq!(par, serial); // bit-identical, not approximately equal
/// ```
pub fn segmented_profile_of<I, F>(
    len: u64,
    addr_bound: Option<u64>,
    segments: usize,
    make_range: F,
) -> CapacityProfile
where
    I: Iterator<Item = u64>,
    F: Fn(u64, u64) -> I + Sync,
{
    let ranges = ranges(len, segments);
    // One segment degenerates to the serial engine — skip the scaffolding.
    if ranges.len() <= 1 {
        let (start, end) = ranges.first().copied().unwrap_or((0, 0));
        let mut engine = match addr_bound {
            Some(bound) => StackDistance::with_address_bound(bound),
            None => StackDistance::new(),
        };
        engine.observe_trace(make_range(start, end));
        return engine.into_profile();
    }

    let passes: Vec<SegmentPass> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let make_range = &make_range;
                scope.spawn(move || segment_pass(make_range(start, end), addr_bound))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("segment worker panicked")).collect()
    });

    // Sequential exact merge, in time order (see module docs).
    let mut merged = match addr_bound {
        Some(bound) => StackDistance::with_address_bound(bound),
        None => StackDistance::new(),
    };
    for pass in passes {
        merged.add_accesses(pass.accesses);
        merged.absorb_hist(&pass.hist);
        for addr in pass.first_touches {
            merged.merge_observe(addr);
        }
        for addr in pass.final_stack {
            merged.touch_silent(addr);
        }
    }
    merged.into_profile()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_serial(trace: &[u64], addr_bound: Option<u64>, segments: usize) {
        let serial = match addr_bound {
            Some(b) => StackDistance::profile_of_bounded(trace.iter().copied(), b),
            None => StackDistance::profile_of(trace.iter().copied()),
        };
        let par = segmented_profile_of(trace.len() as u64, addr_bound, segments, |s, e| {
            trace[usize::try_from(s).unwrap()..usize::try_from(e).unwrap()]
                .iter()
                .copied()
        });
        assert_eq!(
            par, serial,
            "segments={segments} bound={addr_bound:?} trace={trace:?}"
        );
    }

    #[test]
    fn empty_trace_any_segmentation() {
        for k in [1usize, 2, 7] {
            check_against_serial(&[], None, k);
            check_against_serial(&[], Some(8), k);
        }
    }

    #[test]
    fn reuse_straddling_every_boundary() {
        // A cyclic trace re-touches every address across every possible
        // segment boundary.
        let trace: Vec<u64> = (0..96u64).map(|i| i % 7).collect();
        for k in [1usize, 2, 3, 5, 96, 200] {
            check_against_serial(&trace, None, k);
            check_against_serial(&trace, Some(7), k);
        }
    }

    #[test]
    fn segment_length_one_is_exact() {
        let trace: Vec<u64> = (0..40u64).map(|i| (i * i + 3 * i) % 11).collect();
        check_against_serial(&trace, None, trace.len());
        check_against_serial(&trace, Some(11), trace.len());
    }

    #[test]
    fn single_segment_is_the_serial_engine() {
        let trace: Vec<u64> = (0..64u64).map(|i| (i * 13) % 23).collect();
        check_against_serial(&trace, None, 1);
        check_against_serial(&trace, Some(23), 1);
    }

    #[test]
    fn first_touch_order_differs_from_last_access_order() {
        // Within segment [a, x, a | ...], x's last access precedes a's
        // although a was touched first — the final-stack reorder step is
        // what keeps the next segment's distances exact.
        let trace = [1u64, 2, 1, 2, 1, 3, 2, 1];
        for k in 1..=trace.len() {
            check_against_serial(&trace, None, k);
        }
    }

    #[test]
    fn mattson_counter_trace_all_segmentations() {
        let trace = [0u64, 1, 2, 1, 3, 4, 1];
        for k in 1..=trace.len() + 2 {
            check_against_serial(&trace, None, k);
            check_against_serial(&trace, Some(5), k);
        }
    }
}
