//! Exact segmented parallel Mattson: split the address stream into K
//! time ranges, run independent [`StackDistance`] passes concurrently,
//! then merge the boundary state exactly — the merged
//! [`CapacityProfile`] is **bit-identical** to the serial engine's
//! (pinned by property test on both backends).
//!
//! The decomposition follows the PARDA observation (Niu, Dong, Jiang &
//! Shen, *PARDA: A Fast Parallel Reuse Distance Analysis Algorithm*,
//! IPDPS 2012): an access whose previous touch of the same address lies
//! in the *same* time range has a stack distance computable entirely
//! inside that range, so per-range passes already resolve the vast
//! majority of accesses. Only each range's **first touches** — at most
//! one access per distinct address per range — need the earlier ranges'
//! state. Each worker therefore exports three artifacts:
//!
//! 1. its local distance histogram (in-range reuses, final),
//! 2. its first-touch addresses in touch order (the boundary accesses),
//! 3. its final LRU stack, bottom to top (its distinct addresses in
//!    last-access order).
//!
//! The sequential merge keeps one global recency structure holding every
//! address of the ranges consumed so far, in true last-access order. For
//! range k it replays the first-touch list: a boundary access of address
//! `a` found at stack position `p` has true distance `count_after(p) + 1`
//! — the markers above `p` are exactly the addresses last-touched after
//! `a`'s previous access in earlier ranges (not yet re-touched in range
//! k) plus the range-k first touches already replayed, whose union is the
//! distinct-intervening set. An absent address is a global compulsory
//! miss. Afterwards the worker's final stack is replayed with silent
//! move-to-top touches, restoring true last-access order (first-touch
//! order within a range is *not* last-access order) before the next
//! range merges.
//!
//! Cost: the parallel phase is `O(len/K · log U)` per worker; the merge
//! is `O(K · U · log U)` — independent of trace length, so for
//! billion-address traces the serial fraction vanishes and the speedup
//! approaches K (memory: one last-access table per concurrent worker).

use std::time::Instant;

use crate::checkpoint::{
    load, resumable_replay, write_atomic, ByteWriter, CheckpointPolicy, ReplayControl,
    ReplayInterrupt, ReplayStats, CHECKPOINT_VERSION,
};
use crate::faults::{FaultPlan, InjectedFault};
use crate::stackdist::{CapacityProfile, StackDistance};

/// Leading magic of a segmented-run manifest (`K`ung `B`alance
/// `S`egment `M`anifest).
const MANIFEST_MAGIC: [u8; 4] = *b"KBSM";

/// How many times a dead segment worker is re-run before the whole pass
/// gives up (1 initial attempt + `MAX_SEGMENT_RETRIES` retries).
pub const MAX_SEGMENT_RETRIES: u32 = 3;

/// One worker's exported boundary state (see module docs).
struct SegmentPass {
    hist: Vec<u64>,
    first_touches: Vec<u64>,
    final_stack: Vec<u64>,
    accesses: u64,
}

/// Runs one per-range pass over `addrs`.
fn segment_pass(
    addrs: impl IntoIterator<Item = u64>,
    addr_bound: Option<u64>,
) -> SegmentPass {
    let mut engine = match addr_bound {
        Some(bound) => StackDistance::with_address_bound(bound),
        None => StackDistance::new(),
    };
    engine.record_first_touches();
    engine.observe_trace(addrs);
    let final_stack = engine.final_stack();
    let first_touches = engine.take_first_touches();
    let (hist, accesses) = engine.into_parts();
    SegmentPass {
        hist,
        first_touches,
        final_stack,
        accesses,
    }
}

/// Splits `len` accesses into `segments` near-equal contiguous ranges.
fn ranges(len: u64, segments: usize) -> Vec<(u64, u64)> {
    let k = u64::try_from(segments.max(1))
        .unwrap_or_else(|_| panic!("segment count fits u64"));
    // At most one (non-empty) segment per access.
    let k = k.min(len).max(1);
    let base = len / k;
    let rem = len % k;
    let mut out =
        Vec::with_capacity(usize::try_from(k).unwrap_or_else(|_| panic!("segments fit usize")));
    let mut start = 0u64;
    for i in 0..k {
        let extra = u64::from(i < rem);
        let end = start + base + extra;
        out.push((start, end));
        start = end;
    }
    out
}

/// The segmented parallel profile: runs `segments` concurrent
/// [`StackDistance`] passes over time ranges of the trace (one scoped
/// thread per range — callers pick `segments` ≈ available cores) and
/// merges them exactly. Bit-identical to
/// [`StackDistance::profile_of`]/[`profile_of_bounded`]
/// (pinned by property test).
///
/// `make_range(start, end)` must produce the trace's addresses in
/// positions `[start, end)`; it is called concurrently from worker
/// threads. `len` is the total trace length; `addr_bound`, when given,
/// promises every address lies in `[0, addr_bound)` and selects the
/// direct-indexed backend in every worker (one flat table per worker).
///
/// [`profile_of_bounded`]: StackDistance::profile_of_bounded
///
/// # Panics
///
/// As [`StackDistance::with_address_bound`] when `addr_bound` is
/// `Some(0)` or an address breaks its promise; propagates worker panics.
///
/// # Examples
///
/// ```
/// use balance_machine::{segmented_profile_of, StackDistance};
///
/// let trace: Vec<u64> = (0..256u64).map(|i| (i * 7) % 40).collect();
/// let par = segmented_profile_of(trace.len() as u64, Some(40), 4, |s, e| {
///     trace[s as usize..e as usize].iter().copied()
/// });
/// let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 40);
/// assert_eq!(par, serial); // bit-identical, not approximately equal
/// ```
pub fn segmented_profile_of<I, F>(
    len: u64,
    addr_bound: Option<u64>,
    segments: usize,
    make_range: F,
) -> CapacityProfile
where
    I: Iterator<Item = u64>,
    F: Fn(u64, u64) -> I + Sync,
{
    let ranges = ranges(len, segments);
    // One segment degenerates to the serial engine — skip the scaffolding.
    if ranges.len() <= 1 {
        let (start, end) = ranges.first().copied().unwrap_or((0, 0));
        let mut engine = match addr_bound {
            Some(bound) => StackDistance::with_address_bound(bound),
            None => StackDistance::new(),
        };
        engine.observe_trace(make_range(start, end));
        return engine.into_profile();
    }

    let passes: Vec<SegmentPass> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let make_range = &make_range;
                scope.spawn(move || segment_pass(make_range(start, end), addr_bound))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("segment worker panicked"))
            })
            .collect()
    });

    merge_passes(passes, addr_bound)
}

/// The sequential exact merge, in time order (see module docs).
fn merge_passes(passes: Vec<SegmentPass>, addr_bound: Option<u64>) -> CapacityProfile {
    let mut merged = match addr_bound {
        Some(bound) => StackDistance::with_address_bound(bound),
        None => StackDistance::new(),
    };
    for pass in passes {
        merged.add_accesses(pass.accesses);
        merged.absorb_hist(&pass.hist);
        for addr in pass.first_touches {
            merged.merge_observe(addr);
        }
        for addr in pass.final_stack {
            merged.touch_silent(addr);
        }
    }
    merged.into_profile()
}

/// Durability counters from a [`segmented_profile_resumable`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentedStats {
    /// Segment workers that resumed from a persisted image instead of
    /// starting fresh (completed segments resume instantly from their
    /// final image).
    pub resumed_segments: usize,
    /// Snapshots persisted across all workers and attempts.
    pub checkpoints_written: u64,
    /// Dead segment workers that were re-run (bounded by
    /// [`MAX_SEGMENT_RETRIES`] per segment).
    pub segment_retries: u64,
}

/// The manifest image pinning a checkpoint directory to one segmented
/// run's geometry. Byte-for-byte deterministic, so "does the directory
/// belong to this run" is an equality check.
fn manifest_bytes(len: u64, segments: u64, addr_bound: Option<u64>) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(40);
    w.bytes(&MANIFEST_MAGIC);
    w.u16(CHECKPOINT_VERSION);
    w.u64(len);
    w.u64(segments);
    w.u8(u8::from(addr_bound.is_some()));
    w.u64(addr_bound.unwrap_or(0));
    w.finish()
}

fn segment_file(k: usize) -> String {
    format!("seg_{k}")
}

/// One resumable per-range pass (the fault-tolerant [`segment_pass`]).
fn segment_pass_resumable<I: Iterator<Item = u64>>(
    addrs: I,
    seg_len: u64,
    addr_bound: Option<u64>,
    ctl: &ReplayControl<'_>,
) -> Result<(SegmentPass, ReplayStats), ReplayInterrupt> {
    let fresh = || {
        let mut engine = match addr_bound {
            Some(bound) => StackDistance::with_address_bound(bound),
            None => StackDistance::new(),
        };
        engine.record_first_touches();
        engine
    };
    let (mut engine, stats) = resumable_replay(seg_len, addrs, fresh, ctl)?;
    let final_stack = engine.final_stack();
    let first_touches = engine.take_first_touches();
    let (hist, accesses) = engine.into_parts();
    Ok((
        SegmentPass {
            hist,
            first_touches,
            final_stack,
            accesses,
        },
        stats,
    ))
}

/// [`segmented_profile_of`] with the fault-tolerance layer threaded
/// through every worker: per-segment checkpoint images under the policy
/// directory (plus a manifest pinning the run geometry — a directory
/// left by a different run is wiped, never misread), deterministic fault
/// injection, bounded retry of dead segment workers, and an optional
/// wall-clock deadline.
///
/// A run killed at any point (including by a real SIGKILL) and re-invoked
/// with the same arguments resumes every segment from its last persisted
/// image — completed segments resume instantly from their final image —
/// and produces a [`CapacityProfile`] **bit-identical** to the
/// uninterrupted serial engine (pinned by proptest).
///
/// # Errors
///
/// [`ReplayInterrupt`] when a segment worker dies more than
/// [`MAX_SEGMENT_RETRIES`] times, a non-retryable fault fires, the
/// deadline passes (progress is checkpointed first when a policy is
/// armed), or a snapshot cannot be persisted.
///
/// # Panics
///
/// As [`segmented_profile_of`].
#[allow(clippy::too_many_lines)]
pub fn segmented_profile_resumable<I, F>(
    len: u64,
    addr_bound: Option<u64>,
    segments: usize,
    make_range: F,
    policy: Option<&CheckpointPolicy>,
    faults: &FaultPlan,
    deadline: Option<Instant>,
) -> Result<(CapacityProfile, SegmentedStats), ReplayInterrupt>
where
    I: Iterator<Item = u64>,
    F: Fn(u64, u64) -> I + Sync,
{
    let ranges = ranges(len, segments);

    if let Some(policy) = policy {
        let manifest = manifest_bytes(len, ranges.len() as u64, addr_bound);
        let mpath = policy.file("manifest");
        if load(&mpath).as_deref() != Some(manifest.as_slice()) {
            // Absent or from a different run geometry: the per-segment
            // images are meaningless here — wipe them and re-pin.
            for k in 0..ranges.len() {
                let _ = std::fs::remove_file(policy.file(&segment_file(k)));
            }
            write_atomic(&mpath, &manifest)?;
        }
    }

    let run_segment = |k: usize,
                       (start, end): (u64, u64)|
     -> Result<(SegmentPass, ReplayStats), ReplayInterrupt> {
        let name = segment_file(k);
        // An injected worker death fires mid-range, through the same
        // per-address trigger the serial driver uses — so the images it
        // leaves behind are exactly what a real preemption leaves.
        let killed = faults.segment_dies(k);
        let local_plan;
        let plan = if killed {
            local_plan = FaultPlan::none().with_die_at((end - start) / 2);
            &local_plan
        } else {
            faults
        };
        let ctl = ReplayControl {
            name: &name,
            policy,
            faults: plan,
            deadline,
            persist_final: policy.is_some(),
        };
        segment_pass_resumable(make_range(start, end), end - start, addr_bound, &ctl).map_err(
            |e| match e {
                ReplayInterrupt::Fault(InjectedFault::Die { .. }) if killed => {
                    ReplayInterrupt::Fault(InjectedFault::SegmentDeath { segment: k })
                }
                other => other,
            },
        )
    };

    let outcomes: Vec<Result<(SegmentPass, ReplayStats), ReplayInterrupt>> =
        if ranges.len() == 1 {
            vec![run_segment(0, ranges[0])]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .enumerate()
                    .map(|(k, &range)| {
                        let run_segment = &run_segment;
                        scope.spawn(move || run_segment(k, range))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| panic!("segment worker panicked"))
                    })
                    .collect()
            })
        };

    let mut stats = SegmentedStats::default();
    let mut passes = Vec::with_capacity(ranges.len());
    for (k, mut outcome) in outcomes.into_iter().enumerate() {
        let mut tries = 0u32;
        let pass = loop {
            match outcome {
                Ok((pass, rstats)) => {
                    if rstats.resumed_at.is_some() {
                        stats.resumed_segments += 1;
                    }
                    stats.checkpoints_written += rstats.checkpoints_written;
                    break pass;
                }
                Err(e) => {
                    let retryable = matches!(
                        e,
                        ReplayInterrupt::Fault(
                            InjectedFault::SegmentDeath { .. }
                                | InjectedFault::Die { .. }
                                | InjectedFault::AllocFail { .. }
                        )
                    );
                    if !retryable || tries >= MAX_SEGMENT_RETRIES {
                        return Err(e);
                    }
                    tries += 1;
                    stats.segment_retries += 1;
                    outcome = run_segment(k, ranges[k]);
                }
            }
        };
        passes.push(pass);
    }

    let profile = merge_passes(passes, addr_bound);
    if let Some(policy) = policy {
        // The run is complete: its images have nothing left to resume.
        for k in 0..ranges.len() {
            let _ = std::fs::remove_file(policy.file(&segment_file(k)));
        }
        let _ = std::fs::remove_file(policy.file("manifest"));
    }
    Ok((profile, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_serial(trace: &[u64], addr_bound: Option<u64>, segments: usize) {
        let serial = match addr_bound {
            Some(b) => StackDistance::profile_of_bounded(trace.iter().copied(), b),
            None => StackDistance::profile_of(trace.iter().copied()),
        };
        let par = segmented_profile_of(trace.len() as u64, addr_bound, segments, |s, e| {
            trace[usize::try_from(s).unwrap()..usize::try_from(e).unwrap()]
                .iter()
                .copied()
        });
        assert_eq!(
            par, serial,
            "segments={segments} bound={addr_bound:?} trace={trace:?}"
        );
    }

    #[test]
    fn empty_trace_any_segmentation() {
        for k in [1usize, 2, 7] {
            check_against_serial(&[], None, k);
            check_against_serial(&[], Some(8), k);
        }
    }

    #[test]
    fn reuse_straddling_every_boundary() {
        // A cyclic trace re-touches every address across every possible
        // segment boundary.
        let trace: Vec<u64> = (0..96u64).map(|i| i % 7).collect();
        for k in [1usize, 2, 3, 5, 96, 200] {
            check_against_serial(&trace, None, k);
            check_against_serial(&trace, Some(7), k);
        }
    }

    #[test]
    fn segment_length_one_is_exact() {
        let trace: Vec<u64> = (0..40u64).map(|i| (i * i + 3 * i) % 11).collect();
        check_against_serial(&trace, None, trace.len());
        check_against_serial(&trace, Some(11), trace.len());
    }

    #[test]
    fn single_segment_is_the_serial_engine() {
        let trace: Vec<u64> = (0..64u64).map(|i| (i * 13) % 23).collect();
        check_against_serial(&trace, None, 1);
        check_against_serial(&trace, Some(23), 1);
    }

    #[test]
    fn first_touch_order_differs_from_last_access_order() {
        // Within segment [a, x, a | ...], x's last access precedes a's
        // although a was touched first — the final-stack reorder step is
        // what keeps the next segment's distances exact.
        let trace = [1u64, 2, 1, 2, 1, 3, 2, 1];
        for k in 1..=trace.len() {
            check_against_serial(&trace, None, k);
        }
    }

    #[test]
    fn mattson_counter_trace_all_segmentations() {
        let trace = [0u64, 1, 2, 1, 3, 4, 1];
        for k in 1..=trace.len() + 2 {
            check_against_serial(&trace, None, k);
            check_against_serial(&trace, Some(5), k);
        }
    }

    fn test_trace(len: u64) -> Vec<u64> {
        (0..len).map(|i| (i * 7 + i * i) % 101).collect()
    }

    fn tmp_policy(tag: &str, every: u64) -> CheckpointPolicy {
        let dir = std::env::temp_dir().join(format!(
            "balance-seg-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointPolicy::every(dir, every)
    }

    fn resumable(
        trace: &[u64],
        segments: usize,
        policy: Option<&CheckpointPolicy>,
        faults: &FaultPlan,
    ) -> Result<(CapacityProfile, SegmentedStats), ReplayInterrupt> {
        segmented_profile_resumable(
            trace.len() as u64,
            Some(101),
            segments,
            |s, e| trace[usize::try_from(s).unwrap()..usize::try_from(e).unwrap()]
                .iter()
                .copied(),
            policy,
            faults,
            None,
        )
    }

    #[test]
    fn resumable_without_faults_is_the_plain_segmented_profile() {
        let trace = test_trace(3000);
        let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 101);
        let (profile, stats) = resumable(&trace, 4, None, &FaultPlan::none()).unwrap();
        assert_eq!(profile, serial);
        assert_eq!(stats, SegmentedStats::default());
    }

    #[test]
    fn killed_segment_worker_is_retried_to_the_exact_profile() {
        let trace = test_trace(2000);
        let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 101);
        let policy = tmp_policy("retry", 50);
        let faults = FaultPlan::none().with_kill_segment(2, 2);
        let (profile, stats) = resumable(&trace, 4, Some(&policy), &faults).unwrap();
        assert_eq!(profile, serial, "retried run must stay bit-identical");
        assert_eq!(stats.segment_retries, 2);
        assert!(
            stats.resumed_segments >= 1,
            "retries must resume from the worker's checkpoints, got {stats:?}"
        );
        assert!(!policy.file("manifest").exists(), "cleanup after success");
        let _ = std::fs::remove_dir_all(&policy.dir);
    }

    #[test]
    fn unstoppable_worker_death_exhausts_the_bounded_retry() {
        let trace = test_trace(800);
        let faults = FaultPlan::none().with_kill_segment(1, u32::MAX);
        let err = resumable(&trace, 4, None, &faults).unwrap_err();
        assert!(matches!(
            err,
            ReplayInterrupt::Fault(InjectedFault::SegmentDeath { segment: 1 })
        ));
    }

    #[test]
    fn separate_invocation_resumes_completed_and_partial_segments() {
        let trace = test_trace(2400);
        let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 101);
        let policy = tmp_policy("rerun", 40);
        // Kill segment 2 more times than the bounded retry tolerates: the
        // first invocation fails, leaving final images for the completed
        // segments and a mid-range image for the killed one.
        let faults = FaultPlan::none().with_kill_segment(2, u32::MAX);
        let err = resumable(&trace, 4, Some(&policy), &faults).unwrap_err();
        assert!(matches!(
            err,
            ReplayInterrupt::Fault(InjectedFault::SegmentDeath { segment: 2 })
        ));
        assert!(policy.file("manifest").exists());
        assert!(policy.file("seg_2").exists(), "partial image persisted");

        // Second invocation (fresh process, no faults): every segment
        // resumes and the profile is still bit-identical.
        let (profile, stats) = resumable(&trace, 4, Some(&policy), &FaultPlan::none()).unwrap();
        assert_eq!(profile, serial);
        assert_eq!(stats.resumed_segments, 4, "all four segments resume");
        assert!(!policy.file("manifest").exists(), "cleanup after success");
        let _ = std::fs::remove_dir_all(&policy.dir);
    }

    #[test]
    fn stale_manifest_wipes_images_from_a_different_geometry() {
        let trace = test_trace(1200);
        let serial = StackDistance::profile_of_bounded(trace.iter().copied(), 101);
        let policy = tmp_policy("stale", 30);
        // Leave a partial 4-segment run behind…
        let faults = FaultPlan::none().with_kill_segment(0, u32::MAX);
        let _ = resumable(&trace, 4, Some(&policy), &faults).unwrap_err();
        // …then run 3-segment over the same directory: the stale images
        // must be discarded (resumed count 0), not misread.
        let (profile, stats) = resumable(&trace, 3, Some(&policy), &FaultPlan::none()).unwrap();
        assert_eq!(profile, serial);
        assert_eq!(stats.resumed_segments, 0, "stale images must not resume");
        let _ = std::fs::remove_dir_all(&policy.dir);
    }
}
