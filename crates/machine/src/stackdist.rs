//! One-pass reuse/stack-distance accounting: exact LRU miss counts for
//! **every** capacity from a single trace replay.
//!
//! LRU is a *stack algorithm* (Mattson, Gecsei, Slutz & Traiger 1970): at
//! any instant, a fully-associative LRU cache of capacity `M` holds exactly
//! the `M` most recently used distinct addresses — the top `M` entries of
//! one global recency stack. An access therefore hits in a capacity-`M`
//! cache **iff** its *stack distance* — the number of distinct addresses
//! touched since the previous access to the same address, counting itself —
//! is at most `M`. One replay that records the histogram of stack distances
//! (plus the compulsory first-touch count) answers `misses(M)` for every
//! `M` at once:
//!
//! ```text
//! misses(M) = accesses − Σ_{d ≤ M} hist[d]
//! ```
//!
//! This is the "measure once, read off the whole ladder" trick behind
//! multi-level emulation (Hanlon's *Emulating a large memory with a
//! collection of smaller ones*) and the access-path first principle Hua
//! (2023) gives for big-memory systems — and it collapses this repo's
//! capacity sweeps from one kernel replay *per memory size* to one replay
//! total. The [`Hierarchy`](crate::Hierarchy) model's inclusion property
//! makes the multi-level read exact too: each level is a standalone LRU
//! over the same stream, so level `i`'s boundary traffic is precisely
//! `misses(M_i)` ([`CapacityProfile::traffic_at`]).
//!
//! The engine ([`StackDistance`]) streams addresses in `O(|trace| · log U)`
//! time and `O(U)` memory, `U` = distinct addresses: a bitmap-leaf order
//! statistic (64 time slots per `u64` word, a Fenwick tree over the word
//! popcounts — 64× smaller than a flat Fenwick, so it lives in L1/L2)
//! counts the distinct addresses between consecutive touches, and the
//! slot space is compacted in amortized `O(1)` when the time pointer
//! outruns it. Both `LruCache` index strategies are mirrored: a
//! direct-indexed last-access table when the caller can bound the address
//! space, a hash map otherwise.
//!
//! Exactness against the replay model is pinned by property test:
//! `misses_at(M)` is bit-identical to `LruCache::with_capacity_words(M)`
//! replaying the same trace, for every `M`, on both backends.

use balance_core::{HierarchySpec, LevelTraffic, Words};

use std::collections::HashMap;

/// Vacant marker in the direct-indexed last-access table.
const EMPTY: u32 = u32::MAX;

/// The live-marker order statistic: one bit per time slot, 64 slots
/// packed per `u64` leaf, with a Fenwick (binary indexed) tree over the
/// leaves' popcounts. `add`/`remove` flip one bit and adjust one Fenwick
/// path; `count_after` popcounts a partial leaf plus one Fenwick prefix.
///
/// The two-level layout is the perf-critical choice: a flat Fenwick over
/// `S` slots walks `log₂S` scattered cache lines per operation, while
/// this tree is 64× smaller (a 1.5M-slot space needs a ~96 KB Fenwick
/// that mostly stays in L1/L2) and pays one `count_ones` instead of the
/// six deepest tree levels.
#[derive(Debug, Clone)]
struct MarkerTree {
    /// Bit `i & 63` of `bits[i >> 6]` = slot `i` is live.
    bits: Vec<u64>,
    /// Fenwick tree over per-leaf popcounts (`tree[0]` unused).
    tree: Vec<u32>,
    live: u32,
}

impl MarkerTree {
    fn new(slots: usize) -> Self {
        let leaves = slots.div_ceil(64).max(1);
        MarkerTree {
            bits: vec![0; leaves],
            tree: vec![0; leaves + 1],
            live: 0,
        }
    }

    /// The slot capacity (rounded up to whole leaves).
    fn slots(&self) -> usize {
        self.bits.len() * 64
    }

    /// Marks slot `i` live.
    fn add(&mut self, i: usize) {
        debug_assert_eq!(self.bits[i >> 6] >> (i & 63) & 1, 0, "slot already live");
        self.live += 1;
        self.bits[i >> 6] |= 1u64 << (i & 63);
        let mut w = (i >> 6) + 1;
        while w < self.tree.len() {
            self.tree[w] += 1;
            w += w & w.wrapping_neg();
        }
    }

    /// Marks slot `i` dead (it must be live).
    fn remove(&mut self, i: usize) {
        debug_assert_eq!(self.bits[i >> 6] >> (i & 63) & 1, 1, "slot not live");
        self.live -= 1;
        self.bits[i >> 6] &= !(1u64 << (i & 63));
        let mut w = (i >> 6) + 1;
        while w < self.tree.len() {
            self.tree[w] -= 1;
            w += w & w.wrapping_neg();
        }
    }

    /// Live markers in slots `[0, i]`.
    fn prefix(&self, i: usize) -> u32 {
        // Partial leaf: bits at positions <= i & 63.
        let mask = u64::MAX >> (63 - (i & 63));
        let mut sum = (self.bits[i >> 6] & mask).count_ones();
        // Whole leaves before it, off the Fenwick tree.
        let mut w = i >> 6;
        while w > 0 {
            sum += self.tree[w];
            w -= w & w.wrapping_neg();
        }
        sum
    }

    /// Live markers strictly after slot `i`.
    fn count_after(&self, i: usize) -> u32 {
        self.live - self.prefix(i)
    }

    /// Whether slot `i` is live — the single source of truth compaction
    /// reads (so `slot_addr` needs no dead-slot sentinel and every `u64`
    /// address value is representable).
    fn is_live(&self, i: usize) -> bool {
        self.bits[i >> 6] >> (i & 63) & 1 == 1
    }
}

/// The address → last-access-slot index, in one of two representations
/// (mirroring [`crate::LruCache`]'s backends).
#[derive(Debug, Clone)]
enum LastIndex {
    /// Flat table keyed directly by address (`EMPTY` = never seen).
    Direct(Vec<u32>),
    /// Hash fallback for unbounded address spaces.
    Map(HashMap<u64, u32>),
}

/// The streaming one-pass engine: feed it a trace with
/// [`StackDistance::observe`], then read the whole capacity ladder off the
/// resulting [`CapacityProfile`].
///
/// # Examples
///
/// ```
/// use balance_machine::{LruCache, StackDistance};
///
/// let trace = [1u64, 2, 3, 1, 2, 4, 1];
/// let mut engine = StackDistance::new();
/// for &a in &trace {
///     engine.observe(a);
/// }
/// let profile = engine.into_profile();
/// // One replay answers every capacity — bit-identical to replaying the
/// // trace through an actual LRU of that capacity:
/// for m in 1..=6u64 {
///     let mut cache = LruCache::with_capacity_words(m as usize);
///     assert_eq!(profile.misses_at(m), cache.run_trace(trace.iter().copied()));
/// }
/// assert_eq!(profile.compulsory_misses(), 4); // first touches of 1,2,3,4
/// ```
#[derive(Debug, Clone)]
pub struct StackDistance {
    index: LastIndex,
    markers: MarkerTree,
    /// `slot_addr[s]` = the address whose latest access lives in slot `s`,
    /// for compaction. Meaningful only where [`MarkerTree::is_live`] says
    /// so — liveness lives in the marker bitmap, not in a sentinel value,
    /// so every `u64` is a valid address.
    slot_addr: Vec<u64>,
    /// Next free time slot.
    next: usize,
    /// `hist[d]` = number of accesses with stack distance exactly `d`
    /// (`hist[0]` unused).
    hist: Vec<u64>,
    compulsory: u64,
    accesses: u64,
}

impl Default for StackDistance {
    fn default() -> Self {
        StackDistance::new()
    }
}

impl StackDistance {
    /// An engine over an unbounded address space (hash-indexed last-access
    /// table). Prefer [`StackDistance::with_address_bound`] when the trace's
    /// addresses are known to be dense and bounded — it is substantially
    /// faster, exactly as with [`crate::LruCache`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_slots(LastIndex::Map(HashMap::new()), 1024)
    }

    /// An engine whose trace addresses are promised to lie in
    /// `[0, addr_bound)`: the last-access index is a flat table and the
    /// slot space is sized so compaction triggers at most once per
    /// `addr_bound` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bound` is zero or exceeds the `u32` slot-index
    /// space, and on [`StackDistance::observe`] with an address `≥
    /// addr_bound` (a caller contract violation).
    #[must_use]
    pub fn with_address_bound(addr_bound: u64) -> Self {
        assert!(addr_bound > 0, "address bound must be positive");
        let bound =
            usize::try_from(addr_bound).expect("address bound overflows usize");
        assert!(
            bound < EMPTY as usize / 2,
            "address bound exceeds the u32 slot-index space"
        );
        // 2× the distinct-address ceiling: at least half the slots are
        // live-free at every compaction, so compaction cost amortizes to
        // O(1) per access.
        Self::with_slots(LastIndex::Direct(vec![EMPTY; bound]), 2 * bound)
    }

    fn with_slots(index: LastIndex, slots: usize) -> Self {
        let markers = MarkerTree::new(slots.max(16));
        let slots = markers.slots();
        StackDistance {
            index,
            markers,
            slot_addr: vec![0; slots],
            next: 0,
            hist: Vec::new(),
            compulsory: 0,
            accesses: 0,
        }
    }

    /// Distinct addresses seen so far (= live recency markers).
    #[must_use]
    pub fn distinct(&self) -> u64 {
        u64::from(self.markers.live)
    }

    /// Accesses observed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Observes one word access, updating the distance histogram.
    ///
    /// # Panics
    ///
    /// On the direct-indexed backend, panics if `addr` exceeds the bound
    /// declared at construction.
    pub fn observe(&mut self, addr: u64) {
        self.accesses += 1;
        if self.next == self.markers.slots() {
            self.compact();
        }
        let slot = self.next;
        let prev = match &mut self.index {
            LastIndex::Direct(table) => {
                let a = usize::try_from(addr)
                    .ok()
                    .filter(|&a| a < table.len())
                    .unwrap_or_else(|| {
                        panic!("address {addr} exceeds the declared address bound")
                    });
                let prev = table[a];
                table[a] = slot as u32;
                (prev != EMPTY).then_some(prev as usize)
            }
            LastIndex::Map(map) => map
                .insert(addr, slot as u32)
                .map(|p| p as usize),
        };
        match prev {
            None => self.compulsory += 1,
            Some(p) => {
                // Stack distance: distinct addresses touched since the
                // previous access of `addr`, counting `addr` itself (whose
                // marker still sits at `p`).
                let d = self.markers.count_after(p) as usize + 1;
                if d >= self.hist.len() {
                    self.hist.resize(d + 1, 0);
                }
                self.hist[d] += 1;
                self.markers.remove(p);
            }
        }
        self.markers.add(slot);
        self.slot_addr[slot] = addr;
        self.next = slot + 1;
    }

    /// Feeds a whole address trace (any iterator — in particular the
    /// streaming trace generators, in O(1) extra memory).
    pub fn observe_trace(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            self.observe(a);
        }
    }

    /// Squeezes the dead slots out of the time axis, preserving recency
    /// order, and re-points the live markers. Doubles the slot space when
    /// more than half the slots are live (only possible on the hash
    /// backend, whose distinct-address count is unbounded).
    fn compact(&mut self) {
        let slots = self.markers.slots();
        let live = self.markers.live as usize;
        let new_slots = if live * 2 > slots { slots * 2 } else { slots };
        assert!(
            new_slots < EMPTY as usize,
            "slot space exceeds the u32 marker-index space"
        );
        let mut markers = MarkerTree::new(new_slots);
        let mut slot_addr = vec![0; markers.slots()];
        let mut dst = 0usize;
        for src in 0..slots {
            if !self.markers.is_live(src) {
                continue;
            }
            let addr = self.slot_addr[src];
            slot_addr[dst] = addr;
            markers.add(dst);
            match &mut self.index {
                LastIndex::Direct(table) => table[addr as usize] = dst as u32,
                LastIndex::Map(map) => {
                    map.insert(addr, dst as u32);
                }
            }
            dst += 1;
        }
        debug_assert_eq!(dst, live, "compaction must keep every live marker");
        self.markers = markers;
        self.slot_addr = slot_addr;
        self.next = dst;
    }

    /// Finalizes the replay into a queryable [`CapacityProfile`].
    #[must_use]
    pub fn into_profile(self) -> CapacityProfile {
        // cum_hits[d] = accesses with stack distance ≤ d  (d ≥ 0).
        let mut cum_hits = Vec::with_capacity(self.hist.len().max(1));
        cum_hits.push(0);
        let mut acc = 0u64;
        for &h in self.hist.iter().skip(1) {
            acc += h;
            cum_hits.push(acc);
        }
        CapacityProfile {
            accesses: self.accesses,
            compulsory: self.compulsory,
            cum_hits,
        }
    }

    /// Replays a whole trace through a fresh unbounded-address engine; the
    /// iterator's `size_hint` (exact for the workspace's streaming trace
    /// generators — pinned by regression test) pre-sizes the slot space.
    #[must_use]
    pub fn profile_of(addrs: impl IntoIterator<Item = u64>) -> CapacityProfile {
        let iter = addrs.into_iter();
        // A trace of `n` accesses touches at most `n` distinct addresses:
        // seed the slot space from the (exact) length hint, clamped so a
        // huge streamed trace does not pre-reserve gigabytes — compaction
        // grows the space on demand anyway.
        let hint = iter.size_hint().0.clamp(16, 1 << 20);
        let mut engine = Self::with_slots(LastIndex::Map(HashMap::new()), hint);
        engine.observe_trace(iter);
        engine.into_profile()
    }

    /// As [`StackDistance::profile_of`], with the direct-indexed backend
    /// for traces whose addresses lie in `[0, addr_bound)`.
    ///
    /// # Panics
    ///
    /// As [`StackDistance::with_address_bound`].
    #[must_use]
    pub fn profile_of_bounded(
        addrs: impl IntoIterator<Item = u64>,
        addr_bound: u64,
    ) -> CapacityProfile {
        let mut engine = Self::with_address_bound(addr_bound);
        engine.observe_trace(addrs);
        engine.into_profile()
    }
}

/// The one-replay answer sheet: exact LRU miss/IO counts for **every**
/// capacity, from a single pass over the trace.
///
/// Obtained from [`StackDistance::into_profile`]. All queries are O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityProfile {
    accesses: u64,
    compulsory: u64,
    /// `cum_hits[d]` = accesses with stack distance ≤ `d`; the last entry
    /// equals `accesses − compulsory`.
    cum_hits: Vec<u64>,
}

impl CapacityProfile {
    /// The profile of a trace touching `accesses` distinct addresses once
    /// each: every miss compulsory, no reuse at any capacity. The closed
    /// form for one-touch computations (streaming transforms, transpose)
    /// — equal to replaying `0..accesses` through the engine (pinned by
    /// test) without the `O(accesses)` replay or its tables.
    #[must_use]
    pub fn one_touch(accesses: u64) -> CapacityProfile {
        CapacityProfile {
            accesses,
            compulsory: accesses,
            cum_hits: vec![0],
        }
    }

    /// Total accesses in the replayed trace.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (compulsory) misses — the floor no capacity removes,
    /// equal to the number of distinct addresses in the trace.
    #[must_use]
    pub fn compulsory_misses(&self) -> u64 {
        self.compulsory
    }

    /// Distinct addresses in the trace (alias of the compulsory count).
    #[must_use]
    pub fn distinct_addresses(&self) -> u64 {
        self.compulsory
    }

    /// The smallest capacity at which only compulsory misses remain (the
    /// largest observed stack distance; 0 for an empty or touch-once
    /// trace).
    #[must_use]
    pub fn saturating_capacity(&self) -> u64 {
        (self.cum_hits.len() - 1) as u64
    }

    /// Hits of a word-granular LRU of `m` words replaying the trace.
    #[must_use]
    pub fn hits_at(&self, m: u64) -> u64 {
        let d = usize::try_from(m)
            .unwrap_or(usize::MAX)
            .min(self.cum_hits.len() - 1);
        self.cum_hits[d]
    }

    /// Misses of a word-granular LRU of `m` words replaying the trace —
    /// bit-identical to `LruCache::with_capacity_words(m)` fed the same
    /// trace (pinned by property test). `m = 0` counts every access as a
    /// miss.
    #[must_use]
    pub fn misses_at(&self, m: u64) -> u64 {
        self.accesses - self.hits_at(m)
    }

    /// I/O words crossing the boundary below a memory of `m` words — for
    /// the word-granular caches this crate models, exactly
    /// [`CapacityProfile::misses_at`].
    #[must_use]
    pub fn io_at(&self, m: u64) -> u64 {
        self.misses_at(m)
    }

    /// The multi-level read: boundary traffic for a ladder with the given
    /// level capacities (innermost first) — entry `i` is `misses_at(M_i)`,
    /// which LRU inclusion makes exactly the words that miss every level up
    /// to `i` and cross toward level `i+1`. Bit-identical to replaying the
    /// trace through a [`crate::Hierarchy`] of the same capacities (pinned
    /// by property test).
    ///
    /// # Panics
    ///
    /// As [`LevelTraffic::from_slice`]: more than
    /// [`balance_core::MAX_MEMORY_LEVELS`] capacities panic.
    #[must_use]
    pub fn traffic_at(&self, capacities: &[Words]) -> LevelTraffic {
        let io: Vec<u64> = capacities.iter().map(|m| self.misses_at(m.get())).collect();
        LevelTraffic::from_slice(&io)
    }

    /// [`CapacityProfile::traffic_at`] for a validated [`HierarchySpec`]
    /// (all levels cache-managed — the trace-driven configuration).
    #[must_use]
    pub fn traffic_for(&self, spec: &HierarchySpec) -> LevelTraffic {
        let caps: Vec<Words> = spec.levels().iter().map(|l| l.capacity()).collect();
        self.traffic_at(&caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use crate::hierarchy::Hierarchy;
    use crate::hierarchy::MemorySystem as _;

    fn replay_misses(trace: &[u64], m: u64) -> u64 {
        let mut cache = LruCache::with_capacity_words(m as usize);
        cache.run_trace(trace.iter().copied())
    }

    fn check_all_capacities(trace: &[u64]) {
        let profile = StackDistance::profile_of(trace.iter().copied());
        let hi = trace.len() as u64 + 2;
        for m in 1..=hi {
            assert_eq!(
                profile.misses_at(m),
                replay_misses(trace, m),
                "capacity {m} on trace {trace:?}"
            );
        }
    }

    #[test]
    fn matches_replay_on_small_traces() {
        check_all_capacities(&[]);
        check_all_capacities(&[7]);
        check_all_capacities(&[1, 1, 1, 1]);
        check_all_capacities(&[1, 2, 3, 4, 5]);
        check_all_capacities(&[1, 2, 3, 1, 2, 3]);
        check_all_capacities(&[1, 2, 1, 3, 1, 2, 5, 1, 2, 2, 4, 1]);
        // The Mattson counter-trace that distinguishes standalone levels
        // from a filtered chain: one replay must match the standalone read.
        check_all_capacities(&[0, 1, 2, 1, 3, 4, 1]);
    }

    #[test]
    fn backends_agree() {
        let trace: Vec<u64> = (0..500u64).map(|i| (i * i * 7 + i) % 97).collect();
        let hashed = StackDistance::profile_of(trace.iter().copied());
        let direct = StackDistance::profile_of_bounded(trace.iter().copied(), 97);
        assert_eq!(hashed, direct);
    }

    #[test]
    fn compulsory_and_distinct_counts() {
        let mut engine = StackDistance::new();
        engine.observe_trace([5, 6, 5, 7, 6, 5]);
        assert_eq!(engine.distinct(), 3);
        assert_eq!(engine.accesses(), 6);
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 3);
        assert_eq!(p.distinct_addresses(), 3);
        // Beyond the largest reuse distance, only compulsory misses remain.
        assert_eq!(p.misses_at(1 << 40), 3);
        assert_eq!(p.io_at(2), replay_misses(&[5, 6, 5, 7, 6, 5], 2));
    }

    #[test]
    fn one_touch_is_the_replayed_single_pass() {
        for n in [0u64, 1, 7, 300] {
            let closed = CapacityProfile::one_touch(n);
            let replayed = StackDistance::profile_of(0..n);
            assert_eq!(closed, replayed, "n = {n}");
        }
    }

    #[test]
    fn zero_capacity_misses_every_access() {
        let p = StackDistance::profile_of([1, 2, 1, 2]);
        assert_eq!(p.misses_at(0), 4);
        assert_eq!(p.hits_at(0), 0);
    }

    #[test]
    fn saturating_capacity_is_the_largest_reuse_distance() {
        // 1,2,3,1: the re-touch of 1 has distance 3.
        let p = StackDistance::profile_of([1, 2, 3, 1]);
        assert_eq!(p.saturating_capacity(), 3);
        assert_eq!(p.misses_at(3), p.compulsory_misses());
        assert_eq!(p.misses_at(2), p.compulsory_misses() + 1);
        // No reuse at all: saturation at 0.
        assert_eq!(StackDistance::profile_of([1, 2, 3]).saturating_capacity(), 0);
    }

    #[test]
    fn compaction_preserves_exactness() {
        // A tiny slot space forces many compactions: 16 distinct addresses
        // cycled 100 times through the minimum 16-slot engine.
        let trace: Vec<u64> = (0..1600u64).map(|i| (i * 5) % 16).collect();
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        for m in 1..=17u64 {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn extreme_address_values_survive_compaction() {
        // u64::MAX is an ordinary address (no sentinel value exists):
        // interleave it with enough distinct addresses to force several
        // compactions on the minimum slot space and check exactness.
        let mut trace = Vec::new();
        for round in 0..40u64 {
            trace.push(u64::MAX);
            trace.push(u64::MAX - 1);
            for k in 0..10u64 {
                trace.push(round * 10 + k);
            }
        }
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 402); // 400 round keys + the two MAXes
        for m in [1u64, 2, 3, 12, 13, 200, 500] {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn hash_backend_grows_its_slot_space() {
        // More distinct addresses than the initial slot space: compaction
        // must double rather than squeeze.
        let trace: Vec<u64> = (0..200u64).chain(0..200).collect();
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 200);
        for m in [1u64, 50, 199, 200, 201] {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn multi_level_read_matches_hierarchy_replay() {
        let trace: Vec<u64> = (0..600u64).map(|i| (i * 11 + i * i) % 64).collect();
        let caps = [Words::new(4), Words::new(16), Words::new(48)];
        let profile = StackDistance::profile_of_bounded(trace.iter().copied(), 64);
        let mut ladder = Hierarchy::new(&caps);
        for &a in &trace {
            ladder.access(a);
        }
        assert_eq!(profile.traffic_at(&caps), ladder.traffic());
        assert!(profile.traffic_at(&caps).is_monotone_non_increasing());
    }

    #[test]
    fn traffic_for_reads_spec_capacities() {
        use balance_core::{LevelSpec, WordsPerSec};
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(2), WordsPerSec::new(1.0)).unwrap(),
            LevelSpec::new(Words::new(8), WordsPerSec::new(1.0)).unwrap(),
        ])
        .unwrap();
        let p = StackDistance::profile_of([0u64, 1, 2, 0, 1, 2]);
        let t = p.traffic_for(&spec);
        assert_eq!(t.as_slice(), &[6, 3]);
    }

    #[test]
    #[should_panic(expected = "address bound")]
    fn direct_backend_rejects_out_of_bound_addresses() {
        let mut engine = StackDistance::with_address_bound(8);
        engine.observe(8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_address_bound_panics() {
        let _ = StackDistance::with_address_bound(0);
    }
}
