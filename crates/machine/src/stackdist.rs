//! One-pass reuse/stack-distance accounting: exact LRU miss counts for
//! **every** capacity from a single trace replay.
//!
//! LRU is a *stack algorithm* (Mattson, Gecsei, Slutz & Traiger 1970): at
//! any instant, a fully-associative LRU cache of capacity `M` holds exactly
//! the `M` most recently used distinct addresses — the top `M` entries of
//! one global recency stack. An access therefore hits in a capacity-`M`
//! cache **iff** its *stack distance* — the number of distinct addresses
//! touched since the previous access to the same address, counting itself —
//! is at most `M`. One replay that records the histogram of stack distances
//! (plus the compulsory first-touch count) answers `misses(M)` for every
//! `M` at once:
//!
//! ```text
//! misses(M) = accesses − Σ_{d ≤ M} hist[d]
//! ```
//!
//! This is the "measure once, read off the whole ladder" trick behind
//! multi-level emulation (Hanlon's *Emulating a large memory with a
//! collection of smaller ones*) and the access-path first principle Hua
//! (2023) gives for big-memory systems — and it collapses this repo's
//! capacity sweeps from one kernel replay *per memory size* to one replay
//! total. The [`Hierarchy`](crate::Hierarchy) model's inclusion property
//! makes the multi-level read exact too: each level is a standalone LRU
//! over the same stream, so level `i`'s boundary traffic is precisely
//! `misses(M_i)` ([`CapacityProfile::traffic_at`]).
//!
//! The engine ([`StackDistance`]) streams addresses in `O(|trace| · log U)`
//! time and `O(U)` memory, `U` = distinct addresses: a bitmap-leaf order
//! statistic (64 time slots per `u64` word, a Fenwick tree over the word
//! popcounts — 64× smaller than a flat Fenwick, so it lives in L1/L2)
//! counts the distinct addresses between consecutive touches, and the
//! slot space is compacted in amortized `O(1)` when the time pointer
//! outruns it. Both `LruCache` index strategies are mirrored: a
//! direct-indexed last-access table when the caller can bound the address
//! space, a hash map otherwise.
//!
//! Time is kept on a **logical `u64` clock**: the last-access index stores
//! monotonically increasing logical timestamps, and a physical window
//! `[origin, clock)` maps them onto the compacted slot space. The clock
//! never wraps and never resets at compaction — a 10⁹-address (or 10¹⁸-
//! address) trace cannot overflow the bookkeeping, where the previous
//! `u32` slot representation silently truncated past `u32::MAX`.
//!
//! Two scaled companions build on this engine for billion-address traces:
//! [`crate::segmented`] (exact parallel Mattson over time ranges) and
//! [`crate::sampling`] (SHARDS-style hash-sampled approximate profiles).
//!
//! Exactness against the replay model is pinned by property test:
//! `misses_at(M)` is bit-identical to `LruCache::with_capacity_words(M)`
//! replaying the same trace, for every `M`, on both backends.

use balance_core::{HierarchySpec, LevelTraffic, Words};

use std::collections::HashMap;

/// Vacant marker in the direct-indexed last-access table. A logical
/// timestamp never reaches `u64::MAX`: the clock counts observed touches,
/// and a trace that long is physically unrepresentable.
const EMPTY: u64 = u64::MAX;

/// The live-marker order statistic: one bit per time slot, 64 slots
/// packed per `u64` leaf, with a Fenwick (binary indexed) tree over the
/// leaves' popcounts. `add`/`remove` flip one bit and adjust one Fenwick
/// path; `count_after` popcounts a partial leaf plus one Fenwick prefix.
///
/// The two-level layout is the perf-critical choice: a flat Fenwick over
/// `S` slots walks `log₂S` scattered cache lines per operation, while
/// this tree is 64× smaller (a 1.5M-slot space needs a ~192 KB Fenwick
/// that mostly stays in L1/L2) and pays one `count_ones` instead of the
/// six deepest tree levels. Counters are `u64` so the distinct-address
/// count shares the logical clock's no-overflow guarantee.
#[derive(Debug, Clone)]
struct MarkerTree {
    /// Bit `i & 63` of `bits[i >> 6]` = slot `i` is live.
    bits: Vec<u64>,
    /// Fenwick tree over per-leaf popcounts (`tree[0]` unused).
    tree: Vec<u64>,
    live: u64,
}

impl MarkerTree {
    fn new(slots: usize) -> Self {
        let leaves = slots.div_ceil(64).max(1);
        MarkerTree {
            bits: vec![0; leaves],
            tree: vec![0; leaves + 1],
            live: 0,
        }
    }

    /// The slot capacity (rounded up to whole leaves).
    fn slots(&self) -> usize {
        self.bits.len() * 64
    }

    /// Marks slot `i` live.
    fn add(&mut self, i: usize) {
        debug_assert_eq!(self.bits[i >> 6] >> (i & 63) & 1, 0, "slot already live");
        self.live += 1;
        self.bits[i >> 6] |= 1u64 << (i & 63);
        let mut w = (i >> 6) + 1;
        while w < self.tree.len() {
            self.tree[w] += 1;
            w += w & w.wrapping_neg();
        }
    }

    /// Marks slot `i` dead (it must be live).
    fn remove(&mut self, i: usize) {
        debug_assert_eq!(self.bits[i >> 6] >> (i & 63) & 1, 1, "slot not live");
        self.live -= 1;
        self.bits[i >> 6] &= !(1u64 << (i & 63));
        let mut w = (i >> 6) + 1;
        while w < self.tree.len() {
            self.tree[w] -= 1;
            w += w & w.wrapping_neg();
        }
    }

    /// Live markers in slots `[0, i]`.
    fn prefix(&self, i: usize) -> u64 {
        // Partial leaf: bits at positions <= i & 63.
        let mask = u64::MAX >> (63 - (i & 63));
        let mut sum = u64::from((self.bits[i >> 6] & mask).count_ones());
        // Whole leaves before it, off the Fenwick tree.
        let mut w = i >> 6;
        while w > 0 {
            sum += self.tree[w];
            w -= w & w.wrapping_neg();
        }
        sum
    }

    /// Live markers strictly after slot `i`.
    fn count_after(&self, i: usize) -> u64 {
        self.live - self.prefix(i)
    }

    /// Whether slot `i` is live — the single source of truth compaction
    /// reads (so `slot_addr` needs no dead-slot sentinel and every `u64`
    /// address value is representable).
    fn is_live(&self, i: usize) -> bool {
        self.bits[i >> 6] >> (i & 63) & 1 == 1
    }
}

/// The address → last-access logical timestamp index, in one of two
/// representations (mirroring [`crate::LruCache`]'s backends). Timestamps
/// are the full `u64` logical clock, never a truncated physical slot.
#[derive(Debug, Clone)]
enum LastIndex {
    /// Flat table keyed directly by address (`EMPTY` = never seen).
    Direct(Vec<u64>),
    /// Hash fallback for unbounded address spaces.
    Map(HashMap<u64, u64>),
}

/// No-open-chain marker in the dirty index. A chain's max gap is a stack
/// distance, bounded by the distinct-address count — it never reaches
/// `u64::MAX`.
const CLOSED: u64 = u64::MAX;

/// The line → open dirty-chain running max, in the same two backend
/// representations as [`LastIndex`].
#[derive(Debug, Clone)]
enum DirtyIndex {
    /// Flat table keyed directly by line id (`CLOSED` = no open chain).
    Direct(Vec<u64>),
    /// Hash fallback for unbounded address spaces.
    Map(HashMap<u64, u64>),
}

impl DirtyIndex {
    fn get(&self, line: u64) -> Option<u64> {
        match self {
            DirtyIndex::Direct(table) => {
                let v = table[line as usize];
                (v != CLOSED).then_some(v)
            }
            DirtyIndex::Map(map) => map.get(&line).copied(),
        }
    }

    fn set(&mut self, line: u64, max_gap: u64) {
        match self {
            DirtyIndex::Direct(table) => table[line as usize] = max_gap,
            DirtyIndex::Map(map) => {
                map.insert(line, max_gap);
            }
        }
    }

    /// The open chains as sorted `(line, max gap)` pairs (snapshot order).
    fn open_pairs(&self) -> Vec<(u64, u64)> {
        match self {
            DirtyIndex::Direct(table) => table
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != CLOSED)
                .map(|(line, &v)| (line as u64, v))
                .collect(),
            DirtyIndex::Map(map) => {
                let mut pairs: Vec<(u64, u64)> = map.iter().map(|(&l, &v)| (l, v)).collect();
                pairs.sort_unstable();
                pairs
            }
        }
    }
}

/// The tagged pass's write-back bookkeeping: dirty *chains*. A chain opens
/// at each write of a line and closes at the line's next write (or stays
/// open to the end of the trace); its statistic is the **max** of the
/// consecutive reuse-distance gaps it spans. At capacity `M` a closed
/// chain emits exactly one write-back iff its max gap exceeds `M` (the
/// line was evicted dirty somewhere in the chain — once evicted it is
/// clean until the next write, so never twice per chain), and an open
/// chain emits exactly one write-back at *every* capacity (either a dirty
/// eviction inside the chain or the end-of-run flush of the still-dirty
/// line). That turns `writebacks_at(M)` into the same kind of one-pass
/// histogram query as Mattson's miss count.
#[derive(Debug, Clone)]
struct DirtyState {
    index: DirtyIndex,
    /// `wb_hist[d]` = closed chains with max gap exactly `d` (`wb_hist[0]`
    /// unused: a chain closes at a reuse, whose distance is ≥ 1).
    wb_hist: Vec<u64>,
    /// Lines with an open chain — the write-back floor no capacity
    /// removes (each is a distinct line that was written).
    open: u64,
}

impl DirtyState {
    /// A fresh dirty ledger on the backend matching the engine's
    /// last-access index.
    fn for_index(index: &LastIndex) -> Self {
        let index = match index {
            LastIndex::Direct(table) => DirtyIndex::Direct(vec![CLOSED; table.len()]),
            LastIndex::Map(_) => DirtyIndex::Map(HashMap::new()),
        };
        DirtyState {
            index,
            wb_hist: Vec::new(),
            open: 0,
        }
    }

    /// Counts one closed chain with max gap `d`.
    fn close(&mut self, d: u64) {
        let d = usize::try_from(d).unwrap_or_else(|_| panic!("chain gap overflows usize"));
        if d >= self.wb_hist.len() {
            self.wb_hist.resize(d + 1, 0);
        }
        self.wb_hist[d] += 1;
    }
}

/// The streaming one-pass engine: feed it a trace with
/// [`StackDistance::observe`], then read the whole capacity ladder off the
/// resulting [`CapacityProfile`].
///
/// # Examples
///
/// ```
/// use balance_machine::{LruCache, StackDistance};
///
/// let trace = [1u64, 2, 3, 1, 2, 4, 1];
/// let mut engine = StackDistance::new();
/// for &a in &trace {
///     engine.observe(a);
/// }
/// let profile = engine.into_profile();
/// // One replay answers every capacity — bit-identical to replaying the
/// // trace through an actual LRU of that capacity:
/// for m in 1..=6u64 {
///     let mut cache = LruCache::with_capacity_words(m as usize);
///     assert_eq!(profile.misses_at(m), cache.run_trace(trace.iter().copied()));
/// }
/// assert_eq!(profile.compulsory_misses(), 4); // first touches of 1,2,3,4
/// ```
#[derive(Debug, Clone)]
pub struct StackDistance {
    index: LastIndex,
    markers: MarkerTree,
    /// `slot_addr[s]` = the address whose latest access lives in physical
    /// slot `s`, for compaction. Meaningful only where
    /// [`MarkerTree::is_live`] says so — liveness lives in the marker
    /// bitmap, not in a sentinel value, so every `u64` is a valid address.
    slot_addr: Vec<u64>,
    /// Monotonic logical clock: the timestamp the next touch will take.
    /// Never wraps, never resets at compaction.
    clock: u64,
    /// Logical time of physical slot 0: timestamp `t` lives in physical
    /// slot `t − origin`, and the window `clock − origin` never exceeds
    /// the slot space.
    origin: u64,
    /// `hist[d]` = number of accesses with stack distance exactly `d`
    /// (`hist[0]` unused).
    hist: Vec<u64>,
    compulsory: u64,
    accesses: u64,
    /// When recording (segmented passes), every first-touch address in
    /// touch order — the boundary state [`crate::segmented`] merges.
    first_touches: Option<Vec<u64>>,
    /// The tagged pass's dirty-chain ledger, created lazily at the first
    /// [`StackDistance::observe_tagged`] — untagged replays never pay for
    /// it.
    dirty: Option<DirtyState>,
}

impl Default for StackDistance {
    fn default() -> Self {
        StackDistance::new()
    }
}

impl StackDistance {
    /// An engine over an unbounded address space (hash-indexed last-access
    /// table). Prefer [`StackDistance::with_address_bound`] when the trace's
    /// addresses are known to be dense and bounded — it is substantially
    /// faster, exactly as with [`crate::LruCache`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_slots(LastIndex::Map(HashMap::new()), 1024)
    }

    /// An engine whose trace addresses are promised to lie in
    /// `[0, addr_bound)`: the last-access index is a flat table and the
    /// slot space is sized so compaction triggers at most once per
    /// `addr_bound` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `addr_bound` is zero or its doubled slot space overflows
    /// `usize` (the table allocation would be unrepresentable), and on
    /// [`StackDistance::observe`] with an address `≥ addr_bound` (a caller
    /// contract violation).
    #[must_use]
    pub fn with_address_bound(addr_bound: u64) -> Self {
        assert!(addr_bound > 0, "address bound must be positive");
        let bound = usize::try_from(addr_bound)
            .unwrap_or_else(|_| panic!("address bound overflows usize"));
        // 2× the distinct-address ceiling: at least half the slots are
        // live-free at every compaction, so compaction cost amortizes to
        // O(1) per access.
        let slots = bound
            .checked_mul(2)
            .unwrap_or_else(|| panic!("address bound overflows the slot space"));
        Self::with_slots(LastIndex::Direct(vec![EMPTY; bound]), slots)
    }

    fn with_slots(index: LastIndex, slots: usize) -> Self {
        let markers = MarkerTree::new(slots.max(16));
        let slots = markers.slots();
        StackDistance {
            index,
            markers,
            slot_addr: vec![0; slots],
            clock: 0,
            origin: 0,
            hist: Vec::new(),
            compulsory: 0,
            accesses: 0,
            first_touches: None,
            dirty: None,
        }
    }

    /// An engine whose logical clock starts at `start` instead of 0 —
    /// equivalent to an engine that has already digested `start` touches
    /// of some prefix and been fully compacted. Exercised by the
    /// regression test that drives the clock across `u32::MAX`, which the
    /// pre-logical-clock representation (`u32` slot indices in the
    /// last-access tables) silently truncated.
    #[cfg(test)]
    fn with_clock_start(start: u64) -> Self {
        let mut engine = Self::new();
        engine.clock = start;
        engine.origin = start;
        engine
    }

    /// Distinct addresses seen so far (= live recency markers).
    #[must_use]
    pub fn distinct(&self) -> u64 {
        self.markers.live
    }

    /// Accesses observed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Serializes the engine's complete observable state into a
    /// versioned, checksummed little-endian image (see
    /// [`crate::checkpoint`] for the format). The recency structure is
    /// stored *logically* — the live addresses in recency order, bottom
    /// to top — so the image is independent of the physical slot layout;
    /// [`StackDistance::restore`] rebuilds the marker tree and last-access
    /// index from it, equivalent to a fresh compaction. The access count
    /// in the image doubles as the trace cursor: it is exactly the number
    /// of trace positions this engine has consumed.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        use crate::checkpoint::{ByteWriter, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
        let stack = self.final_stack();
        let ft_len = self.first_touches.as_ref().map_or(0, Vec::len);
        let mut w =
            ByteWriter::with_capacity(64 + 8 * (stack.len() + self.hist.len() + ft_len));
        w.bytes(&CHECKPOINT_MAGIC);
        w.u16(CHECKPOINT_VERSION);
        let (tag, bound) = match &self.index {
            LastIndex::Map(_) => (0u8, 0u64),
            LastIndex::Direct(table) => (1u8, table.len() as u64),
        };
        w.u8(tag);
        let mut flags = u8::from(self.first_touches.is_some());
        if self.dirty.is_some() {
            flags |= 2;
        }
        w.u8(flags);
        w.u64(bound);
        w.u64(self.clock);
        w.u64(self.accesses);
        w.u64(self.compulsory);
        w.u64(stack.len() as u64);
        w.u64(self.hist.len() as u64);
        w.u64(ft_len as u64);
        w.u64_slice(&stack);
        w.u64_slice(&self.hist);
        if let Some(ft) = &self.first_touches {
            w.u64_slice(ft);
        }
        // v2 trailer: the tagged pass's dirty-chain state — closed-chain
        // histogram plus the open chains as sorted (line, max gap) pairs.
        if let Some(state) = &self.dirty {
            let pairs = state.index.open_pairs();
            w.u64(state.wb_hist.len() as u64);
            w.u64(pairs.len() as u64);
            w.u64_slice(&state.wb_hist);
            for (line, max_gap) in pairs {
                w.u64(line);
                w.u64(max_gap);
            }
        }
        w.finish()
    }

    /// Rebuilds an engine from a [`StackDistance::snapshot`] image,
    /// bit-identical in every observable to the engine that produced it
    /// (pinned by proptest at adversarial cut points, including mid-trace
    /// and just past compaction).
    ///
    /// # Errors
    ///
    /// A typed [`CheckpointError`](crate::checkpoint::CheckpointError)
    /// for truncated images, wrong magic or version, checksum mismatches
    /// (any flipped byte), and structurally inconsistent payloads
    /// (duplicate recency-stack entries, addresses beyond the declared
    /// bound) — never a panic or undefined behavior.
    pub fn restore(bytes: &[u8]) -> Result<StackDistance, crate::checkpoint::CheckpointError> {
        use crate::checkpoint::{
            ByteReader, CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
        };
        let corrupt = |reason: &'static str| CheckpointError::Corrupt { reason };
        let mut r = ByteReader::verified(bytes)?;
        let magic = r.array::<4>()?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic { found: magic });
        }
        let version = r.u16()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let tag = r.u8()?;
        let flags = r.u8()?;
        if flags > 3 {
            return Err(corrupt("unknown flag bits"));
        }
        let bound = r.u64()?;
        let clock = r.u64()?;
        let accesses = r.u64()?;
        let compulsory = r.u64()?;
        let live = r.u64()?;
        let hist_len = r.u64()?;
        let ft_len = r.u64()?;
        let stack = r.u64_vec(live)?;
        let hist = r.u64_vec(hist_len)?;
        let first_touches = if flags & 1 == 1 {
            Some(r.u64_vec(ft_len)?)
        } else if ft_len == 0 {
            None
        } else {
            return Err(corrupt("first-touch payload without its flag"));
        };
        // v2 trailer: dirty-chain state, present only when the tagged pass
        // ran (flag bit 2) — untagged snapshots keep the v1 tail layout.
        let dirty_payload = if flags & 2 == 2 {
            let wb_len = r.u64()?;
            let pair_count = r.u64()?;
            let wb_hist = r.u64_vec(wb_len)?;
            let mut pairs = Vec::with_capacity(
                usize::try_from(pair_count).map_err(|_| corrupt("open-chain count overflows"))?,
            );
            let mut prev: Option<u64> = None;
            for _ in 0..pair_count {
                let line = r.u64()?;
                let max_gap = r.u64()?;
                if prev.is_some_and(|p| p >= line) {
                    return Err(corrupt("open dirty chains out of order"));
                }
                if max_gap == EMPTY {
                    return Err(corrupt("open dirty chain carries the closed sentinel"));
                }
                prev = Some(line);
                pairs.push((line, max_gap));
            }
            Some((wb_hist, pairs))
        } else {
            None
        };
        r.expect_end()?;
        if clock < live {
            return Err(corrupt("clock below live-address count"));
        }

        let (index, slots) = match tag {
            0 => {
                let cap = usize::try_from(live).map_err(|_| corrupt("live count overflows"))?;
                (
                    LastIndex::Map(HashMap::with_capacity(cap)),
                    cap.checked_mul(2)
                        .ok_or_else(|| corrupt("live count overflows"))?,
                )
            }
            1 => {
                if bound == 0 {
                    return Err(corrupt("zero address bound on the direct backend"));
                }
                let b = usize::try_from(bound)
                    .map_err(|_| corrupt("address bound overflows"))?;
                (
                    LastIndex::Direct(vec![EMPTY; b]),
                    b.checked_mul(2)
                        .ok_or_else(|| corrupt("address bound overflows"))?,
                )
            }
            _ => return Err(corrupt("unknown backend tag")),
        };
        let mut engine = Self::with_slots(index, slots);
        // Rebuild the physical window exactly as compaction lays it out:
        // the live addresses take slots 0..live, timestamps just below
        // the (restored) clock.
        let origin = clock - live;
        for (i, &addr) in stack.iter().enumerate() {
            let t = origin + i as u64;
            match &mut engine.index {
                LastIndex::Direct(table) => {
                    let a = usize::try_from(addr)
                        .ok()
                        .filter(|&a| a < table.len())
                        .ok_or_else(|| corrupt("address beyond the declared bound"))?;
                    if table[a] != EMPTY {
                        return Err(corrupt("duplicate address in the recency stack"));
                    }
                    table[a] = t;
                }
                LastIndex::Map(map) => {
                    if map.insert(addr, t).is_some() {
                        return Err(corrupt("duplicate address in the recency stack"));
                    }
                }
            }
            engine.markers.add(i);
            engine.slot_addr[i] = addr;
        }
        engine.clock = clock;
        engine.origin = origin;
        engine.hist = hist;
        engine.compulsory = compulsory;
        engine.accesses = accesses;
        engine.first_touches = first_touches;
        if let Some((wb_hist, pairs)) = dirty_payload {
            let mut state = DirtyState::for_index(&engine.index);
            state.wb_hist = wb_hist;
            state.open = pairs.len() as u64;
            for (line, max_gap) in pairs {
                if let DirtyIndex::Direct(table) = &state.index {
                    if usize::try_from(line).ok().filter(|&l| l < table.len()).is_none() {
                        return Err(corrupt("dirty line beyond the declared bound"));
                    }
                }
                state.index.set(line, max_gap);
            }
            engine.dirty = Some(state);
        }
        Ok(engine)
    }

    /// Re-points `addr`'s index entry at the current clock and returns the
    /// *physical* slot of its previous access, if any — compacting first
    /// when the physical window is full, so the returned slot and the
    /// current clock share one `origin`.
    #[inline]
    fn index_touch(&mut self, addr: u64) -> Option<usize> {
        if self.clock - self.origin == self.markers.slots() as u64 {
            self.compact();
        }
        let t = self.clock;
        let prev = match &mut self.index {
            LastIndex::Direct(table) => {
                let a = usize::try_from(addr)
                    .ok()
                    .filter(|&a| a < table.len())
                    .unwrap_or_else(|| {
                        panic!("address {addr} exceeds the declared address bound")
                    });
                let prev = table[a];
                table[a] = t;
                (prev != EMPTY).then_some(prev)
            }
            LastIndex::Map(map) => map.insert(addr, t),
        };
        prev.map(|pt| {
            debug_assert!(pt >= self.origin, "stale timestamp survived compaction");
            // In-window by construction: pt − origin < clock − origin ≤ slots.
            (pt - self.origin) as usize
        })
    }

    /// Places `addr`'s fresh marker in the physical slot of the current
    /// clock and advances the clock.
    #[inline]
    fn push_top(&mut self, addr: u64) {
        let slot = (self.clock - self.origin) as usize;
        self.markers.add(slot);
        self.slot_addr[slot] = addr;
        self.clock += 1;
    }

    /// Counts one access at stack distance `d` into the histogram.
    #[inline]
    fn bump_hist(&mut self, d: u64) {
        // d ≤ distinct + 1 ≤ slot space + 1, which fits usize.
        let d =
            usize::try_from(d).unwrap_or_else(|_| panic!("stack distance overflows usize"));
        if d >= self.hist.len() {
            self.hist.resize(d + 1, 0);
        }
        self.hist[d] += 1;
    }

    /// Observes one word access, updating the distance histogram.
    ///
    /// # Panics
    ///
    /// On the direct-indexed backend, panics if `addr` exceeds the bound
    /// declared at construction.
    pub fn observe(&mut self, addr: u64) {
        self.accesses += 1;
        match self.index_touch(addr) {
            None => {
                self.compulsory += 1;
                if let Some(rec) = &mut self.first_touches {
                    rec.push(addr);
                }
            }
            Some(p) => {
                // Stack distance: distinct addresses touched since the
                // previous access of `addr`, counting `addr` itself (whose
                // marker still sits at `p`).
                let d = self.markers.count_after(p) + 1;
                self.bump_hist(d);
                self.markers.remove(p);
            }
        }
        self.push_top(addr);
    }

    /// Feeds a whole address trace (any iterator — in particular the
    /// streaming trace generators, in O(1) extra memory).
    pub fn observe_trace(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            self.observe(a);
        }
    }

    /// Observes one *tagged* access of line id `line`, updating both the
    /// reuse-distance histogram and the dirty-chain write-back ledger. A
    /// tagged replay must route **every** access through this method (an
    /// interleaved [`StackDistance::observe`] would skip a chain's gap
    /// update); address-to-line mapping is the caller's — see
    /// [`traffic_profile_of`] for the word-address entry point.
    ///
    /// With all-read tags this is observationally identical to
    /// [`StackDistance::observe`]: the dirty ledger stays empty and
    /// [`TrafficProfile::writebacks_at`] is zero everywhere.
    ///
    /// # Panics
    ///
    /// As [`StackDistance::observe`].
    pub fn observe_tagged(&mut self, line: u64, is_write: bool) {
        self.accesses += 1;
        let gap = match self.index_touch(line) {
            None => {
                self.compulsory += 1;
                if let Some(rec) = &mut self.first_touches {
                    rec.push(line);
                }
                None
            }
            Some(p) => {
                let d = self.markers.count_after(p) + 1;
                self.bump_hist(d);
                self.markers.remove(p);
                Some(d)
            }
        };
        self.push_top(line);
        if self.dirty.is_none() && !is_write {
            // No chain can be open yet: reads before the first write need
            // no ledger at all.
            return;
        }
        let state = self
            .dirty
            .get_or_insert_with(|| DirtyState::for_index(&self.index));
        // An open chain spans this access's gap: a dirty eviction inside
        // the gap is what the running max records. A first touch (no gap)
        // cannot have an open chain — the line was never seen, let alone
        // written.
        let open = match (state.index.get(line), gap) {
            (Some(m), Some(d)) => Some(m.max(d)),
            (open, _) => open,
        };
        if is_write {
            // The previous chain (if any) closes here with its final max;
            // this write opens a fresh one.
            match open {
                Some(m) => state.close(m),
                None => state.open += 1,
            }
            state.index.set(line, 0);
        } else if let Some(m) = open {
            state.index.set(line, m);
        }
    }

    /// Feeds a whole tagged access trace, mapping each word address onto
    /// its `line_words`-sized line (consecutive same-line touches collapse
    /// to distance-1 hits — spatial locality becomes visible).
    ///
    /// # Panics
    ///
    /// Panics when `line_words` is zero.
    pub fn observe_tagged_trace(
        &mut self,
        accesses: impl IntoIterator<Item = balance_core::Access>,
        line_words: u64,
    ) {
        assert!(line_words > 0, "lines must hold at least one word");
        for a in accesses {
            self.observe_tagged(a.addr / line_words, a.is_write());
        }
    }

    /// Starts recording first-touch addresses (segment boundary state).
    pub(crate) fn record_first_touches(&mut self) {
        self.first_touches = Some(Vec::new());
    }

    /// Takes the recorded first-touch addresses, in touch order.
    pub(crate) fn take_first_touches(&mut self) -> Vec<u64> {
        self.first_touches.take().unwrap_or_default()
    }

    /// The live addresses in recency order, oldest first — the engine's
    /// final LRU stack, bottom to top.
    pub(crate) fn final_stack(&self) -> Vec<u64> {
        let window = (self.clock - self.origin) as usize;
        (0..window)
            .filter(|&s| self.markers.is_live(s))
            .map(|s| self.slot_addr[s])
            .collect()
    }

    /// A boundary touch during a segmented merge: counts a histogram entry
    /// (cross-segment reuse) or a compulsory miss (globally new address),
    /// moves the marker to the top, but does **not** count an access —
    /// the per-segment passes already counted it.
    pub(crate) fn merge_observe(&mut self, addr: u64) {
        match self.index_touch(addr) {
            None => self.compulsory += 1,
            Some(p) => {
                let d = self.markers.count_after(p) + 1;
                self.bump_hist(d);
                self.markers.remove(p);
            }
        }
        self.push_top(addr);
    }

    /// Moves `addr` to the top of the recency stack (inserting it if
    /// absent) with no statistics at all — the segmented merge's reorder
    /// step, restoring true last-access order after a segment's boundary
    /// touches land in first-touch order.
    pub(crate) fn touch_silent(&mut self, addr: u64) {
        if let Some(p) = self.index_touch(addr) {
            self.markers.remove(p);
        }
        self.push_top(addr);
    }

    /// Adds another engine's distance histogram into this one.
    pub(crate) fn absorb_hist(&mut self, other: &[u64]) {
        if other.len() > self.hist.len() {
            self.hist.resize(other.len(), 0);
        }
        for (slot, &h) in self.hist.iter_mut().zip(other) {
            *slot += h;
        }
    }

    /// Credits accesses counted by another engine (segmented passes).
    pub(crate) fn add_accesses(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Dismantles the engine into `(hist, accesses)` for segment merging.
    pub(crate) fn into_parts(self) -> (Vec<u64>, u64) {
        (self.hist, self.accesses)
    }

    /// Finalizes a pass over a hash-sampled sub-trace into an approximate
    /// [`CapacityProfile`]: raw sampled counts are kept as stored, the
    /// access count is replaced with the **true** full-trace count, and
    /// the profile carries the sampling-rate exponent so queries re-scale
    /// (see [`crate::sampling`]).
    pub(crate) fn into_sampled_profile(
        mut self,
        true_accesses: u64,
        shift: u32,
    ) -> CapacityProfile {
        // SHARDS-adj (Waldspurger et al., FAST '15): spatial sampling hits
        // each address's *whole* access string or none of it, so the raw
        // sampled access count `S` wanders from the expected `N·R` by the
        // popularity skew of the sampled set. Queries scale hits by `1/R`
        // but subtract them from the exact `N`, so that wander lands
        // verbatim in every miss count — and near saturation, where true
        // misses shrink to the compulsory floor, it dominates them.
        // Restore `S == N·R` by crediting the difference to the smallest
        // observed reuse distance (clamped at an empty bucket).
        let expected = true_accesses >> shift;
        if let Some(d) = (1..self.hist.len()).find(|&d| self.hist[d] > 0) {
            if expected >= self.accesses {
                self.hist[d] += expected - self.accesses;
            } else {
                self.hist[d] = self.hist[d].saturating_sub(self.accesses - expected);
            }
        }
        let mut profile = self.into_profile();
        profile.accesses = true_accesses;
        profile.shift = shift;
        profile
    }

    /// Finalizes the replay into a queryable [`CapacityProfile`].
    #[must_use]
    pub fn into_profile(self) -> CapacityProfile {
        // One breakpoint per distance with a nonzero histogram count:
        // (d, accesses with stack distance ≤ d), strictly increasing in
        // both coordinates.
        let mut steps = Vec::new();
        let mut acc = 0u64;
        for (d, &h) in self.hist.iter().enumerate().skip(1) {
            if h > 0 {
                acc += h;
                steps.push((d as u64, acc));
            }
        }
        CapacityProfile {
            accesses: self.accesses,
            compulsory: self.compulsory,
            steps,
            shift: 0,
        }
    }

    /// Finalizes a tagged replay into a [`TrafficProfile`]: the dual
    /// answer sheet reporting line fetches *and* write-backs for every
    /// capacity. The engine must have observed **line ids** (see
    /// [`StackDistance::observe_tagged_trace`]); `line_words` is the line
    /// size those ids were derived with, so word-capacity queries can map
    /// back.
    ///
    /// # Panics
    ///
    /// Panics when `line_words` is zero.
    #[must_use]
    pub fn into_traffic_profile(mut self, line_words: u64) -> TrafficProfile {
        assert!(line_words > 0, "lines must hold at least one word");
        let dirty = self.dirty.take();
        let profile = self.into_profile();
        let (wb_steps, closed, open) = match dirty {
            None => (Vec::new(), 0, 0),
            Some(state) => {
                let mut steps = Vec::new();
                let mut acc = 0u64;
                for (d, &h) in state.wb_hist.iter().enumerate().skip(1) {
                    if h > 0 {
                        acc += h;
                        steps.push((d as u64, acc));
                    }
                }
                (steps, acc, state.open)
            }
        };
        TrafficProfile {
            profile,
            line_words,
            wb_steps,
            closed,
            open,
        }
    }

    /// Replays a whole trace through a fresh unbounded-address engine; the
    /// iterator's `size_hint` (exact for the workspace's streaming trace
    /// generators — pinned by regression test) pre-sizes the slot space.
    #[must_use]
    pub fn profile_of(addrs: impl IntoIterator<Item = u64>) -> CapacityProfile {
        let iter = addrs.into_iter();
        // A trace of `n` accesses touches at most `n` distinct addresses:
        // seed the slot space from the (exact) length hint, clamped so a
        // huge streamed trace does not pre-reserve gigabytes — compaction
        // grows the space on demand anyway.
        let hint = iter.size_hint().0.clamp(16, 1 << 20);
        let mut engine = Self::with_slots(LastIndex::Map(HashMap::new()), hint);
        engine.observe_trace(iter);
        engine.into_profile()
    }

    /// As [`StackDistance::profile_of`], with the direct-indexed backend
    /// for traces whose addresses lie in `[0, addr_bound)`.
    ///
    /// # Panics
    ///
    /// As [`StackDistance::with_address_bound`].
    #[must_use]
    pub fn profile_of_bounded(
        addrs: impl IntoIterator<Item = u64>,
        addr_bound: u64,
    ) -> CapacityProfile {
        let mut engine = Self::with_address_bound(addr_bound);
        engine.observe_trace(addrs);
        engine.into_profile()
    }

    /// Replays a whole tagged trace at `line_words` granularity through a
    /// fresh unbounded-address engine into a [`TrafficProfile`].
    ///
    /// # Panics
    ///
    /// Panics when `line_words` is zero.
    #[must_use]
    pub fn traffic_profile_of(
        accesses: impl IntoIterator<Item = balance_core::Access>,
        line_words: u64,
    ) -> TrafficProfile {
        let iter = accesses.into_iter();
        let hint = iter.size_hint().0.clamp(16, 1 << 20);
        let mut engine = Self::with_slots(LastIndex::Map(HashMap::new()), hint);
        engine.observe_tagged_trace(iter, line_words);
        engine.into_traffic_profile(line_words)
    }

    /// As [`StackDistance::traffic_profile_of`], with the direct-indexed
    /// backend for traces whose word addresses lie in `[0, addr_bound)`
    /// (the line-id space is `addr_bound / line_words`, rounded up).
    ///
    /// # Panics
    ///
    /// As [`StackDistance::with_address_bound`]; also panics when
    /// `line_words` is zero.
    #[must_use]
    pub fn traffic_profile_of_bounded(
        accesses: impl IntoIterator<Item = balance_core::Access>,
        line_words: u64,
        addr_bound: u64,
    ) -> TrafficProfile {
        assert!(line_words > 0, "lines must hold at least one word");
        let mut engine = Self::with_address_bound(addr_bound.div_ceil(line_words).max(1));
        engine.observe_tagged_trace(accesses, line_words);
        engine.into_traffic_profile(line_words)
    }

    /// Squeezes the dead slots out of the time axis, preserving recency
    /// order, re-points the live markers, and re-bases the logical origin
    /// so the clock itself never resets. Doubles the slot space when more
    /// than half the slots are live (only possible on the hash backend,
    /// whose distinct-address count is unbounded).
    fn compact(&mut self) {
        let slots = self.markers.slots();
        let live = usize::try_from(self.markers.live)
            .unwrap_or_else(|_| panic!("live marker count overflows usize"));
        let new_slots = if live * 2 > slots {
            slots
                .checked_mul(2)
                .unwrap_or_else(|| panic!("slot space overflows usize"))
        } else {
            slots
        };
        let mut markers = MarkerTree::new(new_slots);
        let mut slot_addr = vec![0; markers.slots()];
        // The clock is untouched; live entries take the `live` timestamps
        // just below it, so physical slot = timestamp − origin holds again.
        let origin = self.clock - live as u64;
        let mut dst = 0usize;
        for src in 0..slots {
            if !self.markers.is_live(src) {
                continue;
            }
            let addr = self.slot_addr[src];
            slot_addr[dst] = addr;
            markers.add(dst);
            let t = origin + dst as u64;
            match &mut self.index {
                LastIndex::Direct(table) => table[addr as usize] = t,
                LastIndex::Map(map) => {
                    map.insert(addr, t);
                }
            }
            dst += 1;
        }
        debug_assert_eq!(dst, live, "compaction must keep every live marker");
        self.markers = markers;
        self.slot_addr = slot_addr;
        self.origin = origin;
    }
}

/// The one-replay answer sheet: LRU miss/IO counts for **every** capacity,
/// from a single pass over the trace.
///
/// Obtained from [`StackDistance::into_profile`] (exact), the segmented
/// parallel engine in [`crate::segmented`] (exact, bit-identical), the
/// SHARDS-style sampled engine in [`crate::sampling`] (approximate), or a
/// closed-form derivation via [`AnalyticProfile`] (exact, zero replay). A
/// sampled profile carries its sampling rate as `shift`
/// (rate = 2^−shift): raw sampled counts are stored and every query
/// re-scales by 2^shift, following Waldspurger et al., *Efficient MRC
/// Construction with SHARDS* (FAST '15). [`CapacityProfile::is_exact`]
/// distinguishes the two — exact consumers (measured balance points) must
/// check it.
///
/// Storage is **piecewise**: one cumulative-hit breakpoint per distance
/// that actually occurs in the reuse histogram (a run-length encoding of
/// the hit curve), so a derived profile for `n = 10⁵` matmul is a few
/// hundred entries, not a `3n²`-long dense vector. Queries binary-search
/// the O(#pieces) breakpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityProfile {
    accesses: u64,
    compulsory: u64,
    /// Breakpoints `(d, h)`: `h` = accesses with (sampled) stack distance
    /// ≤ `d`, one entry per distance with a nonzero histogram count,
    /// strictly increasing in both coordinates (empty = no reuse at any
    /// capacity). For an exact profile the last `h` equals
    /// `accesses − compulsory`.
    steps: Vec<(u64, u64)>,
    /// Sampling-rate exponent: counts and distances are stored ×2^−shift
    /// and re-scaled on query. 0 = exact.
    shift: u32,
}

/// Raw field windows for the `KBCP` profile codec ([`crate::profstore`]).
/// The codec lives in a sibling module, so (de)construction crosses the
/// privacy boundary through these crate-internal accessors instead of by
/// making the invariant-carrying fields public; the decoder re-validates
/// every invariant before calling [`CapacityProfile::from_raw_parts`].
impl CapacityProfile {
    /// `(accesses, compulsory, steps, shift)`, exactly as stored.
    pub(crate) fn raw_parts(&self) -> (u64, u64, &[(u64, u64)], u32) {
        (self.accesses, self.compulsory, &self.steps, self.shift)
    }

    /// Rebuilds a profile from decoded fields. The caller (the codec) is
    /// responsible for having validated the breakpoint invariants.
    pub(crate) fn from_raw_parts(
        accesses: u64,
        compulsory: u64,
        steps: Vec<(u64, u64)>,
        shift: u32,
    ) -> CapacityProfile {
        CapacityProfile {
            accesses,
            compulsory,
            steps,
            shift,
        }
    }
}

impl CapacityProfile {
    /// The profile of a trace touching `accesses` distinct addresses once
    /// each: every miss compulsory, no reuse at any capacity. The closed
    /// form for one-touch computations (streaming transforms, transpose)
    /// — equal to replaying `0..accesses` through the engine (pinned by
    /// test) without the `O(accesses)` replay or its tables.
    #[must_use]
    pub fn one_touch(accesses: u64) -> CapacityProfile {
        CapacityProfile {
            accesses,
            compulsory: accesses,
            steps: Vec::new(),
            shift: 0,
        }
    }

    /// Re-scales a raw stored count by the sampling rate, saturating at
    /// `u64::MAX` (identity for exact profiles).
    #[inline]
    fn scale(&self, raw: u64) -> u64 {
        u64::try_from(u128::from(raw) << self.shift).unwrap_or(u64::MAX)
    }

    /// Whether this profile is exact (unsampled): `true` for the serial
    /// and segmented engines and for closed forms, `false` for
    /// SHARDS-sampled profiles. Consumers that promise exactness (e.g.
    /// the measured-balance fast path) must gate on this.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.shift == 0
    }

    /// The sampling-rate exponent: addresses were sampled at rate
    /// 2^−shift (0 = exact).
    #[must_use]
    pub fn sample_shift(&self) -> u32 {
        self.shift
    }

    /// The sampling rate as a fraction in (0, 1] (1.0 = exact).
    #[must_use]
    pub fn sampling_rate(&self) -> f64 {
        1.0 / (1u64 << self.shift.min(63)) as f64
    }

    /// Total accesses in the replayed trace (exact even for sampled
    /// profiles — the sampled engine counts every access it skips).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (compulsory) misses — the floor no capacity removes,
    /// equal to the number of distinct addresses in the trace (scaled
    /// estimate for sampled profiles).
    #[must_use]
    pub fn compulsory_misses(&self) -> u64 {
        self.scale(self.compulsory).min(self.accesses)
    }

    /// Distinct addresses in the trace (alias of the compulsory count).
    #[must_use]
    pub fn distinct_addresses(&self) -> u64 {
        self.compulsory_misses()
    }

    /// The smallest capacity at which only compulsory misses remain (the
    /// largest observed stack distance; 0 for an empty or touch-once
    /// trace). For sampled profiles, the scaled estimate.
    #[must_use]
    pub fn saturating_capacity(&self) -> u64 {
        self.scale(self.steps.last().map_or(0, |&(d, _)| d))
    }

    /// Hits of a word-granular LRU of `m` words replaying the trace
    /// (scaled estimate for sampled profiles, clamped to `accesses`) — a
    /// binary search over the cumulative-hit breakpoints.
    #[must_use]
    pub fn hits_at(&self, m: u64) -> u64 {
        let d = m >> self.shift;
        let idx = self.steps.partition_point(|&(dist, _)| dist <= d);
        let raw = if idx == 0 { 0 } else { self.steps[idx - 1].1 };
        self.scale(raw).min(self.accesses)
    }

    /// The profile's `(stack distance, access count)` reuse classes,
    /// smallest distance first — the per-distance histogram the
    /// cumulative breakpoints encode (raw stored counts for sampled
    /// profiles). Empty for a one-touch or empty trace.
    pub fn reuse_classes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.steps.iter().scan(0u64, |prev, &(d, cum)| {
            let count = cum - *prev;
            *prev = cum;
            Some((d, count))
        })
    }

    /// Misses of a word-granular LRU of `m` words replaying the trace —
    /// for an exact profile, bit-identical to
    /// `LruCache::with_capacity_words(m)` fed the same trace (pinned by
    /// property test). `m = 0` counts every access as a miss.
    #[must_use]
    pub fn misses_at(&self, m: u64) -> u64 {
        self.accesses.saturating_sub(self.hits_at(m))
    }

    /// I/O words crossing the boundary below a memory of `m` words — for
    /// the word-granular caches this crate models, exactly
    /// [`CapacityProfile::misses_at`].
    #[must_use]
    pub fn io_at(&self, m: u64) -> u64 {
        self.misses_at(m)
    }

    /// The multi-level read: boundary traffic for a ladder with the given
    /// level capacities (innermost first) — entry `i` is `misses_at(M_i)`,
    /// which LRU inclusion makes exactly the words that miss every level up
    /// to `i` and cross toward level `i+1`. Bit-identical to replaying the
    /// trace through a [`crate::Hierarchy`] of the same capacities (pinned
    /// by property test).
    ///
    /// # Panics
    ///
    /// As [`LevelTraffic::from_slice`]: more than
    /// [`balance_core::MAX_MEMORY_LEVELS`] capacities panic.
    #[must_use]
    pub fn traffic_at(&self, capacities: &[Words]) -> LevelTraffic {
        let io: Vec<u64> = capacities.iter().map(|m| self.misses_at(m.get())).collect();
        LevelTraffic::from_slice(&io)
    }

    /// [`CapacityProfile::traffic_at`] for a validated [`HierarchySpec`]
    /// (all levels cache-managed — the trace-driven configuration).
    #[must_use]
    pub fn traffic_for(&self, spec: &HierarchySpec) -> LevelTraffic {
        let caps: Vec<Words> = spec.levels().iter().map(|l| l.capacity()).collect();
        self.traffic_at(&caps)
    }
}

/// The device-realistic answer sheet: line fetches **and** dirty
/// write-backs for every capacity, from one tagged pass.
///
/// Obtained from [`StackDistance::traffic_profile_of`] (or its bounded
/// sibling / [`StackDistance::into_traffic_profile`]). The read side is a
/// plain [`CapacityProfile`] over *line ids* — a miss fetches one line
/// regardless of direction (write-allocate). The write-back side is the
/// dirty-chain histogram: at capacity `M` a line is written back once per
/// dirty chain whose max reuse gap exceeds `M` lines, plus once per line
/// still dirty at the end of the run (the end-of-run flush). Both queries
/// are O(log #pieces) binary searches; both are bit-identical to replaying
/// the tagged trace through a line-granular [`crate::LruCache`] with dirty
/// bits and a final flush (pinned by property test, on both index
/// backends).
///
/// Capacities are given in **words**; the profile converts by its line
/// size (`m` words hold `m / line_words` lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficProfile {
    /// The read/fetch curve over line ids.
    profile: CapacityProfile,
    /// Line size the ids were derived with (≥ 1).
    line_words: u64,
    /// Breakpoints `(d, c)`: `c` = closed dirty chains with max gap ≤ `d`
    /// lines, one entry per gap with a nonzero count, strictly increasing
    /// in both coordinates.
    wb_steps: Vec<(u64, u64)>,
    /// Total closed dirty chains.
    closed: u64,
    /// Open dirty chains = distinct lines written — the write-back floor
    /// no capacity removes (every written line flushes at least once).
    open: u64,
}

/// Raw field windows for the `KBCP` profile codec ([`crate::profstore`]);
/// see the matching [`CapacityProfile`] impl for the rationale.
impl TrafficProfile {
    /// `(read profile, line_words, wb_steps, closed, open)`, as stored.
    pub(crate) fn raw_parts(&self) -> (&CapacityProfile, u64, &[(u64, u64)], u64, u64) {
        (
            &self.profile,
            self.line_words,
            &self.wb_steps,
            self.closed,
            self.open,
        )
    }

    /// Rebuilds a traffic profile from decoded fields. The caller (the
    /// codec) is responsible for having validated the ledger invariants.
    pub(crate) fn from_raw_parts(
        profile: CapacityProfile,
        line_words: u64,
        wb_steps: Vec<(u64, u64)>,
        closed: u64,
        open: u64,
    ) -> TrafficProfile {
        TrafficProfile {
            profile,
            line_words,
            wb_steps,
            closed,
            open,
        }
    }
}

impl TrafficProfile {
    /// The read/fetch curve over line ids — capacities in **lines**, not
    /// words. Exact by construction (tagged replay is never sampled).
    #[must_use]
    pub fn profile(&self) -> &CapacityProfile {
        &self.profile
    }

    /// The line size (words per line) the trace was replayed at.
    #[must_use]
    pub fn line_words(&self) -> u64 {
        self.line_words
    }

    /// Total accesses in the replayed trace (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.profile.accesses()
    }

    /// Distinct lines written in the trace — the write-back count no
    /// capacity avoids.
    #[must_use]
    pub fn written_lines(&self) -> u64 {
        self.open
    }

    /// Line fetches of an `m`-**word** memory replaying the trace: every
    /// access (read or write) that misses fetches its line
    /// (write-allocate).
    #[must_use]
    pub fn read_misses_at(&self, m: u64) -> u64 {
        self.profile.misses_at(m / self.line_words)
    }

    /// Dirty-eviction write-backs of an `m`-**word** memory replaying the
    /// trace, counting the end-of-run flush of still-dirty lines.
    /// Monotone non-increasing in `m` with floor
    /// [`TrafficProfile::written_lines`] (pinned by property test).
    #[must_use]
    pub fn writebacks_at(&self, m: u64) -> u64 {
        let d = m / self.line_words;
        // Closed chains whose max gap fits within d lines stay resident
        // across the whole chain: the rewrite catches the line still
        // cached and still dirty, so no write-back.
        let idx = self.wb_steps.partition_point(|&(gap, _)| gap <= d);
        let kept = if idx == 0 { 0 } else { self.wb_steps[idx - 1].1 };
        (self.closed - kept) + self.open
    }

    /// [`TrafficProfile::read_misses_at`] in words: one line of traffic
    /// per missing access.
    #[must_use]
    pub fn read_words_at(&self, m: u64) -> u64 {
        self.read_misses_at(m).saturating_mul(self.line_words)
    }

    /// [`TrafficProfile::writebacks_at`] in words: one line of traffic per
    /// write-back.
    #[must_use]
    pub fn writeback_words_at(&self, m: u64) -> u64 {
        self.writebacks_at(m).saturating_mul(self.line_words)
    }

    /// The multi-level dual read: fetch and write-back **words** crossing
    /// the boundary below each level (innermost first). Bit-identical to
    /// replaying the tagged trace through a line-granular
    /// [`crate::Hierarchy`] of the same capacities with a final flush
    /// (pinned by property test).
    ///
    /// # Panics
    ///
    /// As [`LevelTraffic::from_reads_and_writebacks`]: more than
    /// [`balance_core::MAX_MEMORY_LEVELS`] capacities panic.
    #[must_use]
    pub fn traffic_at(&self, capacities: &[Words]) -> LevelTraffic {
        let reads: Vec<u64> = capacities
            .iter()
            .map(|m| self.read_words_at(m.get()))
            .collect();
        let wbs: Vec<u64> = capacities
            .iter()
            .map(|m| self.writeback_words_at(m.get()))
            .collect();
        LevelTraffic::from_reads_and_writebacks(&reads, &wbs)
    }

    /// [`TrafficProfile::traffic_at`] for a validated [`HierarchySpec`].
    #[must_use]
    pub fn traffic_for(&self, spec: &HierarchySpec) -> LevelTraffic {
        let caps: Vec<Words> = spec.levels().iter().map(|l| l.capacity()).collect();
        self.traffic_at(&caps)
    }
}

/// A closed-form reuse-distance histogram under construction: the
/// zero-replay way to build an exact [`CapacityProfile`].
///
/// For the affine kernels the reuse-distance histogram is an analyzable
/// function of the problem size: every access is either a first touch
/// ([`AnalyticProfile::record_compulsory`]) or a reuse at a derived stack
/// distance, and the reuses collapse into a handful of *classes* — runs of
/// accesses sharing one distance, with a count in closed form
/// ([`AnalyticProfile::record_class`]). Recording the classes takes
/// O(#classes) work however long the trace they describe would be; a
/// `3×10¹²`-address matmul trace at `n = 10⁴` becomes ~2·10⁴ classes built
/// in microseconds.
///
/// [`AnalyticProfile::into_profile`] finalizes into a [`CapacityProfile`]
/// that is **bit-identical** (including structurally, `==`) to replaying
/// the described trace through [`StackDistance`] — the kernel registry
/// pins this per kernel by property test. The profile reports
/// [`CapacityProfile::is_exact`]` == true`; a wrong derivation is a bug,
/// not an approximation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalyticProfile {
    accesses: u64,
    compulsory: u64,
    /// Recorded `(distance, count)` classes, any order, duplicates allowed
    /// (merged at finalization).
    classes: Vec<(u64, u64)>,
}

impl AnalyticProfile {
    /// An empty histogram: record classes into it.
    #[must_use]
    pub fn new() -> AnalyticProfile {
        AnalyticProfile::default()
    }

    /// The histogram of a trace touching `accesses` distinct addresses
    /// once each — the degenerate closed form
    /// ([`CapacityProfile::one_touch`]'s builder-side spelling).
    #[must_use]
    pub fn one_touch(accesses: u64) -> AnalyticProfile {
        AnalyticProfile {
            accesses,
            compulsory: accesses,
            classes: Vec::new(),
        }
    }

    /// Records `count` first-touch (compulsory-miss) accesses.
    pub fn record_compulsory(&mut self, count: u64) {
        self.accesses += count;
        self.compulsory += count;
    }

    /// Records a reuse class: `count` accesses with stack distance
    /// exactly `distance` (hits at every capacity ≥ `distance`). Classes
    /// may be recorded in any order and may repeat; zero counts are
    /// accepted and dropped (edge sizes degenerate classes to nothing).
    ///
    /// # Panics
    ///
    /// Panics on `distance == 0` — a reuse is at depth ≥ 1 by definition.
    pub fn record_class(&mut self, distance: u64, count: u64) {
        assert!(distance >= 1, "a reuse has stack distance >= 1");
        self.accesses += count;
        if count > 0 {
            self.classes.push((distance, count));
        }
    }

    /// Accesses recorded so far (compulsory + every class count).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch accesses recorded so far.
    #[must_use]
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// Finalizes into an exact [`CapacityProfile`]: classes are sorted,
    /// duplicate distances merged, and cumulated into the piecewise
    /// breakpoint form — O(#classes · log #classes), independent of the
    /// described trace's length.
    #[must_use]
    pub fn into_profile(self) -> CapacityProfile {
        let mut classes = self.classes;
        classes.sort_unstable_by_key(|&(d, _)| d);
        let mut steps: Vec<(u64, u64)> = Vec::with_capacity(classes.len());
        let mut acc = 0u64;
        for (d, c) in classes {
            acc += c;
            match steps.last_mut() {
                Some(last) if last.0 == d => last.1 = acc,
                _ => steps.push((d, acc)),
            }
        }
        CapacityProfile {
            accesses: self.accesses,
            compulsory: self.compulsory,
            steps,
            shift: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use crate::hierarchy::Hierarchy;
    use crate::hierarchy::MemorySystem as _;

    fn replay_misses(trace: &[u64], m: u64) -> u64 {
        let mut cache = LruCache::with_capacity_words(m as usize);
        cache.run_trace(trace.iter().copied())
    }

    fn check_all_capacities(trace: &[u64]) {
        let profile = StackDistance::profile_of(trace.iter().copied());
        let hi = u64::try_from(trace.len()).expect("trace length fits u64") + 2;
        for m in 1..=hi {
            assert_eq!(
                profile.misses_at(m),
                replay_misses(trace, m),
                "capacity {m} on trace {trace:?}"
            );
        }
    }

    #[test]
    fn matches_replay_on_small_traces() {
        check_all_capacities(&[]);
        check_all_capacities(&[7]);
        check_all_capacities(&[1, 1, 1, 1]);
        check_all_capacities(&[1, 2, 3, 4, 5]);
        check_all_capacities(&[1, 2, 3, 1, 2, 3]);
        check_all_capacities(&[1, 2, 1, 3, 1, 2, 5, 1, 2, 2, 4, 1]);
        // The Mattson counter-trace that distinguishes standalone levels
        // from a filtered chain: one replay must match the standalone read.
        check_all_capacities(&[0, 1, 2, 1, 3, 4, 1]);
    }

    #[test]
    fn backends_agree() {
        let trace: Vec<u64> = (0..500u64).map(|i| (i * i * 7 + i) % 97).collect();
        let hashed = StackDistance::profile_of(trace.iter().copied());
        let direct = StackDistance::profile_of_bounded(trace.iter().copied(), 97);
        assert_eq!(hashed, direct);
    }

    #[test]
    fn compulsory_and_distinct_counts() {
        let mut engine = StackDistance::new();
        engine.observe_trace([5, 6, 5, 7, 6, 5]);
        assert_eq!(engine.distinct(), 3);
        assert_eq!(engine.accesses(), 6);
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 3);
        assert_eq!(p.distinct_addresses(), 3);
        // Beyond the largest reuse distance, only compulsory misses remain.
        assert_eq!(p.misses_at(1 << 40), 3);
        assert_eq!(p.io_at(2), replay_misses(&[5, 6, 5, 7, 6, 5], 2));
    }

    #[test]
    fn one_touch_is_the_replayed_single_pass() {
        for n in [0u64, 1, 7, 300] {
            let closed = CapacityProfile::one_touch(n);
            let replayed = StackDistance::profile_of(0..n);
            assert_eq!(closed, replayed, "n = {n}");
        }
    }

    #[test]
    fn zero_capacity_misses_every_access() {
        let p = StackDistance::profile_of([1, 2, 1, 2]);
        assert_eq!(p.misses_at(0), 4);
        assert_eq!(p.hits_at(0), 0);
    }

    #[test]
    fn empty_trace_profile_is_all_zero() {
        let p = StackDistance::profile_of(std::iter::empty());
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.compulsory_misses(), 0);
        assert_eq!(p.saturating_capacity(), 0);
        for m in [0u64, 1, 7, u64::MAX] {
            assert_eq!(p.hits_at(m), 0, "hits at {m}");
            assert_eq!(p.misses_at(m), 0, "misses at {m}");
        }
    }

    #[test]
    fn queries_past_saturation_and_at_u64_max_are_stable() {
        let trace = [1u64, 2, 3, 1, 2, 3, 1];
        let p = StackDistance::profile_of(trace.iter().copied());
        let sat = p.saturating_capacity();
        assert_eq!(sat, 3);
        // Every capacity ≥ saturation leaves exactly the compulsory floor,
        // including capacities that overflow usize-sized indexing.
        for m in [sat, sat + 1, 1 << 40, u64::MAX] {
            assert_eq!(p.misses_at(m), p.compulsory_misses(), "capacity {m}");
            assert_eq!(p.hits_at(m), p.accesses() - p.compulsory_misses());
        }
    }

    #[test]
    fn saturating_capacity_is_the_largest_reuse_distance() {
        // 1,2,3,1: the re-touch of 1 has distance 3.
        let p = StackDistance::profile_of([1, 2, 3, 1]);
        assert_eq!(p.saturating_capacity(), 3);
        assert_eq!(p.misses_at(3), p.compulsory_misses());
        assert_eq!(p.misses_at(2), p.compulsory_misses() + 1);
        // No reuse at all: saturation at 0.
        assert_eq!(StackDistance::profile_of([1, 2, 3]).saturating_capacity(), 0);
    }

    #[test]
    fn compaction_preserves_exactness() {
        // A tiny slot space forces many compactions: 16 distinct addresses
        // cycled 100 times through the minimum 16-slot engine.
        let trace: Vec<u64> = (0..1600u64).map(|i| (i * 5) % 16).collect();
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        for m in 1..=17u64 {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn clock_crossing_u32_boundary_keeps_distances_exact() {
        // Regression test for the u32 slot-index overflow: the last-access
        // tables used to store `slot as u32`, so once the time counter
        // passed `u32::MAX` (reachable on a 10⁹-address trace with
        // compaction-driven slot churn) timestamps silently truncated and
        // distances corrupted. The logical clock stores full u64
        // timestamps; starting the clock just below the boundary makes the
        // truncation observable with a tiny trace: a truncated timestamp
        // (e.g. 2³² + k stored as k) would be below `origin` and
        // misresolve its physical slot.
        let start = u64::from(u32::MAX) - 8;
        let mut engine = StackDistance::with_clock_start(start);
        let trace: Vec<u64> = (0..400u64).map(|i| (i * 7) % 40).collect();
        engine.observe_trace(trace.iter().copied());
        assert!(engine.clock > u64::from(u32::MAX), "clock must cross 2^32");
        // Every stored timestamp now exceeds u32::MAX; distances must
        // still match a plain LRU replay at every capacity.
        let p = engine.into_profile();
        for m in 1..=42u64 {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn extreme_address_values_survive_compaction() {
        // u64::MAX is an ordinary address (no sentinel value exists):
        // interleave it with enough distinct addresses to force several
        // compactions on the minimum slot space and check exactness.
        let mut trace = Vec::new();
        for round in 0..40u64 {
            trace.push(u64::MAX);
            trace.push(u64::MAX - 1);
            for k in 0..10u64 {
                trace.push(round * 10 + k);
            }
        }
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 402); // 400 round keys + the two MAXes
        for m in [1u64, 2, 3, 12, 13, 200, 500] {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn hash_backend_grows_its_slot_space() {
        // More distinct addresses than the initial slot space: compaction
        // must double rather than squeeze.
        let trace: Vec<u64> = (0..200u64).chain(0..200).collect();
        let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
        engine.observe_trace(trace.iter().copied());
        let p = engine.into_profile();
        assert_eq!(p.compulsory_misses(), 200);
        for m in [1u64, 50, 199, 200, 201] {
            assert_eq!(p.misses_at(m), replay_misses(&trace, m), "capacity {m}");
        }
    }

    #[test]
    fn multi_level_read_matches_hierarchy_replay() {
        let trace: Vec<u64> = (0..600u64).map(|i| (i * 11 + i * i) % 64).collect();
        let caps = [Words::new(4), Words::new(16), Words::new(48)];
        let profile = StackDistance::profile_of_bounded(trace.iter().copied(), 64);
        let mut ladder = Hierarchy::new(&caps);
        for &a in &trace {
            ladder.access(a);
        }
        assert_eq!(profile.traffic_at(&caps), ladder.traffic());
        assert!(profile.traffic_at(&caps).is_monotone_non_increasing());
    }

    #[test]
    fn traffic_for_reads_spec_capacities() {
        use balance_core::{LevelSpec, WordsPerSec};
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(2), WordsPerSec::new(1.0)).unwrap(),
            LevelSpec::new(Words::new(8), WordsPerSec::new(1.0)).unwrap(),
        ])
        .unwrap();
        let p = StackDistance::profile_of([0u64, 1, 2, 0, 1, 2]);
        let t = p.traffic_for(&spec);
        assert_eq!(t.as_slice(), &[6, 3]);
    }

    /// Cuts the trace at `cut`, snapshots/restores, replays the rest on
    /// the restored engine, and demands the profile be bit-identical to
    /// the uninterrupted run.
    fn check_snapshot_cut(trace: &[u64], cut: usize, addr_bound: Option<u64>) {
        let mut engine = match addr_bound {
            Some(b) => StackDistance::with_address_bound(b),
            None => StackDistance::new(),
        };
        engine.observe_trace(trace[..cut].iter().copied());
        let image = engine.snapshot();
        let mut restored = StackDistance::restore(&image)
            .unwrap_or_else(|e| panic!("restore at cut {cut}: {e}"));
        assert_eq!(restored.accesses(), cut as u64);
        restored.observe_trace(trace[cut..].iter().copied());
        let uninterrupted = match addr_bound {
            Some(b) => StackDistance::profile_of_bounded(trace.iter().copied(), b),
            None => StackDistance::profile_of(trace.iter().copied()),
        };
        assert_eq!(
            restored.into_profile(),
            uninterrupted,
            "cut {cut} bound {addr_bound:?}"
        );
    }

    #[test]
    fn snapshot_restore_is_bit_identical_at_every_cut() {
        let trace: Vec<u64> = (0..200u64).map(|i| (i * 13 + i * i) % 37).collect();
        for cut in [0, 1, 2, 50, 100, 199, 200] {
            check_snapshot_cut(&trace, cut, None);
            check_snapshot_cut(&trace, cut, Some(37));
        }
    }

    #[test]
    fn snapshot_restore_survives_compaction_pressure() {
        // The minimum 16-slot engine compacts every few accesses; cut at
        // every position so some cuts land exactly on a compaction edge.
        let trace: Vec<u64> = (0..400u64).map(|i| (i * 5) % 16).collect();
        for cut in 0..=trace.len() {
            let mut engine = StackDistance::with_slots(LastIndex::Map(HashMap::new()), 16);
            engine.observe_trace(trace[..cut].iter().copied());
            let mut restored = StackDistance::restore(&engine.snapshot()).unwrap();
            restored.observe_trace(trace[cut..].iter().copied());
            let p = restored.into_profile();
            for m in [1u64, 4, 15, 16, 17] {
                assert_eq!(p.misses_at(m), replay_misses(&trace, m), "cut {cut} m {m}");
            }
        }
    }

    #[test]
    fn snapshot_preserves_first_touch_recording() {
        let trace = [4u64, 2, 4, 9, 2, 7];
        let mut engine = StackDistance::new();
        engine.record_first_touches();
        engine.observe_trace(trace[..3].iter().copied());
        let mut restored = StackDistance::restore(&engine.snapshot()).unwrap();
        restored.observe_trace(trace[3..].iter().copied());
        assert_eq!(restored.take_first_touches(), vec![4, 2, 9, 7]);
    }

    #[test]
    fn restore_rejects_any_single_byte_flip() {
        let mut engine = StackDistance::with_address_bound(16);
        engine.observe_trace([3u64, 1, 4, 1, 5, 9, 2, 6]);
        let image = engine.snapshot();
        assert!(StackDistance::restore(&image).is_ok());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x10;
            assert!(
                StackDistance::restore(&bad).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
        for cut in 0..image.len() {
            assert!(
                StackDistance::restore(&image[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn restore_rejects_structural_corruption_with_valid_checksum() {
        use crate::checkpoint::{fnv1a, CheckpointError};
        // A recency stack with a duplicated address: recompute the
        // checksum so only the structural validation can catch it.
        let mut engine = StackDistance::new();
        engine.observe_trace([1u64, 2, 3]);
        let image = engine.snapshot();
        let payload_len = image.len() - 8;
        let mut bad = image[..payload_len].to_vec();
        // The three stack addresses are the last 3 u64s before hist
        // (hist is empty: no reuse): duplicate the first onto the second.
        let stack_start = bad.len() - 3 * 8;
        let (first, rest) = bad[stack_start..].split_at_mut(8);
        rest[..8].copy_from_slice(first);
        let sum = fnv1a(&bad).to_le_bytes();
        bad.extend_from_slice(&sum);
        assert!(matches!(
            StackDistance::restore(&bad),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn restore_rejects_wrong_magic_and_version() {
        use crate::checkpoint::{fnv1a, CheckpointError};
        let image = StackDistance::new().snapshot();
        let payload_len = image.len() - 8;

        let mut wrong_magic = image[..payload_len].to_vec();
        wrong_magic[0] = b'X';
        let sum = fnv1a(&wrong_magic).to_le_bytes();
        wrong_magic.extend_from_slice(&sum);
        assert!(matches!(
            StackDistance::restore(&wrong_magic),
            Err(CheckpointError::BadMagic { .. })
        ));

        let mut wrong_version = image[..payload_len].to_vec();
        wrong_version[4] = 0xEE;
        let sum = fnv1a(&wrong_version).to_le_bytes();
        wrong_version.extend_from_slice(&sum);
        assert!(matches!(
            StackDistance::restore(&wrong_version),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
    }

    /// A deterministic mixed read/write trace over `addr_space` word
    /// addresses, one write every `write_every` accesses.
    fn tagged_trace(n: u64, addr_space: u64, write_every: u64) -> Vec<balance_core::Access> {
        (0..n)
            .map(|i| {
                let addr = (i * 7 + (i * i) % 13) % addr_space;
                if i % write_every == 0 {
                    balance_core::Access::write(addr)
                } else {
                    balance_core::Access::read(addr)
                }
            })
            .collect()
    }

    /// Both tagged backends against a dirty-bit LRU replay at **every**
    /// capacity — the exactness contract of the write-back ledger.
    fn check_tagged_against_replay(
        accesses: &[balance_core::Access],
        line_words: u64,
        addr_bound: u64,
    ) {
        let hashed =
            StackDistance::traffic_profile_of(accesses.iter().copied(), line_words);
        let direct = StackDistance::traffic_profile_of_bounded(
            accesses.iter().copied(),
            line_words,
            addr_bound,
        );
        assert_eq!(hashed, direct, "tagged backends disagree");
        let max_lines = addr_bound.div_ceil(line_words) + 2;
        for m_lines in 1..=max_lines {
            let mut cache = LruCache::new(
                usize::try_from(m_lines).expect("line count fits usize"),
                line_words,
            );
            let (misses, wbs) = cache.run_tagged_trace(accesses.iter().copied());
            let m = m_lines * line_words;
            assert_eq!(
                hashed.read_misses_at(m),
                misses,
                "read misses at {m_lines} lines of {line_words} words"
            );
            assert_eq!(
                hashed.writebacks_at(m),
                wbs,
                "write-backs at {m_lines} lines of {line_words} words"
            );
        }
    }

    #[test]
    fn tagged_ledger_matches_dirty_lru_replay_at_every_capacity() {
        for line_words in [1u64, 2, 4, 8] {
            for write_every in [1u64, 2, 3, 7] {
                let trace = tagged_trace(600, 64, write_every);
                check_tagged_against_replay(&trace, line_words, 64);
            }
        }
        // All-write and single-access edge shapes.
        check_tagged_against_replay(&[balance_core::Access::write(5)], 4, 16);
        check_tagged_against_replay(&tagged_trace(100, 16, 1), 4, 16);
    }

    #[test]
    fn all_read_tagged_replay_is_the_untagged_profile() {
        let addrs: Vec<u64> = (0..500u64).map(|i| (i * 11 + i / 3) % 80).collect();
        let tp = StackDistance::traffic_profile_of(
            addrs.iter().map(|&a| balance_core::Access::read(a)),
            1,
        );
        let plain = StackDistance::profile_of(addrs.iter().copied());
        assert_eq!(*tp.profile(), plain, "read side must be bit-identical");
        assert_eq!(tp.written_lines(), 0);
        for m in 0..=90u64 {
            assert_eq!(tp.writebacks_at(m), 0, "no writes, no write-backs");
            assert_eq!(tp.read_misses_at(m), plain.misses_at(m));
        }
    }

    #[test]
    fn writebacks_are_monotone_non_increasing_with_flush_floor() {
        let trace = tagged_trace(1000, 100, 3);
        let tp = StackDistance::traffic_profile_of(trace.iter().copied(), 2);
        let mut prev = u64::MAX;
        for m in 0..=240u64 {
            let wb = tp.writebacks_at(m);
            assert!(wb <= prev, "write-backs grew from {prev} to {wb} at {m}");
            assert!(wb >= tp.written_lines(), "below the flush floor at {m}");
            prev = wb;
        }
        // Far beyond saturation only the end-of-run flush remains: one
        // write-back per distinct written line.
        assert_eq!(tp.writebacks_at(1 << 40), tp.written_lines());
        assert!(tp.written_lines() > 0, "the trace writes");
    }

    #[test]
    fn traffic_at_prices_both_streams_in_words() {
        let trace = tagged_trace(400, 32, 2);
        let lw = 4u64;
        let tp = StackDistance::traffic_profile_of(trace.iter().copied(), lw);
        let caps = [Words::new(8), Words::new(16), Words::new(64)];
        let t = tp.traffic_at(&caps);
        for (i, m) in caps.iter().enumerate() {
            assert_eq!(t.read_at(i), Some(tp.read_misses_at(m.get()) * lw));
            assert_eq!(t.writeback_at(i), Some(tp.writebacks_at(m.get()) * lw));
        }
        assert!(t.has_writebacks());
    }

    #[test]
    fn tagged_snapshot_roundtrips_on_both_backends() {
        let trace = tagged_trace(300, 40, 3);
        for cut in [0usize, 1, 7, 150, 299, 300] {
            for bounded in [false, true] {
                let mut engine = if bounded {
                    StackDistance::with_address_bound(40)
                } else {
                    StackDistance::new()
                };
                engine.observe_tagged_trace(trace[..cut].iter().copied(), 1);
                let mut restored = StackDistance::restore(&engine.snapshot()).unwrap();
                restored.observe_tagged_trace(trace[cut..].iter().copied(), 1);
                let resumed = restored.into_traffic_profile(1);
                let mut whole = if bounded {
                    StackDistance::with_address_bound(40)
                } else {
                    StackDistance::new()
                };
                whole.observe_tagged_trace(trace.iter().copied(), 1);
                assert_eq!(
                    resumed,
                    whole.into_traffic_profile(1),
                    "cut {cut} bounded {bounded}"
                );
            }
        }
    }

    #[test]
    fn tagged_snapshot_rejects_any_single_byte_flip() {
        let mut engine = StackDistance::with_address_bound(16);
        engine.observe_tagged_trace(tagged_trace(50, 16, 2), 1);
        let image = engine.snapshot();
        assert!(StackDistance::restore(&image).is_ok());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x10;
            assert!(
                StackDistance::restore(&bad).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn restore_rejects_v1_images() {
        use crate::checkpoint::{fnv1a, CheckpointError};
        // A KBSD v1 image differs only in its version field for untagged
        // engines — the restore path must refuse it cleanly, not
        // misinterpret it.
        let mut engine = StackDistance::new();
        engine.observe_trace([1u64, 2, 3, 1]);
        let image = engine.snapshot();
        let payload_len = image.len() - 8;
        let mut v1 = image[..payload_len].to_vec();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        let sum = fnv1a(&v1).to_le_bytes();
        v1.extend_from_slice(&sum);
        assert!(matches!(
            StackDistance::restore(&v1),
            Err(CheckpointError::UnsupportedVersion { found: 1 })
        ));
    }

    #[test]
    fn restore_rejects_dirty_payload_corruption() {
        use crate::checkpoint::{fnv1a, CheckpointError};
        // Swap the two open-chain pairs out of order and re-checksum: only
        // the structural validation can catch it.
        let mut engine = StackDistance::new();
        engine.observe_tagged(3, true);
        engine.observe_tagged(9, true);
        let image = engine.snapshot();
        let payload_len = image.len() - 8;
        let mut bad = image[..payload_len].to_vec();
        // Tail layout: .. wb_hist_len(=0) pairs(=2) (3,0) (9,0).
        let pair_bytes = bad.len() - 4 * 8;
        let (a, b) = bad[pair_bytes..].split_at_mut(16);
        a.swap_with_slice(&mut b[..16]);
        let sum = fnv1a(&bad).to_le_bytes();
        bad.extend_from_slice(&sum);
        assert!(matches!(
            StackDistance::restore(&bad),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "address bound")]
    fn direct_backend_rejects_out_of_bound_addresses() {
        let mut engine = StackDistance::with_address_bound(8);
        engine.observe(8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_address_bound_panics() {
        let _ = StackDistance::with_address_bound(0);
    }

    #[test]
    fn analytic_builder_matches_engine_structurally() {
        // Trace: 1 2 3 1 1 2 — distances: 3 (first 1-reuse), 1, 3.
        let trace = [1u64, 2, 3, 1, 1, 2];
        let engine = StackDistance::profile_of(trace.iter().copied());
        let mut a = AnalyticProfile::new();
        a.record_compulsory(3);
        a.record_class(3, 1); // classes out of order and split on purpose
        a.record_class(1, 1);
        a.record_class(3, 1); // duplicate distance: merged at finalization
        a.record_class(5, 0); // zero count: dropped
        assert_eq!(a.accesses(), 6);
        assert_eq!(a.compulsory(), 3);
        let built = a.into_profile();
        assert_eq!(built, engine);
        assert!(built.is_exact());
    }

    #[test]
    fn analytic_one_touch_matches_streamed_one_touch() {
        let built = AnalyticProfile::one_touch(5).into_profile();
        assert_eq!(built, CapacityProfile::one_touch(5));
        assert_eq!(built, StackDistance::profile_of([10u64, 11, 12, 13, 14]));
    }

    #[test]
    fn analytic_empty_profile_is_the_empty_trace() {
        let built = AnalyticProfile::new().into_profile();
        assert_eq!(built, StackDistance::profile_of([]));
        assert_eq!(built.misses_at(0), 0);
        assert_eq!(built.misses_at(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "stack distance")]
    fn analytic_zero_distance_class_panics() {
        AnalyticProfile::new().record_class(0, 3);
    }

    #[test]
    fn profile_queries_pin_zero_and_past_saturation_capacities() {
        // misses_at(0) is every access; past saturation only compulsory
        // misses remain. Holds for streamed and analytic construction.
        let trace = [1u64, 2, 1, 3, 2, 1];
        for profile in [StackDistance::profile_of(trace.iter().copied()), {
            let mut a = AnalyticProfile::new();
            a.record_compulsory(3);
            a.record_class(2, 1);
            a.record_class(3, 2);
            a.into_profile()
        }] {
            assert_eq!(profile.misses_at(0), 6);
            assert_eq!(profile.hits_at(0), 0);
            assert_eq!(profile.saturating_capacity(), 3);
            assert_eq!(profile.misses_at(3), 3);
            assert_eq!(profile.misses_at(u64::MAX), 3);
        }
    }

    #[test]
    fn reuse_classes_round_trip_the_profile() {
        let trace = [1u64, 2, 1, 3, 2, 1, 2, 2, 3];
        let profile = StackDistance::profile_of(trace.iter().copied());
        let mut rebuilt = AnalyticProfile::new();
        rebuilt.record_compulsory(profile.compulsory_misses());
        for (d, c) in profile.reuse_classes() {
            rebuilt.record_class(d, c);
        }
        assert_eq!(rebuilt.into_profile(), profile);
    }
}
