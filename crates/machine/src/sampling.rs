//! SHARDS-style spatially hash-sampled stack distances: approximate
//! [`CapacityProfile`]s for billion-address traces at a fraction of the
//! exact engine's cost.
//!
//! The construction follows Waldspurger, Park, Garthwaite & Ahmad,
//! *Efficient MRC Construction with SHARDS* (FAST 2015): fix a hash
//! function and keep an access **iff its address hashes into the sample**
//! — here, `splitmix64(addr) & (2^shift − 1) == 0`, a rate of
//! `R = 2^−shift`. Because the filter is a pure function of the address,
//! either *every* access to an address is kept or *none* is, so the kept
//! sub-trace preserves reuse structure exactly: each sampled access's
//! measured stack distance counts only sampled intervening addresses,
//! which is `≈ R ×` its true distance, and sampled hit counts are
//! `≈ R ×` true hit counts. Queries on the resulting profile re-scale
//! both axes by `1/R = 2^shift` (see [`CapacityProfile::hits_at`]); the
//! total access count is tracked exactly, since skipping an access still
//! counts it.
//!
//! The error is statistical, not worst-case: SHARDS reports well under
//! 2% mean absolute error at rates as low as `R = 0.001` on real
//! workloads. This repo pins an empirical bound by property test on the
//! registry kernels (sampled-vs-exact relative IO error, shrinking as
//! `R → 1`), and experiment E23 reports the measured max relative error
//! on a 10⁹-address trace. `shift = 0` keeps every address: the profile
//! degenerates to the exact engine's, bit for bit.

use crate::stackdist::{CapacityProfile, StackDistance};

/// The splitmix64 finalizer (Vigna / Steele et al.) — a cheap, fixed,
/// statistically strong 64-bit mixer. Used as the sampling hash so the
/// sampled address set is deterministic across runs, engines and
/// machines.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Largest supported sampling-rate exponent (rate `2^-32`): beyond this
/// the expected sample is empty for any address space this repo models.
pub const MAX_SAMPLE_SHIFT: u32 = 32;

/// The streaming sampled engine: a [`StackDistance`] fed only the
/// addresses that hash into the sample, plus an exact count of all
/// accesses. Mirrors the exact engine's API.
///
/// # Examples
///
/// ```
/// use balance_machine::SampledStackDistance;
///
/// // shift = 0 keeps every address: exact, bit for bit.
/// let trace: Vec<u64> = (0..400u64).map(|i| (i * 7) % 50).collect();
/// let mut sampled = SampledStackDistance::new(0);
/// sampled.observe_trace(trace.iter().copied());
/// let p = sampled.into_profile();
/// assert!(p.is_exact());
/// assert_eq!(p.misses_at(16), balance_machine::StackDistance::profile_of(trace).misses_at(16));
/// ```
#[derive(Debug, Clone)]
pub struct SampledStackDistance {
    engine: StackDistance,
    mask: u64,
    shift: u32,
    accesses: u64,
}

impl SampledStackDistance {
    /// A sampled engine at rate `2^-shift` over an unbounded address
    /// space (hash-indexed last-access table).
    ///
    /// # Panics
    ///
    /// Panics if `shift > MAX_SAMPLE_SHIFT`.
    #[must_use]
    pub fn new(shift: u32) -> Self {
        assert!(
            shift <= MAX_SAMPLE_SHIFT,
            "sampling shift {shift} exceeds {MAX_SAMPLE_SHIFT}"
        );
        SampledStackDistance {
            engine: StackDistance::new(),
            mask: (1u64 << shift) - 1,
            shift,
            accesses: 0,
        }
    }

    /// A sampled engine at rate `2^-shift` whose addresses are promised
    /// to lie in `[0, addr_bound)` (direct-indexed last-access table).
    ///
    /// # Panics
    ///
    /// As [`SampledStackDistance::new`] and
    /// [`StackDistance::with_address_bound`].
    #[must_use]
    pub fn with_address_bound(shift: u32, addr_bound: u64) -> Self {
        assert!(
            shift <= MAX_SAMPLE_SHIFT,
            "sampling shift {shift} exceeds {MAX_SAMPLE_SHIFT}"
        );
        SampledStackDistance {
            engine: StackDistance::with_address_bound(addr_bound),
            mask: (1u64 << shift) - 1,
            shift,
            accesses: 0,
        }
    }

    /// Observes one word access: counted always, fed to the inner engine
    /// only when the address hashes into the sample.
    pub fn observe(&mut self, addr: u64) {
        self.accesses += 1;
        if splitmix64(addr) & self.mask == 0 {
            self.engine.observe(addr);
        }
    }

    /// Feeds a whole address trace (streaming, O(1) extra memory).
    pub fn observe_trace(&mut self, addrs: impl IntoIterator<Item = u64>) {
        for a in addrs {
            self.observe(a);
        }
    }

    /// Accesses observed so far (all of them, sampled or not).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Addresses that hashed into the sample so far (distinct).
    #[must_use]
    pub fn sampled_distinct(&self) -> u64 {
        self.engine.distinct()
    }

    /// Finalizes into an approximate [`CapacityProfile`] carrying the
    /// sampling rate ([`CapacityProfile::is_exact`] returns `false` for
    /// `shift > 0`).
    #[must_use]
    pub fn into_profile(self) -> CapacityProfile {
        self.engine.into_sampled_profile(self.accesses, self.shift)
    }
}

/// Replays a whole trace through a fresh sampled engine at rate
/// `2^-shift` (hash-indexed backend).
///
/// # Panics
///
/// As [`SampledStackDistance::new`].
#[must_use]
pub fn sampled_profile_of(
    addrs: impl IntoIterator<Item = u64>,
    shift: u32,
) -> CapacityProfile {
    let mut engine = SampledStackDistance::new(shift);
    engine.observe_trace(addrs);
    engine.into_profile()
}

/// As [`sampled_profile_of`], with the direct-indexed backend for traces
/// whose addresses lie in `[0, addr_bound)`.
///
/// # Panics
///
/// As [`SampledStackDistance::with_address_bound`].
#[must_use]
pub fn sampled_profile_of_bounded(
    addrs: impl IntoIterator<Item = u64>,
    addr_bound: u64,
    shift: u32,
) -> CapacityProfile {
    let mut engine = SampledStackDistance::with_address_bound(shift, addr_bound);
    engine.observe_trace(addrs);
    engine.into_profile()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_trace(rounds: u64, working_set: u64) -> Vec<u64> {
        // Re-touches a working set repeatedly with a drifting window —
        // a dense reuse spectrum, like the blocked kernels the repo models.
        let mut t = Vec::new();
        for r in 0..rounds {
            for a in 0..working_set {
                t.push((a + r / 4) % (working_set + working_set / 3));
            }
        }
        t
    }

    /// Max miss-ratio error over a capacity ladder — SHARDS' own error
    /// metric: |misses_approx − misses_exact| / accesses, which is the
    /// curve distance that matters and stays meaningful near saturation
    /// (where relative IO error divides by a vanishing denominator).
    fn max_miss_ratio_err(exact: &CapacityProfile, approx: &CapacityProfile) -> f64 {
        let total = exact.accesses() as f64;
        let mut worst = 0.0f64;
        for k in 0..12u32 {
            let m = 1u64 << k;
            let e = exact.io_at(m) as f64;
            let a = approx.io_at(m) as f64;
            worst = worst.max((a - e).abs() / total);
        }
        worst
    }

    #[test]
    fn shift_zero_is_bit_exact() {
        let trace = blocked_trace(64, 300);
        let exact = StackDistance::profile_of(trace.iter().copied());
        let sampled = sampled_profile_of(trace.iter().copied(), 0);
        assert_eq!(exact, sampled);
        assert!(sampled.is_exact());
        assert_eq!(sampled.sample_shift(), 0);
        assert!((sampled.sampling_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sampled_profile_reports_its_rate_and_true_accesses() {
        let trace = blocked_trace(32, 500);
        let p = sampled_profile_of_bounded(trace.iter().copied(), 700, 3);
        assert!(!p.is_exact());
        assert_eq!(p.sample_shift(), 3);
        assert!((p.sampling_rate() - 0.125).abs() < 1e-12);
        // Access count is exact even though only ~1/8 of addresses fed
        // the engine.
        assert_eq!(p.accesses(), trace.len() as u64);
        assert_eq!(p.misses_at(0), trace.len() as u64);
    }

    #[test]
    fn error_shrinks_toward_exact_as_rate_rises() {
        let trace = blocked_trace(48, 800);
        let exact = StackDistance::profile_of(trace.iter().copied());
        let err_coarse = max_miss_ratio_err(
            &exact,
            &sampled_profile_of(trace.iter().copied(), 5),
        );
        let err_fine = max_miss_ratio_err(
            &exact,
            &sampled_profile_of(trace.iter().copied(), 1),
        );
        let err_exact = max_miss_ratio_err(
            &exact,
            &sampled_profile_of(trace.iter().copied(), 0),
        );
        assert_eq!(err_exact, 0.0);
        // R = 1/2 must beat R = 1/32 on this dense-reuse trace (generous
        // slack keeps the assertion about the trend, not the noise).
        assert!(
            err_fine <= err_coarse + 0.02,
            "err(R=1/2) = {err_fine}, err(R=1/32) = {err_coarse}"
        );
        // And at R = 1/2 the curve is genuinely close.
        assert!(err_fine < 0.06, "err(R=1/2) = {err_fine}");
    }

    #[test]
    fn distinct_estimate_tracks_the_true_count() {
        // 4096 distinct addresses, touched twice each.
        let trace: Vec<u64> = (0..4096u64).chain(0..4096).collect();
        let p = sampled_profile_of(trace.iter().copied(), 4);
        let est = p.compulsory_misses() as f64;
        assert!(
            (est - 4096.0).abs() / 4096.0 < 0.25,
            "distinct estimate {est} vs 4096"
        );
    }

    #[test]
    fn splitmix64_is_fixed() {
        // The sample set is part of the repo's reproducibility contract:
        // pin the mixer against accidental constant drift.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_ne!(splitmix64(2), splitmix64(3));
    }

    #[test]
    fn empty_trace_sampled_profile_is_all_zero() {
        let p = sampled_profile_of(std::iter::empty(), 6);
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.misses_at(1024), 0);
        assert_eq!(p.compulsory_misses(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_shift_panics() {
        let _ = SampledStackDistance::new(MAX_SAMPLE_SHIFT + 1);
    }
}
