//! Crash-safe on-disk store for capacity and traffic profiles.
//!
//! A [`CapacityProfile`] is the durable artifact of this whole repro: a
//! few hundred breakpoints that answer `IO(M)` for every capacity without
//! ever replaying the trace again (Kung 1986's point, productized per
//! ROADMAP item 2). This module gives those artifacts a storage contract
//! in the spirit of Hua's *first principle of big memory systems* —
//! checksummed, versioned, atomically published data — so that torn
//! writes, bit rot, out-of-space failures, and version skew are
//! **detected and quarantined**, never served as numbers:
//!
//! * the **`KBCP` image** ([`encode_profile`] / [`decode_profile`]): a
//!   versioned little-endian binary encoding of one profile with a
//!   provenance header (kernel, problem size, engine, sampling rate,
//!   traffic model) and a trailing FNV-1a checksum — the same discipline
//!   as the `KBSD` checkpoint format in [`crate::checkpoint`];
//! * the **[`ProfileStore`]**: a content-addressed directory of `KBCP`
//!   images (file name = FNV-1a digest of the entry's [`ProfileKey`])
//!   with atomic temp-file + rename publishes, a plain-text manifest,
//!   and an [`ProfileStore::fsck`] scrub that quarantines anything the
//!   decoder rejects instead of deleting or serving it;
//! * **fault injection** threaded through the publish path
//!   ([`ProfileStore::put_with`] + [`crate::faults::FaultPlan`]): seeded
//!   torn-write, bit-flip, `ENOSPC`, and stale-version faults, so the
//!   detection and repair paths are continuously tested rather than
//!   trusted.
//!
//! The decoder re-validates every structural invariant (monotone
//! breakpoints, exactness accounting, ledger totals) after the checksum,
//! so a wrong profile cannot be constructed from a valid-looking image.
//! Repair — recomputing a quarantined entry down the analytic → exact →
//! sampled ladder — lives one layer up, in `balance-kernels`'
//! `profservice`, which knows how to rerun kernels; this module only
//! promises that a bad entry is reported as [`Lookup::Quarantined`], and
//! that [`ProfileStore::put`] of the repaired artifact is atomic.
//!
//! The store is single-writer by design (a CLI build or serve session);
//! concurrent writers would race on the manifest rewrite.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checkpoint::{fnv1a, ByteReader, ByteWriter, CheckpointError};
use crate::faults::{FaultPlan, StoreFault};
use crate::sampling::MAX_SAMPLE_SHIFT;
use crate::stackdist::{CapacityProfile, TrafficProfile};

/// Magic prefix of a profile image ("Kung Balance Capacity Profile").
pub const PROFILE_MAGIC: [u8; 4] = *b"KBCP";

/// Current profile image format version.
pub const PROFILE_VERSION: u16 = 1;

/// File extension of a published profile image.
const IMAGE_EXT: &str = "kbcp";

/// Name of the store's plain-text index file.
const MANIFEST: &str = "MANIFEST";

/// Subdirectory where rejected images are preserved for post-mortems.
const QUARANTINE: &str = "quarantine";

/// Why a profile image was rejected. Mirrors
/// [`CheckpointError`][crate::checkpoint::CheckpointError] variant for
/// variant (the two formats share their integrity discipline) but reports
/// in `KBCP` terms.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProfileImageError {
    /// The image is shorter than its header + checksum.
    Truncated {
        /// Bytes actually present.
        len: usize,
    },
    /// The image does not start with [`PROFILE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The image's format version is not [`PROFILE_VERSION`] — written by
    /// a different build, so its layout cannot be trusted.
    UnsupportedVersion {
        /// The version found in the image.
        found: u16,
    },
    /// The trailing FNV-1a checksum does not match the payload (torn
    /// write or bit rot).
    ChecksumMismatch {
        /// Checksum stored in the image.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The image passed the checksum but violates a structural invariant
    /// (e.g. non-monotone breakpoints, exactness accounting that does not
    /// balance, a ledger total that disagrees with its steps).
    Corrupt {
        /// The violated invariant.
        reason: &'static str,
    },
    /// Filesystem failure while reading the image.
    Io(io::Error),
}

impl fmt::Display for ProfileImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileImageError::Truncated { len } => {
                write!(f, "profile image truncated: only {len} bytes")
            }
            ProfileImageError::BadMagic { found } => {
                write!(f, "not a profile image: bad magic {found:?}")
            }
            ProfileImageError::UnsupportedVersion { found } => write!(
                f,
                "unsupported profile image version {found} (this build reads KBCP v{PROFILE_VERSION})"
            ),
            ProfileImageError::ChecksumMismatch { stored, computed } => write!(
                f,
                "profile image checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ProfileImageError::Corrupt { reason } => write!(f, "corrupt profile image: {reason}"),
            ProfileImageError::Io(e) => write!(f, "profile image I/O failure: {e}"),
        }
    }
}

impl std::error::Error for ProfileImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ProfileImageError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Truncated { len } => ProfileImageError::Truncated { len },
            CheckpointError::BadMagic { found } => ProfileImageError::BadMagic { found },
            CheckpointError::UnsupportedVersion { found } => {
                ProfileImageError::UnsupportedVersion { found }
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                ProfileImageError::ChecksumMismatch { stored, computed }
            }
            CheckpointError::Corrupt { reason } => ProfileImageError::Corrupt { reason },
            CheckpointError::Io(e) => ProfileImageError::Io(e),
        }
    }
}

/// The identity of a store entry: which measured curve this is. Engine
/// and sampling rate are *provenance* (how the curve was obtained), not
/// identity, so a repaired entry overwrites its predecessor's address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    /// Kernel name as reported by `Kernel::name()`.
    pub kernel: String,
    /// Problem size the trace was generated at.
    pub n: u64,
    /// Transfer granularity in words (1 = the paper's word model).
    pub line_words: u64,
    /// Whether the entry carries the dirty write-back ledger
    /// (a [`TrafficProfile`]) or a plain read curve
    /// (a [`CapacityProfile`]).
    pub writebacks: bool,
}

impl ProfileKey {
    /// Key of a word-granular capacity profile.
    #[must_use]
    pub fn word(kernel: impl Into<String>, n: u64) -> ProfileKey {
        ProfileKey {
            kernel: kernel.into(),
            n,
            line_words: 1,
            writebacks: false,
        }
    }

    /// Key of a device-real (line-granular, write-back-ledgered) traffic
    /// profile.
    #[must_use]
    pub fn device(kernel: impl Into<String>, n: u64, line_words: u64) -> ProfileKey {
        ProfileKey {
            kernel: kernel.into(),
            n,
            line_words,
            writebacks: true,
        }
    }

    /// FNV-1a digest of the canonical key encoding — the entry's content
    /// address within the store.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.kernel.len() + 18);
        bytes.extend_from_slice(self.kernel.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&self.n.to_le_bytes());
        bytes.extend_from_slice(&self.line_words.to_le_bytes());
        bytes.push(u8::from(self.writebacks));
        fnv1a(&bytes)
    }

    /// The image file name this key is published under.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{:016x}.{IMAGE_EXT}", self.digest())
    }

    /// One manifest line: digest, then the human-readable key fields.
    fn manifest_line(&self) -> String {
        format!(
            "{:016x} {} {} {} {}",
            self.digest(),
            self.kernel,
            self.n,
            self.line_words,
            u8::from(self.writebacks)
        )
    }

    /// Parses a manifest line, returning `None` for malformed or
    /// digest-inconsistent lines (fsck rewrites them away).
    fn parse_manifest_line(line: &str) -> Option<ProfileKey> {
        let mut it = line.split_whitespace();
        let digest = u64::from_str_radix(it.next()?, 16).ok()?;
        let key = ProfileKey {
            kernel: it.next()?.to_string(),
            n: it.next()?.parse().ok()?,
            line_words: it.next()?.parse().ok()?,
            writebacks: match it.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            },
        };
        (it.next().is_none() && key.digest() == digest).then_some(key)
    }
}

impl fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} n={}", self.kernel, self.n)?;
        if self.line_words != 1 || self.writebacks {
            write!(f, " line_words={}", self.line_words)?;
            if self.writebacks {
                write!(f, " +writebacks")?;
            }
        }
        Ok(())
    }
}

/// The provenance header of one profile image: identity
/// ([`ProfileMeta::key`]) plus how the curve was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileMeta {
    /// Kernel name as reported by `Kernel::name()`.
    pub kernel: String,
    /// Problem size the trace was generated at.
    pub n: u64,
    /// CLI spelling of the engine that produced the curve (e.g.
    /// `analytic`, `stackdist`, `sampled:4`).
    pub engine: String,
    /// Sampling-rate exponent of the payload (0 = exact); must agree
    /// with the payload's own exponent, which the decoder checks.
    pub sample_shift: u32,
    /// Transfer granularity in words (1 = the paper's word model).
    pub line_words: u64,
    /// Whether the payload carries the dirty write-back ledger.
    pub writebacks: bool,
}

impl ProfileMeta {
    /// The store identity of this entry (engine and rate stripped).
    #[must_use]
    pub fn key(&self) -> ProfileKey {
        ProfileKey {
            kernel: self.kernel.clone(),
            n: self.n,
            line_words: self.line_words,
            writebacks: self.writebacks,
        }
    }
}

/// The profile carried by an image: a plain read curve or the
/// device-real dual-ledger twin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfilePayload {
    /// A (possibly sampled) read/miss curve.
    Capacity(CapacityProfile),
    /// A line-granular read + write-back dual ledger (always exact).
    Traffic(TrafficProfile),
}

impl ProfilePayload {
    /// The read/fetch curve, whichever payload kind carries it.
    #[must_use]
    pub fn profile(&self) -> &CapacityProfile {
        match self {
            ProfilePayload::Capacity(p) => p,
            ProfilePayload::Traffic(t) => t.profile(),
        }
    }

    /// Whether the payload is exact (unsampled) — what the
    /// `measured_balance_memory` fast path requires.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.profile().is_exact()
    }
}

/// Encodes one profile as a `KBCP` image (header, payload, trailing
/// FNV-1a checksum). The inverse of [`decode_profile`].
#[must_use]
pub fn encode_profile(meta: &ProfileMeta, payload: &ProfilePayload) -> Vec<u8> {
    encode_with_version(meta, payload, PROFILE_VERSION)
}

/// [`encode_profile`] with an explicit version stamp — the hook the
/// stale-version fault uses to forge an image from "a newer build".
fn encode_with_version(meta: &ProfileMeta, payload: &ProfilePayload, version: u16) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(128 + 16 * payload.profile().raw_parts().2.len());
    w.bytes(&PROFILE_MAGIC);
    w.u16(version);
    w.u8(match payload {
        ProfilePayload::Capacity(_) => 0,
        ProfilePayload::Traffic(_) => 1,
    });
    let kernel = meta.kernel.as_bytes();
    w.u16(kernel.len() as u16);
    w.bytes(kernel);
    w.u64(meta.n);
    let engine = meta.engine.as_bytes();
    w.u16(engine.len() as u16);
    w.bytes(engine);
    w.u64(u64::from(meta.sample_shift));
    w.u64(meta.line_words);
    w.u8(u8::from(meta.writebacks));
    match payload {
        ProfilePayload::Capacity(p) => encode_capacity(&mut w, p),
        ProfilePayload::Traffic(t) => {
            let (profile, _line_words, wb_steps, closed, open) = t.raw_parts();
            encode_capacity(&mut w, profile);
            w.u64(wb_steps.len() as u64);
            for &(d, c) in wb_steps {
                w.u64(d);
                w.u64(c);
            }
            w.u64(closed);
            w.u64(open);
        }
    }
    w.finish()
}

fn encode_capacity(w: &mut ByteWriter, p: &CapacityProfile) {
    let (accesses, compulsory, steps, _shift) = p.raw_parts();
    w.u64(accesses);
    w.u64(compulsory);
    w.u64(steps.len() as u64);
    for &(d, h) in steps {
        w.u64(d);
        w.u64(h);
    }
}

/// Decodes and fully validates a `KBCP` image: checksum first, then
/// header, then every structural invariant of the payload — so a wrong
/// profile cannot be constructed from bytes that merely look plausible.
///
/// # Errors
///
/// A typed [`ProfileImageError`] for any truncation, foreign magic,
/// version skew, checksum mismatch, or structural violation. Never
/// panics on arbitrary input.
pub fn decode_profile(bytes: &[u8]) -> Result<(ProfileMeta, ProfilePayload), ProfileImageError> {
    let mut r = ByteReader::verified(bytes).map_err(ProfileImageError::from)?;
    let magic: [u8; 4] = r.array().map_err(ProfileImageError::from)?;
    if magic != PROFILE_MAGIC {
        return Err(ProfileImageError::BadMagic { found: magic });
    }
    let version = r.u16().map_err(ProfileImageError::from)?;
    if version != PROFILE_VERSION {
        return Err(ProfileImageError::UnsupportedVersion { found: version });
    }
    let kind = r.u8().map_err(ProfileImageError::from)?;
    if kind > 1 {
        return Err(ProfileImageError::Corrupt {
            reason: "unknown payload kind",
        });
    }
    let kernel = read_string(&mut r)?;
    let n = r.u64().map_err(ProfileImageError::from)?;
    let engine = read_string(&mut r)?;
    let sample_shift = r.u64().map_err(ProfileImageError::from)?;
    if sample_shift > u64::from(MAX_SAMPLE_SHIFT) {
        return Err(ProfileImageError::Corrupt {
            reason: "sampling exponent beyond the engine's maximum",
        });
    }
    let sample_shift = sample_shift as u32;
    let line_words = r.u64().map_err(ProfileImageError::from)?;
    if line_words == 0 || !line_words.is_power_of_two() {
        return Err(ProfileImageError::Corrupt {
            reason: "line size must be a positive power of two",
        });
    }
    let writebacks = match r.u8().map_err(ProfileImageError::from)? {
        0 => false,
        1 => true,
        _ => {
            return Err(ProfileImageError::Corrupt {
                reason: "write-back flag must be 0 or 1",
            })
        }
    };
    if (kind == 1) != writebacks {
        return Err(ProfileImageError::Corrupt {
            reason: "payload kind disagrees with the write-back flag",
        });
    }
    let meta = ProfileMeta {
        kernel,
        n,
        engine,
        sample_shift,
        line_words,
        writebacks,
    };
    let profile = decode_capacity(&mut r, sample_shift)?;
    let payload = if kind == 0 {
        ProfilePayload::Capacity(profile)
    } else {
        if sample_shift != 0 {
            return Err(ProfileImageError::Corrupt {
                reason: "traffic profiles are never sampled",
            });
        }
        let wb_len = r.u64().map_err(ProfileImageError::from)?;
        let wb_steps = read_steps(&mut r, wb_len)?;
        let closed = r.u64().map_err(ProfileImageError::from)?;
        let open = r.u64().map_err(ProfileImageError::from)?;
        let ledgered = wb_steps.last().map_or(0, |&(_, c)| c);
        if ledgered != closed {
            return Err(ProfileImageError::Corrupt {
                reason: "write-back ledger total disagrees with its steps",
            });
        }
        ProfilePayload::Traffic(TrafficProfile::from_raw_parts(
            profile,
            meta.line_words,
            wb_steps,
            closed,
            open,
        ))
    };
    r.expect_end().map_err(ProfileImageError::from)?;
    Ok((meta, payload))
}

fn read_string(r: &mut ByteReader<'_>) -> Result<String, ProfileImageError> {
    let len = r.u16().map_err(ProfileImageError::from)?;
    let mut bytes = Vec::with_capacity(usize::from(len));
    for _ in 0..len {
        bytes.push(r.u8().map_err(ProfileImageError::from)?);
    }
    String::from_utf8(bytes).map_err(|_| ProfileImageError::Corrupt {
        reason: "header string is not UTF-8",
    })
}

/// Reads `len` breakpoint pairs and enforces strict monotonicity in both
/// coordinates (the sparse-histogram invariant every query relies on).
fn read_steps(r: &mut ByteReader<'_>, len: u64) -> Result<Vec<(u64, u64)>, ProfileImageError> {
    let flat = r.u64_vec(len.saturating_mul(2)).map_err(ProfileImageError::from)?;
    let steps: Vec<(u64, u64)> = flat.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let mut prev: Option<(u64, u64)> = None;
    for &(d, c) in &steps {
        if c == 0 {
            return Err(ProfileImageError::Corrupt {
                reason: "breakpoint with a zero cumulative count",
            });
        }
        if let Some((pd, pc)) = prev {
            if d <= pd || c <= pc {
                return Err(ProfileImageError::Corrupt {
                    reason: "breakpoints must strictly increase in both coordinates",
                });
            }
        }
        prev = Some((d, c));
    }
    Ok(steps)
}

fn decode_capacity(
    r: &mut ByteReader<'_>,
    shift: u32,
) -> Result<CapacityProfile, ProfileImageError> {
    let accesses = r.u64().map_err(ProfileImageError::from)?;
    let compulsory = r.u64().map_err(ProfileImageError::from)?;
    if compulsory > accesses {
        return Err(ProfileImageError::Corrupt {
            reason: "more compulsory misses than accesses",
        });
    }
    let len = r.u64().map_err(ProfileImageError::from)?;
    let steps = read_steps(r, len)?;
    if shift == 0 {
        // Exact profiles account for every access: reuses + compulsory
        // misses = accesses. Sampled profiles store raw sampled counts,
        // which this identity deliberately does not bind.
        let reuses = steps.last().map_or(0, |&(_, h)| h);
        if reuses != accesses - compulsory {
            return Err(ProfileImageError::Corrupt {
                reason: "exact profile does not account for every access",
            });
        }
    }
    Ok(CapacityProfile::from_raw_parts(
        accesses, compulsory, steps, shift,
    ))
}

/// A store I/O failure, with the path that failed.
#[derive(Debug)]
pub struct StoreError {
    /// The file or directory the operation touched.
    pub path: PathBuf,
    /// The underlying filesystem error.
    pub source: io::Error,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile store I/O failure at {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The result of one [`ProfileStore::get`].
#[derive(Debug)]
pub enum Lookup {
    /// A validated entry was served.
    Hit {
        /// The entry's provenance header.
        meta: ProfileMeta,
        /// The decoded profile.
        payload: ProfilePayload,
    },
    /// No entry is published under this key.
    Miss,
    /// An entry existed but failed validation; it has been moved to the
    /// quarantine directory (never deleted, never served) and its key
    /// dropped from the manifest. The caller should repair by
    /// recomputing.
    Quarantined {
        /// Why the image was rejected.
        error: ProfileImageError,
    },
}

/// What one [`ProfileStore::fsck`] scrub found and did.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Entries that decoded and validated cleanly.
    pub valid: usize,
    /// Valid images that were missing from the manifest (e.g. a build
    /// killed between image publish and manifest rewrite) and have been
    /// adopted into it.
    pub adopted: usize,
    /// Images that failed validation, with the rejection reason; each
    /// has been moved to the quarantine directory.
    pub quarantined: Vec<(String, String)>,
    /// Manifest entries whose image file is gone; dropped from the
    /// manifest.
    pub missing: Vec<ProfileKey>,
    /// Leftover temp files from interrupted publishes, removed.
    pub cleaned_tmp: usize,
}

impl FsckReport {
    /// Whether the scrub found nothing to repair.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.quarantined.is_empty() && self.missing.is_empty() && self.cleaned_tmp == 0
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fsck: {} valid, {} adopted, {} quarantined, {} missing, {} temp cleaned",
            self.valid,
            self.adopted,
            self.quarantined.len(),
            self.missing.len(),
            self.cleaned_tmp
        )?;
        for (file, reason) in &self.quarantined {
            writeln!(f, "  quarantined {file}: {reason}")?;
        }
        for key in &self.missing {
            writeln!(f, "  missing image for {key}")?;
        }
        Ok(())
    }
}

/// A content-addressed directory of `KBCP` profile images with a
/// manifest, atomic publishes, self-quarantining reads, and an fsck
/// scrub. See the module docs for the durability contract.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
}

impl ProfileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ProfileStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError {
            path: dir.clone(),
            source,
        })?;
        Ok(ProfileStore { dir })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where rejected images are preserved.
    #[must_use]
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE)
    }

    /// Publishes one entry atomically (temp file + rename, then manifest
    /// rewrite). An existing entry under the same key is replaced.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the image or manifest cannot be persisted.
    pub fn put(&self, meta: &ProfileMeta, payload: &ProfilePayload) -> Result<(), StoreError> {
        self.put_with(meta, payload, &FaultPlan::none())
    }

    /// [`ProfileStore::put`] with a [`FaultPlan`] threaded through the
    /// publish path. An armed store fault is consumed here:
    ///
    /// * **torn write** — only the first half of the image reaches the
    ///   final path, and the writer still believes it succeeded (the
    ///   manifest is updated), as after a power loss;
    /// * **bit flip** — one byte of the image is flipped after
    ///   checksumming, then published normally (silent media corruption);
    /// * **`ENOSPC`** — the publish fails before anything durable
    ///   changes, and the error is returned;
    /// * **stale version** — the image is stamped with a future format
    ///   version and published normally (version skew).
    ///
    /// Every case except `ENOSPC` must be caught later by
    /// [`ProfileStore::get`] / [`ProfileStore::fsck`] — which the
    /// proptests assert.
    ///
    /// # Errors
    ///
    /// [`StoreError`] for real (or injected `ENOSPC`) filesystem
    /// failures.
    pub fn put_with(
        &self,
        meta: &ProfileMeta,
        payload: &ProfilePayload,
        faults: &FaultPlan,
    ) -> Result<(), StoreError> {
        let key = meta.key();
        let path = self.dir.join(key.file_name());
        match faults.take_store_fault() {
            Some(StoreFault::Enospc) => {
                return Err(StoreError {
                    path,
                    source: io::Error::new(
                        io::ErrorKind::StorageFull,
                        "injected ENOSPC: no space left on device",
                    ),
                });
            }
            Some(StoreFault::TornWrite) => {
                let bytes = encode_profile(meta, payload);
                let torn = &bytes[..bytes.len() / 2];
                fs::write(&path, torn).map_err(|source| StoreError {
                    path: path.clone(),
                    source,
                })?;
            }
            Some(StoreFault::BitFlip) => {
                let mut bytes = encode_profile(meta, payload);
                let pos = (fnv1a(&bytes) % bytes.len() as u64) as usize;
                bytes[pos] ^= 0x40;
                self.publish_atomic(&path, &bytes)?;
            }
            Some(StoreFault::StaleVersion) => {
                let bytes = encode_with_version(meta, payload, PROFILE_VERSION + 1);
                self.publish_atomic(&path, &bytes)?;
            }
            None => {
                let bytes = encode_profile(meta, payload);
                self.publish_atomic(&path, &bytes)?;
            }
        }
        self.manifest_update(|keys| {
            keys.insert(key.file_name(), key.clone());
        })
    }

    /// Looks up one entry, validating it end to end. A failed validation
    /// quarantines the image (moved, never deleted) and reports
    /// [`Lookup::Quarantined`]; it is never served.
    ///
    /// # Errors
    ///
    /// [`StoreError`] for filesystem failures other than "no such
    /// entry".
    pub fn get(&self, key: &ProfileKey) -> Result<Lookup, StoreError> {
        let name = key.file_name();
        let path = self.dir.join(&name);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Lookup::Miss),
            Err(source) => return Err(StoreError { path, source }),
        };
        match decode_profile(&bytes) {
            Ok((meta, payload)) if meta.key() == *key => Ok(Lookup::Hit { meta, payload }),
            Ok(_) => {
                let error = ProfileImageError::Corrupt {
                    reason: "stored header does not match its content address",
                };
                self.quarantine_entry(&name)?;
                Ok(Lookup::Quarantined { error })
            }
            Err(error) => {
                self.quarantine_entry(&name)?;
                Ok(Lookup::Quarantined { error })
            }
        }
    }

    /// Every key the manifest currently lists, in stable (digest) order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the manifest cannot be read.
    pub fn keys(&self) -> Result<Vec<ProfileKey>, StoreError> {
        Ok(self.read_manifest()?.into_values().collect())
    }

    /// Scrubs the whole store: removes leftover temp files, validates
    /// every image, quarantines anything the decoder rejects, adopts
    /// valid orphan images (published but not yet in the manifest — a
    /// killed build), drops manifest entries whose image is gone, and
    /// rewrites the manifest to exactly the valid set.
    ///
    /// # Errors
    ///
    /// [`StoreError`] for filesystem failures during the scrub.
    pub fn fsck(&self) -> Result<FsckReport, StoreError> {
        let mut report = FsckReport::default();
        let mut manifest = self.read_manifest()?;
        let mut valid: BTreeMap<String, ProfileKey> = BTreeMap::new();
        let entries = fs::read_dir(&self.dir).map_err(|source| StoreError {
            path: self.dir.clone(),
            source,
        })?;
        let mut images = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| StoreError {
                path: self.dir.clone(),
                source,
            })?;
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if name.ends_with(".tmp") {
                let path = entry.path();
                fs::remove_file(&path).map_err(|source| StoreError { path, source })?;
                report.cleaned_tmp += 1;
            } else if name.ends_with(&format!(".{IMAGE_EXT}")) {
                images.push(name);
            }
        }
        images.sort();
        for name in images {
            let path = self.dir.join(&name);
            let bytes = fs::read(&path).map_err(|source| StoreError {
                path: path.clone(),
                source,
            })?;
            match decode_profile(&bytes) {
                Ok((meta, _payload)) if meta.key().file_name() == name => {
                    let key = meta.key();
                    if !manifest.contains_key(&name) {
                        report.adopted += 1;
                    }
                    report.valid += 1;
                    valid.insert(name, key);
                }
                Ok(_) => {
                    self.quarantine_entry(&name)?;
                    report.quarantined.push((
                        name,
                        "stored header does not match its content address".to_string(),
                    ));
                }
                Err(error) => {
                    self.quarantine_entry(&name)?;
                    report.quarantined.push((name, error.to_string()));
                }
            }
        }
        manifest.retain(|name, key| {
            let present = valid.contains_key(name);
            if !present {
                report.missing.push(key.clone());
            }
            present
        });
        // `missing` should only report entries that vanished, not ones
        // fsck itself just quarantined (those are already accounted for).
        let quarantined: Vec<&String> = report.quarantined.iter().map(|(n, _)| n).collect();
        report.missing.retain(|k| {
            let name = k.file_name();
            !quarantined.iter().any(|q| **q == name)
        });
        self.write_manifest(&valid)?;
        Ok(report)
    }

    /// File names currently held in quarantine (empty when the
    /// quarantine directory does not exist).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the quarantine directory cannot be listed.
    pub fn quarantined_files(&self) -> Result<Vec<String>, StoreError> {
        let qdir = self.quarantine_dir();
        let entries = match fs::read_dir(&qdir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(source) => return Err(StoreError { path: qdir, source }),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| StoreError {
                path: qdir.clone(),
                source,
            })?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Temp-file + rename publish, the same discipline as
    /// [`crate::checkpoint::write_atomic`] but with a store-local temp
    /// suffix so fsck can recognize and clean interrupted publishes.
    fn publish_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = path.with_extension(format!("{IMAGE_EXT}.tmp"));
        fs::write(&tmp, bytes).map_err(|source| StoreError {
            path: tmp.clone(),
            source,
        })?;
        fs::rename(&tmp, path).map_err(|source| StoreError {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Moves a rejected image into the quarantine directory, never
    /// clobbering an earlier quarantined artifact (numeric suffixes).
    fn quarantine_entry(&self, name: &str) -> Result<(), StoreError> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir).map_err(|source| StoreError {
            path: qdir.clone(),
            source,
        })?;
        let mut dest = qdir.join(name);
        let mut i = 0u32;
        while dest.exists() {
            i += 1;
            dest = qdir.join(format!("{name}.{i}"));
        }
        let src = self.dir.join(name);
        fs::rename(&src, &dest).map_err(|source| StoreError { path: src, source })?;
        self.manifest_update(|keys| {
            keys.remove(name);
        })
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST)
    }

    /// The manifest as file-name → key, malformed lines skipped (fsck
    /// rewrites them away).
    fn read_manifest(&self) -> Result<BTreeMap<String, ProfileKey>, StoreError> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(source) => return Err(StoreError { path, source }),
        };
        Ok(text
            .lines()
            .filter_map(ProfileKey::parse_manifest_line)
            .map(|key| (key.file_name(), key))
            .collect())
    }

    fn write_manifest(&self, keys: &BTreeMap<String, ProfileKey>) -> Result<(), StoreError> {
        let mut text = String::new();
        for key in keys.values() {
            text.push_str(&key.manifest_line());
            text.push('\n');
        }
        let path = self.manifest_path();
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        fs::write(&tmp, text).map_err(|source| StoreError {
            path: tmp.clone(),
            source,
        })?;
        fs::rename(&tmp, &path).map_err(|source| StoreError { path, source })
    }

    fn manifest_update(
        &self,
        edit: impl FnOnce(&mut BTreeMap<String, ProfileKey>),
    ) -> Result<(), StoreError> {
        let mut keys = self.read_manifest()?;
        edit(&mut keys);
        self.write_manifest(&keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackdist::StackDistance;
    use balance_core::Access;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kb-profstore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn capacity_fixture() -> (ProfileMeta, ProfilePayload) {
        let addrs = [0u64, 1, 2, 0, 1, 2, 3, 0, 3, 1];
        let profile = StackDistance::profile_of(addrs);
        let meta = ProfileMeta {
            kernel: "matmul".to_string(),
            n: 8,
            engine: "stackdist".to_string(),
            sample_shift: 0,
            line_words: 1,
            writebacks: false,
        };
        (meta, ProfilePayload::Capacity(profile))
    }

    fn traffic_fixture() -> (ProfileMeta, ProfilePayload) {
        let accesses = [
            Access::read(0),
            Access::write(1),
            Access::read(8),
            Access::write(9),
            Access::read(0),
            Access::write(17),
            Access::read(8),
        ];
        let traffic = StackDistance::traffic_profile_of(accesses, 8);
        let meta = ProfileMeta {
            kernel: "sort".to_string(),
            n: 16,
            engine: "stackdist".to_string(),
            sample_shift: 0,
            line_words: 8,
            writebacks: true,
        };
        (meta, ProfilePayload::Traffic(traffic))
    }

    #[test]
    fn capacity_round_trips_structurally_equal() {
        let (meta, payload) = capacity_fixture();
        let bytes = encode_profile(&meta, &payload);
        let (meta2, payload2) = decode_profile(&bytes).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(payload, payload2);
    }

    #[test]
    fn traffic_round_trips_structurally_equal() {
        let (meta, payload) = traffic_fixture();
        let bytes = encode_profile(&meta, &payload);
        let (meta2, payload2) = decode_profile(&bytes).unwrap();
        assert_eq!(meta, meta2);
        assert_eq!(payload, payload2);
    }

    #[test]
    fn foreign_magic_and_future_version_are_typed_rejections() {
        let (meta, payload) = capacity_fixture();
        let mut bytes = encode_profile(&meta, &payload);
        // Future version, checksum re-sealed so only the version differs.
        let forged = encode_with_version(&meta, &payload, PROFILE_VERSION + 3);
        assert!(matches!(
            decode_profile(&forged),
            Err(ProfileImageError::UnsupportedVersion { found }) if found == PROFILE_VERSION + 3
        ));
        // Foreign magic breaks the checksum first — still a typed error.
        bytes[0] = b'X';
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileImageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn manifest_lines_round_trip_and_reject_tampering() {
        let key = ProfileKey::device("grid2d", 64, 8);
        let line = key.manifest_line();
        assert_eq!(ProfileKey::parse_manifest_line(&line), Some(key.clone()));
        let tampered = line.replace("64", "65");
        assert_eq!(
            ProfileKey::parse_manifest_line(&tampered),
            None,
            "digest must bind the key fields"
        );
    }

    #[test]
    fn put_get_round_trip_and_miss() {
        let dir = tmpdir("roundtrip");
        let store = ProfileStore::open(&dir).unwrap();
        let (meta, payload) = capacity_fixture();
        assert!(matches!(store.get(&meta.key()).unwrap(), Lookup::Miss));
        store.put(&meta, &payload).unwrap();
        match store.get(&meta.key()).unwrap() {
            Lookup::Hit {
                meta: m,
                payload: p,
            } => {
                assert_eq!(m, meta);
                assert_eq!(p, payload);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(store.keys().unwrap(), vec![meta.key()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_injected_store_fault_is_detected_never_served() {
        let faults: [(&str, FaultPlan); 3] = [
            ("torn", FaultPlan::none().with_torn_store_writes(1)),
            ("bitflip", FaultPlan::none().with_store_bit_flips(1)),
            ("stale", FaultPlan::none().with_stale_store_versions(1)),
        ];
        for (tag, plan) in faults {
            let dir = tmpdir(&format!("fault-{tag}"));
            let store = ProfileStore::open(&dir).unwrap();
            let (meta, payload) = capacity_fixture();
            store.put_with(&meta, &payload, &plan).unwrap();
            match store.get(&meta.key()).unwrap() {
                Lookup::Quarantined { .. } => {}
                other => panic!("{tag}: corrupted entry must be quarantined, got {other:?}"),
            }
            // The bad image is preserved, not deleted, and never re-served.
            assert_eq!(store.quarantined_files().unwrap().len(), 1, "{tag}");
            assert!(matches!(store.get(&meta.key()).unwrap(), Lookup::Miss));
            // Repair: a clean re-put fully restores service.
            store.put(&meta, &payload).unwrap();
            assert!(matches!(store.get(&meta.key()).unwrap(), Lookup::Hit { .. }));
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn enospc_fails_the_put_and_leaves_the_store_unchanged() {
        let dir = tmpdir("enospc");
        let store = ProfileStore::open(&dir).unwrap();
        let (meta, payload) = capacity_fixture();
        store.put(&meta, &payload).unwrap();
        let plan = FaultPlan::none().with_store_enospc(1);
        let err = store.put_with(&meta, &payload, &plan).unwrap_err();
        assert_eq!(err.source.kind(), io::ErrorKind::StorageFull);
        // The original entry still serves, bit-identical.
        match store.get(&meta.key()).unwrap() {
            Lookup::Hit { payload: p, .. } => assert_eq!(p, payload),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(store.fsck().unwrap().healthy());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_adopts_valid_orphans_and_quarantines_torn_images() {
        let dir = tmpdir("fsck");
        let store = ProfileStore::open(&dir).unwrap();
        let (meta, payload) = capacity_fixture();
        let (tmeta, tpayload) = traffic_fixture();
        // A valid orphan: image published, manifest never updated (build
        // killed between the two steps).
        let bytes = encode_profile(&meta, &payload);
        fs::write(dir.join(meta.key().file_name()), &bytes).unwrap();
        // A torn image under another key, listed in the manifest.
        store
            .put_with(&tmeta, &tpayload, &FaultPlan::none().with_torn_store_writes(1))
            .unwrap();
        // A leftover temp file from an interrupted publish.
        fs::write(dir.join("0123456789abcdef.kbcp.tmp"), b"partial").unwrap();
        let report = store.fsck().unwrap();
        assert_eq!(report.valid, 1);
        assert_eq!(report.adopted, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.cleaned_tmp, 1);
        assert!(!report.healthy());
        // Post-fsck: the orphan serves, the torn entry is a miss, and a
        // second scrub is clean.
        assert!(matches!(store.get(&meta.key()).unwrap(), Lookup::Hit { .. }));
        assert!(matches!(store.get(&tmeta.key()).unwrap(), Lookup::Miss));
        assert!(store.fsck().unwrap().healthy());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_rejects_content_at_the_wrong_address() {
        let dir = tmpdir("wrong-address");
        let store = ProfileStore::open(&dir).unwrap();
        let (meta, payload) = capacity_fixture();
        let bytes = encode_profile(&meta, &payload);
        // Publish a valid image under a different key's address.
        let other = ProfileKey::word("fft", 32);
        fs::write(dir.join(other.file_name()), &bytes).unwrap();
        match store.get(&other).unwrap() {
            Lookup::Quarantined { error } => {
                assert!(matches!(error, ProfileImageError::Corrupt { .. }));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
