//! # balance-machine
//!
//! A counting simulator for the paper's processing element (PE).
//!
//! The balance analysis of Kung (1985) depends on exactly two measured
//! quantities per computation: the number of operations delivered (`C_comp`)
//! and the number of words exchanged with the outside world (`C_io`). This
//! crate provides a PE whose local memory enforces the capacity `M` and whose
//! I/O paths count every word, so that out-of-core algorithms written against
//! it *measure* their own cost profile instead of asserting it.
//!
//! * [`LocalMemory`] — a word-addressed arena with hard capacity checks;
//!   an allocation that exceeds `M` fails, which catches blocking bugs
//!   (e.g. a tile size that does not actually fit).
//! * [`ExternalStore`] — the "outside world": a flat word store holding the
//!   problem inputs and outputs.
//! * [`Pe`] — couples the two: `load`/`store` move words between store and
//!   local buffers *and count them*; [`Pe::count_ops`] tallies arithmetic.
//! * [`LruCache`] — an automatically-managed cache model used by the
//!   ablation experiment (E13) to contrast *explicit* blocking with LRU
//!   caching at equal capacity.
//! * [`MemorySystem`] / [`Hierarchy`] — the N-level generalization: any
//!   memory system is, to the balance model, an accountant for the word
//!   traffic at each of its boundaries. [`LocalMemory`] and [`LruCache`]
//!   are the trivial one-level implementations; [`Hierarchy`] is a ladder
//!   of standalone LRU levels over the full access stream (inclusive by
//!   the Mattson stack property), and [`Pe::for_hierarchy`] runs the
//!   explicit schemes against a whole ladder, producing one traffic entry
//!   per level.
//! * [`StackDistance`] / [`CapacityProfile`] — the one-pass engine: a
//!   single trace replay records the reuse (stack) distance histogram,
//!   from which the exact LRU miss count at **every** capacity — and the
//!   boundary traffic of every ladder — is an O(1) read. This is what
//!   collapses capacity sweeps from one replay per memory size to one
//!   replay total (see `balance-kernels`' `capacity_sweep`).
//! * [`TrafficProfile`] — the device-realistic twin: one *tagged* replay
//!   ([`StackDistance::observe_tagged_trace`]) over read/write-tagged
//!   accesses at line granularity records the reuse histogram **and** a
//!   dirty-chain ledger, answering both `read_misses_at(M)` and
//!   `writebacks_at(M)` for every capacity — bit-identical to a
//!   line-granular dirty-bit LRU replay with an end-of-run flush.
//! * [`segmented_profile_of`] / [`SampledStackDistance`] — the scaled
//!   tiers of the same engine for billion-address traces: exact
//!   segmented parallel Mattson (K time ranges on scoped threads, merged
//!   bit-identical to serial) and SHARDS-style hash-sampled approximate
//!   profiles (Waldspurger et al., FAST '15) whose queries re-scale by
//!   the sampling rate.
//! * [`checkpoint`] / [`faults`] — fault-tolerant long runs: versioned,
//!   checksummed engine snapshots ([`StackDistance::snapshot`]) behind a
//!   resumable replay driver ([`resumable_replay`]), plus a deterministic
//!   fault-injection harness (seeded deaths, allocation failures,
//!   checkpoint corruption, segment-worker kills) that the recovery paths
//!   are continuously tested through.
//! * [`profstore`] — the crash-safe home of the measured artifacts:
//!   versioned, checksummed `KBCP` profile images (capacity and traffic)
//!   in a content-addressed [`ProfileStore`] with atomic publishes, a
//!   manifest, a quarantining `fsck` scrub, and store-level fault
//!   injection (torn writes, bit rot, `ENOSPC`, version skew) — so a
//!   corrupted entry is detected and repaired, never served.
//! * [`PhaseRecorder`] — phase-labeled cost attribution for multi-phase
//!   algorithms (e.g. the two phases of external sorting).
//!
//! ## Example
//!
//! ```
//! use balance_core::Words;
//! use balance_machine::{ExternalStore, Pe};
//!
//! // Sum 1024 words through a 64-word local memory, 64 words at a time.
//! let mut store = ExternalStore::new();
//! let data = store.alloc_from(&vec![1.0; 1024]);
//! let mut pe = Pe::new(Words::new(64));
//! let buf = pe.alloc(64)?;
//! let mut total = 0.0;
//! for chunk in 0..16 {
//!     pe.load(&store, data.at(chunk * 64, 64)?, buf, 0)?;
//!     let s: f64 = pe.buf(buf)?.iter().sum();
//!     pe.count_ops(64);
//!     total += s;
//! }
//! assert_eq!(total, 1024.0);
//! let exec = pe.execution();
//! assert_eq!(exec.cost.io_words(), 1024);   // every word crossed the port once
//! assert_eq!(exec.cost.comp_ops(), 1024);
//! # Ok::<(), balance_machine::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod checkpoint;
pub mod error;
pub mod faults;
pub mod hierarchy;
pub mod memory;
pub mod pe;
pub mod profstore;
pub mod sampling;
pub mod segmented;
pub mod stackdist;
pub mod store;
pub mod timeline;
pub mod trace;

pub use cache::LruCache;
pub use checkpoint::{
    resumable_replay, CheckpointError, CheckpointPolicy, ReplayControl, ReplayInterrupt,
    ReplayStats, DEFAULT_CHECKPOINT_EVERY,
};
pub use error::MachineError;
pub use faults::{FaultPlan, InjectedFault, StoreFault};
pub use profstore::{
    decode_profile, encode_profile, FsckReport, Lookup, ProfileImageError, ProfileKey,
    ProfileMeta, ProfilePayload, ProfileStore, StoreError, PROFILE_MAGIC, PROFILE_VERSION,
};
pub use hierarchy::{Hierarchy, MemorySystem};
pub use sampling::{
    sampled_profile_of, sampled_profile_of_bounded, splitmix64, SampledStackDistance,
    MAX_SAMPLE_SHIFT,
};
pub use segmented::{
    segmented_profile_of, segmented_profile_resumable, SegmentedStats, MAX_SEGMENT_RETRIES,
};
pub use stackdist::{AnalyticProfile, CapacityProfile, StackDistance, TrafficProfile};
pub use memory::{BufferId, LocalMemory};
pub use pe::Pe;
pub use store::{ExternalStore, Region};
pub use timeline::{Timeline, TimelineEntry};
pub use trace::{Phase, PhaseRecorder};
