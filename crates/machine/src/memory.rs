//! Capacity-enforced local memory.
//!
//! The paper's `M` is a hard physical limit: a decomposition scheme is only
//! valid if every intermediate it keeps resident fits within `M` words.
//! [`LocalMemory`] enforces that: allocations beyond the capacity fail with
//! [`MachineError::OutOfMemory`], and the peak footprint is recorded so
//! experiments can report how much of `M` a scheme actually used.

use balance_core::Words;

use crate::error::MachineError;

/// Handle to a live allocation inside a [`LocalMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// The raw slot index (for diagnostics).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A word-addressed local memory of fixed capacity.
///
/// Buffers are explicitly allocated and freed; capacity accounting is exact
/// (one `f64` = one word, matching the paper's "one I/O operation transfers
/// a word").
///
/// # Examples
///
/// ```
/// use balance_core::Words;
/// use balance_machine::LocalMemory;
///
/// let mut mem = LocalMemory::new(Words::new(100));
/// let a = mem.alloc(60)?;
/// assert!(mem.alloc(60).is_err());      // would exceed M
/// mem.free(a)?;
/// let _b = mem.alloc(100)?;             // fits again
/// assert_eq!(mem.peak(), Words::new(100));
/// # Ok::<(), balance_machine::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalMemory {
    capacity: usize,
    in_use: usize,
    peak: usize,
    slots: Vec<Option<Vec<f64>>>,
    free_slots: Vec<usize>,
    traffic_words: u64,
}

impl LocalMemory {
    /// Creates a memory of `capacity` words.
    #[must_use]
    pub fn new(capacity: Words) -> Self {
        LocalMemory {
            capacity: capacity.get() as usize,
            in_use: 0,
            peak: 0,
            slots: Vec::new(),
            free_slots: Vec::new(),
            traffic_words: 0,
        }
    }

    /// Counts `words` of boundary traffic (the explicit scheme's
    /// [`crate::MemorySystem`] accounting: every transfer the algorithm
    /// decides on crosses the single boundary).
    pub(crate) fn record_traffic(&mut self, words: u64) {
        self.traffic_words += words;
    }

    /// Clears the boundary-traffic counter.
    pub(crate) fn reset_traffic(&mut self) {
        self.traffic_words = 0;
    }

    /// Boundary traffic recorded via the [`crate::MemorySystem`] view.
    /// [`crate::Pe`] keeps this in sync with its port counters: after a
    /// run, it equals `io_reads() + io_writes()`.
    #[must_use]
    pub fn recorded_traffic(&self) -> u64 {
        self.traffic_words
    }

    /// The configured capacity `M`.
    #[must_use]
    pub fn capacity(&self) -> Words {
        Words::new(self.capacity as u64)
    }

    /// Words currently allocated.
    #[must_use]
    pub fn in_use(&self) -> Words {
        Words::new(self.in_use as u64)
    }

    /// The high-water mark of allocated words over the memory's lifetime.
    #[must_use]
    pub fn peak(&self) -> Words {
        Words::new(self.peak as u64)
    }

    /// Words still available.
    #[must_use]
    pub fn available(&self) -> Words {
        Words::new((self.capacity - self.in_use) as u64)
    }

    /// Allocates a zero-initialized buffer of `len` words.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] if the allocation would exceed `M`.
    pub fn alloc(&mut self, len: usize) -> Result<BufferId, MachineError> {
        if self.in_use + len > self.capacity {
            return Err(MachineError::OutOfMemory {
                requested: len,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += len;
        self.peak = self.peak.max(self.in_use);
        let buf = vec![0.0; len];
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = Some(buf);
                slot
            }
            None => {
                self.slots.push(Some(buf));
                self.slots.len() - 1
            }
        };
        Ok(BufferId(id))
    }

    /// Releases a buffer.
    ///
    /// # Errors
    ///
    /// * [`MachineError::InvalidBuffer`] if the handle never named an
    ///   allocation of this arena;
    /// * [`MachineError::DoubleFree`] if the handle's buffer was already
    ///   freed (and its slot not yet reused) — the distinct diagnosis makes
    ///   kernel teardown bugs searchable.
    pub fn free(&mut self, id: BufferId) -> Result<(), MachineError> {
        let slot = self
            .slots
            .get_mut(id.0)
            .ok_or(MachineError::InvalidBuffer { id: id.0 })?;
        // An in-range slot only becomes `None` through a free: report the
        // second free as exactly that, not as a generic stale handle.
        let buf = slot.take().ok_or(MachineError::DoubleFree { id: id.0 })?;
        self.in_use -= buf.len();
        self.free_slots.push(id.0);
        Ok(())
    }

    /// Read access to a buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] if the handle is stale.
    pub fn buf(&self, id: BufferId) -> Result<&[f64], MachineError> {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_deref())
            .ok_or(MachineError::InvalidBuffer { id: id.0 })
    }

    /// Write access to a buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] if the handle is stale.
    pub fn buf_mut(&mut self, id: BufferId) -> Result<&mut [f64], MachineError> {
        self.slots
            .get_mut(id.0)
            .and_then(|s| s.as_deref_mut())
            .ok_or(MachineError::InvalidBuffer { id: id.0 })
    }

    /// Runs an in-memory update that writes buffer `dst` while reading the
    /// buffers in `srcs`.
    ///
    /// This is how kernels express e.g. `C_tile += A_tile · B_tile` without
    /// aliasing: the destination is temporarily detached from the arena, so
    /// the sources can be borrowed immutably alongside it.
    ///
    /// # Errors
    ///
    /// * [`MachineError::AliasedBuffers`] if `dst` also appears in `srcs`;
    /// * [`MachineError::InvalidBuffer`] for stale handles (the destination
    ///   is restored before returning).
    pub fn update<R>(
        &mut self,
        dst: BufferId,
        srcs: &[BufferId],
        f: impl FnOnce(&mut [f64], &[&[f64]]) -> R,
    ) -> Result<R, MachineError> {
        if srcs.contains(&dst) {
            return Err(MachineError::AliasedBuffers { id: dst.0 });
        }
        let slot = self
            .slots
            .get_mut(dst.0)
            .ok_or(MachineError::InvalidBuffer { id: dst.0 })?;
        let mut dst_buf = slot
            .take()
            .ok_or(MachineError::InvalidBuffer { id: dst.0 })?;

        let result = (|| {
            let mut src_refs: Vec<&[f64]> = Vec::with_capacity(srcs.len());
            for &s in srcs {
                src_refs.push(
                    self.slots
                        .get(s.0)
                        .and_then(|x| x.as_deref())
                        .ok_or(MachineError::InvalidBuffer { id: s.0 })?,
                );
            }
            Ok(f(&mut dst_buf, &src_refs))
        })();

        // Always restore the destination, even if a source was invalid.
        self.slots[dst.0] = Some(dst_buf);
        result
    }

    /// Frees every live buffer (e.g. between phases).
    pub fn free_all(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(buf) = slot.take() {
                self.in_use -= buf.len();
                self.free_slots.push(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced() {
        let mut mem = LocalMemory::new(Words::new(10));
        let a = mem.alloc(6).unwrap();
        assert_eq!(mem.in_use().get(), 6);
        let err = mem.alloc(5).unwrap_err();
        assert!(matches!(
            err,
            MachineError::OutOfMemory {
                requested: 5,
                in_use: 6,
                capacity: 10
            }
        ));
        mem.free(a).unwrap();
        assert_eq!(mem.in_use().get(), 0);
        let _ = mem.alloc(10).unwrap();
    }

    #[test]
    fn zero_length_allocations_are_fine() {
        let mut mem = LocalMemory::new(Words::new(4));
        let a = mem.alloc(0).unwrap();
        assert_eq!(mem.buf(a).unwrap().len(), 0);
        mem.free(a).unwrap();
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut mem = LocalMemory::new(Words::new(100));
        let a = mem.alloc(40).unwrap();
        let b = mem.alloc(30).unwrap();
        mem.free(a).unwrap();
        let _c = mem.alloc(20).unwrap();
        assert_eq!(mem.peak().get(), 70);
        mem.free(b).unwrap();
        assert_eq!(mem.peak().get(), 70);
    }

    #[test]
    fn stale_handles_are_rejected() {
        let mut mem = LocalMemory::new(Words::new(10));
        let a = mem.alloc(4).unwrap();
        mem.free(a).unwrap();
        assert!(mem.buf(a).is_err());
        assert!(mem.buf_mut(a).is_err());
        assert!(mem.free(a).is_err());
        assert!(mem.buf(BufferId(99)).is_err());
    }

    #[test]
    fn double_free_is_its_own_error() {
        let mut mem = LocalMemory::new(Words::new(10));
        let a = mem.alloc(4).unwrap();
        mem.free(a).unwrap();
        // Regression: the second free used to alias the generic stale-handle
        // path; it must be diagnosed as a double free.
        assert!(matches!(
            mem.free(a),
            Err(MachineError::DoubleFree { id }) if id == a.index()
        ));
        // A handle that never named an allocation stays InvalidBuffer...
        assert!(matches!(
            mem.free(BufferId(99)),
            Err(MachineError::InvalidBuffer { id: 99 })
        ));
        // ...and the arena is still consistent: the slot can be reused, and
        // freeing the *new* occupant works once.
        let b = mem.alloc(2).unwrap();
        assert_eq!(a.index(), b.index());
        mem.free(b).unwrap();
        assert!(matches!(mem.free(b), Err(MachineError::DoubleFree { .. })));
        assert_eq!(mem.in_use().get(), 0);
    }

    #[test]
    fn slots_are_reused_after_free() {
        let mut mem = LocalMemory::new(Words::new(10));
        let a = mem.alloc(4).unwrap();
        mem.free(a).unwrap();
        let b = mem.alloc(4).unwrap();
        // Implementation detail but worth pinning: the arena does not grow.
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn buffers_read_and_write() {
        let mut mem = LocalMemory::new(Words::new(8));
        let a = mem.alloc(4).unwrap();
        mem.buf_mut(a)
            .unwrap()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mem.buf(a).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn update_gives_disjoint_access() {
        let mut mem = LocalMemory::new(Words::new(12));
        let a = mem.alloc(4).unwrap();
        let b = mem.alloc(4).unwrap();
        let c = mem.alloc(4).unwrap();
        mem.buf_mut(a)
            .unwrap()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        mem.buf_mut(b)
            .unwrap()
            .copy_from_slice(&[10.0, 20.0, 30.0, 40.0]);
        mem.update(c, &[a, b], |dst, srcs| {
            for i in 0..4 {
                dst[i] = srcs[0][i] + srcs[1][i];
            }
        })
        .unwrap();
        assert_eq!(mem.buf(c).unwrap(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn update_rejects_aliasing() {
        let mut mem = LocalMemory::new(Words::new(8));
        let a = mem.alloc(4).unwrap();
        let err = mem.update(a, &[a], |_, _| ()).unwrap_err();
        assert!(matches!(err, MachineError::AliasedBuffers { .. }));
        // The buffer must still be usable afterwards.
        assert!(mem.buf(a).is_ok());
    }

    #[test]
    fn update_restores_dst_on_source_error() {
        let mut mem = LocalMemory::new(Words::new(8));
        let a = mem.alloc(4).unwrap();
        let ghost = BufferId(42);
        let err = mem.update(a, &[ghost], |_, _| ()).unwrap_err();
        assert!(matches!(err, MachineError::InvalidBuffer { id: 42 }));
        assert!(mem.buf(a).is_ok(), "dst must be restored after error");
    }

    #[test]
    fn free_all_resets_usage_but_not_peak() {
        let mut mem = LocalMemory::new(Words::new(20));
        let _a = mem.alloc(8).unwrap();
        let _b = mem.alloc(8).unwrap();
        mem.free_all();
        assert_eq!(mem.in_use().get(), 0);
        assert_eq!(mem.peak().get(), 16);
        assert_eq!(mem.available().get(), 20);
        let _ = mem.alloc(20).unwrap();
    }
}
