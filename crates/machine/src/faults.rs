//! Deterministic fault injection for the replay engines.
//!
//! A billion-address replay meets real failures — OOM kills mid-stream,
//! preempted segment workers, torn checkpoint files — but none of them
//! reproduce on demand, so the recovery paths they exercise rot unless a
//! harness can trigger them *deterministically*. A [`FaultPlan`] is that
//! harness: a small set of one-shot triggers (die at address `k`,
//! allocation failure at address `k`, corrupt the next checkpoint write,
//! kill segment worker `i`) armed up front — by a test, a proptest
//! strategy, or a seed — and consumed exactly once as the replay crosses
//! them. The checkpoint/resume machinery ([`crate::checkpoint`]) and the
//! segmented engine's bounded retry are tested *through* these faults:
//! the proptests assert that a replay killed at an arbitrary address and
//! resumed from its checkpoint is bit-identical to an uninterrupted run.
//!
//! Triggers use atomic one-shot consumption (`compare_exchange`), so a
//! plan is `Sync` and can be shared across segment workers; a consumed
//! trigger never fires twice, which is what makes bounded retry converge.

use core::fmt;
use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::sampling::splitmix64;

/// Sentinel position/index for "never fires".
const NEVER: u64 = u64::MAX;

/// A seeded, one-shot fault schedule threaded through the replay drivers.
/// All triggers default to "never"; each fires at most once.
#[derive(Debug)]
pub struct FaultPlan {
    /// Replay position at which the run "dies" (the driver returns an
    /// interrupt, leaving on-disk checkpoints exactly as a SIGKILL would).
    die_at: AtomicU64,
    /// Replay position at which an engine allocation "fails".
    alloc_fail_at: AtomicU64,
    /// Number of upcoming checkpoint writes to corrupt (byte flip in the
    /// payload — must be caught by the checksum on restore).
    corrupt_checkpoints: AtomicU32,
    /// Segment-worker index that dies mid-range (see
    /// [`FaultPlan::segment_dies`]).
    kill_segment: AtomicU64,
    /// How many times that segment worker dies before succeeding.
    kill_segment_times: AtomicU32,
    /// Upcoming profile-store publishes to tear (only a prefix of the
    /// image reaches the final path, as a power loss after a partial
    /// write would leave it).
    store_torn_writes: AtomicU32,
    /// Upcoming profile-store publishes to bit-rot (one byte flipped in
    /// the image after checksumming — silent media corruption).
    store_bit_flips: AtomicU32,
    /// Upcoming profile-store publishes to fail with `ENOSPC` before any
    /// byte is durably published.
    store_enospc: AtomicU32,
    /// Upcoming profile-store publishes to stamp with a future format
    /// version (an image written by a newer build — version skew).
    store_stale_versions: AtomicU32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan with no faults armed (every trigger at "never").
    #[must_use]
    pub const fn none() -> FaultPlan {
        FaultPlan {
            die_at: AtomicU64::new(NEVER),
            alloc_fail_at: AtomicU64::new(NEVER),
            corrupt_checkpoints: AtomicU32::new(0),
            kill_segment: AtomicU64::new(NEVER),
            kill_segment_times: AtomicU32::new(0),
            store_torn_writes: AtomicU32::new(0),
            store_bit_flips: AtomicU32::new(0),
            store_enospc: AtomicU32::new(0),
            store_stale_versions: AtomicU32::new(0),
        }
    }

    /// Arms a one-shot death at replay position `pos` (0-based: the fault
    /// fires *before* the `pos`-th address is observed).
    #[must_use]
    pub fn with_die_at(self, pos: u64) -> FaultPlan {
        self.die_at.store(pos, Ordering::Relaxed);
        self
    }

    /// Arms a one-shot allocation failure at replay position `pos`.
    #[must_use]
    pub fn with_alloc_fail_at(self, pos: u64) -> FaultPlan {
        self.alloc_fail_at.store(pos, Ordering::Relaxed);
        self
    }

    /// Arms corruption of the next `times` checkpoint writes (a byte flip
    /// the checksum must catch on restore).
    #[must_use]
    pub fn with_corrupt_checkpoints(self, times: u32) -> FaultPlan {
        self.corrupt_checkpoints.store(times, Ordering::Relaxed);
        self
    }

    /// Arms `times` deaths of segment worker `segment` (each mid-range;
    /// the segmented driver's bounded retry must absorb them).
    #[must_use]
    pub fn with_kill_segment(self, segment: usize, times: u32) -> FaultPlan {
        self.kill_segment
            .store(segment as u64, Ordering::Relaxed);
        self.kill_segment_times.store(times, Ordering::Relaxed);
        self
    }

    /// Arms tearing of the next `times` profile-store publishes (only a
    /// prefix of the image reaches the final path; the reader's checksum
    /// must reject it).
    #[must_use]
    pub fn with_torn_store_writes(self, times: u32) -> FaultPlan {
        self.store_torn_writes.store(times, Ordering::Relaxed);
        self
    }

    /// Arms bit rot on the next `times` profile-store publishes (one byte
    /// flipped after checksumming — the classic silent-corruption case).
    #[must_use]
    pub fn with_store_bit_flips(self, times: u32) -> FaultPlan {
        self.store_bit_flips.store(times, Ordering::Relaxed);
        self
    }

    /// Arms `ENOSPC` on the next `times` profile-store publishes: the
    /// write fails before anything is durably published, so the store
    /// must remain exactly as it was.
    #[must_use]
    pub fn with_store_enospc(self, times: u32) -> FaultPlan {
        self.store_enospc.store(times, Ordering::Relaxed);
        self
    }

    /// Arms version skew on the next `times` profile-store publishes: the
    /// image is stamped with a future format version, as if written by a
    /// newer build this one cannot read.
    #[must_use]
    pub fn with_stale_store_versions(self, times: u32) -> FaultPlan {
        self.store_stale_versions.store(times, Ordering::Relaxed);
        self
    }

    /// Consumes one profile-store fault, if any is armed, in a fixed
    /// priority order (torn → bit flip → `ENOSPC` → stale version). The
    /// store's publish path calls this once per put.
    #[must_use]
    pub fn take_store_fault(&self) -> Option<StoreFault> {
        let take = |counter: &AtomicU32| {
            counter
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        };
        if take(&self.store_torn_writes) {
            return Some(StoreFault::TornWrite);
        }
        if take(&self.store_bit_flips) {
            return Some(StoreFault::BitFlip);
        }
        if take(&self.store_enospc) {
            return Some(StoreFault::Enospc);
        }
        if take(&self.store_stale_versions) {
            return Some(StoreFault::StaleVersion);
        }
        None
    }

    /// A plan arming exactly one profile-store fault chosen by `seed` —
    /// the deterministic entry point for the store fault-matrix proptests
    /// (same seed, same fault).
    #[must_use]
    pub fn seeded_store(seed: u64) -> FaultPlan {
        let plan = FaultPlan::none();
        match splitmix64(seed) & 3 {
            0 => plan.store_torn_writes.store(1, Ordering::Relaxed),
            1 => plan.store_bit_flips.store(1, Ordering::Relaxed),
            2 => plan.store_enospc.store(1, Ordering::Relaxed),
            _ => plan.store_stale_versions.store(1, Ordering::Relaxed),
        }
        plan
    }

    /// A pseudo-random plan derived entirely from `seed` over a replay of
    /// `len` addresses: a death somewhere in the trace, sometimes a
    /// corrupted checkpoint, sometimes a segment-worker death. Same seed,
    /// same plan — the deterministic entry point for soak tests.
    #[must_use]
    pub fn seeded(seed: u64, len: u64) -> FaultPlan {
        let plan = FaultPlan::none();
        if len > 0 {
            plan.die_at
                .store(splitmix64(seed) % len, Ordering::Relaxed);
        }
        if splitmix64(seed ^ 1) & 3 == 0 {
            plan.corrupt_checkpoints.store(1, Ordering::Relaxed);
        }
        if splitmix64(seed ^ 2) & 1 == 0 {
            plan.kill_segment
                .store(splitmix64(seed ^ 3) % 16, Ordering::Relaxed);
            plan.kill_segment_times.store(1, Ordering::Relaxed);
        }
        plan
    }

    /// Whether any per-address trigger is still armed — the replay
    /// driver's fast-path gate, so an unarmed plan costs nothing per
    /// address.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.die_at.load(Ordering::Relaxed) != NEVER
            || self.alloc_fail_at.load(Ordering::Relaxed) != NEVER
    }

    /// Consumes any per-address trigger armed at replay position `pos`.
    ///
    /// # Errors
    ///
    /// The injected fault, exactly once per armed trigger.
    pub fn check_observe(&self, pos: u64) -> Result<(), InjectedFault> {
        if self
            .die_at
            .compare_exchange(pos, NEVER, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return Err(InjectedFault::Die { at: pos });
        }
        if self
            .alloc_fail_at
            .compare_exchange(pos, NEVER, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return Err(InjectedFault::AllocFail { at: pos });
        }
        Ok(())
    }

    /// Consumes one checkpoint-corruption trigger, if armed: `true` means
    /// the writer must corrupt the bytes it is about to persist.
    #[must_use]
    pub fn take_checkpoint_corruption(&self) -> bool {
        self.corrupt_checkpoints
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Consumes one death of segment worker `segment`, if armed for it.
    #[must_use]
    pub fn segment_dies(&self, segment: usize) -> bool {
        self.kill_segment.load(Ordering::Relaxed) == segment as u64
            && self
                .kill_segment_times
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
    }
}

/// A durability fault injected into a profile-store publish (see
/// [`crate::profstore::ProfileStore::put_with`]) — each is a distinct
/// real-world failure the store's read path must detect rather than
/// serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StoreFault {
    /// Only a prefix of the image reached the final path.
    TornWrite,
    /// One byte of the published image flipped after checksumming.
    BitFlip,
    /// The filesystem ran out of space before anything was published.
    Enospc,
    /// The image carries a future format version this build cannot read.
    StaleVersion,
}

impl fmt::Display for StoreFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFault::TornWrite => write!(f, "torn write"),
            StoreFault::BitFlip => write!(f, "bit flip"),
            StoreFault::Enospc => write!(f, "out of space"),
            StoreFault::StaleVersion => write!(f, "stale (future) format version"),
        }
    }
}

/// A fault fired by a [`FaultPlan`] — the "what killed this attempt" tag
/// carried by [`crate::checkpoint::ReplayInterrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFault {
    /// The run died (as by SIGKILL) before observing position `at`.
    Die {
        /// 0-based replay position of the death.
        at: u64,
    },
    /// An engine allocation failed at position `at`.
    AllocFail {
        /// 0-based replay position of the failure.
        at: u64,
    },
    /// Segment worker `segment` died mid-range more times than the
    /// bounded retry allows.
    SegmentDeath {
        /// Index of the killed segment worker.
        segment: usize,
    },
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::Die { at } => write!(f, "injected death at replay position {at}"),
            InjectedFault::AllocFail { at } => {
                write!(f, "injected allocation failure at replay position {at}")
            }
            InjectedFault::SegmentDeath { segment } => {
                write!(f, "injected death of segment worker {segment}")
            }
        }
    }
}

impl std::error::Error for InjectedFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_exactly_once() {
        let plan = FaultPlan::none().with_die_at(5);
        assert!(plan.is_armed());
        assert_eq!(plan.check_observe(4), Ok(()));
        assert_eq!(plan.check_observe(5), Err(InjectedFault::Die { at: 5 }));
        assert_eq!(plan.check_observe(5), Ok(()), "one-shot: must not refire");
        assert!(!plan.is_armed());
    }

    #[test]
    fn alloc_fail_is_distinct_from_death() {
        let plan = FaultPlan::none().with_alloc_fail_at(2);
        assert_eq!(plan.check_observe(2), Err(InjectedFault::AllocFail { at: 2 }));
        assert_eq!(plan.check_observe(2), Ok(()));
    }

    #[test]
    fn checkpoint_corruption_counts_down() {
        let plan = FaultPlan::none().with_corrupt_checkpoints(2);
        assert!(plan.take_checkpoint_corruption());
        assert!(plan.take_checkpoint_corruption());
        assert!(!plan.take_checkpoint_corruption());
    }

    #[test]
    fn segment_death_targets_one_worker() {
        let plan = FaultPlan::none().with_kill_segment(3, 2);
        assert!(!plan.segment_dies(0));
        assert!(plan.segment_dies(3));
        assert!(plan.segment_dies(3));
        assert!(!plan.segment_dies(3), "times exhausted");
    }

    #[test]
    fn store_faults_fire_once_in_priority_order() {
        let plan = FaultPlan::none()
            .with_torn_store_writes(1)
            .with_store_bit_flips(1)
            .with_store_enospc(1)
            .with_stale_store_versions(1);
        assert_eq!(plan.take_store_fault(), Some(StoreFault::TornWrite));
        assert_eq!(plan.take_store_fault(), Some(StoreFault::BitFlip));
        assert_eq!(plan.take_store_fault(), Some(StoreFault::Enospc));
        assert_eq!(plan.take_store_fault(), Some(StoreFault::StaleVersion));
        assert_eq!(plan.take_store_fault(), None, "one-shot: must not refire");
    }

    #[test]
    fn seeded_store_plans_arm_exactly_one_fault() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let a = FaultPlan::seeded_store(seed);
            let b = FaultPlan::seeded_store(seed);
            let fault = a.take_store_fault().expect("exactly one fault armed");
            assert_eq!(b.take_store_fault(), Some(fault), "same seed, same fault");
            assert_eq!(a.take_store_fault(), None);
            seen.insert(fault);
        }
        assert_eq!(seen.len(), 4, "64 seeds must cover all four fault kinds");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in 0..32u64 {
            let a = FaultPlan::seeded(seed, 1000);
            let b = FaultPlan::seeded(seed, 1000);
            assert_eq!(
                a.die_at.load(Ordering::Relaxed),
                b.die_at.load(Ordering::Relaxed)
            );
            assert!(a.die_at.load(Ordering::Relaxed) < 1000);
        }
    }
}
