//! Execution timelines: turning counted costs into time on a concrete PE.
//!
//! The balance condition compares `C_comp/C` with `C_io/IO`. A [`Timeline`]
//! applies a [`PeSpec`]'s bandwidths to recorded [`Phase`] costs and reports,
//! per phase and in total: compute time, I/O time, the overlapped elapsed
//! time (`max`), the serial elapsed time (`sum` — a PE that cannot overlap),
//! and which subsystem idles. The ASCII rendering makes imbalance visible at
//! a glance:
//!
//! ```text
//! run-formation  comp ████████░░  io ██████████   io-limited (20% idle)
//! merge          comp ██████████  io ████░░░░░░   compute-limited
//! ```

use core::fmt;

use balance_core::{BalanceState, HierarchySpec, OpsPerSec, PeSpec, Seconds};

use crate::trace::Phase;

/// One phase of a timeline: costs turned into times.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Phase label.
    pub label: String,
    /// Time the compute subsystem is busy.
    pub compute_time: Seconds,
    /// Time the I/O subsystem is busy.
    pub io_time: Seconds,
    /// Elapsed time with perfect overlap (`max` of the two).
    pub elapsed_overlapped: Seconds,
    /// Which subsystem limits the phase (5 % tolerance).
    pub state: BalanceState,
}

/// A per-phase execution timeline on a concrete PE.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Builds a timeline from recorded phases and a PE specification.
    #[must_use]
    pub fn new(phases: &[Phase], pe: &PeSpec) -> Self {
        let entries = phases
            .iter()
            .map(|p| TimelineEntry {
                label: p.label.clone(),
                compute_time: p.cost.compute_time(pe),
                io_time: p.cost.io_time(pe),
                elapsed_overlapped: p.cost.elapsed(pe),
                state: p.cost.balance_state(pe, 0.05),
            })
            .collect();
        Timeline { entries }
    }

    /// Builds a hierarchy-aware timeline: each phase's I/O time is the
    /// slowest boundary's — traffic over the level's bandwidth **plus its
    /// per-word access latency** (`CostProfile::io_time_on`), compute time
    /// from `peak`.
    ///
    /// This is where a [`LevelSpec`]'s latency reaches the timeline: two
    /// specs that differ only in a level's latency render different bars,
    /// states, and totals whenever that level carried traffic. With a
    /// one-level zero-latency spec and matching bandwidths this reduces
    /// exactly to [`Timeline::new`].
    ///
    /// [`LevelSpec`]: balance_core::LevelSpec
    #[must_use]
    pub fn for_hierarchy(phases: &[Phase], peak: OpsPerSec, spec: &HierarchySpec) -> Self {
        let entries = phases
            .iter()
            .map(|p| {
                let compute_time = Seconds::new(p.cost.comp_ops() as f64 / peak.get());
                let io_time = p.cost.io_time_on(spec);
                TimelineEntry {
                    label: p.label.clone(),
                    compute_time,
                    io_time,
                    elapsed_overlapped: Seconds::new(compute_time.get().max(io_time.get())),
                    state: BalanceState::from_times(compute_time, io_time, 0.05),
                }
            })
            .collect();
        Timeline { entries }
    }

    /// The per-phase entries, in order.
    #[must_use]
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Total elapsed time with per-phase overlap (phases are sequential;
    /// compute and I/O overlap only within a phase).
    #[must_use]
    pub fn elapsed_overlapped(&self) -> Seconds {
        Seconds::new(
            self.entries
                .iter()
                .map(|e| e.elapsed_overlapped.get())
                .sum(),
        )
    }

    /// Total elapsed time with no overlap at all (compute then I/O).
    #[must_use]
    pub fn elapsed_serial(&self) -> Seconds {
        Seconds::new(
            self.entries
                .iter()
                .map(|e| e.compute_time.get() + e.io_time.get())
                .sum(),
        )
    }

    /// The speedup overlap buys: `serial / overlapped` (1.0–2.0; exactly
    /// 2.0 only when every phase is perfectly balanced — the paper's ideal).
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        let o = self.elapsed_overlapped().get();
        if o == 0.0 {
            1.0
        } else {
            self.elapsed_serial().get() / o
        }
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const BAR: usize = 10;
        let max = self
            .entries
            .iter()
            .map(|e| e.compute_time.get().max(e.io_time.get()))
            .fold(0.0f64, f64::max);
        for e in &self.entries {
            let bar = |t: f64| -> String {
                let filled = if max > 0.0 {
                    ((t / max) * BAR as f64).round() as usize
                } else {
                    0
                };
                let filled = filled.min(BAR);
                format!("{}{}", "█".repeat(filled), "░".repeat(BAR - filled))
            };
            writeln!(
                f,
                "{:<16} comp {}  io {}   {}",
                e.label,
                bar(e.compute_time.get()),
                bar(e.io_time.get()),
                e.state
            )?;
        }
        write!(
            f,
            "total: {:.3e} s overlapped, {:.3e} s serial (overlap speedup {:.2}x)",
            self.elapsed_overlapped().get(),
            self.elapsed_serial().get(),
            self.overlap_speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{CostProfile, OpsPerSec, Words, WordsPerSec};

    fn pe(c: f64, io: f64) -> PeSpec {
        PeSpec::new(OpsPerSec::new(c), WordsPerSec::new(io), Words::new(64)).unwrap()
    }

    fn phases() -> Vec<Phase> {
        vec![
            Phase {
                label: "load".into(),
                cost: CostProfile::new(100, 1000), // io-heavy
            },
            Phase {
                label: "crunch".into(),
                cost: CostProfile::new(4000, 200), // compute-heavy
            },
        ]
    }

    #[test]
    fn times_follow_bandwidths() {
        let tl = Timeline::new(&phases(), &pe(1000.0, 100.0));
        let e = &tl.entries()[0];
        assert_eq!(e.compute_time.get(), 0.1);
        assert_eq!(e.io_time.get(), 10.0);
        assert_eq!(e.elapsed_overlapped.get(), 10.0);
        assert!(matches!(e.state, BalanceState::IoLimited { .. }));
        let e = &tl.entries()[1];
        assert_eq!(e.compute_time.get(), 4.0);
        assert_eq!(e.io_time.get(), 2.0);
        assert!(matches!(e.state, BalanceState::ComputeLimited { .. }));
    }

    #[test]
    fn totals_and_speedup() {
        let tl = Timeline::new(&phases(), &pe(1000.0, 100.0));
        assert_eq!(tl.elapsed_overlapped().get(), 14.0); // 10 + 4
        assert!((tl.elapsed_serial().get() - 16.1).abs() < 1e-12); // 10.1 + 6
        assert!((tl.overlap_speedup() - 16.1 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_phase_gets_full_overlap_speedup() {
        let phases = vec![Phase {
            label: "balanced".into(),
            cost: CostProfile::new(1000, 100),
        }];
        // C/IO = 10 matches the intensity exactly.
        let tl = Timeline::new(&phases, &pe(1000.0, 100.0));
        assert!(tl.entries()[0].state.is_balanced());
        assert!((tl.overlap_speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_degenerate_but_safe() {
        let tl = Timeline::new(&[], &pe(1.0, 1.0));
        assert_eq!(tl.elapsed_overlapped().get(), 0.0);
        assert_eq!(tl.overlap_speedup(), 1.0);
    }

    fn two_level_spec(latency: f64) -> HierarchySpec {
        use balance_core::LevelSpec;
        HierarchySpec::new(vec![
            LevelSpec::new(Words::new(64), WordsPerSec::new(100.0)).unwrap(),
            LevelSpec::new(Words::new(1024), WordsPerSec::new(100.0))
                .unwrap()
                .with_latency(Seconds::new(latency))
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn hierarchy_timeline_reduces_to_flat_at_zero_latency() {
        let spec = HierarchySpec::new(vec![balance_core::LevelSpec::new(
            Words::new(64),
            WordsPerSec::new(100.0),
        )
        .unwrap()])
        .unwrap();
        let flat = Timeline::new(&phases(), &pe(1000.0, 100.0));
        let hier = Timeline::for_hierarchy(&phases(), OpsPerSec::new(1000.0), &spec);
        assert_eq!(flat, hier);
    }

    #[test]
    fn hierarchy_timeline_charges_level_latency() {
        // The dead-knob regression at the timeline layer: the same phases
        // on the same bandwidths, differing only in the outer level's
        // latency, must produce different I/O times and totals.
        let leveled = vec![Phase {
            label: "crunch".into(),
            cost: balance_core::CostProfile::with_levels(4000, &[200, 100]),
        }];
        let zero = Timeline::for_hierarchy(&leveled, OpsPerSec::new(1000.0), &two_level_spec(0.0));
        // 0.03 s/word at L2: io time there 100·(0.01 + 0.03) = 4 s, up from
        // 1 s — overtaking both the port (2 s) and compute (4 s).
        let lat = Timeline::for_hierarchy(&leveled, OpsPerSec::new(1000.0), &two_level_spec(0.03));
        assert_eq!(zero.entries()[0].io_time.get(), 2.0);
        assert_eq!(lat.entries()[0].io_time.get(), 4.0);
        assert!(matches!(zero.entries()[0].state, BalanceState::ComputeLimited { .. }));
        assert!(lat.entries()[0].state.is_balanced());
        assert!(lat.elapsed_overlapped().get() >= zero.elapsed_overlapped().get());
        assert!(lat.elapsed_serial().get() > zero.elapsed_serial().get());
    }

    #[test]
    fn render_shows_bars_and_states() {
        let tl = Timeline::new(&phases(), &pe(1000.0, 100.0));
        let art = tl.to_string();
        assert!(art.contains("load"));
        assert!(art.contains("crunch"));
        assert!(art.contains('█'));
        assert!(art.contains("I/O-limited"));
        assert!(art.contains("overlap speedup"));
    }
}
