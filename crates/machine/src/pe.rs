//! The simulated processing element.
//!
//! [`Pe`] couples a [`LocalMemory`] with I/O and operation counters. Every
//! word moved between the external store and a local buffer increments the
//! I/O counter; every arithmetic operation a kernel performs is tallied with
//! [`Pe::count_ops`]. At the end of a run, [`Pe::execution`] yields the
//! measured [`Execution`] — exactly the `(C_comp, C_io)` pair the paper's
//! balance condition needs.

use balance_core::{CostProfile, Execution, Words};

use crate::error::MachineError;
use crate::memory::{BufferId, LocalMemory};
use crate::store::{ExternalStore, Region};

/// A processing element with counted I/O and compute.
///
/// # Examples
///
/// ```
/// use balance_core::Words;
/// use balance_machine::{ExternalStore, Pe};
///
/// let mut store = ExternalStore::new();
/// let input = store.alloc_from(&[3.0, 4.0]);
/// let output = store.alloc(1);
///
/// let mut pe = Pe::new(Words::new(8));
/// let buf = pe.alloc(2)?;
/// pe.load(&store, input, buf, 0)?;
/// let hyp = {
///     let v = pe.buf(buf)?;
///     (v[0] * v[0] + v[1] * v[1]).sqrt()
/// };
/// pe.count_ops(4); // 2 mul + 1 add + 1 sqrt
/// pe.buf_mut(buf)?[0] = hyp;
/// pe.store(&mut store, buf, 0, output)?;
/// assert_eq!(store.slice(output), &[5.0]);
/// assert_eq!(pe.execution().cost.io_words(), 3);
/// # Ok::<(), balance_machine::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pe {
    mem: LocalMemory,
    ops: u64,
    io_read_words: u64,
    io_write_words: u64,
}

impl Pe {
    /// Creates a PE with `memory` words of local memory.
    #[must_use]
    pub fn new(memory: Words) -> Self {
        Pe {
            mem: LocalMemory::new(memory),
            ops: 0,
            io_read_words: 0,
            io_write_words: 0,
        }
    }

    /// The local memory (read-only view).
    #[must_use]
    pub fn mem(&self) -> &LocalMemory {
        &self.mem
    }

    /// Allocates a local buffer (forwards to [`LocalMemory::alloc`]).
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] if the working set would exceed `M`.
    pub fn alloc(&mut self, len: usize) -> Result<BufferId, MachineError> {
        self.mem.alloc(len)
    }

    /// Frees a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn free(&mut self, id: BufferId) -> Result<(), MachineError> {
        self.mem.free(id)
    }

    /// Frees all local buffers (between phases).
    pub fn free_all(&mut self) {
        self.mem.free_all();
    }

    /// Read access to a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf(&self, id: BufferId) -> Result<&[f64], MachineError> {
        self.mem.buf(id)
    }

    /// Write access to a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf_mut(&mut self, id: BufferId) -> Result<&mut [f64], MachineError> {
        self.mem.buf_mut(id)
    }

    /// In-memory update of `dst` reading `srcs` (see [`LocalMemory::update`]).
    ///
    /// # Errors
    ///
    /// As [`LocalMemory::update`].
    pub fn update<R>(
        &mut self,
        dst: BufferId,
        srcs: &[BufferId],
        f: impl FnOnce(&mut [f64], &[&[f64]]) -> R,
    ) -> Result<R, MachineError> {
        self.mem.update(dst, srcs, f)
    }

    /// Counts `n` arithmetic operations.
    pub fn count_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Loads `region.len()` contiguous words from the store into local
    /// buffer `buf` at `dst_offset`, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds errors from either side; the transfer is all-or-nothing.
    pub fn load(
        &mut self,
        store: &ExternalStore,
        region: Region,
        buf: BufferId,
        dst_offset: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf_mut(buf)?;
        let size = b.len();
        if dst_offset + region.len() > size {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: dst_offset,
                len: region.len(),
                size,
            });
        }
        store.read_words(region, &mut b[dst_offset..dst_offset + region.len()])?;
        self.io_read_words += region.len() as u64;
        Ok(())
    }

    /// Stores `region.len()` words from local buffer `buf` (starting at
    /// `src_offset`) to the store, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds errors from either side.
    pub fn store(
        &mut self,
        store: &mut ExternalStore,
        buf: BufferId,
        src_offset: usize,
        region: Region,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf(buf)?;
        if src_offset + region.len() > b.len() {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: src_offset,
                len: region.len(),
                size: b.len(),
            });
        }
        store.write_words(region, &b[src_offset..src_offset + region.len()])?;
        self.io_write_words += region.len() as u64;
        Ok(())
    }

    /// Gathers `count` words at absolute store offset `start` with `stride`
    /// into the head of `buf` (offset `dst_offset`), counting the transfer.
    ///
    /// Used by the blocked FFT (strided butterfly blocks) and by matrix
    /// column access.
    ///
    /// # Errors
    ///
    /// Bounds/stride errors from either side.
    pub fn load_strided(
        &mut self,
        store: &ExternalStore,
        start: usize,
        stride: usize,
        count: usize,
        buf: BufferId,
        dst_offset: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf_mut(buf)?;
        let size = b.len();
        if dst_offset + count > size {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: dst_offset,
                len: count,
                size,
            });
        }
        store.read_strided(start, stride, count, &mut b[dst_offset..dst_offset + count])?;
        self.io_read_words += count as u64;
        Ok(())
    }

    /// Scatters `count` words from `buf` (offset `src_offset`) to absolute
    /// store offset `start` with `stride`, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds/stride errors from either side.
    pub fn store_strided(
        &mut self,
        store: &mut ExternalStore,
        buf: BufferId,
        src_offset: usize,
        start: usize,
        stride: usize,
        count: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf(buf)?;
        if src_offset + count > b.len() {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: src_offset,
                len: count,
                size: b.len(),
            });
        }
        store.write_strided(start, stride, count, &b[src_offset..src_offset + count])?;
        self.io_write_words += count as u64;
        Ok(())
    }

    /// Words read from the outside world so far.
    #[must_use]
    pub fn io_reads(&self) -> u64 {
        self.io_read_words
    }

    /// Words written to the outside world so far.
    #[must_use]
    pub fn io_writes(&self) -> u64 {
        self.io_write_words
    }

    /// Operations delivered so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The measured execution record: `(C_comp, C_io)` plus the peak local
    /// memory footprint.
    #[must_use]
    pub fn execution(&self) -> Execution {
        Execution::new(
            CostProfile::new(self.ops, self.io_read_words + self.io_write_words),
            self.mem.peak(),
        )
    }

    /// Resets the counters (not the memory contents or peak).
    pub fn reset_counters(&mut self) {
        self.ops = 0;
        self.io_read_words = 0;
        self.io_write_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_is_counted_per_word() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(4).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        assert_eq!(pe.io_reads(), 4);
        pe.store(&mut store, buf, 0, r).unwrap();
        assert_eq!(pe.io_writes(), 4);
        assert_eq!(pe.execution().cost.io_words(), 8);
    }

    #[test]
    fn ops_are_counted() {
        let mut pe = Pe::new(Words::new(4));
        pe.count_ops(10);
        pe.count_ops(5);
        assert_eq!(pe.ops(), 15);
        assert_eq!(pe.execution().cost.comp_ops(), 15);
    }

    #[test]
    fn load_checks_buffer_bounds() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(2).unwrap();
        assert!(matches!(
            pe.load(&store, r, buf, 0),
            Err(MachineError::BufferOutOfBounds { .. })
        ));
        // Failed transfers count nothing.
        assert_eq!(pe.io_reads(), 0);
    }

    #[test]
    fn store_checks_buffer_bounds() {
        let mut store = ExternalStore::new();
        let r = store.alloc(4);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(2).unwrap();
        assert!(matches!(
            pe.store(&mut store, buf, 1, r),
            Err(MachineError::BufferOutOfBounds { .. })
        ));
        assert_eq!(pe.io_writes(), 0);
    }

    #[test]
    fn strided_transfers_count_and_roundtrip() {
        let mut store = ExternalStore::new();
        let _ = store.alloc_from(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(4).unwrap();
        pe.load_strided(&store, 0, 2, 4, buf, 0).unwrap();
        assert_eq!(pe.buf(buf).unwrap(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(pe.io_reads(), 4);
        pe.store_strided(&mut store, buf, 0, 1, 2, 4).unwrap();
        assert_eq!(pe.io_writes(), 4);
    }

    #[test]
    fn strided_bounds_failures_count_nothing() {
        let mut store = ExternalStore::new();
        let _ = store.alloc(4);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(8).unwrap();
        assert!(pe.load_strided(&store, 0, 2, 4, buf, 0).is_err());
        assert!(pe.load_strided(&store, 0, 1, 8, buf, 4).is_err()); // buffer bound
        assert_eq!(pe.io_reads(), 0);
    }

    #[test]
    fn peak_memory_reported_in_execution() {
        let mut pe = Pe::new(Words::new(100));
        let a = pe.alloc(60).unwrap();
        pe.free(a).unwrap();
        let _ = pe.alloc(10).unwrap();
        assert_eq!(pe.execution().peak_memory.get(), 60);
    }

    #[test]
    fn reset_counters_keeps_memory() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0]);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(2).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        pe.count_ops(3);
        pe.reset_counters();
        assert_eq!(pe.ops(), 0);
        assert_eq!(pe.io_reads(), 0);
        assert_eq!(pe.buf(buf).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn update_forwards_to_memory() {
        let mut pe = Pe::new(Words::new(8));
        let a = pe.alloc(2).unwrap();
        let b = pe.alloc(2).unwrap();
        pe.buf_mut(a).unwrap().copy_from_slice(&[1.0, 2.0]);
        pe.update(b, &[a], |dst, srcs| {
            dst[0] = srcs[0][0] * 10.0;
            dst[1] = srcs[0][1] * 10.0;
        })
        .unwrap();
        assert_eq!(pe.buf(b).unwrap(), &[10.0, 20.0]);
    }
}
