//! The simulated processing element.
//!
//! [`Pe`] couples a [`LocalMemory`] with I/O and operation counters. Every
//! word moved between the external store and a local buffer increments the
//! I/O counter; every arithmetic operation a kernel performs is tallied with
//! [`Pe::count_ops`]. At the end of a run, [`Pe::execution`] yields the
//! measured [`Execution`] — exactly the `(C_comp, C_io)` pair the paper's
//! balance condition needs.

use balance_core::{CostProfile, Execution, HierarchySpec, Words};

use crate::error::MachineError;
use crate::hierarchy::{Hierarchy, MemorySystem};
use crate::memory::{BufferId, LocalMemory};
use crate::store::{ExternalStore, Region};

/// A processing element with counted I/O and compute.
///
/// # Examples
///
/// ```
/// use balance_core::Words;
/// use balance_machine::{ExternalStore, Pe};
///
/// let mut store = ExternalStore::new();
/// let input = store.alloc_from(&[3.0, 4.0]);
/// let output = store.alloc(1);
///
/// let mut pe = Pe::new(Words::new(8));
/// let buf = pe.alloc(2)?;
/// pe.load(&store, input, buf, 0)?;
/// let hyp = {
///     let v = pe.buf(buf)?;
///     (v[0] * v[0] + v[1] * v[1]).sqrt()
/// };
/// pe.count_ops(4); // 2 mul + 1 add + 1 sqrt
/// pe.buf_mut(buf)?[0] = hyp;
/// pe.store(&mut store, buf, 0, output)?;
/// assert_eq!(store.slice(output), &[5.0]);
/// assert_eq!(pe.execution().cost.io_words(), 3);
/// # Ok::<(), balance_machine::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pe {
    mem: LocalMemory,
    ops: u64,
    io_read_words: u64,
    io_write_words: u64,
    /// Levels beyond the explicit local memory (level 0): a chain of LRU
    /// caches observing the addresses of every transfer the PE performs.
    /// `None` in the classic one-level configuration — zero overhead there.
    outer: Option<Hierarchy>,
}

impl Pe {
    /// Creates a PE with `memory` words of local memory (the classic
    /// one-level machine).
    #[must_use]
    pub fn new(memory: Words) -> Self {
        Pe {
            mem: LocalMemory::new(memory),
            ops: 0,
            io_read_words: 0,
            io_write_words: 0,
            outer: None,
        }
    }

    /// Creates a PE running against a memory hierarchy.
    ///
    /// Level 0 of `machine` becomes the explicitly managed local memory
    /// (the paper's `M`, enforced exactly as in [`Pe::new`]); every deeper
    /// level is modeled as a word-granular LRU cache fed the address of
    /// each word the PE transfers, with inclusive traffic accounting. The
    /// resulting [`Pe::execution`] carries one traffic entry per level:
    /// entry 0 is the PE-port word count (the historical `C_io`), entry
    /// `i > 0` the words that missed all levels up to `i` and crossed into
    /// level `i+1`.
    ///
    /// With a one-level spec this is exactly `Pe::new(spec.local_capacity())`.
    ///
    /// # Panics
    ///
    /// Panics when an outer level's capacity exceeds the cache backend's
    /// index space (≥ `u32::MAX` words) — far beyond any simulated ladder.
    #[must_use]
    pub fn for_hierarchy(machine: &HierarchySpec) -> Self {
        let mut pe = Pe::new(machine.local_capacity());
        if machine.depth() > 1 {
            let caps: Vec<Words> = machine.levels()[1..]
                .iter()
                .map(|l| l.capacity())
                .collect();
            pe.outer = Some(Hierarchy::new(&caps));
        }
        pe
    }

    /// Feeds a transferred word range to the memory system: the local
    /// memory's explicit-scheme accounting (so its [`MemorySystem`] view
    /// reports true port traffic) and the outer levels, if any.
    #[inline]
    fn observe_range(&mut self, start: usize, len: usize) {
        self.mem.record_traffic(len as u64);
        if let Some(outer) = &mut self.outer {
            for addr in start..start + len {
                outer.access(addr as u64);
            }
        }
    }

    /// Feeds a strided transfer to the memory system (see
    /// [`Pe::observe_range`]).
    #[inline]
    fn observe_strided(&mut self, start: usize, stride: usize, count: usize) {
        self.mem.record_traffic(count as u64);
        if let Some(outer) = &mut self.outer {
            for i in 0..count {
                outer.access((start + i * stride) as u64);
            }
        }
    }

    /// The local memory (read-only view).
    #[must_use]
    pub fn mem(&self) -> &LocalMemory {
        &self.mem
    }

    /// Allocates a local buffer (forwards to [`LocalMemory::alloc`]).
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] if the working set would exceed `M`.
    pub fn alloc(&mut self, len: usize) -> Result<BufferId, MachineError> {
        self.mem.alloc(len)
    }

    /// Frees a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn free(&mut self, id: BufferId) -> Result<(), MachineError> {
        self.mem.free(id)
    }

    /// Frees all local buffers (between phases).
    pub fn free_all(&mut self) {
        self.mem.free_all();
    }

    /// Read access to a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf(&self, id: BufferId) -> Result<&[f64], MachineError> {
        self.mem.buf(id)
    }

    /// Write access to a local buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf_mut(&mut self, id: BufferId) -> Result<&mut [f64], MachineError> {
        self.mem.buf_mut(id)
    }

    /// In-memory update of `dst` reading `srcs` (see [`LocalMemory::update`]).
    ///
    /// # Errors
    ///
    /// As [`LocalMemory::update`].
    pub fn update<R>(
        &mut self,
        dst: BufferId,
        srcs: &[BufferId],
        f: impl FnOnce(&mut [f64], &[&[f64]]) -> R,
    ) -> Result<R, MachineError> {
        self.mem.update(dst, srcs, f)
    }

    /// Counts `n` arithmetic operations.
    pub fn count_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Loads `region.len()` contiguous words from the store into local
    /// buffer `buf` at `dst_offset`, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds errors from either side; the transfer is all-or-nothing.
    pub fn load(
        &mut self,
        store: &ExternalStore,
        region: Region,
        buf: BufferId,
        dst_offset: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf_mut(buf)?;
        let size = b.len();
        if dst_offset + region.len() > size {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: dst_offset,
                len: region.len(),
                size,
            });
        }
        store.read_words(region, &mut b[dst_offset..dst_offset + region.len()])?;
        self.io_read_words += region.len() as u64;
        self.observe_range(region.offset(), region.len());
        Ok(())
    }

    /// Stores `region.len()` words from local buffer `buf` (starting at
    /// `src_offset`) to the store, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds errors from either side.
    pub fn store(
        &mut self,
        store: &mut ExternalStore,
        buf: BufferId,
        src_offset: usize,
        region: Region,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf(buf)?;
        if src_offset + region.len() > b.len() {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: src_offset,
                len: region.len(),
                size: b.len(),
            });
        }
        store.write_words(region, &b[src_offset..src_offset + region.len()])?;
        self.io_write_words += region.len() as u64;
        self.observe_range(region.offset(), region.len());
        Ok(())
    }

    /// Gathers `count` words at absolute store offset `start` with `stride`
    /// into the head of `buf` (offset `dst_offset`), counting the transfer.
    ///
    /// Used by the blocked FFT (strided butterfly blocks) and by matrix
    /// column access.
    ///
    /// # Errors
    ///
    /// Bounds/stride errors from either side.
    pub fn load_strided(
        &mut self,
        store: &ExternalStore,
        start: usize,
        stride: usize,
        count: usize,
        buf: BufferId,
        dst_offset: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf_mut(buf)?;
        let size = b.len();
        if dst_offset + count > size {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: dst_offset,
                len: count,
                size,
            });
        }
        store.read_strided(start, stride, count, &mut b[dst_offset..dst_offset + count])?;
        self.io_read_words += count as u64;
        self.observe_strided(start, stride, count);
        Ok(())
    }

    /// Scatters `count` words from `buf` (offset `src_offset`) to absolute
    /// store offset `start` with `stride`, counting the transfer.
    ///
    /// # Errors
    ///
    /// Bounds/stride errors from either side.
    pub fn store_strided(
        &mut self,
        store: &mut ExternalStore,
        buf: BufferId,
        src_offset: usize,
        start: usize,
        stride: usize,
        count: usize,
    ) -> Result<(), MachineError> {
        let b = self.mem.buf(buf)?;
        if src_offset + count > b.len() {
            return Err(MachineError::BufferOutOfBounds {
                id: buf.index(),
                offset: src_offset,
                len: count,
                size: b.len(),
            });
        }
        store.write_strided(start, stride, count, &b[src_offset..src_offset + count])?;
        self.io_write_words += count as u64;
        self.observe_strided(start, stride, count);
        Ok(())
    }

    /// Words read from the outside world so far.
    #[must_use]
    pub fn io_reads(&self) -> u64 {
        self.io_read_words
    }

    /// Words written to the outside world so far.
    #[must_use]
    pub fn io_writes(&self) -> u64 {
        self.io_write_words
    }

    /// Operations delivered so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The measured execution record: `(C_comp, C_io)` plus the peak local
    /// memory footprint. On a hierarchy PE the cost carries one traffic
    /// entry per level (see [`Pe::for_hierarchy`]); on the classic PE it is
    /// the historical one-level profile, bit for bit.
    #[must_use]
    pub fn execution(&self) -> Execution {
        let port = self.io_read_words + self.io_write_words;
        let cost = match &self.outer {
            None => CostProfile::new(self.ops, port),
            Some(outer) => {
                let mut traffic = vec![port];
                traffic.extend_from_slice(outer.traffic().as_slice());
                CostProfile::with_levels(self.ops, &traffic)
            }
        };
        Execution::new(cost, self.mem.peak())
    }

    /// The number of memory levels this PE runs against (1 for the classic
    /// configuration).
    #[must_use]
    pub fn depth(&self) -> usize {
        1 + self.outer.as_ref().map_or(0, Hierarchy::depth)
    }

    /// The outer levels' accounting, when running against a hierarchy.
    #[must_use]
    pub fn outer_levels(&self) -> Option<&Hierarchy> {
        self.outer.as_ref()
    }

    /// Resets the counters (not the memory contents or peak). On a
    /// hierarchy PE the outer levels' caches and counters reset too.
    pub fn reset_counters(&mut self) {
        self.ops = 0;
        self.io_read_words = 0;
        self.io_write_words = 0;
        self.mem.reset_traffic();
        if let Some(outer) = &mut self.outer {
            outer.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_is_counted_per_word() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(4).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        assert_eq!(pe.io_reads(), 4);
        pe.store(&mut store, buf, 0, r).unwrap();
        assert_eq!(pe.io_writes(), 4);
        assert_eq!(pe.execution().cost.io_words(), 8);
        // The local memory's MemorySystem view agrees with the counters.
        assert_eq!(pe.mem().recorded_traffic(), 8);
        pe.reset_counters();
        assert_eq!(pe.mem().recorded_traffic(), 0);
    }

    #[test]
    fn ops_are_counted() {
        let mut pe = Pe::new(Words::new(4));
        pe.count_ops(10);
        pe.count_ops(5);
        assert_eq!(pe.ops(), 15);
        assert_eq!(pe.execution().cost.comp_ops(), 15);
    }

    #[test]
    fn load_checks_buffer_bounds() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(2).unwrap();
        assert!(matches!(
            pe.load(&store, r, buf, 0),
            Err(MachineError::BufferOutOfBounds { .. })
        ));
        // Failed transfers count nothing.
        assert_eq!(pe.io_reads(), 0);
    }

    #[test]
    fn store_checks_buffer_bounds() {
        let mut store = ExternalStore::new();
        let r = store.alloc(4);
        let mut pe = Pe::new(Words::new(16));
        let buf = pe.alloc(2).unwrap();
        assert!(matches!(
            pe.store(&mut store, buf, 1, r),
            Err(MachineError::BufferOutOfBounds { .. })
        ));
        assert_eq!(pe.io_writes(), 0);
    }

    #[test]
    fn strided_transfers_count_and_roundtrip() {
        let mut store = ExternalStore::new();
        let _ = store.alloc_from(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(4).unwrap();
        pe.load_strided(&store, 0, 2, 4, buf, 0).unwrap();
        assert_eq!(pe.buf(buf).unwrap(), &[0.0, 2.0, 4.0, 6.0]);
        assert_eq!(pe.io_reads(), 4);
        pe.store_strided(&mut store, buf, 0, 1, 2, 4).unwrap();
        assert_eq!(pe.io_writes(), 4);
    }

    #[test]
    fn strided_bounds_failures_count_nothing() {
        let mut store = ExternalStore::new();
        let _ = store.alloc(4);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(8).unwrap();
        assert!(pe.load_strided(&store, 0, 2, 4, buf, 0).is_err());
        assert!(pe.load_strided(&store, 0, 1, 8, buf, 4).is_err()); // buffer bound
        assert_eq!(pe.io_reads(), 0);
    }

    #[test]
    fn peak_memory_reported_in_execution() {
        let mut pe = Pe::new(Words::new(100));
        let a = pe.alloc(60).unwrap();
        pe.free(a).unwrap();
        let _ = pe.alloc(10).unwrap();
        assert_eq!(pe.execution().peak_memory.get(), 60);
    }

    #[test]
    fn reset_counters_keeps_memory() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0]);
        let mut pe = Pe::new(Words::new(8));
        let buf = pe.alloc(2).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        pe.count_ops(3);
        pe.reset_counters();
        assert_eq!(pe.ops(), 0);
        assert_eq!(pe.io_reads(), 0);
        assert_eq!(pe.buf(buf).unwrap(), &[1.0, 2.0]);
    }

    fn two_level_spec(m1: u64, m2: u64) -> HierarchySpec {
        use balance_core::{LevelSpec, WordsPerSec};
        HierarchySpec::new(vec![
            LevelSpec::new(Words::new(m1), WordsPerSec::new(2.0)).unwrap(),
            LevelSpec::new(Words::new(m2), WordsPerSec::new(1.0)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn flat_spec_pe_matches_classic_pe_exactly() {
        let spec = HierarchySpec::flat(Words::new(16));
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut classic = Pe::new(Words::new(16));
        let mut hier = Pe::for_hierarchy(&spec);
        for pe in [&mut classic, &mut hier] {
            let buf = pe.alloc(4).unwrap();
            pe.load(&store, r, buf, 0).unwrap();
            pe.count_ops(8);
        }
        assert_eq!(classic.execution(), hier.execution());
        assert_eq!(hier.depth(), 1);
        assert!(hier.outer_levels().is_none());
    }

    #[test]
    fn hierarchy_pe_reports_per_level_traffic() {
        let spec = two_level_spec(8, 64);
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[0.0; 16]);
        let mut pe = Pe::for_hierarchy(&spec);
        assert_eq!(pe.depth(), 2);
        let buf = pe.alloc(8).unwrap();
        // Load the same 8 words twice: the port moves 16 words, but the
        // 64-word L2 retains them, so only 8 compulsory words go deeper.
        pe.load(&store, r.at(0, 8).unwrap(), buf, 0).unwrap();
        pe.load(&store, r.at(0, 8).unwrap(), buf, 0).unwrap();
        let exec = pe.execution();
        assert_eq!(exec.cost.level_count(), 2);
        assert_eq!(exec.cost.io_words(), 16, "port traffic is every transfer");
        assert_eq!(exec.cost.io_at(1), Some(8), "L2 filters the re-load");
        assert!(exec.cost.traffic().is_monotone_non_increasing());
    }

    #[test]
    fn strided_transfers_feed_outer_levels() {
        let spec = two_level_spec(8, 32);
        let mut store = ExternalStore::new();
        let _ = store.alloc_from(&[0.0; 16]);
        let mut pe = Pe::for_hierarchy(&spec);
        let buf = pe.alloc(4).unwrap();
        pe.load_strided(&store, 0, 2, 4, buf, 0).unwrap();
        pe.load_strided(&store, 0, 2, 4, buf, 0).unwrap();
        let exec = pe.execution();
        assert_eq!(exec.cost.io_at(0), Some(8));
        assert_eq!(exec.cost.io_at(1), Some(4));
    }

    #[test]
    fn failed_transfers_feed_nothing_to_outer_levels() {
        let spec = two_level_spec(8, 32);
        let mut store = ExternalStore::new();
        let r = store.alloc(4);
        let mut pe = Pe::for_hierarchy(&spec);
        let buf = pe.alloc(2).unwrap();
        assert!(pe.load(&store, r, buf, 0).is_err());
        assert_eq!(pe.execution().cost.io_at(1), Some(0));
    }

    #[test]
    fn reset_counters_clears_outer_levels() {
        let spec = two_level_spec(8, 32);
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[0.0; 8]);
        let mut pe = Pe::for_hierarchy(&spec);
        let buf = pe.alloc(8).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        pe.reset_counters();
        let exec = pe.execution();
        assert_eq!(exec.cost.io_at(0), Some(0));
        assert_eq!(exec.cost.io_at(1), Some(0));
    }

    #[test]
    fn update_forwards_to_memory() {
        let mut pe = Pe::new(Words::new(8));
        let a = pe.alloc(2).unwrap();
        let b = pe.alloc(2).unwrap();
        pe.buf_mut(a).unwrap().copy_from_slice(&[1.0, 2.0]);
        pe.update(b, &[a], |dst, srcs| {
            dst[0] = srcs[0][0] * 10.0;
            dst[1] = srcs[0][1] * 10.0;
        })
        .unwrap();
        assert_eq!(pe.buf(b).unwrap(), &[10.0, 20.0]);
    }
}
