//! A fully-associative LRU cache model.
//!
//! The paper's decomposition schemes manage the local memory *explicitly*.
//! The introduction, however, motivates local memory as something that can
//! "cache frequently used data". The ablation experiment (E13) contrasts the
//! two: an LRU-managed memory of the same capacity `M`, fed the address
//! trace of a naive algorithm, versus the explicit blocked scheme. [`LruCache`]
//! is the model for the former — each miss costs one line of I/O.
//!
//! The replacement policy lives in an index-linked LRU list over a node
//! arena; the **line index** (line id → node) has two backends, chosen at
//! construction:
//!
//! * **Direct-indexed** ([`LruCache::with_address_bound`]): when the caller
//!   can bound the address space — kernel traces address a dense
//!   `[0, 3n²)` range — the index is a flat `Vec<u32>` keyed by line id.
//!   One array read per access, no hashing at all. This is the backend the
//!   large-scale ablation (hundreds of millions of accesses) runs on.
//! * **Open-addressed fallback** ([`LruCache::new`]): a Fibonacci-hashed
//!   (FxHash-style multiplicative) linear-probing table with backward-shift
//!   deletion, ≤ 50% load factor. Key and value are packed side by side in
//!   one 16-byte slot, so each probe step touches a single cache line
//!   instead of straddling two parallel arrays. A hit costs a single probe
//!   sequence, and *every* miss reuses the probe's insertion slot
//!   (entry-style): on an evicting miss the new line is inserted first and
//!   the victim removed after, so the backward-shift can never move the
//!   insertion slot out from under the probe — two probe sequences per
//!   evicting miss (insert + removal), not three.
//!
//! Both backends are O(1) per access, no unsafe code, and bit-identical in
//! behavior (pinned by property test against a model LRU).

const NIL: usize = usize::MAX;

/// Vacant marker in both index backends (also bounds the node arena: a
/// cache can hold at most `u32::MAX - 1` lines).
const EMPTY: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
    /// Written since it was filled: eviction emits a write-back.
    dirty: bool,
}

/// One packed probe slot: key and node-arena index side by side, so a
/// probe touches a single 16-byte slot (one cache line) instead of
/// straddling two parallel arrays. `val == EMPTY` marks a vacant slot (so
/// `0` keys need no special casing).
#[derive(Debug, Clone, Copy)]
struct FxSlot {
    key: u64,
    val: u32,
}

const VACANT: FxSlot = FxSlot { key: 0, val: EMPTY };

/// Open-addressed line index: Fibonacci multiplicative hash, linear
/// probing, backward-shift deletion, over packed [`FxSlot`]s.
#[derive(Debug, Clone)]
struct FxMap {
    slots: Vec<FxSlot>,
    mask: usize,
    shift: u32,
}

impl FxMap {
    /// A table sized for `entries` live keys at ≤ 50% load.
    fn with_capacity(entries: usize) -> Self {
        let size = (entries.max(1) * 2).next_power_of_two().max(8);
        FxMap {
            slots: vec![VACANT; size],
            mask: size - 1,
            shift: u64::BITS - size.trailing_zeros(),
        }
    }

    #[inline]
    fn ideal(&self, key: u64) -> usize {
        // Fibonacci hashing: the golden-ratio multiplier diffuses the low
        // bits that dense line ids vary in into the table's high bits.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// The slot holding `key` (`Ok`) or the slot where it would be
    /// inserted (`Err`) — the entry-API primitive both paths share.
    #[inline]
    fn find(&self, key: u64) -> Result<usize, usize> {
        let mut pos = self.ideal(key);
        loop {
            let slot = self.slots[pos];
            if slot.val == EMPTY {
                return Err(pos);
            }
            if slot.key == key {
                return Ok(pos);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// The node index stored at a slot returned by [`FxMap::find`]'s `Ok`
    /// arm.
    #[inline]
    fn val_at(&self, pos: usize) -> u32 {
        self.slots[pos].val
    }

    /// Fills a slot previously returned by [`FxMap::find`]'s `Err` arm.
    #[inline]
    fn insert_at(&mut self, pos: usize, key: u64, val: u32) {
        debug_assert_eq!(self.slots[pos].val, EMPTY, "insert into occupied slot");
        self.slots[pos] = FxSlot { key, val };
    }

    /// Removes `key` (if present) with backward-shift deletion: no
    /// tombstones, so probe lengths never degrade under churn.
    fn remove(&mut self, key: u64) {
        let Ok(mut hole) = self.find(key) else {
            return;
        };
        let mut probe = hole;
        loop {
            probe = (probe + 1) & self.mask;
            let slot = self.slots[probe];
            if slot.val == EMPTY {
                break;
            }
            let home = self.ideal(slot.key);
            // `probe`'s entry may slide back into the hole only if its home
            // slot is cyclically outside (hole, probe] — otherwise a lookup
            // starting at `home` would never reach the hole.
            let home_in_gap = if hole <= probe {
                hole < home && home <= probe
            } else {
                home <= probe || home > hole
            };
            if !home_in_gap {
                self.slots[hole] = slot;
                hole = probe;
            }
        }
        self.slots[hole].val = EMPTY;
    }
}

/// The line-id → node index, in one of the two backend representations.
#[derive(Debug, Clone)]
enum LineIndex {
    /// Flat slot table keyed directly by line id (`EMPTY` = absent).
    Direct { slots: Vec<u32> },
    /// Open-addressed hash fallback for unbounded address spaces.
    Fx(FxMap),
}

/// A fully-associative LRU cache with word- or line-granularity.
///
/// # Examples
///
/// ```
/// use balance_machine::LruCache;
///
/// let mut cache = LruCache::new(2, 1); // 2 lines of 1 word
/// assert!(!cache.access(10));  // miss
/// assert!(!cache.access(20));  // miss
/// assert!(cache.access(10));   // hit
/// assert!(!cache.access(30));  // miss, evicts 20
/// assert!(!cache.access(20));  // miss again
/// assert_eq!(cache.misses(), 4);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_lines: usize,
    line_words: u64,
    index: LineIndex,
    resident: usize,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl LruCache {
    /// Creates a cache holding `capacity_lines` lines of `line_words` words,
    /// using the hash-indexed backend (no assumption about the address
    /// range). When the trace's addresses are known to be bounded, prefer
    /// [`LruCache::with_address_bound`] — it is substantially faster.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero, or if `capacity_lines` does not
    /// fit the `u32` node-index space.
    #[must_use]
    pub fn new(capacity_lines: usize, line_words: u64) -> Self {
        Self::check_shape(capacity_lines, line_words);
        let index = LineIndex::Fx(FxMap::with_capacity(capacity_lines));
        Self::with_index(capacity_lines, line_words, index)
    }

    fn with_index(capacity_lines: usize, line_words: u64, index: LineIndex) -> Self {
        LruCache {
            capacity_lines,
            line_words,
            index,
            resident: 0,
            nodes: Vec::with_capacity(capacity_lines.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Creates a cache whose trace addresses are promised to lie in
    /// `[0, addr_bound)`, selecting the direct-indexed backend: the line
    /// index is a flat slot table (4 bytes per possible line) and every
    /// access costs exactly one array probe — no hashing.
    ///
    /// Kernel traces address the dense range `[0, 3n²)`, so the table for
    /// an `n = 512` matmul trace is ~3 MB while the trace itself streams
    /// hundreds of millions of addresses through it.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero, if `capacity_lines` does not fit the
    /// `u32` node-index space, and on [`LruCache::access`] with an address
    /// `≥ addr_bound` (a caller contract violation).
    #[must_use]
    pub fn with_address_bound(capacity_lines: usize, line_words: u64, addr_bound: u64) -> Self {
        Self::check_shape(capacity_lines, line_words);
        assert!(addr_bound > 0, "address bound must be positive");
        let lines = usize::try_from(addr_bound.div_ceil(line_words))
            .unwrap_or_else(|_| panic!("address bound overflows usize"));
        let index = LineIndex::Direct {
            slots: vec![EMPTY; lines],
        };
        Self::with_index(capacity_lines, line_words, index)
    }

    fn check_shape(capacity_lines: usize, line_words: u64) {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        assert!(line_words > 0, "lines must hold at least one word");
        assert!(
            capacity_lines < EMPTY as usize,
            "capacity exceeds the u32 node-index space"
        );
    }

    /// Creates a word-granular cache of `capacity_words` words — the
    /// configuration that makes cache capacity directly comparable to the
    /// paper's `M`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words` is zero.
    #[must_use]
    pub fn with_capacity_words(capacity_words: usize) -> Self {
        LruCache::new(capacity_words, 1)
    }

    /// Touches word address `addr` as a read; returns `true` on hit. A
    /// miss inserts the containing line, evicting the least recently used
    /// line if full (a dirty victim emits a write-back).
    ///
    /// # Panics
    ///
    /// On the direct-indexed backend, panics if `addr` exceeds the bound
    /// declared at construction.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_inner(addr, false)
    }

    /// Touches word address `addr` with an explicit direction
    /// ([`balance_core::Access`]); returns `true` on hit. A write marks the
    /// containing line dirty (write-allocate: a write miss fills the line
    /// like a read miss would), so its eventual eviction — or a final
    /// [`LruCache::flush_dirty`] — emits a write-back.
    ///
    /// # Panics
    ///
    /// As [`LruCache::access`].
    pub fn access_tagged(&mut self, access: balance_core::Access) -> bool {
        self.access_inner(access.addr, access.is_write())
    }

    fn access_inner(&mut self, addr: u64, is_write: bool) -> bool {
        let key = addr / self.line_words;
        // One probe on either backend. The Fx probe is entry-style: on a
        // miss it also yields the slot the key will be inserted into.
        let probed: Result<usize, Option<usize>> = match &self.index {
            LineIndex::Direct { slots } => {
                let line = usize::try_from(key)
                    .ok()
                    .filter(|&k| k < slots.len())
                    .unwrap_or_else(|| {
                        panic!("address {addr} exceeds the declared address bound")
                    });
                let slot = slots[line];
                if slot != EMPTY {
                    Ok(slot as usize)
                } else {
                    Err(None)
                }
            }
            LineIndex::Fx(map) => match map.find(key) {
                Ok(pos) => Ok(map.val_at(pos) as usize),
                Err(ins) => Err(Some(ins)),
            },
        };
        let fx_slot = match probed {
            Ok(idx) => {
                self.hits += 1;
                self.move_to_front(idx);
                if is_write {
                    self.nodes[idx].dirty = true;
                }
                return true;
            }
            Err(fx_slot) => fx_slot,
        };
        self.misses += 1;
        // Detach the LRU node first (list + arena only) but defer its
        // *index* removal until after the insert: the new key then always
        // lands entry-style in the slot the probe already found — one
        // probe sequence per evicting miss instead of three. (The table
        // briefly holds capacity + 1 entries; at ≤ 50% load that still
        // leaves vacant slots, and the backward-shift removal is correct
        // in any valid table state.)
        let evicted_key = (self.resident == self.capacity_lines).then(|| self.detach_lru());
        let idx = self.alloc_node(key, is_write);
        self.push_front(idx);
        match &mut self.index {
            LineIndex::Direct { slots } => {
                slots[key as usize] = idx as u32;
                if let Some(ek) = evicted_key {
                    slots[ek as usize] = EMPTY;
                }
            }
            LineIndex::Fx(map) => {
                let Some(ins) = fx_slot else {
                    unreachable!("an Fx probe miss always yields an insertion slot")
                };
                map.insert_at(ins, key, idx as u32);
                if let Some(ek) = evicted_key {
                    map.remove(ek);
                }
            }
        }
        self.resident += 1;
        false
    }

    /// Runs a whole address trace; returns the number of misses incurred.
    ///
    /// Accepts any address iterator — in particular the streaming trace
    /// generators (`balance-kernels`' `NaiveTrace` / `BlockedTrace`), which
    /// feed the cache in O(1) memory without materializing the trace.
    pub fn run_trace(&mut self, addrs: impl IntoIterator<Item = u64>) -> u64 {
        let before = self.misses;
        for a in addrs {
            self.access(a);
        }
        self.misses - before
    }

    /// Runs a whole tagged trace; returns `(misses, writebacks)` incurred
    /// by it, including the final flush of lines left dirty at the end
    /// ([`LruCache::flush_dirty`]) — the convention of the one-pass
    /// write-back ledger, whose every capacity charges a computation's
    /// lingering dirty lines.
    pub fn run_tagged_trace(
        &mut self,
        accesses: impl IntoIterator<Item = balance_core::Access>,
    ) -> (u64, u64) {
        let (miss0, wb0) = (self.misses, self.writebacks);
        for a in accesses {
            self.access_tagged(a);
        }
        self.flush_dirty();
        (self.misses - miss0, self.writebacks - wb0)
    }

    /// Writes every resident dirty line back (marking it clean, residency
    /// unchanged) and returns how many write-backs that emitted. The
    /// end-of-run flush: a computation's final results must reach the
    /// outer level no matter how big the cache was.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut flushed = 0u64;
        let mut idx = self.head;
        while idx != NIL {
            if self.nodes[idx].dirty {
                self.nodes[idx].dirty = false;
                flushed += 1;
            }
            idx = self.nodes[idx].next;
        }
        self.writebacks += flushed;
        flushed
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// I/O words implied by the misses (`misses × line_words`).
    #[must_use]
    pub fn miss_words(&self) -> u64 {
        self.misses * self.line_words
    }

    /// Write-backs so far: dirty evictions plus any explicit
    /// [`LruCache::flush_dirty`] flushes.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// I/O words implied by the write-backs (`writebacks × line_words`).
    #[must_use]
    pub fn writeback_words(&self) -> u64 {
        self.writebacks * self.line_words
    }

    /// Lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    /// The configured capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    /// The configured line size in words.
    #[must_use]
    pub fn line_words(&self) -> u64 {
        self.line_words
    }

    fn alloc_node(&mut self, key: u64, dirty: bool) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NIL,
                next: NIL,
                dirty,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
                dirty,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    /// Unlinks the LRU node from the list and arena, returning its key.
    /// A dirty victim is charged one write-back here. The caller is
    /// responsible for removing the key from the line index (deferred so
    /// the evicting-miss path can insert entry-style first).
    fn detach_lru(&mut self) -> u64 {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on empty cache");
        self.unlink(idx);
        let key = self.nodes[idx].key;
        if self.nodes[idx].dirty {
            self.writebacks += 1;
        }
        self.free.push(idx);
        self.resident -= 1;
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends for the same shape, for behavior-pinning tests.
    fn both(capacity: usize, line_words: u64, bound: u64) -> [LruCache; 2] {
        [
            LruCache::new(capacity, line_words),
            LruCache::with_address_bound(capacity, line_words, bound),
        ]
    }

    #[test]
    fn hits_and_misses() {
        for mut c in both(3, 1, 64) {
            assert!(!c.access(1));
            assert!(!c.access(2));
            assert!(!c.access(3));
            assert!(c.access(1));
            assert!(c.access(2));
            assert_eq!(c.hits(), 2);
            assert_eq!(c.misses(), 3);
            assert_eq!(c.resident_lines(), 3);
        }
    }

    #[test]
    fn lru_eviction_order() {
        for mut c in both(2, 1, 64) {
            c.access(1);
            c.access(2);
            c.access(1); // 1 is now MRU, 2 is LRU
            c.access(3); // evicts 2
            assert!(c.access(1));
            assert!(!c.access(2));
        }
    }

    #[test]
    fn line_granularity_groups_addresses() {
        for mut c in both(2, 8, 64) {
            assert!(!c.access(0)); // line 0
            assert!(c.access(7)); // same line
            assert!(!c.access(8)); // line 1
            assert_eq!(c.miss_words(), 16);
        }
    }

    #[test]
    fn capacity_one_thrashes() {
        for mut c in both(1, 1, 64) {
            for _ in 0..3 {
                assert!(!c.access(1));
                assert!(!c.access(2));
            }
            assert_eq!(c.hits(), 0);
            assert_eq!(c.misses(), 6);
        }
    }

    #[test]
    fn run_trace_counts_misses() {
        for mut c in both(2, 1, 64) {
            let misses = c.run_trace([1, 2, 1, 3, 1, 2]);
            // 1:m 2:m 1:h 3:m(evict 2) 1:h 2:m
            assert_eq!(misses, 4);
        }
    }

    #[test]
    fn sequential_scan_larger_than_cache_never_hits() {
        for mut c in both(64, 1, 128) {
            for round in 0..3 {
                for a in 0..128u64 {
                    assert!(!c.access(a), "round {round}, addr {a}");
                }
            }
            assert_eq!(c.misses(), 3 * 128);
        }
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        for mut c in both(64, 1, 64) {
            for a in 0..64u64 {
                c.access(a);
            }
            let misses_before = c.misses();
            for _ in 0..10 {
                // Re-touch in the same order: LRU keeps the whole set resident.
                for a in 0..64u64 {
                    assert!(c.access(a));
                }
            }
            assert_eq!(c.misses(), misses_before);
        }
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_line_panics() {
        let _ = LruCache::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "address bound")]
    fn direct_backend_rejects_out_of_bound_addresses() {
        let mut c = LruCache::with_address_bound(4, 1, 16);
        c.access(16);
    }

    #[test]
    fn eviction_reuses_nodes() {
        for mut c in both(2, 1, 128) {
            for a in 0..100u64 {
                c.access(a);
            }
            // Node arena should not have grown beyond capacity + O(1).
            assert!(c.nodes.len() <= 3, "arena grew to {}", c.nodes.len());
        }
    }

    #[test]
    fn address_bound_with_line_granularity_rounds_up() {
        // Bound 17 with 8-word lines needs 3 slots (lines 0, 1, 2).
        let mut c = LruCache::with_address_bound(4, 8, 17);
        assert!(!c.access(16)); // line 2, in bounds
        assert!(c.access(16));
    }

    #[test]
    fn fx_map_survives_heavy_churn_with_colliding_keys() {
        // Dense-stride keys stress the probe chains and backshift deletion.
        let mut c = LruCache::new(17, 1);
        let mut misses = 0u64;
        for round in 0..50u64 {
            for k in 0..40u64 {
                if !c.access(k * 1024 + round % 3) {
                    misses += 1;
                }
            }
        }
        assert_eq!(c.hits() + misses, 50 * 40);
        assert!(c.resident_lines() <= 17);
    }

    #[test]
    fn dirty_evictions_emit_writebacks() {
        use balance_core::Access;
        for mut c in both(2, 1, 64) {
            c.access_tagged(Access::write(1)); // miss, line 1 dirty
            c.access_tagged(Access::read(2)); // miss, clean
            c.access_tagged(Access::read(3)); // miss, evicts dirty 1 -> wb
            assert_eq!(c.writebacks(), 1);
            c.access_tagged(Access::read(4)); // evicts clean 2 -> no wb
            assert_eq!(c.writebacks(), 1);
            assert_eq!(c.writeback_words(), 1);
        }
    }

    #[test]
    fn write_hit_dirties_a_clean_line() {
        use balance_core::Access;
        for mut c in both(2, 1, 64) {
            c.access_tagged(Access::read(1)); // miss, clean
            c.access_tagged(Access::write(1)); // hit, now dirty
            c.access_tagged(Access::read(2));
            c.access_tagged(Access::read(3)); // evicts 1 -> wb
            assert_eq!(c.writebacks(), 1);
        }
    }

    #[test]
    fn flush_emits_remaining_dirty_lines_once() {
        use balance_core::Access;
        for mut c in both(4, 1, 64) {
            c.access_tagged(Access::write(1));
            c.access_tagged(Access::write(2));
            c.access_tagged(Access::read(3));
            assert_eq!(c.writebacks(), 0, "nothing evicted yet");
            assert_eq!(c.flush_dirty(), 2);
            assert_eq!(c.writebacks(), 2);
            // A second flush finds everything clean.
            assert_eq!(c.flush_dirty(), 0);
            assert_eq!(c.resident_lines(), 3, "flush keeps lines resident");
        }
    }

    #[test]
    fn line_granular_writes_dirty_the_whole_line() {
        use balance_core::Access;
        for mut c in both(2, 8, 64) {
            c.access_tagged(Access::write(3)); // line 0 dirty
            c.access_tagged(Access::read(8)); // line 1
            c.access_tagged(Access::read(16)); // line 2, evicts line 0 -> wb
            assert_eq!(c.writebacks(), 1);
            assert_eq!(c.writeback_words(), 8);
        }
    }

    #[test]
    fn run_tagged_trace_includes_the_final_flush() {
        use balance_core::Access;
        for mut c in both(8, 1, 64) {
            let (misses, wbs) =
                c.run_tagged_trace([Access::write(1), Access::read(2), Access::write(3)]);
            assert_eq!(misses, 3);
            assert_eq!(wbs, 2, "both dirty lines flush at end of run");
        }
    }

    #[test]
    fn untagged_access_is_read_only() {
        for mut c in both(2, 1, 64) {
            c.access(1);
            c.access(2);
            c.access(3); // evicts 1 — clean, no wb
            assert_eq!(c.writebacks(), 0);
            assert_eq!(c.flush_dirty(), 0);
        }
    }

    #[test]
    fn backends_agree_on_a_mixed_trace() {
        let addrs: Vec<u64> = (0..2000u64).map(|i| (i * i * 31 + i) % 512).collect();
        let [mut fx, mut direct] = both(37, 4, 512);
        for &a in &addrs {
            assert_eq!(fx.access(a), direct.access(a), "addr {a}");
        }
        assert_eq!(fx.misses(), direct.misses());
        assert_eq!(fx.hits(), direct.hits());
        assert_eq!(fx.resident_lines(), direct.resident_lines());
    }
}
