//! A fully-associative LRU cache model.
//!
//! The paper's decomposition schemes manage the local memory *explicitly*.
//! The introduction, however, motivates local memory as something that can
//! "cache frequently used data". The ablation experiment (E13) contrasts the
//! two: an LRU-managed memory of the same capacity `M`, fed the address
//! trace of a naive algorithm, versus the explicit blocked scheme. [`LruCache`]
//! is the model for the former — each miss costs one line of I/O.
//!
//! The implementation is an index-linked LRU list over a hash map, O(1) per
//! access, no unsafe code.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// A fully-associative LRU cache with word- or line-granularity.
///
/// # Examples
///
/// ```
/// use balance_machine::LruCache;
///
/// let mut cache = LruCache::new(2, 1); // 2 lines of 1 word
/// assert!(!cache.access(10));  // miss
/// assert!(!cache.access(20));  // miss
/// assert!(cache.access(10));   // hit
/// assert!(!cache.access(30));  // miss, evicts 20
/// assert!(!cache.access(20));  // miss again
/// assert_eq!(cache.misses(), 4);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_lines: usize,
    line_words: u64,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache holding `capacity_lines` lines of `line_words` words.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(capacity_lines: usize, line_words: u64) -> Self {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        assert!(line_words > 0, "lines must hold at least one word");
        LruCache {
            capacity_lines,
            line_words,
            map: HashMap::with_capacity(capacity_lines * 2),
            nodes: Vec::with_capacity(capacity_lines),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a word-granular cache of `capacity_words` words — the
    /// configuration that makes cache capacity directly comparable to the
    /// paper's `M`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words` is zero.
    #[must_use]
    pub fn with_capacity_words(capacity_words: usize) -> Self {
        LruCache::new(capacity_words, 1)
    }

    /// Touches word address `addr`; returns `true` on hit. A miss inserts
    /// the containing line, evicting the least recently used line if full.
    pub fn access(&mut self, addr: u64) -> bool {
        let key = addr / self.line_words;
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.move_to_front(idx);
            return true;
        }
        self.misses += 1;
        if self.map.len() == self.capacity_lines {
            self.evict_lru();
        }
        let idx = self.alloc_node(key);
        self.push_front(idx);
        self.map.insert(key, idx);
        false
    }

    /// Runs a whole address trace; returns the number of misses incurred.
    pub fn run_trace(&mut self, addrs: impl IntoIterator<Item = u64>) -> u64 {
        let before = self.misses;
        for a in addrs {
            self.access(a);
        }
        self.misses - before
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// I/O words implied by the misses (`misses × line_words`).
    #[must_use]
    pub fn miss_words(&self) -> u64 {
        self.misses * self.line_words
    }

    /// Lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.map.len()
    }

    /// The configured capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }

    fn alloc_node(&mut self, key: u64) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on empty cache");
        self.unlink(idx);
        let key = self.nodes[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::with_capacity_words(3);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(3));
        assert!(c.access(1));
        assert!(c.access(2));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 3);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::with_capacity_words(2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2));
    }

    #[test]
    fn line_granularity_groups_addresses() {
        let mut c = LruCache::new(2, 8);
        assert!(!c.access(0)); // line 0
        assert!(c.access(7)); // same line
        assert!(!c.access(8)); // line 1
        assert_eq!(c.miss_words(), 16);
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut c = LruCache::with_capacity_words(1);
        for _ in 0..3 {
            assert!(!c.access(1));
            assert!(!c.access(2));
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 6);
    }

    #[test]
    fn run_trace_counts_misses() {
        let mut c = LruCache::with_capacity_words(2);
        let misses = c.run_trace([1, 2, 1, 3, 1, 2]);
        // 1:m 2:m 1:h 3:m(evict 2) 1:h 2:m
        assert_eq!(misses, 4);
    }

    #[test]
    fn sequential_scan_larger_than_cache_never_hits() {
        let mut c = LruCache::with_capacity_words(64);
        for round in 0..3 {
            for a in 0..128u64 {
                assert!(!c.access(a), "round {round}, addr {a}");
            }
        }
        assert_eq!(c.misses(), 3 * 128);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = LruCache::with_capacity_words(64);
        for a in 0..64u64 {
            c.access(a);
        }
        let misses_before = c.misses();
        for _ in 0..10 {
            // Re-touch in the same order: LRU keeps the whole set resident.
            for a in 0..64u64 {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = LruCache::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_line_panics() {
        let _ = LruCache::new(1, 0);
    }

    #[test]
    fn eviction_reuses_nodes() {
        let mut c = LruCache::with_capacity_words(2);
        for a in 0..100u64 {
            c.access(a);
        }
        // Node arena should not have grown beyond capacity + O(1).
        assert!(c.nodes.len() <= 3, "arena grew to {}", c.nodes.len());
    }
}
