//! The external store: everything outside the PE.
//!
//! In the information model the "outside world" (system memory, disks,
//! neighboring PEs) is opaque; all that matters is the number of words that
//! cross the PE boundary. [`ExternalStore`] is a flat word store that holds
//! problem inputs and outputs. Direct access through [`ExternalStore::slice`]
//! is *not* counted as I/O — it is how test harnesses build inputs and verify
//! outputs; counted transfers go through [`crate::Pe::load`] /
//! [`crate::Pe::store`].

use crate::error::MachineError;

/// A contiguous region of the external store, returned by allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    offset: usize,
    len: usize,
}

impl Region {
    /// Absolute offset of the first word.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty region.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-region `[start, start+len)` relative to this region.
    ///
    /// # Errors
    ///
    /// [`MachineError::StoreOutOfBounds`] if the sub-range does not fit.
    pub fn at(&self, start: usize, len: usize) -> Result<Region, MachineError> {
        // checked_add: `start + len` near usize::MAX must report the range
        // error, not overflow (a debug-only panic, silent wrap in release).
        match start.checked_add(len) {
            Some(end) if end <= self.len => Ok(Region {
                offset: self.offset + start,
                len,
            }),
            _ => Err(MachineError::StoreOutOfBounds {
                offset: start,
                len,
                size: self.len,
            }),
        }
    }
}

/// A flat, growable word store representing the world outside the PE.
///
/// # Examples
///
/// ```
/// use balance_machine::ExternalStore;
///
/// let mut store = ExternalStore::new();
/// let a = store.alloc_from(&[1.0, 2.0, 3.0]);
/// let b = store.alloc(2);
/// assert_eq!(store.slice(a), &[1.0, 2.0, 3.0]);
/// assert_eq!(store.slice(b), &[0.0, 0.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExternalStore {
    data: Vec<f64>,
}

impl ExternalStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ExternalStore::default()
    }

    /// Total words allocated in the store.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocates a zero-initialized region of `len` words.
    pub fn alloc(&mut self, len: usize) -> Region {
        let offset = self.data.len();
        self.data.resize(offset + len, 0.0);
        Region { offset, len }
    }

    /// Allocates a region initialized from `data`.
    pub fn alloc_from(&mut self, data: &[f64]) -> Region {
        let offset = self.data.len();
        self.data.extend_from_slice(data);
        Region {
            offset,
            len: data.len(),
        }
    }

    /// Uncounted read access (harness-side: building inputs, verifying
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `region` does not lie within the store (regions are only
    /// produced by this store's allocators, so this indicates harness
    /// misuse, not kernel misuse).
    #[must_use]
    pub fn slice(&self, region: Region) -> &[f64] {
        &self.data[region.offset..region.offset + region.len]
    }

    /// Uncounted write access (harness-side).
    ///
    /// # Panics
    ///
    /// As [`slice`](Self::slice).
    #[must_use]
    pub fn slice_mut(&mut self, region: Region) -> &mut [f64] {
        &mut self.data[region.offset..region.offset + region.len]
    }

    pub(crate) fn read_words(&self, region: Region, out: &mut [f64]) -> Result<(), MachineError> {
        self.check(region)?;
        out.copy_from_slice(self.slice(region));
        Ok(())
    }

    pub(crate) fn write_words(&mut self, region: Region, src: &[f64]) -> Result<(), MachineError> {
        self.check(region)?;
        self.slice_mut(region).copy_from_slice(src);
        Ok(())
    }

    pub(crate) fn read_strided(
        &self,
        start: usize,
        stride: usize,
        count: usize,
        out: &mut [f64],
    ) -> Result<(), MachineError> {
        if stride == 0 && count > 1 {
            return Err(MachineError::ZeroStride);
        }
        if count == 0 {
            return Ok(());
        }
        self.check_strided(start, stride, count)?;
        for (i, slot) in out.iter_mut().take(count).enumerate() {
            *slot = self.data[start + i * stride];
        }
        Ok(())
    }

    pub(crate) fn write_strided(
        &mut self,
        start: usize,
        stride: usize,
        count: usize,
        src: &[f64],
    ) -> Result<(), MachineError> {
        if stride == 0 && count > 1 {
            return Err(MachineError::ZeroStride);
        }
        if count == 0 {
            return Ok(());
        }
        self.check_strided(start, stride, count)?;
        for (i, &v) in src.iter().take(count).enumerate() {
            self.data[start + i * stride] = v;
        }
        Ok(())
    }

    /// Bounds check for a strided access, overflow-safe: `start +
    /// stride·(count−1)` near `usize::MAX` reports the range error rather
    /// than wrapping (debug-only panic otherwise).
    fn check_strided(&self, start: usize, stride: usize, count: usize) -> Result<(), MachineError> {
        let last = stride
            .checked_mul(count - 1)
            .and_then(|span| start.checked_add(span));
        match last {
            Some(last) if last < self.data.len() => Ok(()),
            _ => Err(MachineError::StoreOutOfBounds {
                offset: start,
                len: stride.saturating_mul(count - 1).saturating_add(1),
                size: self.data.len(),
            }),
        }
    }

    fn check(&self, region: Region) -> Result<(), MachineError> {
        match region.offset.checked_add(region.len) {
            Some(end) if end <= self.data.len() => Ok(()),
            _ => Err(MachineError::StoreOutOfBounds {
                offset: region.offset,
                len: region.len,
                size: self.data.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut store = ExternalStore::new();
        assert!(store.is_empty());
        let a = store.alloc(3);
        let b = store.alloc_from(&[7.0, 8.0]);
        assert_eq!(store.len(), 5);
        assert_eq!(store.slice(a), &[0.0; 3]);
        assert_eq!(store.slice(b), &[7.0, 8.0]);
        store.slice_mut(a)[1] = 5.0;
        assert_eq!(store.slice(a), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn subregions() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let sub = r.at(1, 3).unwrap();
        assert_eq!(store.slice(sub), &[2.0, 3.0, 4.0]);
        assert!(r.at(3, 3).is_err());
        assert!(r.at(5, 1).is_err());
        assert!(r.at(5, 0).unwrap().is_empty());
    }

    #[test]
    fn counted_reads_and_writes_roundtrip() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let mut buf = [0.0; 2];
        store.read_words(r.at(1, 2).unwrap(), &mut buf).unwrap();
        assert_eq!(buf, [2.0, 3.0]);
        store.write_words(r.at(0, 2).unwrap(), &[9.0, 8.0]).unwrap();
        assert_eq!(store.slice(r), &[9.0, 8.0, 3.0, 4.0]);
    }

    #[test]
    fn strided_access() {
        let mut store = ExternalStore::new();
        let _ = store.alloc_from(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let mut buf = [0.0; 4];
        store.read_strided(1, 2, 4, &mut buf).unwrap();
        assert_eq!(buf, [1.0, 3.0, 5.0, 7.0]);
        store
            .write_strided(0, 2, 4, &[10.0, 11.0, 12.0, 13.0])
            .unwrap();
        let r = Region { offset: 0, len: 8 };
        assert_eq!(
            store.slice(r),
            &[10.0, 1.0, 11.0, 3.0, 12.0, 5.0, 13.0, 7.0]
        );
    }

    #[test]
    fn overflowing_ranges_are_errors_not_panics() {
        let mut store = ExternalStore::new();
        let r = store.alloc(8);
        // Region::at with start+len wrapping past usize::MAX.
        assert!(matches!(
            r.at(usize::MAX, 2),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
        assert!(matches!(
            r.at(2, usize::MAX),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
        // Strided access with stride·(count−1) overflowing.
        let mut buf = [0.0; 4];
        assert!(matches!(
            store.read_strided(1, usize::MAX / 2, 4, &mut buf),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
        assert!(matches!(
            store.write_strided(usize::MAX, 1, 2, &[0.0; 2]),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
    }

    #[test]
    fn strided_bounds_and_zero_stride() {
        let mut store = ExternalStore::new();
        let _ = store.alloc(4);
        let mut buf = [0.0; 4];
        assert!(matches!(
            store.read_strided(0, 2, 4, &mut buf),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
        assert!(matches!(
            store.read_strided(0, 0, 2, &mut buf),
            Err(MachineError::ZeroStride)
        ));
        // Zero stride with a single element is allowed.
        store.read_strided(2, 0, 1, &mut buf).unwrap();
        // Zero count is a no-op.
        store.read_strided(0, 3, 0, &mut buf).unwrap();
        assert!(matches!(
            store.write_strided(2, 1, 4, &[0.0; 4]),
            Err(MachineError::StoreOutOfBounds { .. })
        ));
    }
}
