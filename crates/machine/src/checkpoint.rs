//! Versioned, checksummed engine checkpoints and the resumable replay
//! driver.
//!
//! PR 6 made billion-address replays routine, which makes a single pass
//! long enough to die mid-flight — to an OOM kill, a CI timeout, a
//! preempted worker — and without a durable image of engine state every
//! such death throws the whole pass away. Hua (2023)'s first principles
//! for big-memory systems treat durability of memory-resident state as a
//! prerequisite, not a feature; in that spirit the one-pass engine's
//! state is *small* relative to the trace (`O(U)` for `U` distinct
//! addresses, versus `O(|trace|)` work), so persisting it every `2²⁴`
//! addresses buys kill-anywhere resumability for a few percent of replay
//! time.
//!
//! The checkpoint image ([`StackDistance::snapshot`]) is a versioned
//! little-endian binary record: magic `"KBSD"`, format version, the
//! backend tag and address bound, the logical clock and access/compulsory
//! counters (the **trace cursor** — the engine's access count is exactly
//! the number of trace positions consumed), the live recency stack bottom
//! → top, the distance histogram, the optional first-touch log, and a
//! trailing FNV-1a checksum. The recency stack is stored *logically* (the
//! live addresses in recency order), not as the physical slot bitmap:
//! [`StackDistance::restore`] rebuilds the marker tree, slot map, and
//! last-access index from it, re-based like a fresh compaction — so a
//! restored engine is bit-identical in every observable (pinned by
//! proptest at adversarial cut points), and the format survives internal
//! layout changes. Corrupted or truncated images are rejected by checksum
//! with a typed [`CheckpointError`], never undefined behavior.
//!
//! [`resumable_replay`] is the driver: restore-if-valid-else-fresh, skip
//! the consumed prefix, observe the rest under an optional
//! [`CheckpointPolicy`] (atomic tmp-then-rename writes every N
//! addresses), an optional wall-clock deadline, and a deterministic
//! [`FaultPlan`](crate::faults::FaultPlan). The segmented engine
//! ([`crate::segmented`]) runs the same driver per worker with
//! per-segment images plus a manifest.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::faults::{FaultPlan, InjectedFault};
use crate::stackdist::StackDistance;

/// Leading magic of every checkpoint image (`K`ung `B`alance
/// `S`tack-`D`istance).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"KBSD";

/// Current checkpoint format version. Bumped on any layout change; images
/// from other versions are rejected with
/// [`CheckpointError::UnsupportedVersion`] rather than misread.
///
/// **v2** (the current format) extends v1 with the tagged engine's dirty
/// write-back state: a second histogram of closed dirty-chain gaps plus
/// the per-line open chains. v1 images (from builds before the
/// device-realistic traffic model) are rejected cleanly — re-run the
/// producing replay to regenerate them.
pub const CHECKPOINT_VERSION: u16 = 2;

/// How often the driver polls an armed wall-clock deadline, in addresses.
const DEADLINE_POLL: u64 = 1 << 20;

/// 64-bit FNV-1a over `bytes` — the checkpoint integrity checksum. Not
/// cryptographic (checkpoints are trusted-local artifacts); it exists to
/// catch truncation and torn or bit-rotted writes deterministically.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a checkpoint image was rejected or could not be persisted.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The image is shorter than its fixed header + checksum.
    Truncated {
        /// Bytes actually present.
        len: usize,
    },
    /// The image does not start with [`CHECKPOINT_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The image's format version is not [`CHECKPOINT_VERSION`].
    UnsupportedVersion {
        /// The version found in the image.
        found: u16,
    },
    /// The trailing FNV-1a checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the image.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The image passed the checksum but violates a structural invariant
    /// (internal inconsistency — e.g. a duplicate address in the recency
    /// stack, or an address beyond the declared bound).
    Corrupt {
        /// The violated invariant.
        reason: &'static str,
    },
    /// Filesystem failure while persisting or loading an image.
    Io(io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { len } => {
                write!(f, "checkpoint truncated: only {len} bytes")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint image: bad magic {found:?}")
            }
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failure: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Little-endian binary writer that appends an FNV-1a checksum on
/// [`ByteWriter::finish`].
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64_slice(&mut self, vs: &[u64]) {
        for &v in vs {
            self.u64(v);
        }
    }

    /// Seals the image: payload followed by `fnv1a(payload)`.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Little-endian binary reader over a checksum-verified payload.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Splits `bytes` into payload + trailing checksum and verifies the
    /// checksum before any field is interpreted.
    pub(crate) fn verified(bytes: &'a [u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated { len: bytes.len() });
        }
        let (payload, sum) = bytes.split_at(bytes.len() - 8);
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(sum);
        let stored = u64::from_le_bytes(sum_bytes);
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        Ok(ByteReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Corrupt {
            reason: "field length overflows",
        })?;
        if end > self.payload.len() {
            return Err(CheckpointError::Truncated {
                len: self.payload.len(),
            });
        }
        let out = &self.payload[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn array<const N: usize>(&mut self) -> Result<[u8; N], CheckpointError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads `len` u64s, refusing up front when the payload cannot hold
    /// them (so a corrupt length can never trigger a huge allocation).
    pub(crate) fn u64_vec(&mut self, len: u64) -> Result<Vec<u64>, CheckpointError> {
        let remaining = (self.payload.len() - self.pos) as u64 / 8;
        if len > remaining {
            return Err(CheckpointError::Corrupt {
                reason: "declared length exceeds payload",
            });
        }
        let n = usize::try_from(len).map_err(|_| CheckpointError::Corrupt {
            reason: "declared length overflows",
        })?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Asserts every payload byte was consumed (trailing garbage is
    /// structural corruption, not slack).
    pub(crate) fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.pos != self.payload.len() {
            return Err(CheckpointError::Corrupt {
                reason: "trailing bytes after final field",
            });
        }
        Ok(())
    }
}

/// Where and how often a resumable replay persists engine snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory holding the image files (created on first write).
    pub dir: PathBuf,
    /// Addresses between persisted snapshots (≥ 1; the default of `2²⁴`
    /// costs a few percent of replay time on the billion-address tier).
    pub every: u64,
}

/// The default checkpoint interval, in addresses.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1 << 24;

impl CheckpointPolicy {
    /// A policy writing into `dir` every `every` addresses (clamped ≥ 1).
    #[must_use]
    pub fn every(dir: impl Into<PathBuf>, every: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every: every.max(1),
        }
    }

    /// The image path for the named replay (`<dir>/<name>.ckpt`).
    #[must_use]
    pub fn file(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt"))
    }
}

/// Atomically persists `bytes` at `path`: write to a sibling tmp file,
/// then rename over the destination — a reader (or a resume after
/// SIGKILL) sees either the previous complete image or the new one, never
/// a torn write.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the directory, tmp write, or rename
/// fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("ckpt.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads an image's bytes, treating a missing (or unreadable) file as "no
/// checkpoint" — resumability must never make a fresh start an error.
#[must_use]
pub fn load(path: &Path) -> Option<Vec<u8>> {
    fs::read(path).ok()
}

/// Why a resumable replay stopped before finishing its trace.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReplayInterrupt {
    /// A [`FaultPlan`] trigger fired.
    Fault(InjectedFault),
    /// The armed wall-clock deadline passed mid-replay (progress was
    /// checkpointed first when a policy is armed, so a retry resumes).
    DeadlineExceeded,
    /// A checkpoint could not be persisted.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ReplayInterrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayInterrupt::Fault(fault) => write!(f, "replay interrupted: {fault}"),
            ReplayInterrupt::DeadlineExceeded => {
                write!(f, "replay interrupted: wall-clock deadline exceeded")
            }
            ReplayInterrupt::Checkpoint(e) => write!(f, "replay interrupted: {e}"),
        }
    }
}

impl std::error::Error for ReplayInterrupt {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayInterrupt::Fault(fault) => Some(fault),
            ReplayInterrupt::DeadlineExceeded => None,
            ReplayInterrupt::Checkpoint(e) => Some(e),
        }
    }
}

impl From<InjectedFault> for ReplayInterrupt {
    fn from(f: InjectedFault) -> Self {
        ReplayInterrupt::Fault(f)
    }
}

impl From<CheckpointError> for ReplayInterrupt {
    fn from(e: CheckpointError) -> Self {
        ReplayInterrupt::Checkpoint(e)
    }
}

/// Knobs for one resumable replay (see [`resumable_replay`]).
#[derive(Debug)]
pub struct ReplayControl<'a> {
    /// Image name within the policy directory (`<name>.ckpt`).
    pub name: &'a str,
    /// Snapshot persistence policy; `None` replays without durability.
    pub policy: Option<&'a CheckpointPolicy>,
    /// Deterministic fault schedule (use a `FaultPlan::none()` for real
    /// runs).
    pub faults: &'a FaultPlan,
    /// Hard wall-clock deadline, polled every [`DEADLINE_POLL`] addresses.
    pub deadline: Option<Instant>,
    /// On completion: `true` persists a final full-state image (segmented
    /// workers, so a later resume skips the whole range); `false` removes
    /// the image (the run is done, nothing to resume).
    pub persist_final: bool,
}

/// No faults: the default `FaultPlan` shared by plain replays.
pub(crate) static NO_FAULTS: FaultPlan = FaultPlan::none();

impl<'a> ReplayControl<'a> {
    /// A control block with everything off: no checkpoints, no faults, no
    /// deadline.
    #[must_use]
    pub fn new(name: &'a str) -> ReplayControl<'a> {
        ReplayControl {
            name,
            policy: None,
            faults: &NO_FAULTS,
            deadline: None,
            persist_final: false,
        }
    }
}

/// What a finished [`resumable_replay`] did on the durability side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// `Some(pos)` when the replay resumed from an image at trace
    /// position `pos` instead of starting fresh.
    pub resumed_at: Option<u64>,
    /// Snapshots persisted during this run.
    pub checkpoints_written: u64,
}

/// Persists `engine`'s snapshot at `path`, applying any armed
/// checkpoint-corruption fault (a flipped payload byte the checksum must
/// catch on restore).
fn write_checkpoint(
    path: &Path,
    engine: &StackDistance,
    faults: &FaultPlan,
) -> Result<(), CheckpointError> {
    let mut bytes = engine.snapshot();
    if faults.take_checkpoint_corruption() {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
    }
    write_atomic(path, &bytes)
}

/// The resumable replay driver: restores the named image if a valid one
/// exists (otherwise builds a fresh engine with `fresh`), skips the
/// already-consumed trace prefix, and observes the remaining `len −
/// resumed` addresses — persisting snapshots per the policy, honoring the
/// deadline, and consuming armed faults. A run killed at *any* point and
/// re-invoked with the same arguments finishes with an engine
/// bit-identical to an uninterrupted replay (pinned by proptest).
///
/// Invalid images — truncated, checksum-failed, or claiming more
/// accesses than `len` — are discarded and the replay starts fresh:
/// corruption costs the progress since the last good image, never
/// correctness.
///
/// # Errors
///
/// [`ReplayInterrupt`] when a fault fires, the deadline passes (progress
/// checkpointed first when a policy is armed), or a snapshot cannot be
/// persisted.
pub fn resumable_replay<I>(
    len: u64,
    addrs: I,
    fresh: impl FnOnce() -> StackDistance,
    ctl: &ReplayControl<'_>,
) -> Result<(StackDistance, ReplayStats), ReplayInterrupt>
where
    I: IntoIterator<Item = u64>,
{
    let mut stats = ReplayStats::default();
    let path = ctl.policy.map(|p| p.file(ctl.name));
    let mut engine = None;
    if let Some(path) = &path {
        if let Some(bytes) = load(path) {
            if let Ok(e) = StackDistance::restore(&bytes) {
                if e.accesses() <= len {
                    stats.resumed_at = Some(e.accesses());
                    engine = Some(e);
                }
            }
        }
    }
    let mut engine = engine.unwrap_or_else(fresh);

    let done = engine.accesses();
    let mut iter = addrs.into_iter();
    if done > 0 {
        // Position the stream past the already-replayed prefix. `nth` is
        // O(1) for the workspace's seekable trace iterators and O(done)
        // worst case — still far cheaper than re-observing.
        let skip = usize::try_from(done - 1).map_err(|_| CheckpointError::Corrupt {
            reason: "resume position overflows usize",
        })?;
        iter.nth(skip);
    }

    let every = ctl.policy.map(|p| p.every.max(1));
    let mut pos = done;
    // Countdown counters keep the per-address cost to a decrement + branch
    // (no division) — checkpointing must stay within a few percent of the
    // plain replay.
    let mut until_ckpt = every.map(|e| e - pos % e);
    let mut until_poll = DEADLINE_POLL - pos % DEADLINE_POLL;
    let armed = ctl.faults.is_armed();

    for addr in iter {
        if armed {
            ctl.faults.check_observe(pos)?;
        }
        engine.observe(addr);
        pos += 1;
        if let (Some(c), Some(path)) = (&mut until_ckpt, &path) {
            *c -= 1;
            if *c == 0 {
                *c = every.unwrap_or(1);
                if pos < len {
                    write_checkpoint(path, &engine, ctl.faults)?;
                    stats.checkpoints_written += 1;
                }
            }
        }
        until_poll -= 1;
        if until_poll == 0 {
            until_poll = DEADLINE_POLL;
            if let Some(dl) = ctl.deadline {
                if Instant::now() >= dl {
                    if let Some(path) = &path {
                        write_checkpoint(path, &engine, ctl.faults)?;
                    }
                    return Err(ReplayInterrupt::DeadlineExceeded);
                }
            }
        }
    }

    if let Some(path) = &path {
        if ctl.persist_final {
            write_checkpoint(path, &engine, ctl.faults)?;
            stats.checkpoints_written += 1;
        } else {
            let _ = fs::remove_file(path);
        }
    }
    Ok((engine, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(len: u64) -> impl Iterator<Item = u64> + Clone {
        (0..len).map(|i| (i * 7 + i * i) % 53)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("balance-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::with_capacity(64);
        w.bytes(b"ABCD");
        w.u8(7);
        w.u16(513);
        w.u64(u64::MAX - 3);
        w.u64_slice(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = ByteReader::verified(&bytes).unwrap();
        assert_eq!(r.array::<4>().unwrap(), *b"ABCD");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u64_vec(3).unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn any_flipped_byte_fails_verification() {
        let mut w = ByteWriter::with_capacity(32);
        w.u64_slice(&[10, 20, 30]);
        let bytes = w.finish();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    ByteReader::verified(&bad),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "flip at byte {i} must be caught"
            );
        }
    }

    #[test]
    fn truncation_is_rejected_typed() {
        let mut w = ByteWriter::with_capacity(32);
        w.u64(42);
        let bytes = w.finish();
        for cut in 0..8 {
            let err = ByteReader::verified(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CheckpointError::Truncated { .. }), "cut {cut}");
        }
        // Long enough for a checksum but the payload is short of a u64.
        let empty = ByteWriter::with_capacity(8).finish();
        let mut r = ByteReader::verified(&empty).unwrap();
        assert!(matches!(
            r.u64(),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_vec_length_is_refused_before_allocating() {
        let mut w = ByteWriter::with_capacity(16);
        w.u64(3);
        let bytes = w.finish();
        let mut r = ByteReader::verified(&bytes).unwrap();
        assert!(matches!(
            r.u64_vec(u64::MAX),
            Err(CheckpointError::Corrupt { .. })
        ));
    }

    #[test]
    fn uninterrupted_resumable_replay_matches_plain() {
        let len = 5000u64;
        let (engine, stats) = resumable_replay(
            len,
            trace(len),
            StackDistance::new,
            &ReplayControl::new("plain"),
        )
        .unwrap();
        assert_eq!(stats, ReplayStats::default());
        let mut plain = StackDistance::new();
        plain.observe_trace(trace(len));
        assert_eq!(engine.into_profile(), plain.into_profile());
    }

    #[test]
    fn killed_replay_resumes_bit_identically() {
        let len = 50_000u64;
        let dir = tmp_dir("resume");
        let policy = CheckpointPolicy::every(&dir, 1000);
        let faults = FaultPlan::none().with_die_at(17_777);
        let ctl = ReplayControl {
            name: "replay",
            policy: Some(&policy),
            faults: &faults,
            deadline: None,
            persist_final: false,
        };
        let err = resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap_err();
        assert!(matches!(err, ReplayInterrupt::Fault(InjectedFault::Die { at: 17_777 })));

        // Second invocation: fault consumed, resumes from the last image.
        let (engine, stats) = resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap();
        assert_eq!(stats.resumed_at, Some(17_000));
        let mut plain = StackDistance::new();
        plain.observe_trace(trace(len));
        assert_eq!(engine.into_profile(), plain.into_profile());
        assert!(!policy.file("replay").exists(), "image removed on completion");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_image_falls_back_to_fresh_start() {
        let len = 4000u64;
        let dir = tmp_dir("corrupt");
        let policy = CheckpointPolicy::every(&dir, 500);
        // Corrupt every image this run writes, then die.
        let faults = FaultPlan::none()
            .with_die_at(2200)
            .with_corrupt_checkpoints(u32::MAX);
        let ctl = ReplayControl {
            name: "replay",
            policy: Some(&policy),
            faults: &faults,
            deadline: None,
            persist_final: false,
        };
        let _ = resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap_err();
        assert!(policy.file("replay").exists());
        assert!(
            StackDistance::restore(&load(&policy.file("replay")).unwrap()).is_err(),
            "the persisted image really is corrupt"
        );

        // Resume: the corrupt image is discarded, the run starts fresh and
        // still finishes with the exact profile.
        let clean = FaultPlan::none();
        let ctl = ReplayControl { faults: &clean, ..ctl };
        let (engine, stats) = resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap();
        assert_eq!(stats.resumed_at, None, "corrupt image must not resume");
        let mut plain = StackDistance::new();
        plain.observe_trace(trace(len));
        assert_eq!(engine.into_profile(), plain.into_profile());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_final_leaves_a_complete_image() {
        let len = 1500u64;
        let dir = tmp_dir("final");
        let policy = CheckpointPolicy::every(&dir, 1 << 30);
        let ctl = ReplayControl {
            name: "seg_0",
            policy: Some(&policy),
            faults: &NO_FAULTS,
            deadline: None,
            persist_final: true,
        };
        let (engine, _) = resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap();
        let restored = StackDistance::restore(&load(&policy.file("seg_0")).unwrap()).unwrap();
        assert_eq!(restored.accesses(), len);
        assert_eq!(restored.into_profile(), engine.into_profile());

        // Re-running resumes at the end and observes nothing.
        let (engine2, stats) =
            resumable_replay(len, trace(len), StackDistance::new, &ctl).unwrap();
        assert_eq!(stats.resumed_at, Some(len));
        let mut plain = StackDistance::new();
        plain.observe_trace(trace(len));
        assert_eq!(engine2.into_profile(), plain.into_profile());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn past_deadline_interrupts_and_checkpoints() {
        let len = DEADLINE_POLL + 10;
        let dir = tmp_dir("deadline");
        let policy = CheckpointPolicy::every(&dir, u64::MAX >> 1);
        let ctl = ReplayControl {
            name: "replay",
            policy: Some(&policy),
            faults: &NO_FAULTS,
            deadline: Some(Instant::now()),
            persist_final: false,
        };
        let err =
            resumable_replay(len, (0..len).map(|i| i % 31), StackDistance::new, &ctl).unwrap_err();
        assert!(matches!(err, ReplayInterrupt::DeadlineExceeded));
        // Progress was persisted at the poll point, so a retry resumes.
        let restored = StackDistance::restore(&load(&policy.file("replay")).unwrap()).unwrap();
        assert_eq!(restored.accesses(), DEADLINE_POLL);
        let _ = fs::remove_dir_all(&dir);
    }
}
