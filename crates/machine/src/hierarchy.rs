//! The [`MemorySystem`] abstraction and the chained-cache [`Hierarchy`].
//!
//! Everything below the PE port is, to the balance model, a traffic
//! accountant: it watches the stream of word accesses the PE emits and
//! reports how many words crossed each boundary of the memory system.
//! [`MemorySystem`] captures exactly that contract, and three backends
//! implement it:
//!
//! * [`LocalMemory`] — the explicit one-level scheme of the paper: the
//!   decomposition algorithm decides every transfer, so *every* access is
//!   one word of traffic at the single boundary.
//! * [`LruCache`] — the automatic one-level scheme: traffic at the boundary
//!   is the miss volume.
//! * [`Hierarchy`] — the general case: an ordered ladder of LRU levels
//!   (innermost first). **Every level observes every access** — each level
//!   is an independent, standalone LRU over the full access stream — and a
//!   level's boundary traffic is its own miss volume. Because LRU is a
//!   stack algorithm (Mattson et al. 1970), a cache of capacity `M` holds
//!   exactly the top `M` entries of the LRU stack, so with capacities
//!   growing outward the levels are *inclusive by construction*: a hit at
//!   level `i` implies a hit at every deeper level, a word reaches level
//!   `i+1`'s boundary only by missing every level up to `i`, and traffic
//!   never grows with depth (pinned by property test). The same property
//!   is what makes the one-pass [`crate::stackdist`] engine exact: level
//!   `i`'s traffic is precisely the number of accesses whose reuse (stack)
//!   distance exceeds `M_i`, so one histogram answers every level — and
//!   every capacity — at once.
//!
//! The per-level balance law reads directly off the result: with compute
//! rate `C` and per-boundary bandwidths `IO_i`, the machine is balanced iff
//! `C_comp / C = traffic_i / IO_i` at every boundary — each level pair has
//! its own balanced-memory point (see `balance-roofline`'s hierarchical
//! roofline for the solver side). This is the paper's §5 observation made
//! executable, and the lens of its successors: Hanlon's *"Emulating a
//! large memory with a collection of smaller ones"* (2012) builds exactly
//! such a ladder and prices its per-level traffic, and Hua's *"The First
//! Principle of Big Memory Systems"* (2023) coalesces heterogeneous memory
//! tiers whose boundaries each carry their own bandwidth — and therefore
//! their own balance condition.

use balance_core::{HierarchySpec, LevelTraffic, Words};

use crate::cache::LruCache;
use crate::memory::LocalMemory;

/// A memory system observed from the PE port: an accountant for the word
/// traffic its access stream induces at every boundary of the system.
pub trait MemorySystem {
    /// Number of levels (= number of boundaries in the traffic vector).
    fn depth(&self) -> usize;

    /// Observes one word-sized access at external address `addr`.
    fn access(&mut self, addr: u64);

    /// Words that crossed each boundary so far, innermost first.
    fn traffic(&self) -> LevelTraffic;

    /// Capacity of level `level`, in words.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `level ≥ depth()`.
    fn capacity(&self, level: usize) -> Words;

    /// Feeds a whole address trace; returns the traffic vector afterwards.
    fn run_trace(&mut self, addrs: impl IntoIterator<Item = u64>) -> LevelTraffic
    where
        Self: Sized,
    {
        for a in addrs {
            self.access(a);
        }
        self.traffic()
    }
}

/// The explicit scheme: the algorithm manages the level itself, so every
/// observed access is one word of boundary traffic.
impl MemorySystem for LocalMemory {
    fn depth(&self) -> usize {
        1
    }

    fn access(&mut self, _addr: u64) {
        self.record_traffic(1);
    }

    fn traffic(&self) -> LevelTraffic {
        LevelTraffic::single(self.recorded_traffic())
    }

    fn capacity(&self, level: usize) -> Words {
        assert_eq!(level, 0, "LocalMemory has exactly one level");
        self.capacity()
    }
}

/// The automatic scheme: boundary traffic is the miss volume.
impl MemorySystem for LruCache {
    fn depth(&self) -> usize {
        1
    }

    fn access(&mut self, addr: u64) {
        let _ = LruCache::access(self, addr);
    }

    fn traffic(&self) -> LevelTraffic {
        LevelTraffic::single(self.miss_words())
    }

    fn capacity(&self, level: usize) -> Words {
        assert_eq!(level, 0, "a flat LruCache has exactly one level");
        Words::new(self.capacity_lines() as u64 * self.line_words())
    }
}

/// An N-level memory hierarchy: a ladder of word-granular LRU caches,
/// innermost (smallest) first, every level observing the full access
/// stream (Mattson stack semantics), with inclusive traffic accounting.
///
/// # Examples
///
/// ```
/// use balance_machine::{Hierarchy, MemorySystem};
/// use balance_core::Words;
///
/// // 2 words of L1 over 4 words of L2.
/// let mut h = Hierarchy::new(&[Words::new(2), Words::new(4)]);
/// for addr in [0, 1, 2, 0, 1, 2] {
///     h.access(addr);
/// }
/// // L1 thrashes (3-address loop through 2 slots): 6 misses. L2 holds all
/// // three: only the 3 compulsory misses reach the outside world.
/// assert_eq!(h.traffic().as_slice(), &[6, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<LruCache>,
    accesses: u64,
}

impl Hierarchy {
    /// Builds a hierarchy of word-granular LRU levels with the given
    /// capacities, innermost first.
    ///
    /// Levels use the hash-indexed cache backend: the address space a PE
    /// will feed the ladder (its external store) grows dynamically, so no
    /// sound bound exists at construction time. Callers that do know a
    /// bound can trade that safety for the direct-indexed backend's speed
    /// by chaining [`LruCache::with_address_bound`] caches themselves —
    /// the per-word accounting cost is priced by the
    /// `hierarchy_sweep_matmul_n96` bench.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty, when a capacity is zero or does
    /// not fit the cache's index space (see [`LruCache::new`]). Capacity
    /// monotonicity is *not* required here — [`HierarchySpec`] enforces it
    /// for well-formed machines, but the raw backend stays usable for
    /// counter-examples and tests.
    #[must_use]
    pub fn new(capacities: &[Words]) -> Self {
        assert!(!capacities.is_empty(), "a hierarchy needs at least one level");
        let levels = capacities
            .iter()
            .map(|c| {
                let lines = usize::try_from(c.get())
                    .unwrap_or_else(|_| panic!("level capacity overflows usize"));
                LruCache::new(lines, 1)
            })
            .collect();
        Hierarchy { levels, accesses: 0 }
    }

    /// Builds the backend for a validated [`HierarchySpec`] (all levels,
    /// including level 0, cache-managed — the trace-driven configuration).
    ///
    /// Word-granular: every level transfers single words regardless of the
    /// spec's line sizes. Use [`Hierarchy::from_spec_device`] to honor
    /// them.
    #[must_use]
    pub fn from_spec(spec: &HierarchySpec) -> Self {
        let caps: Vec<Words> = spec.levels().iter().map(|l| l.capacity()).collect();
        Hierarchy::new(&caps)
    }

    /// Builds the device-realistic backend for a validated
    /// [`HierarchySpec`]: each level is an LRU over `capacity / line_words`
    /// lines of that level's own line size, with dirty-bit write-back
    /// accounting. Feed it tagged accesses
    /// ([`Hierarchy::run_tagged_trace`]) and read the dual ledger off
    /// [`Hierarchy::dual_traffic`].
    ///
    /// # Panics
    ///
    /// Panics when a level's capacity is smaller than its line size (the
    /// level could not hold even one line).
    #[must_use]
    pub fn from_spec_device(spec: &HierarchySpec) -> Self {
        let levels = spec
            .levels()
            .iter()
            .map(|l| {
                let lw = l.line_words();
                assert!(
                    l.capacity().get() >= lw,
                    "level capacity {} cannot hold a {lw}-word line",
                    l.capacity()
                );
                let lines = usize::try_from(l.capacity().get() / lw)
                    .unwrap_or_else(|_| panic!("level capacity overflows usize"));
                LruCache::new(lines, lw)
            })
            .collect();
        Hierarchy { levels, accesses: 0 }
    }

    /// Total accesses observed at the innermost level.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The cache modeling level `level` (for per-level hit/miss stats).
    /// Every level sees the full access stream, so a deeper level's hit
    /// count includes accesses that also hit inner levels; its miss count
    /// is exactly the traffic at its boundary.
    ///
    /// # Panics
    ///
    /// Panics when `level ≥ depth()`.
    #[must_use]
    pub fn level(&self, level: usize) -> &LruCache {
        &self.levels[level]
    }

    /// Observes one access at **every** level (each level is a standalone
    /// LRU over the full stream — the Mattson stack model); returns the
    /// innermost level that hit, or `depth()` when the word came from the
    /// outside world.
    ///
    /// With capacities growing outward, LRU inclusion guarantees every
    /// level below the returned one hit as well, so the return value is
    /// exactly "where the word lives".
    pub fn access_returning_level(&mut self, addr: u64) -> usize {
        self.accesses += 1;
        let depth = self.levels.len();
        let mut hit_level = depth;
        for (i, cache) in self.levels.iter_mut().enumerate() {
            if cache.access(addr) && hit_level == depth {
                hit_level = i;
            }
        }
        hit_level
    }

    /// Observes one *tagged* access at every level (each level tracks its
    /// own line granularity and dirty bits); returns the innermost level
    /// that hit, as [`Hierarchy::access_returning_level`].
    pub fn access_tagged_returning_level(&mut self, access: balance_core::Access) -> usize {
        self.accesses += 1;
        let depth = self.levels.len();
        let mut hit_level = depth;
        for (i, cache) in self.levels.iter_mut().enumerate() {
            if cache.access_tagged(access) && hit_level == depth {
                hit_level = i;
            }
        }
        hit_level
    }

    /// Writes every resident dirty line back at every level; returns the
    /// total write-backs (lines) emitted. The end-of-run flush — call it
    /// before reading [`Hierarchy::dual_traffic`] for a finished
    /// computation.
    pub fn flush_dirty(&mut self) -> u64 {
        self.levels.iter_mut().map(LruCache::flush_dirty).sum()
    }

    /// Runs a whole tagged trace through every level and flushes the
    /// lingering dirty lines; returns the dual ledger
    /// ([`Hierarchy::dual_traffic`]).
    pub fn run_tagged_trace(
        &mut self,
        accesses: impl IntoIterator<Item = balance_core::Access>,
    ) -> LevelTraffic {
        for a in accesses {
            let _ = self.access_tagged_returning_level(a);
        }
        self.flush_dirty();
        self.dual_traffic()
    }

    /// The dual ledger: fetch words and write-back words that crossed each
    /// boundary, innermost first. The scalar view
    /// ([`LevelTraffic::get`] / [`LevelTraffic::as_slice`]) reads the sum,
    /// so word-granular all-read replays report exactly what
    /// [`MemorySystem::traffic`] always did.
    #[must_use]
    pub fn dual_traffic(&self) -> LevelTraffic {
        let reads: Vec<u64> = self.levels.iter().map(LruCache::miss_words).collect();
        let wbs: Vec<u64> = self.levels.iter().map(LruCache::writeback_words).collect();
        LevelTraffic::from_reads_and_writebacks(&reads, &wbs)
    }

    /// Discards all cached state and counters (capacities and line sizes
    /// are kept).
    pub fn reset(&mut self) {
        for cache in &mut self.levels {
            *cache = LruCache::new(cache.capacity_lines(), cache.line_words());
        }
        self.accesses = 0;
    }
}

impl MemorySystem for Hierarchy {
    fn depth(&self) -> usize {
        self.levels.len()
    }

    fn access(&mut self, addr: u64) {
        let _ = self.access_returning_level(addr);
    }

    fn traffic(&self) -> LevelTraffic {
        let words: Vec<u64> = self.levels.iter().map(LruCache::miss_words).collect();
        LevelTraffic::from_slice(&words)
    }

    fn capacity(&self, level: usize) -> Words {
        let c = &self.levels[level];
        Words::new(c.capacity_lines() as u64 * c.line_words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_level_hierarchy_is_bit_identical_to_bare_lru() {
        let mut h = Hierarchy::new(&[Words::new(3)]);
        let mut c = LruCache::new(3, 1);
        for addr in [1u64, 2, 3, 1, 4, 2, 2, 5, 1] {
            let level = h.access_returning_level(addr);
            let hit = c.access(addr);
            assert_eq!(level == 0, hit, "addr {addr}");
        }
        assert_eq!(h.traffic(), MemorySystem::traffic(&c));
        assert_eq!(h.level(0).hits(), c.hits());
        assert_eq!(h.level(0).misses(), c.misses());
    }

    #[test]
    fn traffic_is_inclusive_down_the_chain() {
        let mut h = Hierarchy::new(&[Words::new(2), Words::new(8), Words::new(32)]);
        for round in 0..4u64 {
            for addr in 0..16u64 {
                h.access(addr.wrapping_mul(7) % 16 + round % 2);
            }
        }
        let t = h.traffic();
        assert_eq!(t.len(), 3);
        assert!(t.is_monotone_non_increasing(), "traffic {t}");
        assert!(t.get(0).unwrap() <= h.accesses());
    }

    #[test]
    fn hit_level_reflects_where_the_word_lives() {
        let mut h = Hierarchy::new(&[Words::new(1), Words::new(2)]);
        assert_eq!(h.access_returning_level(10), 2); // cold: from outside
        assert_eq!(h.access_returning_level(10), 0); // now in L1
        assert_eq!(h.access_returning_level(11), 2); // cold, evicts 10 from L1
        assert_eq!(h.access_returning_level(10), 1); // still in L2
        assert_eq!(h.accesses(), 4);
    }

    #[test]
    fn local_memory_counts_every_access_as_traffic() {
        let mut mem = LocalMemory::new(Words::new(64));
        assert_eq!(mem.depth(), 1);
        assert_eq!(MemorySystem::capacity(&mem, 0).get(), 64);
        let t = MemorySystem::run_trace(&mut mem, [5, 5, 5, 9]);
        assert_eq!(t.as_slice(), &[4], "explicit scheme: all accesses cross");
    }

    #[test]
    fn lru_cache_reports_miss_words_as_traffic() {
        let mut c = LruCache::new(2, 4); // 2 lines of 4 words
        assert_eq!(MemorySystem::capacity(&c, 0).get(), 8);
        // Lines 0, 0, 1, 2 -> 3 line misses of 4 words each.
        let t = MemorySystem::run_trace(&mut c, [0u64, 1, 4, 8]);
        assert_eq!(t.as_slice(), &[12]);
    }

    #[test]
    fn from_spec_uses_level_capacities() {
        use balance_core::{LevelSpec, WordsPerSec};
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(4), WordsPerSec::new(1.0)).unwrap(),
            LevelSpec::new(Words::new(16), WordsPerSec::new(1.0)).unwrap(),
        ])
        .unwrap();
        let h = Hierarchy::from_spec(&spec);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.capacity(0).get(), 4);
        assert_eq!(h.capacity(1).get(), 16);
    }

    #[test]
    fn reset_clears_state_but_keeps_shape() {
        let mut h = Hierarchy::new(&[Words::new(2), Words::new(4)]);
        h.run_trace(0..8u64);
        h.reset();
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.traffic().as_slice(), &[0, 0]);
        assert_eq!(h.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_panics() {
        let _ = Hierarchy::new(&[]);
    }

    fn device_spec(levels: &[(u64, u64)]) -> HierarchySpec {
        use balance_core::{LevelSpec, WordsPerSec};
        HierarchySpec::new(
            levels
                .iter()
                .map(|&(cap, lw)| {
                    LevelSpec::new(Words::new(cap), WordsPerSec::new(1.0))
                        .unwrap()
                        .with_line_words(lw)
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    fn mixed_trace(n: u64, space: u64) -> Vec<balance_core::Access> {
        (0..n)
            .map(|i| {
                let addr = (i * 13 + (i * i) % 7) % space;
                if i % 3 == 0 {
                    balance_core::Access::write(addr)
                } else {
                    balance_core::Access::read(addr)
                }
            })
            .collect()
    }

    #[test]
    fn device_hierarchy_levels_are_standalone_dirty_lrus() {
        // Each level of the ladder must count exactly what a lone
        // line-granular dirty LRU of the same shape counts — levels with
        // *different* line sizes included.
        let spec = device_spec(&[(8, 2), (32, 4), (128, 8)]);
        let trace = mixed_trace(800, 96);
        let mut h = Hierarchy::from_spec_device(&spec);
        let t = h.run_tagged_trace(trace.iter().copied());
        for (i, &(cap, lw)) in [(8u64, 2u64), (32, 4), (128, 8)].iter().enumerate() {
            let mut lone = LruCache::new((cap / lw) as usize, lw);
            let (misses, wbs) = lone.run_tagged_trace(trace.iter().copied());
            assert_eq!(t.read_at(i), Some(misses * lw), "level {i} fetch words");
            assert_eq!(t.writeback_at(i), Some(wbs * lw), "level {i} wb words");
            assert_eq!(h.capacity(i).get(), cap);
        }
    }

    #[test]
    fn device_hierarchy_matches_traffic_profile_at_uniform_line_size() {
        // With one line size everywhere, the one-pass tagged engine's dual
        // ledger must be bit-identical to the ladder replay.
        use crate::stackdist::StackDistance;
        let spec = device_spec(&[(16, 4), (64, 4), (256, 4)]);
        let trace = mixed_trace(1200, 200);
        let mut h = Hierarchy::from_spec_device(&spec);
        let replayed = h.run_tagged_trace(trace.iter().copied());
        let tp = StackDistance::traffic_profile_of(trace.iter().copied(), 4);
        assert_eq!(tp.traffic_for(&spec), replayed);
    }

    #[test]
    fn all_read_tagged_ladder_reports_the_word_granular_numbers() {
        let spec = device_spec(&[(4, 1), (16, 1)]);
        let addrs: Vec<u64> = (0..300u64).map(|i| (i * 5 + 1) % 40).collect();
        let mut tagged = Hierarchy::from_spec_device(&spec);
        let dual = tagged
            .run_tagged_trace(addrs.iter().map(|&a| balance_core::Access::read(a)));
        let mut plain = Hierarchy::from_spec(&spec);
        let scalar = plain.run_trace(addrs.iter().copied());
        assert_eq!(dual.as_slice(), scalar.as_slice(), "scalar view unchanged");
        assert!(!dual.has_writebacks());
    }

    #[test]
    fn device_reset_keeps_line_sizes() {
        let spec = device_spec(&[(8, 4)]);
        let mut h = Hierarchy::from_spec_device(&spec);
        let t1 = h.run_tagged_trace(mixed_trace(100, 32));
        h.reset();
        assert_eq!(h.accesses(), 0);
        let t2 = h.run_tagged_trace(mixed_trace(100, 32));
        assert_eq!(t1, t2, "reset must preserve the level shapes");
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn device_level_smaller_than_its_line_panics() {
        let _ = Hierarchy::from_spec_device(&device_spec(&[(2, 4)]));
    }
}
