//! Errors raised by the PE simulator.

use core::fmt;

/// Errors raised by the PE simulator.
///
/// The most important variant is [`MachineError::OutOfMemory`]: it fires when
/// an algorithm's working set exceeds the configured local memory `M`, which
/// is precisely the condition the paper's blocking schemes are designed to
/// avoid. A kernel that trips it under some `(N, M)` has a blocking bug.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// An allocation would exceed the local memory capacity.
    OutOfMemory {
        /// Words requested by the allocation.
        requested: usize,
        /// Words currently in use.
        in_use: usize,
        /// Total capacity `M`, in words.
        capacity: usize,
    },
    /// A buffer id does not refer to a live allocation.
    InvalidBuffer {
        /// The offending handle index.
        id: usize,
    },
    /// A buffer was freed twice (the second free found the slot already
    /// empty). Distinguished from [`MachineError::InvalidBuffer`] so
    /// teardown bugs in kernels surface under their real name.
    DoubleFree {
        /// The offending handle index.
        id: usize,
    },
    /// The same buffer was passed both as destination and source of an
    /// in-memory update.
    AliasedBuffers {
        /// The offending handle index.
        id: usize,
    },
    /// An access went past the end of a local buffer.
    BufferOutOfBounds {
        /// The offending handle index.
        id: usize,
        /// First word accessed.
        offset: usize,
        /// Number of words accessed.
        len: usize,
        /// The buffer's actual size.
        size: usize,
    },
    /// An access went past the end of an external-store region.
    StoreOutOfBounds {
        /// First word accessed (absolute).
        offset: usize,
        /// Number of words accessed.
        len: usize,
        /// The store or region size.
        size: usize,
    },
    /// A strided access had a zero stride with more than one element.
    ZeroStride,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "local memory exhausted: requested {requested} words with {in_use}/{capacity} in use"
            ),
            MachineError::InvalidBuffer { id } => write!(f, "invalid buffer id {id}"),
            MachineError::DoubleFree { id } => {
                write!(f, "buffer {id} freed twice (already returned to the arena)")
            }
            MachineError::AliasedBuffers { id } => {
                write!(f, "buffer {id} passed as both destination and source")
            }
            MachineError::BufferOutOfBounds {
                id,
                offset,
                len,
                size,
            } => write!(
                f,
                "buffer {id} access out of bounds: [{offset}, {offset}+{len}) of {size}"
            ),
            MachineError::StoreOutOfBounds { offset, len, size } => write!(
                f,
                "external store access out of bounds: [{offset}, {offset}+{len}) of {size}"
            ),
            MachineError::ZeroStride => write!(f, "strided access with zero stride"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_numbers() {
        let e = MachineError::OutOfMemory {
            requested: 100,
            in_use: 30,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("30") && s.contains("64"));

        let e = MachineError::BufferOutOfBounds {
            id: 2,
            offset: 10,
            len: 5,
            size: 12,
        };
        assert!(e.to_string().contains("10"));
        assert!(MachineError::ZeroStride.to_string().contains("stride"));
        let e = MachineError::DoubleFree { id: 3 };
        assert!(e.to_string().contains("freed twice"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn is_error_trait_object() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&MachineError::InvalidBuffer { id: 0 });
    }
}
