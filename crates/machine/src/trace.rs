//! Phase-labeled cost attribution.
//!
//! Multi-phase algorithms (external sorting's run formation + merge, LU's
//! panel + update) want per-phase `(C_comp, C_io)` breakdowns. A
//! [`PhaseRecorder`] snapshots a [`Pe`]'s counters at phase boundaries and
//! reports the deltas.

use balance_core::CostProfile;

use crate::pe::Pe;

/// One recorded phase: a label and the costs incurred during it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase label (e.g. `"run-formation"`).
    pub label: String,
    /// Costs incurred during the phase.
    pub cost: CostProfile,
}

/// Records per-phase cost deltas from a PE's monotone counters.
///
/// # Examples
///
/// ```
/// use balance_core::Words;
/// use balance_machine::{ExternalStore, Pe, PhaseRecorder};
///
/// let mut store = ExternalStore::new();
/// let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
/// let mut pe = Pe::new(Words::new(8));
/// let mut rec = PhaseRecorder::new(&pe);
///
/// let buf = pe.alloc(4)?;
/// pe.load(&store, r, buf, 0)?;
/// rec.record("load", &pe);
///
/// pe.count_ops(42);
/// rec.record("compute", &pe);
///
/// assert_eq!(rec.phases()[0].cost.io_words(), 4);
/// assert_eq!(rec.phases()[1].cost.comp_ops(), 42);
/// # Ok::<(), balance_machine::MachineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhaseRecorder {
    last_ops: u64,
    last_io: u64,
    phases: Vec<Phase>,
}

impl PhaseRecorder {
    /// Starts recording from the PE's current counter values.
    #[must_use]
    pub fn new(pe: &Pe) -> Self {
        PhaseRecorder {
            last_ops: pe.ops(),
            last_io: pe.io_reads() + pe.io_writes(),
            phases: Vec::new(),
        }
    }

    /// Closes the current phase under `label`, recording costs since the
    /// previous boundary.
    pub fn record(&mut self, label: impl Into<String>, pe: &Pe) {
        let ops = pe.ops();
        let io = pe.io_reads() + pe.io_writes();
        self.phases.push(Phase {
            label: label.into(),
            cost: CostProfile::new(ops - self.last_ops, io - self.last_io),
        });
        self.last_ops = ops;
        self.last_io = io;
    }

    /// The recorded phases, in order.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Sum of all recorded phases.
    #[must_use]
    pub fn total(&self) -> CostProfile {
        self.phases
            .iter()
            .fold(CostProfile::new(0, 0), |acc, p| acc.combined(&p.cost))
    }

    /// The phase with the given label, if recorded.
    #[must_use]
    pub fn phase(&self, label: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ExternalStore;
    use balance_core::Words;

    #[test]
    fn deltas_are_attributed_to_phases() {
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[0.0; 10]);
        let mut pe = Pe::new(Words::new(16));
        let mut rec = PhaseRecorder::new(&pe);

        let buf = pe.alloc(10).unwrap();
        pe.load(&store, r, buf, 0).unwrap();
        pe.count_ops(5);
        rec.record("a", &pe);

        pe.count_ops(7);
        pe.store(&mut store, buf, 0, r).unwrap();
        rec.record("b", &pe);

        assert_eq!(rec.phases().len(), 2);
        assert_eq!(rec.phase("a").unwrap().cost, CostProfile::new(5, 10));
        assert_eq!(rec.phase("b").unwrap().cost, CostProfile::new(7, 10));
        assert_eq!(rec.total(), CostProfile::new(12, 20));
        assert!(rec.phase("c").is_none());
    }

    #[test]
    fn empty_phase_records_zero() {
        let pe = Pe::new(Words::new(4));
        let mut rec = PhaseRecorder::new(&pe);
        rec.record("idle", &pe);
        assert_eq!(rec.phase("idle").unwrap().cost, CostProfile::new(0, 0));
    }

    #[test]
    fn recorder_starts_at_current_counters() {
        let mut pe = Pe::new(Words::new(4));
        pe.count_ops(100);
        let mut rec = PhaseRecorder::new(&pe);
        pe.count_ops(1);
        rec.record("tail", &pe);
        assert_eq!(rec.phase("tail").unwrap().cost.comp_ops(), 1);
    }
}
