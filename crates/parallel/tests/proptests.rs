//! Property-based tests for the parallel-architecture models and the
//! systolic simulators.

use balance_core::{GrowthLaw, OpsPerSec, PeSpec, Words, WordsPerSec};
use balance_kernels::{reference, workload};
use balance_parallel::systolic::givens::triangularize;
use balance_parallel::systolic::matmul::systolic_matmul;
use balance_parallel::{LinearArray, SquareMesh};
use proptest::prelude::*;

fn cell() -> PeSpec {
    PeSpec::new(
        OpsPerSec::new(1.0e7),
        WordsPerSec::new(2.0e7),
        Words::new(1024),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Systolic matmul equals the reference product for random sizes/seeds.
    #[test]
    fn systolic_matmul_is_exact(n in 1usize..14, seed in 0u64..500) {
        let a = workload::random_matrix(n, seed);
        let b = workload::random_matrix(n, seed ^ 0xff);
        let run = systolic_matmul(&a, &b, n);
        let want = reference::matmul(&a, &b, n);
        prop_assert!(reference::max_abs_diff(&run.c, &want) < 1e-11 * (n as f64 + 1.0));
        prop_assert_eq!(run.cost.comp_ops(), 2 * (n as u64).pow(3));
        prop_assert_eq!(run.memory_per_cell, 3);
    }

    /// Givens triangularization preserves the Gram matrix and yields an
    /// upper-triangular R with nonnegative diagonal.
    #[test]
    fn givens_preserves_gram(n in 1usize..12, seed in 0u64..500) {
        let a = workload::random_matrix(n, seed);
        let run = triangularize(&a, n);
        for i in 0..n {
            prop_assert!(run.r[i * n + i] >= 0.0);
            for j in 0..i {
                prop_assert_eq!(run.r[i * n + j], 0.0);
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut rr = 0.0;
                let mut aa = 0.0;
                for k in 0..n {
                    rr += run.r[k * n + i] * run.r[k * n + j];
                    aa += a[k * n + i] * a[k * n + j];
                }
                prop_assert!((rr - aa).abs() < 1e-9 * (n as f64 + 1.0),
                    "gram mismatch at ({i},{j})");
            }
        }
    }

    /// Linear array: total required memory is p² × per-cell baseline for
    /// the matrix law, and per-PE memory is total / p — for any p.
    #[test]
    fn linear_array_identities(p in 1u64..200, m_old in 1u64..10_000) {
        let array = LinearArray::new(p, cell()).unwrap();
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        let total = array.required_total_memory(law, Words::new(m_old)).unwrap();
        let per_pe = array.required_memory_per_pe(law, Words::new(m_old)).unwrap();
        prop_assert_eq!(total.get(), p * p * m_old);
        prop_assert_eq!(per_pe.get(), p * m_old);
        prop_assert!((array.alpha().get() - p as f64).abs() < 1e-12);
    }

    /// Square mesh: per-PE memory for the α²-law is exactly the baseline,
    /// independent of p; for the α³-law it is p × baseline.
    #[test]
    fn mesh_identities(p in 1u64..200, m_old in 1u64..10_000) {
        let mesh = SquareMesh::new(p, cell()).unwrap();
        let law2 = GrowthLaw::Polynomial { degree: 2.0 };
        let law3 = GrowthLaw::Polynomial { degree: 3.0 };
        prop_assert_eq!(
            mesh.required_memory_per_pe(law2, Words::new(m_old)).unwrap().get(),
            m_old
        );
        prop_assert_eq!(
            mesh.required_memory_per_pe(law3, Words::new(m_old)).unwrap().get(),
            p * m_old
        );
    }

    /// Mesh and linear array agree on alpha for equal PE counts only when
    /// p_mesh² = p_linear — the mesh gets more I/O for the same compute.
    #[test]
    fn mesh_has_more_io_headroom(p in 2u64..40) {
        let linear = LinearArray::new(p * p, cell()).unwrap();
        let mesh = SquareMesh::new(p, cell()).unwrap();
        // Same compute (p² cells), but mesh alpha = p < linear alpha = p².
        prop_assert!((linear.alpha().get() - (p * p) as f64).abs() < 1e-12);
        prop_assert!((mesh.alpha().get() - p as f64).abs() < 1e-12);
    }

    /// Systolic matmul utilization is exactly n/(3n−2): n³ useful
    /// cell-cycles over n²·(3n−2) — approaching 1/3 from above.
    #[test]
    fn systolic_utilization_exact(n in 2usize..16) {
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let run = systolic_matmul(&a, &b, n);
        let exact = n as f64 / (3 * n - 2) as f64;
        prop_assert!((run.utilization - exact).abs() < 1e-12);
    }
}

// --- Measured parallel machine: conservation and serial equivalence. ---

use balance_core::HierarchySpec;
use balance_kernels::Verify;
use balance_parallel::{
    linear_array_series, measured_growth_law, mesh_series, parallel_kernels, ParMatMul,
    ParallelSweepConfig, Topology,
};

/// A per-kernel parameter pick that every registry kernel supports: small
/// problem sizes, memories above every minimum (and, for the grid, large
/// enough that each of up to 4 PEs owns a slab row).
fn kernel_params(idx: usize, n_raw: usize, m_raw: usize) -> (usize, usize) {
    match idx {
        0 => (4 + n_raw % 14, 3 + m_raw),        // matmul: n in 4..18
        1 => (1 + n_raw % 20, 1 + m_raw),        // transpose: n in 1..21
        _ => (1 + n_raw % 4, 60 + m_raw),        // grid2d: iterations 1..5
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Traffic conservation: for every kernel in the parallel registry, on
    /// machines of 1..=4 PEs, the per-PE external I/O counters sum exactly
    /// to the machine-boundary counter — no word appears or vanishes
    /// between the two ledgers, and communication stays a separate class.
    #[test]
    fn parallel_external_io_is_conserved(
        p in 1u64..5,
        n_raw in 0usize..100,
        m_raw in 0usize..200,
        seed in 0u64..1000,
    ) {
        for (idx, kernel) in parallel_kernels().iter().enumerate() {
            let (n, m) = kernel_params(idx, n_raw, m_raw);
            let topo = Topology::linear(p).unwrap();
            let run = kernel
                .run_on(topo, n, &HierarchySpec::flat_words(m), seed, Verify::Full)
                .unwrap();
            let per_pe_sum: u64 = run
                .execution
                .per_pe
                .iter()
                .map(|r| r.execution.cost.io_words())
                .sum();
            prop_assert_eq!(per_pe_sum, run.execution.machine_port_words,
                "kernel {} p={} m={}", kernel.name(), p, m);
            prop_assert_eq!(per_pe_sum, run.execution.port_words());
            // On flat PEs the port IS the external boundary.
            prop_assert_eq!(per_pe_sum, run.execution.external_words());
            prop_assert!(run.execution.is_conserved());
            // 1-PE machines never communicate.
            if p == 1 {
                prop_assert_eq!(run.execution.comm_words, 0);
            }
        }
    }

    /// A 1-PE ParallelMachine is bit-identical to the serial single-PE
    /// `Kernel::run_on` path for every kernel in the registry: same
    /// operation count, same per-level traffic vector, same peak memory —
    /// on flat machines and under a two-level hierarchy alike.
    #[test]
    fn one_pe_machine_matches_serial_kernel_exactly(
        n_raw in 0usize..100,
        m_raw in 0usize..200,
        seed in 0u64..1000,
        leveled in proptest::bool::ANY,
    ) {
        for (idx, kernel) in parallel_kernels().iter().enumerate() {
            let (n, m) = kernel_params(idx, n_raw, m_raw);
            let spec = if leveled {
                HierarchySpec::new(vec![
                    balance_core::LevelSpec::new(
                        Words::new(m as u64),
                        balance_core::WordsPerSec::new(2.0),
                    ).unwrap(),
                    balance_core::LevelSpec::new(
                        Words::new(4 * m as u64 + 16),
                        balance_core::WordsPerSec::new(1.0),
                    ).unwrap(),
                ]).unwrap()
            } else {
                HierarchySpec::flat_words(m)
            };
            let serial = kernel.serial().run_on(n, &spec, seed, Verify::Full).unwrap();
            let par = kernel
                .run_on(Topology::linear(1).unwrap(), n, &spec, seed, Verify::Full)
                .unwrap();
            prop_assert_eq!(par.execution.per_pe.len(), 1);
            prop_assert_eq!(
                par.execution.per_pe[0].execution, serial.execution,
                "kernel {} n={} m={} leveled={}", kernel.name(), n, m, leveled
            );
            prop_assert_eq!(par.execution.comm_words, 0);
            prop_assert_eq!(par.per_pe_m, serial.m);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The §4 validation, measured: the growth law fitted from real
    /// multi-PE matmul runs snaps to the paper's matrix law (α²), and the
    /// per-PE memory-at-balance series it implies reproduces the analytic
    /// `linear_array_series` / `mesh_series` predictions exactly — the
    /// only arithmetic between them is the shared `div_ceil` rounding.
    #[test]
    fn measured_per_pe_memory_matches_analytic_series(
        seed in 0u64..1000,
        m_old_raw in 1u64..5000,
    ) {
        let sweep = ParallelSweepConfig::new(
            64,
            vec![Topology::linear(1).unwrap(), Topology::linear(2).unwrap()],
            (5..=11).map(|k| 1usize << k).collect(),
            seed,
        )
        .with_verify(Verify::Freivalds { rounds: 1 });
        let measured_law = measured_growth_law(&ParMatMul, &sweep, 0.35).unwrap();
        prop_assert_eq!(measured_law, GrowthLaw::Polynomial { degree: 2.0 });

        let m_old = Words::new(m_old_raw);
        let ps = [1u64, 2, 4, 8, 16, 32];
        // Linear arrays: measured-law predictions == analytic predictions,
        // point for point (per-PE = div_ceil(total, p) on both sides).
        let analytic = linear_array_series(
            cell(), GrowthLaw::Polynomial { degree: 2.0 }, m_old, &ps,
        ).unwrap();
        let measured = linear_array_series(cell(), measured_law, m_old, &ps).unwrap();
        for (a, m) in analytic.iter().zip(&measured) {
            prop_assert_eq!(a.per_pe_memory, m.per_pe_memory, "linear p = {}", a.p);
            prop_assert_eq!(a.total_memory, m.total_memory);
            prop_assert_eq!(a.per_pe_memory, a.total_memory.div_ceil(a.p));
        }
        // Meshes: same law, per-PE constant (self-balancing, Fig. 4).
        let analytic = mesh_series(
            cell(), GrowthLaw::Polynomial { degree: 2.0 }, m_old, &ps,
        ).unwrap();
        let measured = mesh_series(cell(), measured_law, m_old, &ps).unwrap();
        for (a, m) in analytic.iter().zip(&measured) {
            prop_assert_eq!(a.per_pe_memory, m.per_pe_memory, "mesh p = {}", a.p);
            prop_assert_eq!(m.per_pe_memory, m_old_raw, "self-balancing");
        }
    }
}
