//! Property-based tests for the parallel-architecture models and the
//! systolic simulators.

use balance_core::{GrowthLaw, OpsPerSec, PeSpec, Words, WordsPerSec};
use balance_kernels::{reference, workload};
use balance_parallel::systolic::givens::triangularize;
use balance_parallel::systolic::matmul::systolic_matmul;
use balance_parallel::{LinearArray, SquareMesh};
use proptest::prelude::*;

fn cell() -> PeSpec {
    PeSpec::new(
        OpsPerSec::new(1.0e7),
        WordsPerSec::new(2.0e7),
        Words::new(1024),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Systolic matmul equals the reference product for random sizes/seeds.
    #[test]
    fn systolic_matmul_is_exact(n in 1usize..14, seed in 0u64..500) {
        let a = workload::random_matrix(n, seed);
        let b = workload::random_matrix(n, seed ^ 0xff);
        let run = systolic_matmul(&a, &b, n);
        let want = reference::matmul(&a, &b, n);
        prop_assert!(reference::max_abs_diff(&run.c, &want) < 1e-11 * (n as f64 + 1.0));
        prop_assert_eq!(run.cost.comp_ops(), 2 * (n as u64).pow(3));
        prop_assert_eq!(run.memory_per_cell, 3);
    }

    /// Givens triangularization preserves the Gram matrix and yields an
    /// upper-triangular R with nonnegative diagonal.
    #[test]
    fn givens_preserves_gram(n in 1usize..12, seed in 0u64..500) {
        let a = workload::random_matrix(n, seed);
        let run = triangularize(&a, n);
        for i in 0..n {
            prop_assert!(run.r[i * n + i] >= 0.0);
            for j in 0..i {
                prop_assert_eq!(run.r[i * n + j], 0.0);
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut rr = 0.0;
                let mut aa = 0.0;
                for k in 0..n {
                    rr += run.r[k * n + i] * run.r[k * n + j];
                    aa += a[k * n + i] * a[k * n + j];
                }
                prop_assert!((rr - aa).abs() < 1e-9 * (n as f64 + 1.0),
                    "gram mismatch at ({i},{j})");
            }
        }
    }

    /// Linear array: total required memory is p² × per-cell baseline for
    /// the matrix law, and per-PE memory is total / p — for any p.
    #[test]
    fn linear_array_identities(p in 1u64..200, m_old in 1u64..10_000) {
        let array = LinearArray::new(p, cell()).unwrap();
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        let total = array.required_total_memory(law, Words::new(m_old)).unwrap();
        let per_pe = array.required_memory_per_pe(law, Words::new(m_old)).unwrap();
        prop_assert_eq!(total.get(), p * p * m_old);
        prop_assert_eq!(per_pe.get(), p * m_old);
        prop_assert!((array.alpha().get() - p as f64).abs() < 1e-12);
    }

    /// Square mesh: per-PE memory for the α²-law is exactly the baseline,
    /// independent of p; for the α³-law it is p × baseline.
    #[test]
    fn mesh_identities(p in 1u64..200, m_old in 1u64..10_000) {
        let mesh = SquareMesh::new(p, cell()).unwrap();
        let law2 = GrowthLaw::Polynomial { degree: 2.0 };
        let law3 = GrowthLaw::Polynomial { degree: 3.0 };
        prop_assert_eq!(
            mesh.required_memory_per_pe(law2, Words::new(m_old)).unwrap().get(),
            m_old
        );
        prop_assert_eq!(
            mesh.required_memory_per_pe(law3, Words::new(m_old)).unwrap().get(),
            p * m_old
        );
    }

    /// Mesh and linear array agree on alpha for equal PE counts only when
    /// p_mesh² = p_linear — the mesh gets more I/O for the same compute.
    #[test]
    fn mesh_has_more_io_headroom(p in 2u64..40) {
        let linear = LinearArray::new(p * p, cell()).unwrap();
        let mesh = SquareMesh::new(p, cell()).unwrap();
        // Same compute (p² cells), but mesh alpha = p < linear alpha = p².
        prop_assert!((linear.alpha().get() - (p * p) as f64).abs() < 1e-12);
        prop_assert!((mesh.alpha().get() - p as f64).abs() < 1e-12);
    }

    /// Systolic matmul utilization is exactly n/(3n−2): n³ useful
    /// cell-cycles over n²·(3n−2) — approaching 1/3 from above.
    #[test]
    fn systolic_utilization_exact(n in 2usize..16) {
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let run = systolic_matmul(&a, &b, n);
        let exact = n as f64 / (3 * n - 2) as f64;
        prop_assert!((run.utilization - exact).abs() < 1e-12);
    }
}
