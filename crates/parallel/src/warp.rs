//! The CMU Warp machine case study (paper §5).
//!
//! > *"The CMU Warp machine consists of a one-dimensional systolic array …
//! > With a local memory of up to 64K 32-bit words, each PE can perform 10
//! > million 32-bit floating-point operations per second, and transfer 20
//! > million words per second to and from its neighboring PEs. Having a
//! > rather large I/O bandwidth and a relatively large local memory for each
//! > PE of the Warp machine reflects the results of this paper."*
//!
//! This module encodes those constants and quantifies the claim: for each of
//! the paper's computations, the memory a Warp cell *needs* for balance, and
//! the **headroom** — the factor by which `C/IO` could grow before the 64K
//! local memory stops sufficing.

use core::fmt;

use balance_core::{BalanceError, IntensityModel, OpsPerSec, PeSpec, Words, WordsPerSec};

use crate::array::LinearArray;

/// Warp cell computation bandwidth: 10 MFLOP/s.
pub const WARP_CELL_OPS: f64 = 10.0e6;
/// Warp cell I/O bandwidth: 20 Mwords/s.
pub const WARP_CELL_IO: f64 = 20.0e6;
/// Warp cell local memory: 64K 32-bit words.
pub const WARP_CELL_MEMORY: u64 = 64 * 1024;
/// Production Warp arrays had 10 cells.
pub const WARP_CELLS: u64 = 10;

/// The Warp cell as a [`PeSpec`].
#[must_use]
pub fn warp_cell() -> PeSpec {
    PeSpec::new(
        OpsPerSec::new(WARP_CELL_OPS),
        WordsPerSec::new(WARP_CELL_IO),
        Words::new(WARP_CELL_MEMORY),
    )
    .expect("constants are valid")
}

/// The 10-cell Warp array as a [`LinearArray`].
#[must_use]
pub fn warp_array() -> LinearArray {
    LinearArray::new(WARP_CELLS, warp_cell()).expect("constants are valid")
}

/// One row of the case study: a computation against the Warp cell/array.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpCaseRow {
    /// Computation name.
    pub computation: &'static str,
    /// Its intensity model.
    pub model: IntensityModel,
    /// Memory (words) that balances a single cell, if finite.
    pub balanced_cell_memory: Option<Words>,
    /// Memory per PE that balances the 10-cell array.
    pub balanced_array_memory_per_pe: Option<Words>,
    /// Factor by which C/IO could grow before 64K stops sufficing for a
    /// single cell (None for I/O-bounded computations, where the question
    /// does not arise — balance holds or fails regardless of memory).
    pub headroom: Option<f64>,
}

/// The full §5 case study.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpReport {
    /// The cell characterization.
    pub cell: PeSpec,
    /// The cell machine balance `C/IO` (0.5 op/word).
    pub cell_balance: f64,
    /// The aggregate array balance (5 op/word for 10 cells).
    pub array_balance: f64,
    /// Per-computation rows.
    pub rows: Vec<WarpCaseRow>,
}

/// Computes the §5 case study for a set of named intensity models.
///
/// # Errors
///
/// Propagates only unexpected model errors; I/O-bounded rows are reported
/// with `None` entries rather than failing.
pub fn case_study(
    computations: &[(&'static str, IntensityModel)],
) -> Result<WarpReport, BalanceError> {
    let cell = warp_cell();
    let array = warp_array();
    let cell_balance = cell.machine_balance();
    let array_balance = array.aggregate()?.machine_balance();

    let mut rows = Vec::new();
    for &(name, model) in computations {
        let balanced_cell_memory = match model.balanced_memory(cell_balance) {
            Ok(m) => Some(m),
            Err(BalanceError::IoBounded) => None,
            Err(e) => return Err(e),
        };
        // Per-PE memory for the balanced 10-cell array: total / p.
        let balanced_array_memory_per_pe = match model.balanced_memory(array_balance) {
            Ok(total) => Some(Words::new(total.get().div_ceil(WARP_CELLS))),
            Err(BalanceError::IoBounded) => None,
            Err(e) => return Err(e),
        };
        // Headroom: r(64K) / cell_balance — how much C/IO growth the real
        // memory could absorb.
        let headroom = if model.is_io_bounded() {
            None
        } else {
            Some(model.eval(WARP_CELL_MEMORY as f64) / cell_balance)
        };
        rows.push(WarpCaseRow {
            computation: name,
            model,
            balanced_cell_memory,
            balanced_array_memory_per_pe,
            headroom,
        });
    }
    Ok(WarpReport {
        cell,
        cell_balance,
        array_balance,
        rows,
    })
}

/// The default computation set: the paper's summary table.
#[must_use]
pub fn default_computations() -> Vec<(&'static str, IntensityModel)> {
    vec![
        ("matmul", IntensityModel::sqrt_m(1.0 / 3.0f64.sqrt())),
        (
            "triangularization",
            IntensityModel::sqrt_m(0.5 / 3.0f64.sqrt()),
        ),
        ("grid2d", IntensityModel::root_m(2, 0.884)),
        ("grid3d", IntensityModel::root_m(3, 0.926)),
        ("fft", IntensityModel::log2_m(1.5)),
        ("sort", IntensityModel::log2_m(0.9)),
        ("matvec", IntensityModel::constant(2.0)),
        ("trisolve", IntensityModel::constant(2.0)),
    ]
}

impl fmt::Display for WarpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Warp cell: C/IO = {:.2} op/word; array C/IO = {:.2}",
            self.cell_balance, self.array_balance
        )?;
        writeln!(
            f,
            "{:<18} {:>16} {:>18} {:>12}",
            "computation", "M_bal (cell)", "M_bal/PE (array)", "headroom"
        )?;
        for row in &self.rows {
            let cell_m = row
                .balanced_cell_memory
                .map_or_else(|| "impossible".into(), |m| m.get().to_string());
            let arr_m = row
                .balanced_array_memory_per_pe
                .map_or_else(|| "impossible".into(), |m| m.get().to_string());
            let head = row
                .headroom
                .map_or_else(|| "-".into(), |h| format!("{h:.1}x"));
            writeln!(
                f,
                "{:<18} {:>16} {:>18} {:>12}",
                row.computation, cell_m, arr_m, head
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_constants_match_the_paper() {
        let cell = warp_cell();
        assert_eq!(cell.comp_bw().get(), 10.0e6);
        assert_eq!(cell.io_bw().get(), 20.0e6);
        assert_eq!(cell.memory().get(), 65_536);
        assert_eq!(cell.machine_balance(), 0.5);
    }

    #[test]
    fn array_balance_is_ten_cells_behind_one_port() {
        let agg = warp_array().aggregate().unwrap();
        assert_eq!(agg.machine_balance(), 5.0);
    }

    #[test]
    fn case_study_covers_all_rows() {
        let report = case_study(&default_computations()).unwrap();
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.cell_balance, 0.5);
        assert_eq!(report.array_balance, 5.0);
    }

    #[test]
    fn warp_memory_has_large_headroom_for_matrix_work() {
        // The paper's design point: generous I/O (balance 0.5) means 64K is
        // far more memory than matmul needs for balance — big headroom.
        let report = case_study(&default_computations()).unwrap();
        let matmul = &report.rows[0];
        let m_bal = matmul.balanced_cell_memory.unwrap();
        assert!(
            m_bal.get() < 10,
            "balanced memory should be tiny, got {m_bal}"
        );
        assert!(matmul.headroom.unwrap() > 100.0);
    }

    #[test]
    fn fft_headroom_is_much_smaller() {
        // Exponential-law computations burn headroom fast: the same 64K
        // gives far less C/IO growth slack for FFT than for matmul.
        let report = case_study(&default_computations()).unwrap();
        let matmul_head = report.rows[0].headroom.unwrap();
        let fft_head = report
            .rows
            .iter()
            .find(|r| r.computation == "fft")
            .unwrap()
            .headroom
            .unwrap();
        assert!(
            fft_head < matmul_head / 2.0,
            "fft {fft_head} vs matmul {matmul_head}"
        );
    }

    #[test]
    fn io_bounded_rows_are_marked_impossible() {
        let report = case_study(&default_computations()).unwrap();
        let matvec = report
            .rows
            .iter()
            .find(|r| r.computation == "matvec")
            .unwrap();
        assert!(matvec.balanced_cell_memory.is_none());
        assert!(matvec.headroom.is_none());
        // Note: matvec intensity (2.0) > cell balance (0.5), so a single
        // Warp cell is actually compute-limited on matvec — fine. The
        // "impossible" refers to rebalancing by memory.
    }

    #[test]
    fn report_renders() {
        let report = case_study(&default_computations()).unwrap();
        let text = report.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("impossible"));
        assert!(text.contains("headroom"));
    }
}
