//! Block-partitioned parallel kernels: the paper's decompositions run on a
//! measured multi-PE machine.
//!
//! Each [`ParallelKernel`] distributes one of the `balance-kernels`
//! computations across the PEs of a [`ParallelMachine`], keeping the two
//! traffic classes separate: words that cross the machine boundary are
//! external I/O, words that move between PEs are communication. The
//! partitionings are the classical ones the paper cites as making §4
//! attainable:
//!
//! * [`ParMatMul`] — the distributed big-tile algorithm: the machine
//!   blocks for its **aggregate** memory (`3·B²/p ≤ M` per PE, so
//!   `B ≈ √(p·M/3)`), holding each `B × B` tile of `A`, `B`, `C` as
//!   row-slabs spread over the PEs; the `B`-operand slabs circulate in a
//!   ring ([`ParallelMachine::rotate_left`]) so every PE sees every slab —
//!   external traffic is one tile-load per operand per step, exactly as if
//!   one PE owned the whole aggregate memory. Aggregate intensity is
//!   therefore `Θ(√(p·M))`: the measured form of `M_new = α²·M_old`.
//! * [`ParTranspose`] — embarrassingly parallel row-panels, zero
//!   communication, constant intensity ½ at any `p` and `M`: the §3.6
//!   "impossible" verdict survives parallelism (no arrangement of PEs
//!   rescues an I/O-bounded computation).
//! * [`ParGrid2d`] — the §3.3 arrangement made literal: the PEs jointly
//!   hold an `S × S` super-tile of a periodic grid as row slabs;
//!   slab-boundary halo rows are **communication**, super-tile-surface
//!   halos are external I/O. Aggregate intensity is `Θ(√(p·M))` — the 2-d
//!   law on the aggregate memory.
//!
//! A 1-PE machine runs the *identical* transfer-and-operation sequence as
//! the serial [`Kernel::run_on`] path (same buffers, same loop structure,
//! same addresses), so its [`Execution`](balance_core::Execution) is
//! bit-identical — pinned by property test across the registry.

use balance_core::{CostProfile, HierarchySpec};
use balance_kernels::error::KernelError;
use balance_kernels::matrix::MatrixHandle;
use balance_kernels::{reference, verify, workload, Kernel, Verify};
use balance_machine::{BufferId, CapacityProfile, ExternalStore, MachineError};

use crate::pmachine::{ParallelExecution, ParallelMachine, Topology};

/// A one-replay description of a machine's external I/O as a pure LRU
/// function of its pooled memory: the aggregate trace's
/// [`CapacityProfile`] plus the traced computation's operation count.
///
/// Kernels whose external traffic *is* such a function (no communication
/// pricing, no partition-dependent blocking — e.g. the one-touch
/// [`ParTranspose`]) expose it through
/// [`ParallelKernel::io_profile`]; the memory-at-balance search
/// ([`crate::measure::measured_balance_memory`]) then probes the profile
/// in O(1) reads instead of re-running the kernel per bisection step.
#[derive(Debug, Clone)]
pub struct ExternalIoProfile {
    comp_ops: u64,
    profile: CapacityProfile,
}

impl ExternalIoProfile {
    /// Packages a replayed profile with its computation's op count.
    #[must_use]
    pub fn new(comp_ops: u64, profile: CapacityProfile) -> Self {
        ExternalIoProfile { comp_ops, profile }
    }

    /// External words at a pooled machine memory of `total_memory` words.
    #[must_use]
    pub fn external_words(&self, total_memory: u64) -> u64 {
        self.profile.misses_at(total_memory)
    }

    /// External intensity at a pooled machine memory of `total_memory`
    /// words — the quantity the §4 balance condition reads.
    #[must_use]
    pub fn external_intensity(&self, total_memory: u64) -> f64 {
        CostProfile::new(self.comp_ops, self.external_words(total_memory)).intensity()
    }

    /// The underlying capacity profile.
    #[must_use]
    pub fn profile(&self) -> &CapacityProfile {
        &self.profile
    }
}

/// The measured result of one verified parallel kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRun {
    /// Problem size (kernel-specific meaning, as in the serial registry).
    pub n: usize,
    /// Local memory available *per PE*, in words.
    pub per_pe_m: usize,
    /// Per-PE and machine-level measurements.
    pub execution: ParallelExecution,
}

impl ParallelRun {
    /// The machine's external operational intensity (ops per external
    /// word) — what the §4 balance condition reads.
    #[must_use]
    pub fn external_intensity(&self) -> f64 {
        self.execution.external_intensity()
    }

    /// Total per-PE memory summed over the machine, in words.
    #[must_use]
    pub fn total_memory(&self) -> u64 {
        self.per_pe_m as u64 * self.execution.topology.pe_count()
    }
}

/// One computation distributed over a [`ParallelMachine`].
///
/// Implementations guarantee the serial contract (§3 decomposition within
/// each PE's level-0 capacity, verified output, every word and operation
/// counted) plus two parallel ones:
///
/// * external I/O and inter-PE communication are never conflated;
/// * a 1-PE machine reproduces the serial kernel's execution bit for bit.
pub trait ParallelKernel: Sync {
    /// Short identifier (matches the serial kernel's name).
    fn name(&self) -> &'static str;

    /// One-line description of the partitioning.
    fn description(&self) -> &'static str;

    /// The serial single-PE counterpart (the `p = 1` reference semantics).
    fn serial(&self) -> Box<dyn Kernel>;

    /// The smallest per-PE memory (words) for which `run_on` is supported
    /// on `topology` — partition floors (e.g. one super-tile row per PE)
    /// scale with the machine, not just the problem.
    fn min_memory_per_pe(&self, n: usize, topology: Topology) -> usize;

    /// Runs the distributed computation on a fresh machine of shape
    /// `topology`, each PE owning the memory system `per_pe`.
    ///
    /// # Errors
    ///
    /// As the serial [`Kernel::run_on`]: bad parameters, undersized
    /// memories, machine capacity violations, verification failures.
    fn run_on(
        &self,
        topology: Topology,
        n: usize,
        per_pe: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<ParallelRun, KernelError>;

    /// A one-replay [`ExternalIoProfile`], when this kernel's external
    /// I/O is a pure LRU function of the machine's pooled memory.
    ///
    /// The default is `None`: comm-priced kernels (matmul's ring-rotated
    /// slabs, grid's halo exchange) re-block per memory size, so no single
    /// trace stands in for their external traffic — the memory-at-balance
    /// search falls back to replaying the kernel for them.
    fn io_profile(&self, n: usize, topology: Topology) -> Option<ExternalIoProfile> {
        let _ = (n, topology);
        None
    }
}

/// All parallel kernels, serial-registry order.
#[must_use]
pub fn parallel_kernels() -> Vec<Box<dyn ParallelKernel>> {
    vec![
        Box::new(ParMatMul),
        Box::new(ParTranspose),
        Box::new(ParGrid2d),
    ]
}

/// The balanced contiguous chunk of `total` items PE `q` of `p` owns:
/// `[start, end)`, sizes differing by at most one, empty when `total < p`
/// for the trailing PEs.
fn chunk(total: usize, p: usize, q: usize) -> (usize, usize) {
    (q * total / p, (q + 1) * total / p)
}

/// Machine-routed analogue of `balance_kernels::matrix::load_block`: PE
/// `q` loads the `rows × cols` block at `(r0, c0)` row by row (identical
/// per-row transfers, so a 1-PE machine is indistinguishable from the
/// serial path).
#[allow(clippy::too_many_arguments)] // (r0, c0, rows, cols) is a block address
fn load_block_on(
    machine: &mut ParallelMachine,
    q: usize,
    store: &ExternalStore,
    mat: &MatrixHandle,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: BufferId,
) -> Result<(), MachineError> {
    for r in 0..rows {
        let region = mat.row_segment(r0 + r, c0, cols)?;
        machine.load(q, store, region, buf, r * cols)?;
    }
    Ok(())
}

/// Machine-routed analogue of `balance_kernels::matrix::store_block`.
#[allow(clippy::too_many_arguments)] // (r0, c0, rows, cols) is a block address
fn store_block_on(
    machine: &mut ParallelMachine,
    q: usize,
    store: &mut ExternalStore,
    mat: &MatrixHandle,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: BufferId,
) -> Result<(), MachineError> {
    for r in 0..rows {
        let region = mat.row_segment(r0 + r, c0, cols)?;
        machine.store(q, store, buf, r * cols, region)?;
    }
    Ok(())
}

/// Distributed big-tile matrix multiplication on `p` PEs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParMatMul;

/// The largest aggregate tile side `B` with `3·⌈B/p⌉·B ≤ m` per PE — the
/// machine blocks for its *total* memory (`B ≈ √(p·m/3)`), each PE holding
/// a `⌈B/p⌉ × B` slab of each of the three tiles. With `p = 1` this is
/// exactly the serial `tile_side(m)`.
#[must_use]
pub fn aggregate_tile_side(m: usize, p: usize) -> usize {
    let mut b = 1usize;
    while 3 * (b + 1).div_ceil(p) * (b + 1) <= m {
        b += 1;
    }
    b
}

impl ParallelKernel for ParMatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn description(&self) -> &'static str {
        "N×N matmul; B×B aggregate tiles as row slabs, B-operand slabs ring-rotated (§4 via §3.1)"
    }

    fn serial(&self) -> Box<dyn Kernel> {
        Box::new(balance_kernels::matmul::MatMul)
    }

    fn min_memory_per_pe(&self, _n: usize, _topology: Topology) -> usize {
        3 // one 1×1 slab of each tile
    }

    // `q` is simultaneously a PE id (machine calls) and a per-PE buffer
    // index; an iterator would obscure the lock-step structure.
    #[allow(clippy::needless_range_loop)]
    fn run_on(
        &self,
        topology: Topology,
        n: usize,
        per_pe: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<ParallelRun, KernelError> {
        let m = per_pe.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory_per_pe(n, topology) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory_per_pe(n, topology),
            });
        }
        let mut machine = ParallelMachine::new(topology, per_pe);
        let p = machine.pe_count();
        let b = aggregate_tile_side(m, p).min(n);
        let rmax = b.div_ceil(p);

        let mut store = ExternalStore::new();
        let a_data = workload::random_matrix(n, seed);
        let b_data = workload::random_matrix(n, seed ^ 0x9e37_79b9);
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let bm = MatrixHandle::new(store.alloc_from(&b_data), n, n);
        let c = MatrixHandle::new(store.alloc(n * n), n, n);

        let mut a_bufs = Vec::with_capacity(p);
        let mut b_bufs = Vec::with_capacity(p);
        let mut c_bufs = Vec::with_capacity(p);
        for q in 0..p {
            a_bufs.push(machine.alloc(q, rmax * b)?);
            b_bufs.push(machine.alloc(q, rmax * b)?);
            c_bufs.push(machine.alloc(q, rmax * b)?);
        }

        for i0 in (0..n).step_by(b) {
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                // Zero the accumulator slabs.
                for q in 0..p {
                    let (r0, r1) = chunk(ib, p, q);
                    machine.buf_mut(q, c_bufs[q])?[..(r1 - r0) * jb].fill(0.0);
                }
                for k0 in (0..n).step_by(b) {
                    let kb = b.min(n - k0);
                    // A tile: each PE loads its i-row slab from outside.
                    for q in 0..p {
                        let (r0, r1) = chunk(ib, p, q);
                        load_block_on(
                            &mut machine, q, &store, &a, i0 + r0, k0, r1 - r0, kb, a_bufs[q],
                        )?;
                    }
                    // B tile: each PE loads its k-row slab from outside —
                    // one external copy of the tile for the whole machine.
                    for q in 0..p {
                        let (s0, s1) = chunk(kb, p, q);
                        load_block_on(
                            &mut machine, q, &store, &bm, k0 + s0, j0, s1 - s0, jb, b_bufs[q],
                        )?;
                    }
                    // Ring multiply: at step t, PE q holds the slab PE
                    // (q+t) mod p loaded, covering k-rows chunk(kb, p, o).
                    for t in 0..p {
                        for q in 0..p {
                            let o = (q + t) % p;
                            let (s0, s1) = chunk(kb, p, o);
                            let (r0, r1) = chunk(ib, p, q);
                            let (rows, ks) = (r1 - r0, s1 - s0);
                            if rows == 0 || ks == 0 {
                                continue;
                            }
                            machine.update(q, c_bufs[q], &[a_bufs[q], b_bufs[q]], |ct, srcs| {
                                let (at, bt) = (srcs[0], srcs[1]);
                                for i in 0..rows {
                                    for k in 0..ks {
                                        let aik = at[i * kb + (s0 + k)];
                                        for j in 0..jb {
                                            ct[i * jb + j] += aik * bt[k * jb + j];
                                        }
                                    }
                                }
                            })?;
                            machine.count_ops(q, 2 * (rows * ks * jb) as u64);
                        }
                        if t + 1 < p {
                            let lens: Vec<usize> = (0..p)
                                .map(|q| {
                                    let o = (q + t) % p;
                                    let (s0, s1) = chunk(kb, p, o);
                                    (s1 - s0) * jb
                                })
                                .collect();
                            machine.rotate_left(&b_bufs, &lens)?;
                        }
                    }
                }
                // C tile: each PE writes its row slab to the outside.
                for q in 0..p {
                    let (r0, r1) = chunk(ib, p, q);
                    store_block_on(
                        &mut machine, q, &mut store, &c, i0 + r0, j0, r1 - r0, jb, c_bufs[q],
                    )?;
                }
            }
        }

        match verify {
            Verify::Full => {
                let want = reference::matmul(&a_data, &b_data, n);
                let got = c.snapshot(&store);
                let err = reference::max_abs_diff(&want, &got);
                let tol = 1e-9 * (n as f64);
                if err > tol {
                    return Err(KernelError::VerificationFailed {
                        what: "parallel matmul",
                        max_error: err,
                        tolerance: tol,
                    });
                }
            }
            Verify::Freivalds { rounds } => {
                let got = c.snapshot(&store);
                verify::freivalds_matmul(&a_data, &b_data, &got, n, seed, rounds)?;
            }
            Verify::None => {}
        }

        Ok(ParallelRun {
            n,
            per_pe_m: m,
            execution: machine.execution(),
        })
    }
}

/// Row-panel parallel transpose: the I/O-bounded negative control.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParTranspose;

impl ParallelKernel for ParTranspose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn io_profile(&self, n: usize, _topology: Topology) -> Option<ExternalIoProfile> {
        // Transpose touches every word of A and T exactly once at any
        // blocking and any PE count: the aggregate trace is one pass over
        // the dense `[0, 2n²)` range, so external traffic is all
        // compulsory — 2n² at every pooled memory. The serial kernel's
        // analytic tier carries exactly that one-touch histogram in
        // closed form (registry-pinned equal to the replayed engine), so
        // no replay, no O(n²) tables, and no address bound to outgrow.
        // Ops: one move per element.
        let n64 = n as u64;
        let profile = balance_kernels::transpose::Transpose.analytic_profile(n)?;
        Some(ExternalIoProfile::new(n64 * n64, profile.into_profile()))
    }

    fn description(&self) -> &'static str {
        "blocked N×N transpose, tile-rows dealt round-robin; zero comm, intensity ½ at any p"
    }

    fn serial(&self) -> Box<dyn Kernel> {
        Box::new(balance_kernels::transpose::Transpose)
    }

    fn min_memory_per_pe(&self, _n: usize, _topology: Topology) -> usize {
        1
    }

    fn run_on(
        &self,
        topology: Topology,
        n: usize,
        per_pe: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<ParallelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = per_pe.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "matrix size must be positive".into(),
            });
        }
        if m < self.min_memory_per_pe(n, topology) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory_per_pe(n, topology),
            });
        }
        let b = m.isqrt().clamp(1, n);
        let mut machine = ParallelMachine::new(topology, per_pe);
        let p = machine.pe_count();

        let a_data = workload::random_matrix(n, seed);
        let mut store = ExternalStore::new();
        let a = MatrixHandle::new(store.alloc_from(&a_data), n, n);
        let t = MatrixHandle::new(store.alloc(n * n), n, n);

        let tiles: Vec<BufferId> = (0..p)
            .map(|q| machine.alloc(q, b * b))
            .collect::<Result<_, _>>()?;

        for (bi, i0) in (0..n).step_by(b).enumerate() {
            let q = bi % p; // deal tile-rows round-robin across the PEs
            let ib = b.min(n - i0);
            for j0 in (0..n).step_by(b) {
                let jb = b.min(n - j0);
                load_block_on(&mut machine, q, &store, &a, i0, j0, ib, jb, tiles[q])?;
                let ops = {
                    let buf = machine.buf_mut(q, tiles[q])?;
                    let mut scratch = vec![0.0; ib * jb];
                    for r in 0..ib {
                        for c in 0..jb {
                            scratch[c * ib + r] = buf[r * jb + c];
                        }
                    }
                    buf[..ib * jb].copy_from_slice(&scratch);
                    (ib * jb) as u64
                };
                machine.count_ops(q, ops);
                store_block_on(&mut machine, q, &mut store, &t, j0, i0, jb, ib, tiles[q])?;
            }
        }

        let got = t.snapshot(&store);
        for i in 0..n {
            for j in 0..n {
                if got[j * n + i] != a_data[i * n + j] {
                    return Err(KernelError::VerificationFailed {
                        what: "parallel transpose",
                        max_error: (got[j * n + i] - a_data[i * n + j]).abs(),
                        tolerance: 0.0,
                    });
                }
            }
        }

        Ok(ParallelRun {
            n,
            per_pe_m: m,
            execution: machine.execution(),
        })
    }
}

/// Slab-partitioned 2-d Jacobi relaxation with halo exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParGrid2d;

impl ParGrid2d {
    /// The largest super-tile side `S` whose row slabs fit each PE:
    /// `(⌈S/p⌉+2)·(S+2) + ⌈S/p⌉·S ≤ m` (halo buffer plus resident slab).
    /// With `p = 1` this is the serial `GridRelaxation::tile_side` for
    /// `d = 2`.
    #[must_use]
    pub fn super_tile_side(m: usize, p: usize) -> usize {
        let fits = |s: usize| {
            let rows = s.div_ceil(p);
            (rows + 2) * (s + 2) + rows * s <= m
        };
        let mut s = 1usize;
        while fits(s + 1) {
            s += 1;
        }
        s
    }
}

impl ParallelKernel for ParGrid2d {
    fn name(&self) -> &'static str {
        "grid2d"
    }

    fn description(&self) -> &'static str {
        "2-d Jacobi; PEs hold an S×S super-tile as row slabs, slab halos are comm, surface is I/O"
    }

    fn serial(&self) -> Box<dyn Kernel> {
        Box::new(balance_kernels::grid::GridRelaxation::new(2))
    }

    fn min_memory_per_pe(&self, _n: usize, topology: Topology) -> usize {
        // S = p (one super-tile row per PE): a (1+2)×(p+2) halo buffer
        // plus the p-word slab — 4p + 6; S = 1 on one PE gives the
        // serial floor of 10.
        let p = usize::try_from(topology.pe_count()).unwrap_or(usize::MAX);
        (4 * p + 6).max(10)
    }

    // `q` is simultaneously a PE id (machine calls) and a per-PE buffer
    // index; an iterator would obscure the lock-step phase structure.
    #[allow(clippy::needless_range_loop)]
    fn run_on(
        &self,
        topology: Topology,
        n: usize,
        per_pe: &HierarchySpec,
        seed: u64,
        verify: Verify,
    ) -> Result<ParallelRun, KernelError> {
        // No cheap randomized check exists: verify fully under any policy.
        let _ = verify;
        let m = per_pe.local_capacity_words();
        if n == 0 {
            return Err(KernelError::BadParameters {
                reason: "iteration count must be positive".into(),
            });
        }
        if m < self.min_memory_per_pe(n, topology) {
            return Err(KernelError::MemoryTooSmall {
                have: m,
                need: self.min_memory_per_pe(n, topology),
            });
        }
        let mut machine = ParallelMachine::new(topology, per_pe);
        let p = machine.pe_count();
        let s = ParGrid2d::super_tile_side(m, p);
        if s < p {
            return Err(KernelError::BadParameters {
                reason: format!(
                    "{p} PEs need a super-tile of at least {p} rows, got S = {s}; \
                     enlarge the per-PE memory or shrink the machine"
                ),
            });
        }
        let g = 2 * s; // full periodic grid side; the machine owns one quadrant
        let ew = s + 2; // halo-extended slab width

        let mut state = workload::random_grid(g * g, seed);
        let mut store = ExternalStore::new();
        let grid_region = store.alloc_from(&state);
        let out_region = store.alloc(s * s);

        let rows_of = |q: usize| chunk(s, p, q);
        let mut tiles = Vec::with_capacity(p);
        let mut exts = Vec::with_capacity(p);
        for q in 0..p {
            let (r0, r1) = rows_of(q);
            tiles.push(machine.alloc(q, (r1 - r0) * s)?);
            exts.push(machine.alloc(q, (r1 - r0 + 2) * ew)?);
        }

        // Initial slab load: the PEs' permanently resident data.
        for q in 0..p {
            let (r0, r1) = rows_of(q);
            for r in 0..r1 - r0 {
                let region = grid_region
                    .at((r0 + r) * g, s)
                    .expect("slab row in range");
                machine.load(q, &store, region, tiles[q], r * s)?;
            }
        }

        let weight = 1.0 / 5.0;
        for _t in 0..n {
            // 1. Copy each resident slab into its halo buffer's interior
            //    (local move: free in the information model).
            for q in 0..p {
                let (r0, r1) = rows_of(q);
                let rows = r1 - r0;
                machine.update(q, exts[q], &[tiles[q]], |e, srcs| {
                    let tl = srcs[0];
                    for r in 0..rows {
                        for c in 0..s {
                            e[(r + 1) * ew + (c + 1)] = tl[r * s + c];
                        }
                    }
                })?;
            }
            // 2. Fill the halos — all reads against the *previous*
            //    iteration's slabs, so every PE's halo is filled before
            //    any PE updates. Machine-edge halos come from the outside
            //    world (external I/O, periodic wrap); slab-boundary halos
            //    come from the neighboring PE (communication).
            for q in 0..p {
                let (r0, r1) = rows_of(q);
                let rows = r1 - r0;
                // Top halo row (contiguous: grid row g-1, cols 0..s — one
                // region load; word counts and addresses are identical to
                // per-word loads, so serial bit-identity is unaffected).
                if q == 0 {
                    let region = grid_region.at((g - 1) * g, s).expect("halo in range");
                    machine.load(q, &store, region, exts[q], 1)?;
                } else {
                    let (p0, p1) = rows_of(q - 1);
                    machine.send(q - 1, tiles[q - 1], (p1 - p0 - 1) * s, q, exts[q], 1, s)?;
                }
                // Bottom halo row (contiguous: grid row s, cols 0..s).
                if q == p - 1 {
                    let region = grid_region.at(s * g, s).expect("halo in range");
                    machine.load(q, &store, region, exts[q], (rows + 1) * ew + 1)?;
                } else {
                    machine.send(q + 1, tiles[q + 1], 0, q, exts[q], (rows + 1) * ew + 1, s)?;
                }
                // Left and right halo columns: always the super-tile
                // surface, i.e. external.
                for r in 0..rows {
                    let region = grid_region
                        .at((r0 + r) * g + (g - 1), 1)
                        .expect("halo in range");
                    machine.load(q, &store, region, exts[q], (r + 1) * ew)?;
                }
                for r in 0..rows {
                    let region = grid_region
                        .at((r0 + r) * g + s, 1)
                        .expect("halo in range");
                    machine.load(q, &store, region, exts[q], (r + 1) * ew + s + 1)?;
                }
            }
            // 3. Five-point update of every slab (counted ops).
            for q in 0..p {
                let (r0, r1) = rows_of(q);
                let rows = r1 - r0;
                machine.update(q, tiles[q], &[exts[q]], |tl, srcs| {
                    let e = srcs[0];
                    for r in 0..rows {
                        for c in 0..s {
                            let idx = (r + 1) * ew + (c + 1);
                            let mut acc = e[idx];
                            acc += e[idx + ew] + e[idx - ew];
                            acc += e[idx + 1] + e[idx - 1];
                            tl[r * s + c] = acc * weight;
                        }
                    }
                })?;
                machine.count_ops(q, (5 * rows * s) as u64);
            }
            // 4. The rest of the world advances one step (uncounted: that
            //    is the surrounding machines' work).
            state = reference::jacobi_step(&state, &[g, g]);
            store.slice_mut(grid_region).copy_from_slice(&state);
        }

        // Write the final slabs out (counted).
        for q in 0..p {
            let (r0, r1) = rows_of(q);
            for r in 0..r1 - r0 {
                let region = out_region.at((r0 + r) * s, s).expect("out row in range");
                machine.store(q, &mut store, tiles[q], r * s, region)?;
            }
        }

        // Verify against the reference grid's super-tile region.
        let got = store.slice(out_region);
        let mut err = 0.0f64;
        for r in 0..s {
            for c in 0..s {
                err = err.max((got[r * s + c] - state[r * g + c]).abs());
            }
        }
        let tol = 1e-12;
        if err > tol {
            return Err(KernelError::VerificationFailed {
                what: "parallel grid relaxation",
                max_error: err,
                tolerance: tol,
            });
        }

        Ok(ParallelRun {
            n,
            per_pe_m: m,
            execution: machine.execution(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(m: usize) -> HierarchySpec {
        HierarchySpec::flat_words(m)
    }

    #[test]
    fn aggregate_tile_side_matches_serial_at_one_pe() {
        for m in [3usize, 12, 27, 48, 100, 1000, 4096] {
            assert_eq!(
                aggregate_tile_side(m, 1),
                balance_kernels::matmul::tile_side(m),
                "m = {m}"
            );
        }
        // p PEs pool their memory: B grows ~√p-fold.
        assert_eq!(aggregate_tile_side(48, 1), 4);
        assert_eq!(aggregate_tile_side(48, 4), 8); // 3·2·8 = 48 ≤ 48
        for (m, p) in [(48usize, 4usize), (100, 3), (300, 7)] {
            let b = aggregate_tile_side(m, p);
            assert!(3 * b.div_ceil(p) * b <= m);
            assert!(3 * (b + 1).div_ceil(p) * (b + 1) > m);
        }
    }

    #[test]
    fn super_tile_side_matches_serial_at_one_pe() {
        let serial = balance_kernels::grid::GridRelaxation::new(2);
        for m in [10usize, 52, 64, 100, 1024] {
            assert_eq!(ParGrid2d::super_tile_side(m, 1), serial.tile_side(m), "m = {m}");
        }
    }

    #[test]
    fn parallel_matmul_is_verified_across_shapes() {
        for (p, n, m) in [(1usize, 12, 27), (2, 12, 27), (3, 17, 48), (4, 16, 12)] {
            let topo = Topology::linear(p as u64).unwrap();
            let run = ParMatMul.run_on(topo, n, &flat(m), 7, Verify::Full).unwrap();
            assert_eq!(
                run.execution.comp_ops(),
                2 * (n as u64).pow(3),
                "p={p} n={n} m={m}"
            );
            assert!(run.execution.is_conserved());
            // Communication exists iff the machine has partners and the
            // tile actually spans multiple slabs.
            if p == 1 {
                assert_eq!(run.execution.comm_words, 0);
            }
        }
    }

    #[test]
    fn parallel_matmul_pools_memory_into_intensity() {
        // Fixed per-PE memory: more PEs -> bigger aggregate tile -> higher
        // external intensity (the measured §4.1 walk).
        let n = 24;
        let r1 = ParMatMul
            .run_on(Topology::linear(1).unwrap(), n, &flat(48), 3, Verify::Full)
            .unwrap()
            .external_intensity();
        let r4 = ParMatMul
            .run_on(Topology::linear(4).unwrap(), n, &flat(48), 3, Verify::Full)
            .unwrap()
            .external_intensity();
        assert!(
            r4 > 1.5 * r1,
            "4 PEs should raise aggregate intensity: {r1} -> {r4}"
        );
    }

    #[test]
    fn parallel_matmul_mesh_runs_too() {
        let topo = Topology::mesh(2).unwrap();
        let run = ParMatMul.run_on(topo, 16, &flat(27), 5, Verify::Full).unwrap();
        assert_eq!(run.execution.per_pe.len(), 4);
        assert!(run.execution.is_conserved());
    }

    #[test]
    fn parallel_transpose_keeps_constant_intensity() {
        for p in [1usize, 2, 4] {
            let topo = Topology::linear(p as u64).unwrap();
            let run = ParTranspose
                .run_on(topo, 20, &flat(64), 2, Verify::Full)
                .unwrap();
            assert_eq!(run.external_intensity(), 0.5, "p = {p}");
            assert_eq!(run.execution.comm_words, 0);
            assert!(run.execution.is_conserved());
        }
    }

    #[test]
    fn parallel_grid_verifies_and_separates_traffic() {
        for p in [1usize, 2, 3] {
            let topo = Topology::linear(p as u64).unwrap();
            let run = ParGrid2d
                .run_on(topo, 4, &flat(100), 11, Verify::Full)
                .unwrap();
            let s = ParGrid2d::super_tile_side(100, p);
            assert_eq!(
                run.execution.comp_ops(),
                (4 * 5 * s * s) as u64,
                "p = {p}, S = {s}"
            );
            // Halo rows between slabs are comm: 2(p-1)·S per iteration.
            assert_eq!(
                run.execution.comm_words,
                (4 * 2 * (p - 1) * s) as u64,
                "p = {p}"
            );
            assert!(run.execution.is_conserved());
        }
    }

    #[test]
    fn grid_rejects_more_pes_than_rows() {
        // The per-topology minimum (4p + 6) rejects a machine whose
        // super-tile could not give every PE a row.
        let topo = Topology::linear(4).unwrap();
        assert_eq!(ParGrid2d.min_memory_per_pe(2, topo), 22);
        let err = ParGrid2d
            .run_on(topo, 2, &flat(16), 0, Verify::Full)
            .unwrap_err();
        assert!(matches!(err, KernelError::MemoryTooSmall { .. }), "{err}");
        // At exactly the minimum, the partition works: S = p.
        let run = ParGrid2d.run_on(topo, 2, &flat(22), 0, Verify::Full).unwrap();
        assert_eq!(ParGrid2d::super_tile_side(22, 4), 4);
        assert!(run.execution.is_conserved());
        // The serial floor is unchanged on one PE.
        assert_eq!(
            ParGrid2d.min_memory_per_pe(2, Topology::linear(1).unwrap()),
            10
        );
    }

    #[test]
    fn degenerate_parameters_rejected() {
        let topo = Topology::linear(2).unwrap();
        assert!(matches!(
            ParMatMul.run_on(topo, 0, &flat(100), 0, Verify::Full),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            ParMatMul.run_on(topo, 8, &flat(2), 0, Verify::Full),
            Err(KernelError::MemoryTooSmall { .. })
        ));
        assert!(matches!(
            ParTranspose.run_on(topo, 0, &flat(4), 0, Verify::Full),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            ParGrid2d.run_on(topo, 0, &flat(100), 0, Verify::Full),
            Err(KernelError::BadParameters { .. })
        ));
        assert!(matches!(
            ParGrid2d.run_on(topo, 1, &flat(5), 0, Verify::Full),
            Err(KernelError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn registry_names_match_serial_counterparts() {
        for k in parallel_kernels() {
            assert_eq!(k.name(), k.serial().name(), "registry pairing");
            assert!(!k.description().is_empty());
        }
    }
}
