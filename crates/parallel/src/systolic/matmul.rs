//! Cycle-level systolic matrix multiplication (Kung & Leiserson 1978).
//!
//! An `n × n` mesh of cells computes `C = A·B`. Cell `(i, j)` holds exactly
//! three registers — the accumulating `c[i][j]`, plus pass-through registers
//! for the `a` value moving east and the `b` value moving south. Row `i` of
//! `A` enters at the west edge delayed by `i` cycles; column `j` of `B`
//! enters at the north edge delayed by `j` cycles. After `3n − 2` cycles all
//! products have been accumulated.
//!
//! The simulation demonstrates the paper's §4.2 premise with `O(1)` words
//! per PE: total memory `Θ(n²) = Θ(p²)`, exactly the `α² = p²` growth the
//! balance law demands, supplied entirely by adding PEs.

use balance_core::CostProfile;

/// The outcome of a systolic matmul run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicRun {
    /// The computed product, row-major `n × n`.
    pub c: Vec<f64>,
    /// Cycles simulated until completion.
    pub cycles: u64,
    /// Aggregate cost: ops performed by all cells, words crossing the array
    /// boundary (A and B in, C out).
    pub cost: CostProfile,
    /// Words of storage per cell (registers).
    pub memory_per_cell: u64,
    /// Fraction of cell-cycles doing useful multiply-accumulate work.
    pub utilization: f64,
}

/// Runs the `n × n` systolic array on row-major inputs `a` and `b`.
///
/// # Panics
///
/// Panics if `a` or `b` is not `n × n`.
#[must_use]
pub fn systolic_matmul(a: &[f64], b: &[f64], n: usize) -> SystolicRun {
    assert_eq!(a.len(), n * n, "a must be n x n");
    assert_eq!(b.len(), n * n, "b must be n x n");

    // Per-cell registers.
    let mut c = vec![0.0f64; n * n];
    let mut a_reg: Vec<Option<f64>> = vec![None; n * n];
    let mut b_reg: Vec<Option<f64>> = vec![None; n * n];

    let mut ops = 0u64;
    let mut busy_cell_cycles = 0u64;
    let total_cycles = if n == 0 { 0 } else { 3 * n - 2 };

    for cycle in 0..total_cycles {
        // Values move simultaneously: compute the next register state from
        // the current one.
        let mut a_next: Vec<Option<f64>> = vec![None; n * n];
        let mut b_next: Vec<Option<f64>> = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                // West input for column 0: row i of A, skewed by i.
                let a_in = if j == 0 {
                    // a[i][k] enters cell (i,0) at cycle i + k.
                    cycle
                        .checked_sub(i)
                        .and_then(|k| if k < n { Some(a[i * n + k]) } else { None })
                } else {
                    a_reg[i * n + (j - 1)]
                };
                // North input for row 0: column j of B, skewed by j.
                let b_in = if i == 0 {
                    cycle
                        .checked_sub(j)
                        .and_then(|k| if k < n { Some(b[k * n + j]) } else { None })
                } else {
                    b_reg[(i - 1) * n + j]
                };
                if let (Some(av), Some(bv)) = (a_in, b_in) {
                    c[i * n + j] += av * bv;
                    ops += 2;
                    busy_cell_cycles += 1;
                }
                a_next[i * n + j] = a_in;
                b_next[i * n + j] = b_in;
            }
        }
        a_reg = a_next;
        b_reg = b_next;
    }

    // Boundary I/O: every A and B word enters once, every C word leaves once.
    let io_words = (3 * n * n) as u64;
    let cells = (n * n) as u64;
    let utilization = if cells == 0 || total_cycles == 0 {
        0.0
    } else {
        busy_cell_cycles as f64 / (cells * total_cycles as u64) as f64
    };

    SystolicRun {
        c,
        cycles: total_cycles as u64,
        cost: CostProfile::new(ops, io_words),
        memory_per_cell: 3, // c + a + b registers
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_kernels::{reference, workload};

    #[test]
    fn computes_the_exact_product() {
        for n in [1usize, 2, 3, 5, 8, 12] {
            let a = workload::random_matrix(n, 21);
            let b = workload::random_matrix(n, 22);
            let run = systolic_matmul(&a, &b, n);
            let want = reference::matmul(&a, &b, n);
            let err = reference::max_abs_diff(&run.c, &want);
            assert!(err < 1e-12 * (n as f64 + 1.0), "n = {n}, err = {err}");
        }
    }

    #[test]
    fn completes_in_3n_minus_2_cycles() {
        let n = 6;
        let a = workload::random_matrix(n, 1);
        let b = workload::random_matrix(n, 2);
        let run = systolic_matmul(&a, &b, n);
        assert_eq!(run.cycles, (3 * n - 2) as u64);
    }

    #[test]
    fn performs_exactly_2n3_ops() {
        let n = 7;
        let a = workload::random_matrix(n, 3);
        let b = workload::random_matrix(n, 4);
        let run = systolic_matmul(&a, &b, n);
        assert_eq!(run.cost.comp_ops(), 2 * (n as u64).pow(3));
        assert_eq!(run.cost.io_words(), 3 * (n as u64).pow(2));
    }

    #[test]
    fn constant_memory_per_cell() {
        for n in [2usize, 8, 16] {
            let a = workload::random_matrix(n, 5);
            let b = workload::random_matrix(n, 6);
            let run = systolic_matmul(&a, &b, n);
            assert_eq!(run.memory_per_cell, 3, "independent of n = {n}");
        }
    }

    #[test]
    fn utilization_approaches_one_third() {
        // n³ useful cell-cycles out of n²·(3n-2): → 1/3 for large n.
        let n = 16;
        let a = workload::random_matrix(n, 7);
        let b = workload::random_matrix(n, 8);
        let run = systolic_matmul(&a, &b, n);
        assert!(
            (run.utilization - 1.0 / 3.0).abs() < 0.05,
            "{}",
            run.utilization
        );
    }

    #[test]
    fn aggregate_intensity_matches_the_balance_view() {
        // The n×n mesh (p = n) achieves intensity 2n³/3n² = 2n/3 = Θ(p):
        // exactly the α = p growth that Section 4.2 says a square mesh
        // absorbs with constant per-PE memory.
        let n = 12;
        let a = workload::random_matrix(n, 9);
        let b = workload::random_matrix(n, 10);
        let run = systolic_matmul(&a, &b, n);
        let intensity = run.cost.intensity();
        assert!((intensity - 2.0 * n as f64 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_identity() {
        let run = systolic_matmul(&[], &[], 0);
        assert_eq!(run.cycles, 0);
        assert!(run.c.is_empty());

        let n = 4;
        let a = workload::random_matrix(n, 11);
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let run = systolic_matmul(&a, &eye, n);
        assert!(reference::max_abs_diff(&run.c, &a) < 1e-12);
    }
}
