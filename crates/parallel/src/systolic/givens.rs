//! The Gentleman–Kung triangularization array (SPIE 1981).
//!
//! A triangular array of cells computes the `R` factor of a matrix `A` by
//! Givens rotations — the paper's §3.2 cites exactly this array as the
//! demonstration that triangularization decomposes onto a mesh. Cell layout
//! for `n = 4`:
//!
//! ```text
//! row 0:   ◇ □ □ □     ◇ = boundary cell (generates rotations, holds r_ii)
//! row 1:     ◇ □ □     □ = internal cell (applies rotations, holds r_ij)
//! row 2:       ◇ □
//! row 3:         ◇
//! ```
//!
//! Rows of `A` stream in from the top. When a row reaches cell row `i`, the
//! boundary cell computes the rotation `(c, s)` that annihilates its leading
//! entry against the stored `r_ii`, and the internal cells apply that
//! rotation to the remaining entries. The rotation coefficients travel
//! rightward, the updated row trickles down — one row per cycle in steady
//! state (pipeline depth `2n − 1`, so `≈ 3n` cycles for an `n × n` matrix).
//!
//! The simulation is functionally cycle-faithful: each matrix row passes
//! through cell rows in order, exactly as the pipeline would compute it, and
//! the cycle count is reported from the standard skewing schedule.

use balance_core::CostProfile;

/// The outcome of a triangularization run.
#[derive(Debug, Clone, PartialEq)]
pub struct GivensRun {
    /// The upper-triangular factor, row-major `n × n` (zeros below).
    pub r: Vec<f64>,
    /// Pipeline cycles: rows enter one per cycle, depth `2n − 1`.
    pub cycles: u64,
    /// Aggregate cost: rotation generations + applications vs boundary I/O
    /// (`A` in, `R` out).
    pub cost: CostProfile,
    /// Words of storage per cell (the stored `r` element plus pass-through).
    pub memory_per_cell: u64,
}

/// The triangular Givens array for `n × n` matrices.
#[derive(Debug, Clone)]
pub struct GivensArray {
    n: usize,
    /// r[i][j] for j >= i, stored row-major in a full matrix for simplicity.
    r: Vec<f64>,
    ops: u64,
}

impl GivensArray {
    /// Creates the array (all cells empty).
    #[must_use]
    pub fn new(n: usize) -> Self {
        GivensArray {
            n,
            r: vec![0.0; n * n],
            ops: 0,
        }
    }

    /// Feeds one matrix row through the array (the top-edge input).
    ///
    /// # Panics
    ///
    /// Panics if the row length is not `n`.
    pub fn feed_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n, "row length mismatch");
        let n = self.n;
        let mut x = row.to_vec();
        for i in 0..n {
            if x[i..].iter().all(|&v| v == 0.0) {
                break;
            }
            let rii = self.r[i * n + i];
            // Boundary cell: generate the rotation annihilating x[i].
            let (c, s) = if x[i] == 0.0 {
                (1.0, 0.0)
            } else if rii == 0.0 {
                // First value lands directly; the sign goes into the
                // rotation so that diag(R) stays nonnegative.
                (0.0, x[i].signum())
            } else {
                let t = (rii * rii + x[i] * x[i]).sqrt();
                (rii / t, x[i] / t)
            };
            // 5 ops to generate (2 mul, 1 add, 1 sqrt, 1 div amortized x2).
            self.ops += 5;
            // Apply to the boundary element.
            let new_rii = c * rii + s * x[i];
            self.r[i * n + i] = new_rii;
            x[i] = 0.0;
            // Internal cells: rotate (r[i][j], x[j]) pairs.
            #[allow(clippy::needless_range_loop)] // paired r/x indexing
            for j in i + 1..n {
                let rij = self.r[i * n + j];
                let xj = x[j];
                self.r[i * n + j] = c * rij + s * xj;
                x[j] = -s * rij + c * xj;
                self.ops += 6;
            }
        }
    }

    /// Finishes the computation and reports the run.
    #[must_use]
    pub fn finish(self, rows_fed: usize) -> GivensRun {
        let n = self.n;
        // I/O: every A word enters once; R (n(n+1)/2 words) drains out.
        let io = (rows_fed * n + n * (n + 1) / 2) as u64;
        // Pipeline: rows enter 1/cycle after skew; depth 2n-1; drain n.
        let cycles = if n == 0 {
            0
        } else {
            (rows_fed + 2 * n - 1) as u64
        };
        GivensRun {
            r: self.r,
            cycles,
            cost: CostProfile::new(self.ops, io),
            memory_per_cell: 2, // stored r element + pass-through register
        }
    }
}

/// Triangularizes a row-major `n × n` matrix; returns the run record.
///
/// # Panics
///
/// Panics if `a` is not `n × n`.
#[must_use]
pub fn triangularize(a: &[f64], n: usize) -> GivensRun {
    assert_eq!(a.len(), n * n, "a must be n x n");
    let mut array = GivensArray::new(n);
    for i in 0..n {
        array.feed_row(&a[i * n..(i + 1) * n]);
    }
    array.finish(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_kernels::{reference, workload};

    /// ‖RᵀR − AᵀA‖_max — zero iff R equals QᵀA for some orthogonal Q.
    fn gram_error(r: &[f64], a: &[f64], n: usize) -> f64 {
        let mut max = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut rr = 0.0;
                let mut aa = 0.0;
                for k in 0..n {
                    rr += r[k * n + i] * r[k * n + j];
                    aa += a[k * n + i] * a[k * n + j];
                }
                max = max.max((rr - aa).abs());
            }
        }
        max
    }

    #[test]
    fn r_is_upper_triangular() {
        let n = 8;
        let a = workload::random_matrix(n, 31);
        let run = triangularize(&a, n);
        for i in 0..n {
            for j in 0..i {
                assert_eq!(run.r[i * n + j], 0.0, "R[{i}][{j}] not annihilated");
            }
        }
    }

    #[test]
    fn gram_matrices_match() {
        // QᵀA = R with orthogonal Q implies RᵀR = AᵀA.
        for n in [1usize, 2, 4, 7, 10] {
            let a = workload::random_matrix(n, 32 + n as u64);
            let run = triangularize(&a, n);
            let err = gram_error(&run.r, &a, n);
            assert!(err < 1e-9 * (n as f64 + 1.0), "n = {n}, err = {err}");
        }
    }

    #[test]
    fn triangularizing_an_upper_triangular_matrix_is_cheapish() {
        // Feeding an already-upper-triangular matrix: the first row lands
        // directly; later rows still trigger rotations but R stays upper.
        let n = 5;
        let mut a = workload::random_matrix(n, 33);
        for i in 0..n {
            for j in 0..i {
                a[i * n + j] = 0.0;
            }
        }
        let run = triangularize(&a, n);
        let err = gram_error(&run.r, &a, n);
        assert!(err < 1e-10);
    }

    #[test]
    fn diagonal_of_r_is_nonnegative() {
        // The generation rule uses t = +sqrt(...), so r_ii >= 0.
        let n = 9;
        let a = workload::random_matrix(n, 34);
        let run = triangularize(&a, n);
        for i in 0..n {
            assert!(run.r[i * n + i] >= 0.0, "r[{i}][{i}] negative");
        }
    }

    #[test]
    fn cost_and_cycle_model() {
        let n = 6;
        let a = workload::random_matrix(n, 35);
        let run = triangularize(&a, n);
        assert_eq!(run.cycles, (n + 2 * n - 1) as u64);
        assert_eq!(run.cost.io_words(), (n * n + n * (n + 1) / 2) as u64);
        // ops = Θ(n³): between n³ and 10n³ for this op accounting.
        let n3 = (n as u64).pow(3);
        assert!(run.cost.comp_ops() > n3 && run.cost.comp_ops() < 10 * n3);
        assert_eq!(run.memory_per_cell, 2);
    }

    #[test]
    fn solves_least_squares_consistently_with_reference_lu_on_spd_case() {
        // For a diagonally dominant A, verify R via the Cholesky relation:
        // RᵀR = AᵀA, and AᵀA is SPD, so R is its unique Cholesky factor
        // (up to row signs — fixed here since diag(R) >= 0).
        let n = 6;
        let a = workload::random_diagonally_dominant(n, 36);
        let run = triangularize(&a, n);
        // Build AᵀA and factor it with our reference LU to cross-check.
        let mut ata = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[k * n + i] * a[k * n + j];
                }
                ata[i * n + j] = s;
            }
        }
        // RᵀR must reproduce AᵀA.
        let mut rtr = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += run.r[k * n + i] * run.r[k * n + j];
                }
                rtr[i * n + j] = s;
            }
        }
        assert!(reference::max_abs_diff(&ata, &rtr) < 1e-8 * (n as f64 + 1.0) * 10.0);
    }

    #[test]
    fn zero_rows_short_circuit() {
        let n = 4;
        let mut array = GivensArray::new(n);
        array.feed_row(&[0.0; 4]);
        let run = array.finish(1);
        assert_eq!(run.cost.comp_ops(), 0);
        assert!(run.r.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn wrong_row_length_panics() {
        let mut array = GivensArray::new(4);
        array.feed_row(&[1.0, 2.0]);
    }
}
