//! Cycle-level systolic array simulations.
//!
//! Section 4.2's self-balancing claim for square meshes hinges on a premise:
//! that matrix computations *actually decompose* onto a mesh with constant
//! per-PE memory. The paper cites the Kung–Leiserson matrix-multiplication
//! array and the Gentleman–Kung triangularization array as proof. This
//! module simulates both at cycle level and verifies their outputs, closing
//! that loop executably:
//!
//! * [`matmul`] — `n × n` mesh computing `C = A·B` with three registers per
//!   cell; operands stream in skewed from the west and north edges.
//! * [`givens`] — triangular array computing the `R` factor of `A` by
//!   Givens rotations; boundary cells generate rotations, internal cells
//!   apply them.

pub mod givens;
pub mod matmul;

pub use givens::{GivensArray, GivensRun};
pub use matmul::{systolic_matmul, SystolicRun};
