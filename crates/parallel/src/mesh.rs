//! The two-dimensional processor array (paper §4.2, Fig. 4).
//!
//! A `p × p` mesh replacing one PE has `p²`-fold computation bandwidth and
//! `p`-fold I/O bandwidth (the perimeter scales with `p`), so `α = p` again.
//! For `α²`-law computations the required total memory is `p²·M_old` —
//! which the `p²` PEs supply **automatically with constant per-PE memory**.
//! That is the paper's remarkable §4.2 result: a square array is
//! self-balancing for matrix computations as it grows, *provided the
//! computation decomposes onto the mesh* (which the systolic algorithms in
//! [`crate::systolic`] demonstrate). For `α^d`-laws with `d > 2`, per-PE
//! memory must still grow like `p^(d-2)`.

use balance_core::{Alpha, BalanceError, GrowthLaw, PeSpec, Words};

/// A `p × p` mesh of identical PEs with perimeter I/O.
///
/// # Examples
///
/// ```
/// use balance_core::{GrowthLaw, OpsPerSec, PeSpec, Words, WordsPerSec};
/// use balance_parallel::SquareMesh;
///
/// let cell = PeSpec::new(OpsPerSec::new(1.0e7), WordsPerSec::new(2.0e7), Words::new(1024))?;
/// let mesh = SquareMesh::new(8, cell)?;
///
/// // Matrix law: constant per-PE memory regardless of p.
/// let law = GrowthLaw::Polynomial { degree: 2.0 };
/// assert_eq!(mesh.required_memory_per_pe(law, Words::new(1024))?.get(), 1024);
///
/// // 3-D grid law: per-PE memory grows with p.
/// let law3 = GrowthLaw::Polynomial { degree: 3.0 };
/// assert_eq!(mesh.required_memory_per_pe(law3, Words::new(1024))?.get(), 8 * 1024);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareMesh {
    p: u64,
    cell: PeSpec,
}

impl SquareMesh {
    /// Creates a `p × p` mesh, `p ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] if `p == 0`.
    pub fn new(p: u64, cell: PeSpec) -> Result<Self, BalanceError> {
        if p == 0 {
            return Err(BalanceError::InvalidQuantity {
                what: "mesh side",
                value: 0.0,
            });
        }
        Ok(SquareMesh { p, cell })
    }

    /// Mesh side `p` (the array has `p²` PEs).
    #[must_use]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Total number of PEs, `p²`.
    #[must_use]
    pub fn cells(&self) -> u64 {
        self.p * self.p
    }

    /// The per-cell specification.
    #[must_use]
    pub fn cell(&self) -> PeSpec {
        self.cell
    }

    /// The mesh viewed as one PE: `p²`-fold compute and memory, `p`-fold
    /// I/O.
    ///
    /// # Errors
    ///
    /// [`BalanceError::MemoryOverflow`] for absurd `p`.
    pub fn aggregate(&self) -> Result<PeSpec, BalanceError> {
        self.cell.aggregate_scaled(self.p * self.p, self.p as f64)
    }

    /// The rebalance factor the arrangement imposes: `α = p²/p = p`.
    #[must_use]
    pub fn alpha(&self) -> Alpha {
        Alpha::new(self.p as f64).expect("p >= 1")
    }

    /// Total aggregate memory needed to keep the mesh balanced.
    ///
    /// # Errors
    ///
    /// [`BalanceError::IoBounded`] / [`BalanceError::MemoryOverflow`] per
    /// the law.
    pub fn required_total_memory(
        &self,
        law: GrowthLaw,
        m_old: Words,
    ) -> Result<Words, BalanceError> {
        law.new_memory(self.p as f64, m_old)
    }

    /// Memory each of the `p²` PEs must have to keep the mesh balanced.
    ///
    /// `α²`-law: `M_old` (constant — the self-balancing case).
    /// `α^d`-law: `p^(d-2)·M_old`.
    ///
    /// # Errors
    ///
    /// As [`required_total_memory`](Self::required_total_memory).
    pub fn required_memory_per_pe(
        &self,
        law: GrowthLaw,
        m_old: Words,
    ) -> Result<Words, BalanceError> {
        let total = self.required_total_memory(law, m_old)?;
        Ok(Words::new(total.get().div_ceil(self.cells())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{OpsPerSec, WordsPerSec};

    fn cell() -> PeSpec {
        PeSpec::new(
            OpsPerSec::new(10.0e6),
            WordsPerSec::new(20.0e6),
            Words::new(256),
        )
        .unwrap()
    }

    #[test]
    fn aggregate_scales_like_the_paper_says() {
        let mesh = SquareMesh::new(8, cell()).unwrap();
        let agg = mesh.aggregate().unwrap();
        assert_eq!(agg.comp_bw().get(), 64.0 * 10.0e6);
        assert_eq!(agg.io_bw().get(), 8.0 * 20.0e6);
        assert_eq!(agg.memory().get(), 64 * 256);
        // alpha = p.
        let cell_balance = cell().machine_balance();
        assert!((agg.machine_balance() / cell_balance - 8.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_law_is_self_balancing() {
        // The §4.2 headline: constant per-PE memory for α²-computations.
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        for p in [1u64, 2, 4, 8, 16, 32] {
            let mesh = SquareMesh::new(p, cell()).unwrap();
            let per_pe = mesh.required_memory_per_pe(law, Words::new(256)).unwrap();
            assert_eq!(per_pe.get(), 256, "p = {p}");
        }
    }

    #[test]
    fn high_dimensional_grids_are_never_self_balancing() {
        // For d > 2, per-PE memory grows as p^(d-2): "an automatically
        // rebalanced, square processor array is never possible".
        let law3 = GrowthLaw::Polynomial { degree: 3.0 };
        let law4 = GrowthLaw::Polynomial { degree: 4.0 };
        for p in [2u64, 4, 8] {
            let mesh = SquareMesh::new(p, cell()).unwrap();
            let m3 = mesh.required_memory_per_pe(law3, Words::new(256)).unwrap();
            let m4 = mesh.required_memory_per_pe(law4, Words::new(256)).unwrap();
            assert_eq!(m3.get(), p * 256, "d=3, p={p}");
            assert_eq!(m4.get(), p * p * 256, "d=4, p={p}");
        }
    }

    #[test]
    fn io_bounded_and_exponential_laws_behave() {
        let mesh = SquareMesh::new(4, cell()).unwrap();
        assert_eq!(
            mesh.required_memory_per_pe(GrowthLaw::Impossible, Words::new(64)),
            Err(BalanceError::IoBounded)
        );
        // Exponential: 64^4 = 2^24 total; per PE = 2^24/16 = 2^20.
        let per_pe = mesh
            .required_memory_per_pe(GrowthLaw::Exponential, Words::new(64))
            .unwrap();
        assert_eq!(per_pe.get(), (1u64 << 24) / 16);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(SquareMesh::new(0, cell()).is_err());
        let mesh = SquareMesh::new(1, cell()).unwrap();
        assert_eq!(mesh.cells(), 1);
        assert_eq!(mesh.alpha().get(), 1.0);
    }
}
