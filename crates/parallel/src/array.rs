//! The one-dimensional processor array (paper §4.1, Fig. 3).
//!
//! `p` linearly connected PEs replace one PE. Only the two boundary PEs talk
//! to the outside world, so the collection — viewed as a single "new
//! processing element" — has `p` times the computation bandwidth at the
//! *same* I/O bandwidth: `α = p`. For computations obeying
//! `M_new ≥ α²·M_old` the aggregate needs `p²` times the memory, i.e.
//! **each PE's local memory must grow linearly with `p`**: the larger the
//! array, the larger each PE's memory.

use balance_core::{Alpha, BalanceError, GrowthLaw, PeSpec, Words};

/// A linear array of `p` identical PEs behind a single I/O boundary.
///
/// # Examples
///
/// ```
/// use balance_core::{GrowthLaw, OpsPerSec, PeSpec, Words, WordsPerSec};
/// use balance_parallel::LinearArray;
///
/// let cell = PeSpec::new(OpsPerSec::new(1.0e7), WordsPerSec::new(2.0e7), Words::new(1024))?;
/// let array = LinearArray::new(16, cell)?;
/// assert_eq!(array.alpha().get(), 16.0);
///
/// // Matrix law: per-PE memory grows linearly with p.
/// let per_pe = array.required_memory_per_pe(GrowthLaw::Polynomial { degree: 2.0 }, Words::new(1024))?;
/// assert_eq!(per_pe.get(), 16 * 1024);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearArray {
    p: u64,
    cell: PeSpec,
}

impl LinearArray {
    /// Creates an array of `p ≥ 1` cells.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] if `p == 0`.
    pub fn new(p: u64, cell: PeSpec) -> Result<Self, BalanceError> {
        if p == 0 {
            return Err(BalanceError::InvalidQuantity {
                what: "PE count",
                value: 0.0,
            });
        }
        Ok(LinearArray { p, cell })
    }

    /// Number of PEs.
    #[must_use]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// The per-cell specification.
    #[must_use]
    pub fn cell(&self) -> PeSpec {
        self.cell
    }

    /// The array viewed as one PE: `p`-fold compute and memory, unchanged
    /// I/O (only boundary PEs reach the outside world).
    ///
    /// # Errors
    ///
    /// [`BalanceError::MemoryOverflow`] for absurd `p`.
    pub fn aggregate(&self) -> Result<PeSpec, BalanceError> {
        self.cell.aggregate(self.p)
    }

    /// The rebalance factor the arrangement imposes: `α = p`.
    #[must_use]
    pub fn alpha(&self) -> Alpha {
        Alpha::new(self.p as f64).expect("p >= 1")
    }

    /// Total aggregate memory needed to keep the array balanced for a
    /// computation with growth law `law`, where `m_old` balances one PE.
    ///
    /// # Errors
    ///
    /// [`BalanceError::IoBounded`] for I/O-bounded computations,
    /// [`BalanceError::MemoryOverflow`] when the law explodes.
    pub fn required_total_memory(
        &self,
        law: GrowthLaw,
        m_old: Words,
    ) -> Result<Words, BalanceError> {
        law.new_memory(self.p as f64, m_old)
    }

    /// Memory each PE must have to keep the array balanced (total / p).
    ///
    /// For the matrix law (`α²`) this is `p·M_old` — the paper's headline
    /// §4.1 result: per-PE memory grows linearly with the array size.
    ///
    /// # Errors
    ///
    /// As [`required_total_memory`](Self::required_total_memory).
    pub fn required_memory_per_pe(
        &self,
        law: GrowthLaw,
        m_old: Words,
    ) -> Result<Words, BalanceError> {
        let total = self.required_total_memory(law, m_old)?;
        Ok(Words::new(total.get().div_ceil(self.p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{OpsPerSec, WordsPerSec};

    fn cell() -> PeSpec {
        PeSpec::new(
            OpsPerSec::new(10.0e6),
            WordsPerSec::new(20.0e6),
            Words::new(1024),
        )
        .unwrap()
    }

    #[test]
    fn aggregate_scales_compute_not_io() {
        let array = LinearArray::new(8, cell()).unwrap();
        let agg = array.aggregate().unwrap();
        assert_eq!(agg.comp_bw().get(), 80.0e6);
        assert_eq!(agg.io_bw().get(), 20.0e6);
        assert_eq!(agg.memory().get(), 8 * 1024);
        assert_eq!(array.alpha().get(), 8.0);
    }

    #[test]
    fn per_pe_memory_grows_linearly_for_matrix_law() {
        // The paper's §4.1 result, verified across array sizes.
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        let m_old = Words::new(4096);
        for p in [1u64, 2, 4, 8, 16, 32, 64] {
            let array = LinearArray::new(p, cell()).unwrap();
            let per_pe = array.required_memory_per_pe(law, m_old).unwrap();
            assert_eq!(per_pe.get(), p * 4096, "p = {p}");
        }
    }

    #[test]
    fn per_pe_memory_grows_quadratically_for_3d_grids() {
        let law = GrowthLaw::Polynomial { degree: 3.0 };
        let array = LinearArray::new(10, cell()).unwrap();
        let per_pe = array.required_memory_per_pe(law, Words::new(1000)).unwrap();
        // total = p³·M_old = 1000·1000 words; per PE = total/p = p²·M_old.
        assert_eq!(per_pe.get(), 100 * 1000);
    }

    #[test]
    fn io_bounded_computations_cannot_balance_any_array() {
        let array = LinearArray::new(4, cell()).unwrap();
        assert_eq!(
            array.required_memory_per_pe(GrowthLaw::Impossible, Words::new(64)),
            Err(BalanceError::IoBounded)
        );
    }

    #[test]
    fn fft_law_explodes_with_p() {
        // M_old^p: even p = 8 with M_old = 4096 overflows u64 (2^96).
        let array = LinearArray::new(8, cell()).unwrap();
        assert!(matches!(
            array.required_total_memory(GrowthLaw::Exponential, Words::new(4096)),
            Err(BalanceError::MemoryOverflow { .. })
        ));
    }

    #[test]
    fn p_one_is_identity() {
        let array = LinearArray::new(1, cell()).unwrap();
        let per_pe = array
            .required_memory_per_pe(GrowthLaw::Polynomial { degree: 2.0 }, Words::new(77))
            .unwrap();
        assert_eq!(per_pe.get(), 77);
    }

    #[test]
    fn zero_pes_rejected() {
        assert!(LinearArray::new(0, cell()).is_err());
    }
}
