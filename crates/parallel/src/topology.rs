//! ASCII renderings of the paper's array figures.
//!
//! Figure 3 (one PE becomes a linear array) and Figure 4 (one PE becomes a
//! `p × p` mesh) are reproduced as text diagrams for the `repro` harness.

/// Renders Figure 3: one PE replaced by `p` linearly connected PEs, with
/// I/O only at the boundary.
#[must_use]
pub fn render_linear_array(p: usize) -> String {
    let mut s = String::new();
    s.push_str("Before: 1 PE          Now: p PEs (I/O at the boundary only)\n\n");
    s.push_str("<=> [PE]              <=> ");
    for i in 0..p {
        s.push_str("[PE]");
        if i + 1 < p {
            s.push('-');
        }
    }
    s.push_str(" <=>\n");
    s
}

/// Renders Figure 4: one PE replaced by a `p × p` mesh with perimeter I/O.
#[must_use]
pub fn render_mesh(p: usize) -> String {
    let mut s = String::new();
    s.push_str("Before: 1 PE          Now: p x p PEs (perimeter I/O)\n\n");
    for row in 0..p {
        if row == 0 {
            s.push_str("<=> [PE]          ");
        } else {
            s.push_str("                  ");
        }
        s.push_str("<=> ");
        for col in 0..p {
            s.push_str("[PE]");
            if col + 1 < p {
                s.push('-');
            }
        }
        s.push_str(" <=>\n");
        if row + 1 < p {
            s.push_str("                      ");
            for col in 0..p {
                s.push_str("  | ");
                if col + 1 < p {
                    s.push(' ');
                }
            }
            s.push('\n');
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_array_shows_p_pes() {
        let art = render_linear_array(4);
        assert_eq!(art.matches("[PE]").count(), 5); // 1 before + 4 after
        assert!(art.contains("boundary"));
    }

    #[test]
    fn mesh_shows_p_squared_pes() {
        let art = render_mesh(3);
        assert_eq!(art.matches("[PE]").count(), 10); // 1 before + 9 after
        assert!(art.contains('|')); // vertical links
    }

    #[test]
    fn degenerate_sizes_render() {
        assert!(render_linear_array(1).contains("[PE]"));
        assert!(render_mesh(1).contains("[PE]"));
    }
}
