//! # balance-parallel
//!
//! The parallel-architecture half of Kung (1985), Section 4: parallel
//! processing viewed as "a particular method of increasing the computation
//! bandwidth of a PE", and what that does to memory requirements.
//!
//! * [`mod@array`] — the linear array (§4.1, Fig. 3): `α = p`, so per-PE memory
//!   must grow **linearly with the array size** for matrix computations;
//! * [`mesh`] — the square mesh (§4.2, Fig. 4): `α = p` but `p²` PEs, so
//!   per-PE memory is **constant** for `α²`-laws and grows as `p^(d-2)` for
//!   d-dimensional grids with `d > 2`;
//! * [`systolic`] — cycle-level simulations of the decompositions the paper
//!   cites as making the mesh result attainable: Kung–Leiserson matrix
//!   multiplication and Gentleman–Kung Givens triangularization;
//! * [`warp`] — the §5 CMU Warp machine case study (10 MFLOP/s cells,
//!   20 Mwords/s links, 64K-word memories);
//! * [`topology`] — ASCII renderings of Figures 3 and 4;
//! * [`scaling`] — the `(p, memory-per-PE)` series behind experiments E8
//!   and E9;
//! * [`pmachine`] — the **measured** §4 machine: a [`ParallelMachine`] of
//!   `p` counting PEs (each with its own memory system, flat or a full
//!   hierarchy) with external I/O and inter-PE communication as distinct
//!   traffic classes;
//! * [`pkernels`] — block-partitioned parallel matmul / transpose /
//!   grid relaxation running on it (1-PE machines are bit-identical to the
//!   serial kernels);
//! * [`measure`] — `parallel_sweep(_par)` executors plus the
//!   measured-balance machinery that validates the §4 scaling laws (the
//!   analytic [`scaling`] series) by measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod measure;
pub mod mesh;
pub mod pkernels;
pub mod pmachine;
pub mod scaling;
pub mod systolic;
pub mod topology;
pub mod warp;

pub use array::LinearArray;
pub use measure::{
    measured_balance_memory, measured_balance_memory_with_model, measured_growth_law,
    measured_series, parallel_sweep, parallel_sweep_par, MeasuredBalanceConfig, ParallelPoint,
    ParallelSweepConfig,
};
pub use mesh::SquareMesh;
pub use pkernels::{
    parallel_kernels, ExternalIoProfile, ParGrid2d, ParMatMul, ParTranspose, ParallelKernel,
    ParallelRun,
};
pub use pmachine::{ParallelExecution, ParallelMachine, PeReport, Topology, TopologyKind};
pub use scaling::{growth_exponent, linear_array_series, mesh_series, ScalingPoint};
pub use warp::{case_study, warp_array, warp_cell, WarpReport};
