//! Scaling series for the §4 experiments (E8, E9).
//!
//! Generates `(p, memory-per-PE)` curves for linear arrays and square
//! meshes under each growth law — the data behind Figures 3 and 4's
//! architectural conclusions.

use balance_core::{BalanceError, GrowthLaw, PeSpec, Words};

use crate::array::LinearArray;
use crate::mesh::SquareMesh;

/// One point of a scaling series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Array size parameter (`p` PEs for linear, `p × p` for mesh).
    pub p: u64,
    /// Memory each PE needs, in words.
    pub per_pe_memory: u64,
    /// Aggregate memory across the machine, in words.
    pub total_memory: u64,
}

/// Per-PE memory requirement of a linear array of each size in `ps`, for a
/// computation with growth law `law` balanced at `m_old` on one PE.
///
/// # Errors
///
/// Propagates law errors ([`BalanceError::IoBounded`], overflow).
pub fn linear_array_series(
    cell: PeSpec,
    law: GrowthLaw,
    m_old: Words,
    ps: &[u64],
) -> Result<Vec<ScalingPoint>, BalanceError> {
    ps.iter()
        .map(|&p| {
            let array = LinearArray::new(p, cell)?;
            let total = array.required_total_memory(law, m_old)?;
            let per_pe = array.required_memory_per_pe(law, m_old)?;
            Ok(ScalingPoint {
                p,
                per_pe_memory: per_pe.get(),
                total_memory: total.get(),
            })
        })
        .collect()
}

/// Per-PE memory requirement of a `p × p` mesh for each `p` in `ps`.
///
/// # Errors
///
/// Propagates law errors.
pub fn mesh_series(
    cell: PeSpec,
    law: GrowthLaw,
    m_old: Words,
    ps: &[u64],
) -> Result<Vec<ScalingPoint>, BalanceError> {
    ps.iter()
        .map(|&p| {
            let mesh = SquareMesh::new(p, cell)?;
            let total = mesh.required_total_memory(law, m_old)?;
            let per_pe = mesh.required_memory_per_pe(law, m_old)?;
            Ok(ScalingPoint {
                p,
                per_pe_memory: per_pe.get(),
                total_memory: total.get(),
            })
        })
        .collect()
}

/// Fits the slope of `log(per_pe_memory)` against `log(p)` — the growth
/// exponent of the series (1.0 = linear growth, 0.0 = constant).
///
/// # Panics
///
/// Panics if fewer than two points are supplied (harness misuse).
#[must_use]
pub fn growth_exponent(series: &[ScalingPoint]) -> f64 {
    assert!(series.len() >= 2, "need at least two points");
    let xs: Vec<f64> = series.iter().map(|s| (s.p as f64).ln()).collect();
    let ys: Vec<f64> = series
        .iter()
        .map(|s| (s.per_pe_memory.max(1) as f64).ln())
        .collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{OpsPerSec, WordsPerSec};

    fn cell() -> PeSpec {
        PeSpec::new(
            OpsPerSec::new(1.0e7),
            WordsPerSec::new(2.0e7),
            Words::new(1024),
        )
        .unwrap()
    }

    const PS: [u64; 6] = [2, 4, 8, 16, 32, 64];

    #[test]
    fn linear_array_matrix_law_grows_linearly() {
        // E8 / Fig 3: per-PE memory ∝ p.
        let series = linear_array_series(
            cell(),
            GrowthLaw::Polynomial { degree: 2.0 },
            Words::new(1024),
            &PS,
        )
        .unwrap();
        let slope = growth_exponent(&series);
        assert!((slope - 1.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn mesh_matrix_law_is_flat() {
        // E9 / Fig 4: per-PE memory constant.
        let series = mesh_series(
            cell(),
            GrowthLaw::Polynomial { degree: 2.0 },
            Words::new(1024),
            &PS,
        )
        .unwrap();
        let slope = growth_exponent(&series);
        assert!(slope.abs() < 1e-9, "slope {slope}");
        assert!(series.iter().all(|s| s.per_pe_memory == 1024));
    }

    #[test]
    fn mesh_3d_grid_law_grows_linearly() {
        // E9's second half: d = 3 grids grow per-PE memory like p^(d-2) = p.
        let series = mesh_series(
            cell(),
            GrowthLaw::Polynomial { degree: 3.0 },
            Words::new(1024),
            &PS,
        )
        .unwrap();
        let slope = growth_exponent(&series);
        assert!((slope - 1.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn io_bounded_law_propagates_error() {
        assert!(linear_array_series(cell(), GrowthLaw::Impossible, Words::new(64), &PS).is_err());
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn growth_exponent_needs_points() {
        let _ = growth_exponent(&[]);
    }
}
