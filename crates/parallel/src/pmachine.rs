//! The measured multi-PE machine: `p` counting PEs behind one I/O boundary.
//!
//! Sections 4.1–4.2 of the paper treat a processor array as "a particular
//! method of increasing the computation bandwidth of a PE": the collection
//! is one big PE with `p`-fold (linear array) or `p²`-fold (mesh) compute,
//! whose I/O bandwidth grows not at all (linear) or only `p`-fold (mesh
//! perimeter). [`crate::array`] and [`crate::mesh`] carry the *analytic*
//! consequences; this module makes the arrangement **executable**: a
//! [`ParallelMachine`] owns `p` simulated [`Pe`]s — each with its own
//! [`MemorySystem`](balance_machine::MemorySystem), flat or a full
//! [`HierarchySpec`] ladder — and counts two distinct traffic classes:
//!
//! * **external I/O** — words moved between any PE and the outside world
//!   (the machine's single logical port, the paper's `IO`); port transfers
//!   are counted per PE *and* at the machine's transfer layer, so
//!   conservation is checkable, and on hierarchy PEs the *external* figure
//!   is the outermost boundary's (outer cache levels filter port traffic);
//! * **communication** — words moved PE-to-PE inside the machine
//!   ([`ParallelMachine::send`] / [`ParallelMachine::rotate_left`]), which
//!   never cross the external boundary. Link occupancy is additionally
//!   priced in word·hops using the topology's distance metric, feeding the
//!   bisection term of `balance_roofline`'s `ParallelRoofline`.
//!
//! The distinction is the §4 story in measurable form: an arrangement is
//! architecturally interesting exactly when it converts external traffic
//! into (cheaper, scalable) internal communication — Hanlon (2015) emulates
//! a large memory with a collection of small ones on the same ledger, and
//! Silva et al. (2013) balance memory-aware parallel workers by it.

use core::fmt;

use balance_core::{
    Alpha, BalanceError, BalanceState, CostProfile, Execution, GrowthLaw, HierarchySpec, PeSpec,
    Words,
};
use balance_machine::{BufferId, ExternalStore, MachineError, Pe, Region};

use crate::array::LinearArray;
use crate::mesh::SquareMesh;

/// The arrangement of the PEs: which §4 figure the machine realizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A linearly connected array of `p` PEs (§4.1, Fig. 3): only the
    /// boundary PEs reach the outside world, so external bandwidth does
    /// not grow with `p` and `α = p`.
    Linear {
        /// Number of PEs.
        p: u64,
    },
    /// A `side × side` mesh (§4.2, Fig. 4): `side²` PEs behind a
    /// perimeter that scales the external bandwidth `side`-fold, so
    /// `α = side`.
    Mesh {
        /// Mesh side (the machine has `side²` PEs).
        side: u64,
    },
}

impl Topology {
    /// A linear array of `p ≥ 1` PEs.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] if `p == 0`.
    pub fn linear(p: u64) -> Result<Self, BalanceError> {
        if p == 0 {
            return Err(BalanceError::InvalidQuantity {
                what: "PE count",
                value: 0.0,
            });
        }
        Ok(Topology::Linear { p })
    }

    /// A `side × side` mesh, `side ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] if `side == 0`.
    pub fn mesh(side: u64) -> Result<Self, BalanceError> {
        if side == 0 {
            return Err(BalanceError::InvalidQuantity {
                what: "mesh side",
                value: 0.0,
            });
        }
        Ok(Topology::Mesh { side })
    }

    /// Total number of PEs in the machine.
    #[must_use]
    pub fn pe_count(&self) -> u64 {
        match *self {
            Topology::Linear { p } => p,
            Topology::Mesh { side } => side * side,
        }
    }

    /// The rebalance factor the arrangement imposes: compute gain over
    /// I/O gain (`p` for the linear array, `side` for the mesh).
    #[must_use]
    pub fn alpha(&self) -> Alpha {
        let a = match *self {
            Topology::Linear { p } => p,
            Topology::Mesh { side } => side,
        };
        Alpha::new(a as f64).expect("validated >= 1")
    }

    /// How many links a bisection of the machine cuts: 1 for the linear
    /// array, `side` for the mesh. This bounds the machine's internal
    /// all-to-all bandwidth in the parallel roofline.
    #[must_use]
    pub fn bisection_links(&self) -> u64 {
        match *self {
            Topology::Linear { .. } => 1,
            Topology::Mesh { side } => side,
        }
    }

    /// Hop distance between PEs `a` and `b`: index distance on the linear
    /// array, Manhattan distance on the mesh.
    ///
    /// Mesh indices are laid out **boustrophedon** (serpentine: even rows
    /// left-to-right, odd rows right-to-left), so consecutive indices are
    /// always physically adjacent — the natural embedding for the slab
    /// and ring algorithms the parallel kernels use, and the one that
    /// prices their neighbor/rotation communication at one hop instead of
    /// a row-major row-wrap penalty.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range (harness misuse).
    #[must_use]
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let n = usize::try_from(self.pe_count()).expect("PE count fits usize");
        assert!(a < n && b < n, "PE index out of range");
        match *self {
            Topology::Linear { .. } => a.abs_diff(b) as u64,
            Topology::Mesh { side } => {
                let side = side as usize;
                let snake = |i: usize| {
                    let (r, c) = (i / side, i % side);
                    (r, if r % 2 == 0 { c } else { side - 1 - c })
                };
                let ((ar, ac), (br, bc)) = (snake(a), snake(b));
                (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
            }
        }
    }

    /// The machine viewed as one PE built from `cell`s: the §4 aggregate
    /// (delegates to [`LinearArray::aggregate`] / [`SquareMesh::aggregate`]).
    ///
    /// # Errors
    ///
    /// [`BalanceError::MemoryOverflow`] for absurd sizes.
    pub fn aggregate(&self, cell: PeSpec) -> Result<PeSpec, BalanceError> {
        match *self {
            Topology::Linear { p } => LinearArray::new(p, cell)?.aggregate(),
            Topology::Mesh { side } => SquareMesh::new(side, cell)?.aggregate(),
        }
    }

    /// The analytic per-PE memory requirement of the arrangement for a
    /// computation with growth law `law` balanced at `m_old` on one PE —
    /// the §4 closed forms ([`LinearArray::required_memory_per_pe`] /
    /// [`SquareMesh::required_memory_per_pe`]) that experiment E21
    /// validates by measurement.
    ///
    /// # Errors
    ///
    /// [`BalanceError::IoBounded`] / [`BalanceError::MemoryOverflow`] per
    /// the law.
    pub fn required_memory_per_pe(
        &self,
        cell: PeSpec,
        law: GrowthLaw,
        m_old: Words,
    ) -> Result<Words, BalanceError> {
        match *self {
            Topology::Linear { p } => {
                LinearArray::new(p, cell)?.required_memory_per_pe(law, m_old)
            }
            Topology::Mesh { side } => {
                SquareMesh::new(side, cell)?.required_memory_per_pe(law, m_old)
            }
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Linear { p } => write!(f, "linear({p})"),
            Topology::Mesh { side } => write!(f, "mesh({side}x{side})"),
        }
    }
}

/// A §4 arrangement family, abstracting over its size parameter — the
/// x-axis of the Figure 3/4 scaling walks (`p` PEs for the linear array,
/// a `size × size` grid for the mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Linear arrays ([`Topology::Linear`]).
    Linear,
    /// Square meshes ([`Topology::Mesh`]).
    Mesh,
}

impl TopologyKind {
    /// The concrete topology of this family at size parameter `size`.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] if `size == 0`.
    pub fn at(self, size: u64) -> Result<Topology, BalanceError> {
        match self {
            TopologyKind::Linear => Topology::linear(size),
            TopologyKind::Mesh => Topology::mesh(size),
        }
    }

    /// Parses a CLI-style family name.
    ///
    /// # Errors
    ///
    /// A user-facing message for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "linear" => Ok(TopologyKind::Linear),
            "mesh" => Ok(TopologyKind::Mesh),
            other => Err(format!("unknown topology '{other}' (try: linear, mesh)")),
        }
    }
}

/// One PE's share of a parallel execution: its measured [`Execution`] plus
/// the communication it took part in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeReport {
    /// The PE's own counted costs: external I/O (one traffic entry per
    /// memory level) and operations.
    pub execution: Execution,
    /// Words this PE sent to other PEs.
    pub comm_sent: u64,
    /// Words this PE received from other PEs.
    pub comm_received: u64,
}

impl PeReport {
    /// Total communication words this PE touched (sent + received).
    #[must_use]
    pub fn comm_words(&self) -> u64 {
        self.comm_sent + self.comm_received
    }

    /// Words this PE moved through its port (boundary 0): every transfer
    /// its explicit scheme performed against the outside world.
    #[must_use]
    pub fn port_words(&self) -> u64 {
        self.execution.cost.io_words()
    }

    /// This PE's true external traffic: the **outermost** boundary of its
    /// memory system. Equal to [`PeReport::port_words`] on a flat PE; on a
    /// hierarchy PE the outer cache levels filter port transfers, so only
    /// the words that missed every level actually left the machine.
    #[must_use]
    pub fn external_words(&self) -> u64 {
        let cost = &self.execution.cost;
        cost.io_at(cost.level_count() - 1).unwrap_or(0)
    }
}

/// The measured result of running a computation on a [`ParallelMachine`]:
/// per-PE reports plus machine-level aggregates, with external I/O and
/// inter-PE communication as distinct traffic classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelExecution {
    /// The arrangement the machine ran as.
    pub topology: Topology,
    /// One report per PE, in PE order.
    pub per_pe: Vec<PeReport>,
    /// Port words counted at the machine's transfer layer, at transfer
    /// time (independent of the per-PE counters; conservation demands it
    /// equal their sum). On flat PEs this is also the machine's external
    /// traffic; on hierarchy PEs the external figure is the filtered
    /// [`ParallelExecution::external_words`].
    pub machine_port_words: u64,
    /// Total words communicated PE-to-PE (each word counted once, at the
    /// sending side).
    pub comm_words: u64,
    /// Link occupancy: communicated words weighted by topology hop
    /// distance — the quantity the bisection bandwidth must carry.
    pub link_hop_words: u64,
}

impl ParallelExecution {
    /// Total operations delivered by all PEs.
    #[must_use]
    pub fn comp_ops(&self) -> u64 {
        self.per_pe.iter().map(|r| r.execution.cost.comp_ops()).sum()
    }

    /// Sum of the per-PE port traffic, in words.
    #[must_use]
    pub fn port_words(&self) -> u64 {
        self.per_pe.iter().map(PeReport::port_words).sum()
    }

    /// The machine's external traffic: the sum of each PE's **outermost**
    /// boundary (words that actually left the machine). Equal to
    /// [`ParallelExecution::port_words`] when every PE is flat.
    #[must_use]
    pub fn external_words(&self) -> u64 {
        self.per_pe.iter().map(PeReport::external_words).sum()
    }

    /// True when the ledgers agree: the per-PE port counters sum exactly
    /// to the machine's transfer-time counter (double-entry bookkeeping),
    /// and no PE reports more external words than port words (outer
    /// levels can only filter traffic, never invent it).
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.port_words() == self.machine_port_words
            && self
                .per_pe
                .iter()
                .all(|r| r.external_words() <= r.port_words())
    }

    /// The machine-level cost profile: component-wise sum of the per-PE
    /// profiles (per-boundary traffic vectors add, spanning the deepest).
    #[must_use]
    pub fn aggregate_cost(&self) -> CostProfile {
        self.per_pe
            .iter()
            .fold(CostProfile::default(), |acc, r| {
                acc.combined(&r.execution.cost)
            })
    }

    /// The machine's external operational intensity
    /// `C_comp / external words` — the quantity the §4 balance condition
    /// reads (`f64::INFINITY` for a fully internal computation, through
    /// [`CostProfile::intensity`]'s canonical zero conventions).
    #[must_use]
    pub fn external_intensity(&self) -> f64 {
        CostProfile::new(self.comp_ops(), self.external_words()).intensity()
    }

    /// Operations per communicated word (`f64::INFINITY` when the PEs
    /// never spoke — e.g. any 1-PE machine).
    #[must_use]
    pub fn comm_intensity(&self) -> f64 {
        if self.comm_words == 0 {
            f64::INFINITY
        } else {
            self.comp_ops() as f64 / self.comm_words as f64
        }
    }

    /// Largest per-PE peak memory footprint, in words — the "memory each
    /// PE must have" that the §4 scaling laws govern.
    #[must_use]
    pub fn peak_memory_per_pe(&self) -> Words {
        Words::new(
            self.per_pe
                .iter()
                .map(|r| r.execution.peak_memory.get())
                .max()
                .unwrap_or(0),
        )
    }

    /// The machine-level balance verdict: the aggregate cost profile run
    /// against the arrangement's aggregate PE (`p`-fold compute at
    /// unchanged or perimeter-scaled I/O), within relative `tolerance`.
    ///
    /// # Errors
    ///
    /// Propagates aggregate-construction failures (absurd sizes).
    pub fn balance_state(
        &self,
        cell: PeSpec,
        tolerance: f64,
    ) -> Result<BalanceState, BalanceError> {
        let agg = self.topology.aggregate(cell)?;
        Ok(self.aggregate_cost().balance_state(&agg, tolerance))
    }
}

/// `p` counting PEs plus the two traffic ledgers (external vs comm).
///
/// All external transfers are routed through the machine
/// ([`ParallelMachine::load`] / [`ParallelMachine::store`]) so the machine
/// boundary counter stays in lock-step with the per-PE counters;
/// PE-to-PE movement uses [`ParallelMachine::send`] /
/// [`ParallelMachine::rotate_left`] and is charged to the communication
/// ledger only.
///
/// # Examples
///
/// ```
/// use balance_core::{HierarchySpec, Words};
/// use balance_machine::ExternalStore;
/// use balance_parallel::{ParallelMachine, Topology};
///
/// let topo = Topology::linear(2)?;
/// let mut machine = ParallelMachine::new(topo, &HierarchySpec::flat(Words::new(8)));
/// let mut store = ExternalStore::new();
/// let input = store.alloc_from(&[1.0, 2.0]);
///
/// // PE 0 loads from outside (external I/O), then forwards to PE 1 (comm).
/// let b0 = machine.alloc(0, 2)?;
/// let b1 = machine.alloc(1, 2)?;
/// machine.load(0, &store, input, b0, 0)?;
/// machine.send(0, b0, 0, 1, b1, 0, 2)?;
/// machine.count_ops(1, 2);
///
/// let exec = machine.execution();
/// assert_eq!(exec.external_words(), 2);
/// assert_eq!(exec.comm_words, 2);
/// assert!(exec.is_conserved());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelMachine {
    topology: Topology,
    nodes: Vec<Pe>,
    comm_sent: Vec<u64>,
    comm_received: Vec<u64>,
    link_hop_words: u64,
    port_words: u64,
}

impl ParallelMachine {
    /// Builds the machine: one [`Pe::for_hierarchy`] per PE, each owning
    /// its own copy of the memory system described by `per_pe` (level 0 is
    /// the explicitly blocked local memory; deeper levels are cache
    /// models).
    ///
    /// # Panics
    ///
    /// Panics when the PE count does not fit `usize` (absurd sizes).
    #[must_use]
    pub fn new(topology: Topology, per_pe: &HierarchySpec) -> Self {
        let n = usize::try_from(topology.pe_count()).expect("PE count fits usize");
        ParallelMachine {
            topology,
            nodes: (0..n).map(|_| Pe::for_hierarchy(per_pe)).collect(),
            comm_sent: vec![0; n],
            comm_received: vec![0; n],
            link_hop_words: 0,
            port_words: 0,
        }
    }

    /// The arrangement.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only view of PE `q` (counters, memory state).
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    #[must_use]
    pub fn pe(&self, q: usize) -> &Pe {
        &self.nodes[q]
    }

    /// Allocates a local buffer on PE `q`.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfMemory`] when the PE's working set would
    /// exceed its local capacity.
    pub fn alloc(&mut self, q: usize, len: usize) -> Result<BufferId, MachineError> {
        self.nodes[q].alloc(len)
    }

    /// Read access to PE `q`'s buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf(&self, q: usize, id: BufferId) -> Result<&[f64], MachineError> {
        self.nodes[q].buf(id)
    }

    /// Write access to PE `q`'s buffer.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] for stale handles.
    pub fn buf_mut(&mut self, q: usize, id: BufferId) -> Result<&mut [f64], MachineError> {
        self.nodes[q].buf_mut(id)
    }

    /// In-memory update on PE `q` (see [`Pe::update`]).
    ///
    /// # Errors
    ///
    /// As [`Pe::update`].
    pub fn update<R>(
        &mut self,
        q: usize,
        dst: BufferId,
        srcs: &[BufferId],
        f: impl FnOnce(&mut [f64], &[&[f64]]) -> R,
    ) -> Result<R, MachineError> {
        self.nodes[q].update(dst, srcs, f)
    }

    /// Counts `n` arithmetic operations on PE `q`.
    pub fn count_ops(&mut self, q: usize, n: u64) {
        self.nodes[q].count_ops(n);
    }

    /// PE `q` loads `region` from the outside world — external I/O,
    /// counted on the PE *and* at the machine boundary.
    ///
    /// # Errors
    ///
    /// As [`Pe::load`]; failed transfers count nothing on either ledger.
    pub fn load(
        &mut self,
        q: usize,
        store: &ExternalStore,
        region: Region,
        buf: BufferId,
        dst_offset: usize,
    ) -> Result<(), MachineError> {
        self.nodes[q].load(store, region, buf, dst_offset)?;
        self.port_words += region.len() as u64;
        Ok(())
    }

    /// PE `q` stores to the outside world — external I/O, counted on the
    /// PE and at the machine boundary.
    ///
    /// # Errors
    ///
    /// As [`Pe::store`]; failed transfers count nothing.
    pub fn store(
        &mut self,
        q: usize,
        store: &mut ExternalStore,
        buf: BufferId,
        src_offset: usize,
        region: Region,
    ) -> Result<(), MachineError> {
        self.nodes[q].store(store, buf, src_offset, region)?;
        self.port_words += region.len() as u64;
        Ok(())
    }

    /// Moves `len` words from PE `src`'s buffer to PE `dst`'s buffer —
    /// **communication**, never external I/O: charged to both PEs' comm
    /// counters and to the link ledger at the topology's hop distance.
    /// A same-PE transfer is a free local move (nothing is counted).
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] / [`MachineError::BufferOutOfBounds`]
    /// from either side; failed transfers count nothing.
    #[allow(clippy::too_many_arguments)] // (pe, buf, offset) twice is the address
    pub fn send(
        &mut self,
        src: usize,
        src_buf: BufferId,
        src_offset: usize,
        dst: usize,
        dst_buf: BufferId,
        dst_offset: usize,
        len: usize,
    ) -> Result<(), MachineError> {
        let data: Vec<f64> = {
            let b = self.nodes[src].buf(src_buf)?;
            if src_offset + len > b.len() {
                return Err(MachineError::BufferOutOfBounds {
                    id: src_buf.index(),
                    offset: src_offset,
                    len,
                    size: b.len(),
                });
            }
            b[src_offset..src_offset + len].to_vec()
        };
        let db = self.nodes[dst].buf_mut(dst_buf)?;
        if dst_offset + len > db.len() {
            return Err(MachineError::BufferOutOfBounds {
                id: dst_buf.index(),
                offset: dst_offset,
                len,
                size: db.len(),
            });
        }
        db[dst_offset..dst_offset + len].copy_from_slice(&data);
        if src != dst {
            let words = len as u64;
            self.comm_sent[src] += words;
            self.comm_received[dst] += words;
            self.link_hop_words += words * self.topology.hops(src, dst);
        }
        Ok(())
    }

    /// Simultaneous ring rotation: every PE `q` sends the first `lens[q]`
    /// words of its buffer `bufs[q]` to PE `q-1` (PE 0 wraps to the last
    /// PE), all transfers reading pre-rotation contents. This is the
    /// systolic "pass your operand slab left" step of the distributed
    /// matmul; on a 1-PE machine it is a no-op.
    ///
    /// # Errors
    ///
    /// [`MachineError::InvalidBuffer`] / [`MachineError::BufferOutOfBounds`]
    /// if any slab does not fit its destination buffer.
    ///
    /// # Panics
    ///
    /// Panics when `bufs`/`lens` do not have exactly one entry per PE
    /// (harness misuse).
    pub fn rotate_left(
        &mut self,
        bufs: &[BufferId],
        lens: &[usize],
    ) -> Result<(), MachineError> {
        let p = self.nodes.len();
        assert_eq!(bufs.len(), p, "one buffer per PE");
        assert_eq!(lens.len(), p, "one slab length per PE");
        if p <= 1 {
            return Ok(());
        }
        // Snapshot every slab first so the shift is simultaneous.
        let mut slabs: Vec<Vec<f64>> = Vec::with_capacity(p);
        for q in 0..p {
            let b = self.nodes[q].buf(bufs[q])?;
            if lens[q] > b.len() {
                return Err(MachineError::BufferOutOfBounds {
                    id: bufs[q].index(),
                    offset: 0,
                    len: lens[q],
                    size: b.len(),
                });
            }
            slabs.push(b[..lens[q]].to_vec());
        }
        // Validate every destination before mutating anything: a failed
        // rotation must count nothing and move nothing (the load/store/
        // send convention), not leave a partially shifted ring.
        for (q, &len) in lens.iter().enumerate() {
            let dst = (q + p - 1) % p;
            let db = self.nodes[dst].buf(bufs[dst])?;
            if len > db.len() {
                return Err(MachineError::BufferOutOfBounds {
                    id: bufs[dst].index(),
                    offset: 0,
                    len,
                    size: db.len(),
                });
            }
        }
        for q in 0..p {
            let dst = (q + p - 1) % p;
            let db = self.nodes[dst].buf_mut(bufs[dst])?;
            db[..lens[q]].copy_from_slice(&slabs[q]);
            let words = lens[q] as u64;
            self.comm_sent[q] += words;
            self.comm_received[dst] += words;
            self.link_hop_words += words * self.topology.hops(q, dst);
        }
        Ok(())
    }

    /// The measured execution: per-PE reports plus the machine aggregates.
    #[must_use]
    pub fn execution(&self) -> ParallelExecution {
        ParallelExecution {
            topology: self.topology,
            per_pe: self
                .nodes
                .iter()
                .enumerate()
                .map(|(q, pe)| PeReport {
                    execution: pe.execution(),
                    comm_sent: self.comm_sent[q],
                    comm_received: self.comm_received[q],
                })
                .collect(),
            machine_port_words: self.port_words,
            comm_words: self.comm_sent.iter().sum(),
            link_hop_words: self.link_hop_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{OpsPerSec, WordsPerSec};

    fn flat(m: u64) -> HierarchySpec {
        HierarchySpec::flat(Words::new(m))
    }

    #[test]
    fn topology_shapes() {
        let lin = Topology::linear(8).unwrap();
        assert_eq!(lin.pe_count(), 8);
        assert_eq!(lin.alpha().get(), 8.0);
        assert_eq!(lin.bisection_links(), 1);
        assert_eq!(lin.hops(1, 6), 5);
        assert_eq!(lin.to_string(), "linear(8)");
        let mesh = Topology::mesh(3).unwrap();
        assert_eq!(mesh.pe_count(), 9);
        assert_eq!(mesh.alpha().get(), 3.0);
        assert_eq!(mesh.bisection_links(), 3);
        // Snake layout: PE 0 = (0,0), PE 8 = (2,2): Manhattan distance 4.
        assert_eq!(mesh.hops(0, 8), 4);
        // Consecutive indices are always physically adjacent (the snake
        // turns at row boundaries: PE 3 sits at (1,2), next to PE 2).
        for q in 0..8 {
            assert_eq!(mesh.hops(q, q + 1), 1, "snake adjacency at {q}");
        }
        assert_eq!(mesh.to_string(), "mesh(3x3)");
        assert!(Topology::linear(0).is_err());
        assert!(Topology::mesh(0).is_err());
    }

    #[test]
    fn topology_aggregates_delegate_to_section_4() {
        let cell = PeSpec::new(
            OpsPerSec::new(1.0e7),
            WordsPerSec::new(2.0e7),
            Words::new(1024),
        )
        .unwrap();
        let lin = Topology::linear(4).unwrap().aggregate(cell).unwrap();
        assert_eq!(lin.comp_bw().get(), 4.0e7);
        assert_eq!(lin.io_bw().get(), 2.0e7);
        let mesh = Topology::mesh(4).unwrap().aggregate(cell).unwrap();
        assert_eq!(mesh.comp_bw().get(), 16.0e7);
        assert_eq!(mesh.io_bw().get(), 8.0e7);
        // Analytic per-PE requirement: the §4 closed forms.
        let law = GrowthLaw::Polynomial { degree: 2.0 };
        assert_eq!(
            Topology::linear(4)
                .unwrap()
                .required_memory_per_pe(cell, law, Words::new(100))
                .unwrap()
                .get(),
            400
        );
        assert_eq!(
            Topology::mesh(4)
                .unwrap()
                .required_memory_per_pe(cell, law, Words::new(100))
                .unwrap()
                .get(),
            100
        );
    }

    #[test]
    fn external_io_is_double_entry_bookkept() {
        let mut m = ParallelMachine::new(Topology::linear(2).unwrap(), &flat(16));
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[1.0, 2.0, 3.0, 4.0]);
        let b0 = m.alloc(0, 4).unwrap();
        let b1 = m.alloc(1, 2).unwrap();
        m.load(0, &store, r, b0, 0).unwrap();
        m.load(1, &store, r.at(0, 2).unwrap(), b1, 0).unwrap();
        m.store(1, &mut store, b1, 0, r.at(2, 2).unwrap()).unwrap();
        let exec = m.execution();
        assert_eq!(exec.per_pe[0].external_words(), 4);
        assert_eq!(exec.per_pe[1].external_words(), 4);
        assert_eq!(exec.external_words(), 8);
        assert_eq!(exec.machine_port_words, 8);
        assert!(exec.is_conserved());
        assert_eq!(exec.comm_words, 0);
    }

    #[test]
    fn failed_external_transfers_count_on_neither_ledger() {
        let mut m = ParallelMachine::new(Topology::linear(1).unwrap(), &flat(16));
        let mut store = ExternalStore::new();
        let r = store.alloc(4);
        let b = m.alloc(0, 2).unwrap();
        assert!(m.load(0, &store, r, b, 0).is_err());
        assert!(m.store(0, &mut store, b, 1, r).is_err());
        let exec = m.execution();
        assert_eq!(exec.external_words(), 0);
        assert_eq!(exec.machine_port_words, 0);
    }

    #[test]
    fn send_counts_comm_not_external() {
        let mut m = ParallelMachine::new(Topology::linear(3).unwrap(), &flat(8));
        let b: Vec<BufferId> = (0..3).map(|q| m.alloc(q, 4).unwrap()).collect();
        m.buf_mut(0, b[0]).unwrap().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // 0 -> 2 is two hops on the line.
        m.send(0, b[0], 1, 2, b[2], 0, 2).unwrap();
        assert_eq!(m.buf(2, b[2]).unwrap(), &[2.0, 3.0, 0.0, 0.0]);
        let exec = m.execution();
        assert_eq!(exec.comm_words, 2);
        assert_eq!(exec.link_hop_words, 4);
        assert_eq!(exec.per_pe[0].comm_sent, 2);
        assert_eq!(exec.per_pe[2].comm_received, 2);
        assert_eq!(exec.external_words(), 0);
        // Same-PE transfers are free local moves.
        m.send(1, b[1], 0, 1, b[1], 2, 2).unwrap();
        assert_eq!(m.execution().comm_words, 2);
    }

    #[test]
    fn send_bounds_failures_count_nothing() {
        let mut m = ParallelMachine::new(Topology::linear(2).unwrap(), &flat(8));
        let b0 = m.alloc(0, 2).unwrap();
        let b1 = m.alloc(1, 2).unwrap();
        assert!(m.send(0, b0, 1, 1, b1, 0, 2).is_err()); // src overrun
        assert!(m.send(0, b0, 0, 1, b1, 1, 2).is_err()); // dst overrun
        assert_eq!(m.execution().comm_words, 0);
    }

    #[test]
    fn rotate_left_shifts_slabs_and_counts_links() {
        let mut m = ParallelMachine::new(Topology::linear(3).unwrap(), &flat(8));
        let bufs: Vec<BufferId> = (0..3).map(|q| m.alloc(q, 2).unwrap()).collect();
        for (q, &buf) in bufs.iter().enumerate() {
            m.buf_mut(q, buf).unwrap().fill(q as f64);
        }
        m.rotate_left(&bufs, &[2, 2, 2]).unwrap();
        assert_eq!(m.buf(0, bufs[0]).unwrap(), &[1.0, 1.0]);
        assert_eq!(m.buf(1, bufs[1]).unwrap(), &[2.0, 2.0]);
        assert_eq!(m.buf(2, bufs[2]).unwrap(), &[0.0, 0.0]); // wrap from PE 0
        let exec = m.execution();
        assert_eq!(exec.comm_words, 6);
        // Two words per neighbor hop, plus the wrap (2 hops on a 3-PE line).
        assert_eq!(exec.link_hop_words, 2 + 2 + 4);
    }

    #[test]
    fn failed_rotation_counts_nothing_and_moves_nothing() {
        // Ragged buffers: PE 1's oversized slab cannot fit PE 0's buffer,
        // so the whole rotation must refuse — no partial shift, no
        // partially counted comm (the double-entry ledger depends on it).
        let mut m = ParallelMachine::new(Topology::linear(3).unwrap(), &flat(8));
        let b0 = m.alloc(0, 2).unwrap();
        let b1 = m.alloc(1, 5).unwrap();
        let b2 = m.alloc(2, 5).unwrap();
        m.buf_mut(2, b2).unwrap().fill(9.0);
        let err = m.rotate_left(&[b0, b1, b2], &[1, 5, 1]).unwrap_err();
        assert!(matches!(err, MachineError::BufferOutOfBounds { .. }), "{err}");
        // PE 2's buffer (destination of PE 0's slab) is untouched...
        assert_eq!(m.buf(2, b2).unwrap(), &[9.0; 5]);
        // ...and nothing was counted on any ledger.
        let exec = m.execution();
        assert_eq!(exec.comm_words, 0);
        assert_eq!(exec.link_hop_words, 0);
    }

    #[test]
    fn rotate_left_on_one_pe_is_a_noop() {
        let mut m = ParallelMachine::new(Topology::linear(1).unwrap(), &flat(8));
        let b = m.alloc(0, 2).unwrap();
        m.buf_mut(0, b).unwrap().copy_from_slice(&[7.0, 8.0]);
        m.rotate_left(&[b], &[2]).unwrap();
        assert_eq!(m.buf(0, b).unwrap(), &[7.0, 8.0]);
        assert_eq!(m.execution().comm_words, 0);
    }

    #[test]
    fn aggregate_cost_and_balance_verdict() {
        let cell = PeSpec::new(
            OpsPerSec::new(10.0),
            WordsPerSec::new(10.0),
            Words::new(64),
        )
        .unwrap();
        let mut m = ParallelMachine::new(Topology::linear(2).unwrap(), &flat(16));
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[0.0; 8]);
        for q in 0..2 {
            let b = m.alloc(q, 4).unwrap();
            m.load(q, &store, r.at(4 * q, 4).unwrap(), b, 0).unwrap();
            m.count_ops(q, 40);
        }
        let exec = m.execution();
        let cost = exec.aggregate_cost();
        assert_eq!(cost.comp_ops(), 80);
        assert_eq!(cost.io_words(), 8);
        assert_eq!(exec.external_intensity(), 10.0);
        assert_eq!(exec.comm_intensity(), f64::INFINITY);
        // Aggregate machine: C = 20, IO = 10 -> balance needs r = 2...
        // measured r = 10: compute-limited.
        assert!(matches!(
            exec.balance_state(cell, 0.05).unwrap(),
            BalanceState::ComputeLimited { .. }
        ));
        assert_eq!(exec.peak_memory_per_pe().get(), 4);
    }

    #[test]
    fn hierarchy_pes_carry_per_level_traffic() {
        use balance_core::LevelSpec;
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(8), WordsPerSec::new(2.0)).unwrap(),
            LevelSpec::new(Words::new(64), WordsPerSec::new(1.0)).unwrap(),
        ])
        .unwrap();
        let mut m = ParallelMachine::new(Topology::linear(2).unwrap(), &spec);
        let mut store = ExternalStore::new();
        let r = store.alloc_from(&[0.0; 8]);
        for q in 0..2 {
            let b = m.alloc(q, 8).unwrap();
            m.load(q, &store, r, b, 0).unwrap();
            m.load(q, &store, r, b, 0).unwrap(); // re-load: L2 filters
        }
        let exec = m.execution();
        let cost = exec.aggregate_cost();
        assert_eq!(cost.level_count(), 2);
        assert_eq!(cost.io_at(0), Some(32));
        assert_eq!(cost.io_at(1), Some(16), "each PE's L2 keeps the re-load");
        // The two ledgers diverge by design on hierarchy PEs: the port
        // moved 32 words, but only the 16 compulsory ones left the
        // machine — external intensity reads the outermost boundary.
        assert_eq!(exec.port_words(), 32);
        assert_eq!(exec.machine_port_words, 32);
        assert_eq!(exec.external_words(), 16);
        assert_eq!(exec.per_pe[0].external_words(), 8);
        assert!(exec.is_conserved());
    }

    #[test]
    #[should_panic(expected = "PE index out of range")]
    fn hops_checks_range() {
        let _ = Topology::linear(2).unwrap().hops(0, 5);
    }
}
