//! Measured §4: sweep executors and the memory-at-balance machinery.
//!
//! `balance-kernels`' sweeps vary one PE's memory; the executors here vary
//! the **machine** — fixed total problem size, swept over arrangements
//! (`p` PEs on a line, `side × side` meshes) and per-PE memories — and
//! read the aggregate external intensity off each measured
//! [`ParallelRun`]. Three consumers build on them:
//!
//! * [`measured_balance_memory`] inverts a measurement: the smallest
//!   per-PE memory at which the machine's measured intensity reaches its
//!   aggregate machine balance — Kung's balanced memory, found by running
//!   the actual kernel instead of evaluating a closed form;
//! * [`measured_series`] walks it across array sizes, producing the
//!   measured counterpart of [`crate::scaling::linear_array_series`] /
//!   [`crate::scaling::mesh_series`] (Figures 3 and 4, by measurement);
//! * [`measured_growth_law`] fits the paper's law shapes to the measured
//!   `(total memory, intensity)` cloud — across *all* swept arrangements,
//!   since a well-decomposed machine's intensity depends only on its
//!   aggregate memory — and snaps near-integer polynomial degrees, giving
//!   the growth law §4's closed forms need as *measured* input.

use balance_core::fit::{fit_best, snap_degree, DataPoint};
use balance_core::{GrowthLaw, HierarchySpec, PeSpec, Words};
use balance_kernels::error::KernelError;
use balance_kernels::sweep::{par_map, TrafficModel};
use balance_kernels::Verify;

use crate::pkernels::{ParallelKernel, ParallelRun};
use crate::pmachine::{Topology, TopologyKind};
use crate::scaling::ScalingPoint;

/// Parameters of one parallel sweep: a grid of arrangements × per-PE
/// memories at a fixed total problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSweepConfig {
    /// Problem size passed to every run (the total problem is fixed; only
    /// the machine varies).
    pub n: usize,
    /// The arrangements to measure.
    pub topologies: Vec<Topology>,
    /// Per-PE local memory sizes to measure, in words.
    pub per_pe_memories: Vec<usize>,
    /// Workload seed (same inputs at every point).
    pub seed: u64,
    /// Verification policy per point.
    pub verify: Verify,
}

impl ParallelSweepConfig {
    /// A fully verified sweep.
    #[must_use]
    pub fn new(n: usize, topologies: Vec<Topology>, per_pe_memories: Vec<usize>, seed: u64) -> Self {
        ParallelSweepConfig {
            n,
            topologies,
            per_pe_memories,
            seed,
            verify: Verify::Full,
        }
    }

    /// The same sweep under a different verification policy.
    #[must_use]
    pub fn with_verify(mut self, verify: Verify) -> Self {
        self.verify = verify;
        self
    }
}

/// One measured point of a parallel sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelPoint {
    /// The arrangement this point ran on.
    pub topology: Topology,
    /// Per-PE local memory, in words.
    pub per_pe_m: usize,
    /// The verified run.
    pub run: ParallelRun,
}

/// The sweep grid in sweep order (topology-major), with per-PE memories
/// below the kernel's per-topology minimum skipped (partition floors
/// scale with the machine, so the filter is per arrangement).
fn grid(kernel: &dyn ParallelKernel, cfg: &ParallelSweepConfig) -> Vec<(Topology, usize)> {
    cfg.topologies
        .iter()
        .flat_map(|&t| {
            let floor = kernel.min_memory_per_pe(cfg.n, t);
            cfg.per_pe_memories
                .iter()
                .copied()
                .filter(move |&m| m >= floor)
                .map(move |m| (t, m))
        })
        .collect()
}

fn run_point(
    kernel: &dyn ParallelKernel,
    cfg: &ParallelSweepConfig,
    topology: Topology,
    m: usize,
) -> Result<ParallelPoint, KernelError> {
    kernel
        .run_on(
            topology,
            cfg.n,
            &HierarchySpec::flat_words(m),
            cfg.seed,
            cfg.verify,
        )
        .map(|run| ParallelPoint {
            topology,
            per_pe_m: m,
            run,
        })
}

/// Runs `kernel` at every (topology, per-PE memory) point of the sweep,
/// one after another on the calling thread.
///
/// # Errors
///
/// Propagates the first kernel failure in sweep order (including
/// verification failures — a sweep with wrong numerics must not produce
/// data).
pub fn parallel_sweep(
    kernel: &dyn ParallelKernel,
    cfg: &ParallelSweepConfig,
) -> Result<Vec<ParallelPoint>, KernelError> {
    grid(kernel, cfg)
        .into_iter()
        .map(|(t, m)| run_point(kernel, cfg, t, m))
        .collect()
}

/// [`parallel_sweep`] fanned out over scoped worker threads (the
/// `balance-kernels` [`par_map`] executor) — bit-identical points, first
/// error in sweep order.
///
/// # Errors
///
/// As [`parallel_sweep`].
pub fn parallel_sweep_par(
    kernel: &dyn ParallelKernel,
    cfg: &ParallelSweepConfig,
) -> Result<Vec<ParallelPoint>, KernelError> {
    let points = grid(kernel, cfg);
    par_map(&points, |_, &(t, m)| run_point(kernel, cfg, t, m))
        .into_iter()
        .collect()
}

/// Parameters of a measured memory-at-balance search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredBalanceConfig {
    /// The per-PE cell the machine is built from; the search target is the
    /// *aggregate* machine balance `α · C/IO` of the arrangement.
    pub cell: PeSpec,
    /// Problem size of every probe run.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Verification policy of every probe run.
    pub verify: Verify,
    /// Per-PE memory cap: the search reports `None` (I/O-bounded in
    /// practice) instead of probing beyond it.
    pub m_max: usize,
}

/// The smallest per-PE memory at which the machine's **measured** external
/// intensity reaches the arrangement's aggregate machine balance — or
/// `None` when even `cfg.m_max` falls short (the measured form of the
/// paper's "impossible" verdict).
///
/// Two probe engines, dispatched on the kernel:
///
/// * kernels exposing a one-replay
///   [`ExternalIoProfile`](crate::pkernels::ExternalIoProfile) (external
///   I/O a pure LRU function of pooled memory — e.g. the one-touch
///   transpose) are searched over **histogram reads**: one trace replay
///   total, then O(1) per probe. Only **exact** profiles qualify
///   ([`CapacityProfile::is_exact`](balance_machine::CapacityProfile::is_exact));
///   a SHARDS-sampled profile is rejected here and the kernel probed by
///   real runs instead, so sampling error can never shift a measured
///   balance point (pinned by test);
/// * comm-priced kernels (matmul, grid), whose external traffic re-blocks
///   per memory size, fall back to exponential search + bisection over
///   real kernel runs — one verified run per probe, exactly as before.
///
/// Both engines walk the identical search lattice, so wherever a kernel
/// could use either, the results agree (pinned by test).
///
/// Assumes the kernel's measured intensity is non-decreasing in memory,
/// which every §3 decomposition satisfies (more memory never forces more
/// traffic).
///
/// # Errors
///
/// Propagates probe-run failures and aggregate-construction failures.
pub fn measured_balance_memory(
    kernel: &dyn ParallelKernel,
    topology: Topology,
    cfg: &MeasuredBalanceConfig,
) -> Result<Option<Words>, KernelError> {
    measured_balance_memory_with_model(kernel, topology, cfg, TrafficModel::default())
}

/// [`measured_balance_memory`] under an explicit [`TrafficModel`].
///
/// The one-replay [`ExternalIoProfile`](crate::pkernels::ExternalIoProfile)
/// fast path is a **word-granular read-priced** curve — one histogram
/// read per probe, no line state, no dirty bits. Under a device-real
/// model (`line_words > 1` or write-back pricing on) that curve no longer
/// answers the priced question, so the fast path **declines** and every
/// probe falls back to a real kernel run, whose external traffic is the
/// decomposition's explicit message movement (model-independent). The
/// search lattice is identical either way, so under the word-granular
/// model this is exactly [`measured_balance_memory`] (pinned by test).
///
/// # Errors
///
/// As [`measured_balance_memory`].
pub fn measured_balance_memory_with_model(
    kernel: &dyn ParallelKernel,
    topology: Topology,
    cfg: &MeasuredBalanceConfig,
    model: TrafficModel,
) -> Result<Option<Words>, KernelError> {
    let target = topology
        .aggregate(cfg.cell)
        .map_err(|e| KernelError::BadParameters {
            reason: format!("aggregate machine: {e}"),
        })?
        .machine_balance();
    let lo0 = kernel.min_memory_per_pe(cfg.n, topology).min(cfg.m_max);
    // The histogram fast path promises the *exact* external-I/O curve
    // under the word-granular read-priced model: a SHARDS-sampled
    // (approximate) profile — or a device-real pricing question the
    // word-granular histogram cannot answer — must not silently shift a
    // measured balance point, so both fall through to real kernel runs.
    match kernel
        .io_profile(cfg.n, topology)
        .filter(|profile| model.is_word_granular_read_priced() && profile.profile().is_exact())
    {
        Some(profile) => {
            let p = topology.pe_count();
            search_balance(lo0, cfg.m_max, target, |m| {
                Ok(profile.external_intensity(m as u64 * p))
            })
        }
        None => search_balance(lo0, cfg.m_max, target, |m| {
            kernel
                .run_on(
                    topology,
                    cfg.n,
                    &HierarchySpec::flat_words(m),
                    cfg.seed,
                    cfg.verify,
                )
                .map(|r| r.external_intensity())
        }),
    }
}

/// Exponential search + bisection for the smallest per-PE memory in
/// `[lo0, m_max]` whose probed intensity reaches `target` — the one
/// search lattice both probe engines walk.
fn search_balance(
    lo0: usize,
    m_max: usize,
    target: f64,
    mut probe: impl FnMut(usize) -> Result<f64, KernelError>,
) -> Result<Option<Words>, KernelError> {
    if probe(lo0)? >= target {
        return Ok(Some(Words::new(lo0 as u64)));
    }
    // Exponential search for a balancing upper bound.
    let (mut lo, mut hi) = (lo0, lo0);
    loop {
        hi = (hi.saturating_mul(2)).min(m_max);
        if probe(hi)? >= target {
            break;
        }
        if hi == m_max {
            return Ok(None);
        }
        lo = hi;
    }
    // Bisection: probe(lo) < target <= probe(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(Words::new(hi as u64)))
}

/// The measured `(size, per-PE memory-at-balance)` walk of an arrangement
/// family — the measured counterpart of
/// [`linear_array_series`](crate::scaling::linear_array_series) /
/// [`mesh_series`](crate::scaling::mesh_series), produced by running the
/// kernel instead of evaluating the growth law.
///
/// # Errors
///
/// Probe failures, plus [`KernelError::BadParameters`] when some size
/// cannot balance within `cfg.m_max` (use matmul-like kernels here;
/// I/O-bounded ones are *expected* to fail — that is their finding).
pub fn measured_series(
    kernel: &dyn ParallelKernel,
    kind: TopologyKind,
    sizes: &[u64],
    cfg: &MeasuredBalanceConfig,
) -> Result<Vec<ScalingPoint>, KernelError> {
    sizes
        .iter()
        .map(|&size| {
            let topology = kind.at(size).map_err(|e| KernelError::BadParameters {
                reason: e.to_string(),
            })?;
            let per_pe = measured_balance_memory(kernel, topology, cfg)?.ok_or_else(|| {
                KernelError::BadParameters {
                    reason: format!(
                        "{} at {topology}: no per-PE memory up to {} reaches balance",
                        kernel.name(),
                        cfg.m_max
                    ),
                }
            })?;
            Ok(ScalingPoint {
                p: size,
                per_pe_memory: per_pe.get(),
                total_memory: per_pe.get() * topology.pe_count(),
            })
        })
        .collect()
}

/// Fits the paper's law shapes to the measured `(total memory, external
/// intensity)` points of a sweep — pooled across every swept arrangement,
/// since the machine's aggregate intensity depends only on its total
/// memory when the decomposition pools the PEs' memories — and snaps
/// near-integer polynomial degrees within `snap_tol`.
///
/// The result is the §4 growth law with the intensity shape *measured
/// instead of assumed*: feeding it to the analytic
/// [`linear_array_series`](crate::scaling::linear_array_series) /
/// [`mesh_series`](crate::scaling::mesh_series) must reproduce their
/// predictions (pinned by property test — the measured validation of
/// Figures 3 and 4).
///
/// # Errors
///
/// Sweep failures, plus [`KernelError::BadParameters`] when fewer than
/// two distinct memory sizes survive the sweep.
pub fn measured_growth_law(
    kernel: &dyn ParallelKernel,
    cfg: &ParallelSweepConfig,
    snap_tol: f64,
) -> Result<GrowthLaw, KernelError> {
    let points: Vec<DataPoint> = parallel_sweep_par(kernel, cfg)?
        .iter()
        .map(|pt| DataPoint::new(pt.run.total_memory() as f64, pt.run.external_intensity()))
        .collect();
    let report = fit_best(&points).map_err(|e| KernelError::BadParameters {
        reason: format!("fitting measured parallel points: {e}"),
    })?;
    Ok(snap_degree(report.best.growth_law(), snap_tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkernels::{ParMatMul, ParTranspose};
    use balance_core::{OpsPerSec, WordsPerSec};

    fn topo(p: u64) -> Topology {
        Topology::linear(p).unwrap()
    }

    fn cell(balance: f64) -> PeSpec {
        PeSpec::new(
            OpsPerSec::new(balance * 1.0e7),
            WordsPerSec::new(1.0e7),
            Words::new(65536),
        )
        .unwrap()
    }

    #[test]
    fn sweep_covers_the_grid_and_skips_small_memories() {
        let cfg = ParallelSweepConfig::new(12, vec![topo(1), topo(2)], vec![1, 27, 48], 3);
        let points = parallel_sweep(&ParMatMul, &cfg).unwrap();
        // m = 1 < min_memory(3) skipped: 2 topologies × 2 memories.
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].topology, topo(1));
        assert_eq!(points[0].per_pe_m, 27);
        assert_eq!(points[3].topology, topo(2));
        assert_eq!(points[3].per_pe_m, 48);
    }

    #[test]
    fn parallel_executors_are_bit_identical() {
        let cfg = ParallelSweepConfig::new(16, vec![topo(1), topo(3)], vec![12, 48, 108], 9);
        let serial = parallel_sweep(&ParMatMul, &cfg).unwrap();
        let par = parallel_sweep_par(&ParMatMul, &cfg).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn measured_balance_memory_brackets_the_target() {
        let cfg = MeasuredBalanceConfig {
            cell: cell(2.0),
            n: 24,
            seed: 5,
            verify: Verify::Full,
            m_max: 1 << 14,
        };
        let m = measured_balance_memory(&ParMatMul, topo(1), &cfg)
            .unwrap()
            .expect("matmul balances");
        let probe = |mm: usize| {
            ParMatMul
                .run_on(topo(1), 24, &HierarchySpec::flat_words(mm), 5, Verify::Full)
                .unwrap()
                .external_intensity()
        };
        let target = topo(1).aggregate(cfg.cell).unwrap().machine_balance();
        assert!(probe(m.get() as usize) >= target);
        if m.get() as usize > 3 {
            assert!(probe(m.get() as usize - 1) < target);
        }
    }

    /// `ParTranspose` with its one-replay profile suppressed: forces the
    /// kernel-replay fallback so the two probe engines can be compared.
    #[derive(Debug)]
    struct ReplayOnlyTranspose;

    impl ParallelKernel for ReplayOnlyTranspose {
        fn name(&self) -> &'static str {
            ParTranspose.name()
        }
        fn description(&self) -> &'static str {
            ParTranspose.description()
        }
        fn serial(&self) -> Box<dyn balance_kernels::Kernel> {
            ParTranspose.serial()
        }
        fn min_memory_per_pe(&self, n: usize, topology: Topology) -> usize {
            ParTranspose.min_memory_per_pe(n, topology)
        }
        fn run_on(
            &self,
            topology: Topology,
            n: usize,
            per_pe: &HierarchySpec,
            seed: u64,
            verify: Verify,
        ) -> Result<crate::pkernels::ParallelRun, KernelError> {
            ParTranspose.run_on(topology, n, per_pe, seed, verify)
        }
        // io_profile deliberately left at the default `None`.
    }

    #[test]
    fn profile_probe_matches_kernel_replay_probe() {
        // The histogram fast path and the run-per-probe fallback walk the
        // same search lattice: identical answers at every target, both the
        // reachable (Some) and unreachable (None) regimes.
        for balance in [0.2, 0.4, 0.5, 0.6, 2.0] {
            for topo in [topo(1), topo(2), Topology::mesh(2).unwrap()] {
                let cfg = MeasuredBalanceConfig {
                    cell: cell(balance),
                    n: 16,
                    seed: 3,
                    verify: Verify::Full,
                    m_max: 4096,
                };
                let fast = measured_balance_memory(&ParTranspose, topo, &cfg).unwrap();
                let slow = measured_balance_memory(&ReplayOnlyTranspose, topo, &cfg).unwrap();
                assert_eq!(fast, slow, "balance {balance} on {topo}");
            }
        }
    }

    /// `ParTranspose` advertising a SHARDS-sampled (approximate) profile:
    /// the fast path must refuse it and probe by real kernel runs.
    #[derive(Debug)]
    struct SampledProfileTranspose;

    impl ParallelKernel for SampledProfileTranspose {
        fn name(&self) -> &'static str {
            ParTranspose.name()
        }
        fn description(&self) -> &'static str {
            ParTranspose.description()
        }
        fn serial(&self) -> Box<dyn balance_kernels::Kernel> {
            ParTranspose.serial()
        }
        fn min_memory_per_pe(&self, n: usize, topology: Topology) -> usize {
            ParTranspose.min_memory_per_pe(n, topology)
        }
        fn run_on(
            &self,
            topology: Topology,
            n: usize,
            per_pe: &HierarchySpec,
            seed: u64,
            verify: Verify,
        ) -> Result<crate::pkernels::ParallelRun, KernelError> {
            ParTranspose.run_on(topology, n, per_pe, seed, verify)
        }
        fn io_profile(
            &self,
            n: usize,
            _topology: Topology,
        ) -> Option<crate::pkernels::ExternalIoProfile> {
            // The transpose stream sampled at rate 1/8 — a plausible
            // approximation of the exact one-touch profile, but not it.
            let n64 = n as u64;
            let profile =
                balance_machine::sampled_profile_of(0..2 * n64 * n64, 3);
            Some(crate::pkernels::ExternalIoProfile::new(n64 * n64, profile))
        }
    }

    #[test]
    fn sampled_profile_is_gated_out_of_the_exact_fast_path() {
        // An approximate profile must not move the measured balance point:
        // the search has to fall through to real kernel runs and land
        // exactly where the no-profile kernel lands.
        let sampled_kernel = SampledProfileTranspose;
        assert!(
            !sampled_kernel
                .io_profile(16, topo(2))
                .unwrap()
                .profile()
                .is_exact(),
            "test premise: the advertised profile is sampled"
        );
        for balance in [0.2, 0.45, 0.6] {
            for topo in [topo(1), topo(2)] {
                let cfg = MeasuredBalanceConfig {
                    cell: cell(balance),
                    n: 16,
                    seed: 3,
                    verify: Verify::Full,
                    m_max: 4096,
                };
                let gated = measured_balance_memory(&sampled_kernel, topo, &cfg).unwrap();
                let replayed =
                    measured_balance_memory(&ReplayOnlyTranspose, topo, &cfg).unwrap();
                assert_eq!(gated, replayed, "balance {balance} on {topo}");
            }
        }
    }

    /// `ParTranspose` advertising a profile obtained through a *tripped
    /// resource budget* (PR 7's degradation ladder): the ladder lands on
    /// the sampled engine, the profile self-identifies as approximate,
    /// and the exact-only fast path must refuse it just like a
    /// hand-built sampled profile.
    #[derive(Debug)]
    struct BudgetDegradedTranspose;

    impl ParallelKernel for BudgetDegradedTranspose {
        fn name(&self) -> &'static str {
            ParTranspose.name()
        }
        fn description(&self) -> &'static str {
            ParTranspose.description()
        }
        fn serial(&self) -> Box<dyn balance_kernels::Kernel> {
            ParTranspose.serial()
        }
        fn min_memory_per_pe(&self, n: usize, topology: Topology) -> usize {
            ParTranspose.min_memory_per_pe(n, topology)
        }
        fn run_on(
            &self,
            topology: Topology,
            n: usize,
            per_pe: &HierarchySpec,
            seed: u64,
            verify: Verify,
        ) -> Result<crate::pkernels::ParallelRun, KernelError> {
            ParTranspose.run_on(topology, n, per_pe, seed, verify)
        }
        fn io_profile(
            &self,
            n: usize,
            _topology: Topology,
        ) -> Option<crate::pkernels::ExternalIoProfile> {
            use balance_kernels::sweep::{robust_capacity_profile, Engine, SweepConfig};
            use balance_kernels::transpose::Transpose;
            // A 256-byte resident budget no exact engine can meet: the
            // ladder degrades to a sampled rung.
            let cfg = SweepConfig {
                n,
                memories: vec![64],
                engine: Engine::StackDist,
                ..SweepConfig::default()
            }
            .with_budget(balance_core::Budget::unlimited().with_max_resident_bytes(256));
            let (profile, prov) =
                robust_capacity_profile(&Transpose, &cfg, &balance_machine::FaultPlan::none())
                    .ok()?;
            assert!(prov.degraded(), "test premise: the budget trips");
            let n64 = n as u64;
            Some(crate::pkernels::ExternalIoProfile::new(n64 * n64, profile))
        }
    }

    #[test]
    fn budget_degraded_profile_is_gated_out_of_the_exact_fast_path() {
        let degraded_kernel = BudgetDegradedTranspose;
        assert!(
            !degraded_kernel
                .io_profile(16, topo(2))
                .unwrap()
                .profile()
                .is_exact(),
            "test premise: the degraded profile is sampled, not exact"
        );
        for balance in [0.2, 0.45, 0.6] {
            for topo in [topo(1), topo(2)] {
                let cfg = MeasuredBalanceConfig {
                    cell: cell(balance),
                    n: 16,
                    seed: 3,
                    verify: Verify::Full,
                    m_max: 4096,
                };
                let gated = measured_balance_memory(&degraded_kernel, topo, &cfg).unwrap();
                let replayed =
                    measured_balance_memory(&ReplayOnlyTranspose, topo, &cfg).unwrap();
                assert_eq!(gated, replayed, "balance {balance} on {topo}");
            }
        }
    }

    #[test]
    fn device_real_models_decline_the_profile_fast_path() {
        // ParTranspose's exact word-granular profile answers the word
        // model's question only: under a device-real model the fast path
        // must decline and the search land exactly where the
        // run-per-probe kernel lands. At the word model the _with_model
        // entry point is measured_balance_memory, bit for bit.
        for balance in [0.2, 0.45, 0.6] {
            for topo in [topo(1), topo(2)] {
                let cfg = MeasuredBalanceConfig {
                    cell: cell(balance),
                    n: 16,
                    seed: 3,
                    verify: Verify::Full,
                    m_max: 4096,
                };
                let declined = measured_balance_memory_with_model(
                    &ParTranspose,
                    topo,
                    &cfg,
                    TrafficModel::device(8),
                )
                .unwrap();
                let replayed =
                    measured_balance_memory(&ReplayOnlyTranspose, topo, &cfg).unwrap();
                assert_eq!(declined, replayed, "balance {balance} on {topo}");
                let word = measured_balance_memory_with_model(
                    &ParTranspose,
                    topo,
                    &cfg,
                    TrafficModel::WORD,
                )
                .unwrap();
                assert_eq!(
                    word,
                    measured_balance_memory(&ParTranspose, topo, &cfg).unwrap(),
                    "the word model keeps the fast path"
                );
            }
        }
    }

    #[test]
    fn transpose_profile_reports_one_touch_traffic() {
        let p = ParTranspose.io_profile(16, topo(2)).unwrap();
        // Every word of A and T crosses once at any pooled memory.
        assert_eq!(p.external_words(1), 2 * 16 * 16);
        assert_eq!(p.external_words(1 << 20), 2 * 16 * 16);
        assert_eq!(p.external_intensity(64), 0.5);
        assert_eq!(p.profile().compulsory_misses(), 2 * 16 * 16);
    }

    #[test]
    fn transpose_never_balances() {
        let cfg = MeasuredBalanceConfig {
            cell: cell(2.0),
            n: 16,
            seed: 1,
            verify: Verify::Full,
            m_max: 4096,
        };
        assert_eq!(
            measured_balance_memory(&ParTranspose, topo(2), &cfg).unwrap(),
            None,
            "intensity ½ can never reach an aggregate balance of 4"
        );
    }

    #[test]
    fn measured_series_walks_linearly_for_matmul() {
        let cfg = MeasuredBalanceConfig {
            cell: cell(2.0),
            n: 32,
            seed: 2,
            verify: Verify::Full,
            m_max: 1 << 16,
        };
        let series =
            measured_series(&ParMatMul, TopologyKind::Linear, &[1, 2, 4], &cfg).unwrap();
        assert_eq!(series.len(), 3);
        // Per-PE memory must genuinely walk upward with p (Fig. 3).
        assert!(series[1].per_pe_memory > series[0].per_pe_memory);
        assert!(series[2].per_pe_memory > series[1].per_pe_memory);
    }

    #[test]
    fn measured_law_snaps_to_the_matrix_law() {
        // Points pooled across 1- and 2-PE machines at n = 64 collapse
        // onto one √(total) curve; the snapped fit is the α² law.
        let cfg = ParallelSweepConfig::new(
            64,
            vec![topo(1), topo(2)],
            (5..=11).map(|k| 1usize << k).collect(),
            4,
        )
        .with_verify(Verify::Freivalds { rounds: 2 });
        let law = measured_growth_law(&ParMatMul, &cfg, 0.35).unwrap();
        assert_eq!(law, GrowthLaw::Polynomial { degree: 2.0 });
    }

    #[test]
    fn measured_law_flags_io_bounded_kernels() {
        let cfg = ParallelSweepConfig::new(
            24,
            vec![topo(1), topo(2)],
            vec![16, 64, 256, 1024],
            4,
        );
        let law = measured_growth_law(&ParTranspose, &cfg, 0.35).unwrap();
        assert_eq!(law, GrowthLaw::Impossible);
    }
}
