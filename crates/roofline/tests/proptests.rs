//! Property-based tests for the roofline model.

use balance_core::{
    BalanceError, HierarchySpec, IntensityModel, LevelSpec, OpsPerSec, Words, WordsPerSec,
};
use balance_roofline::{kernel_series, HierarchicalRoofline, Roofline};
use proptest::prelude::*;

fn arb_roofline() -> impl Strategy<Value = Roofline> {
    (1.0f64..1.0e10, 1.0f64..1.0e9).prop_map(|(peak, bw)| {
        Roofline::new(OpsPerSec::new(peak), WordsPerSec::new(bw)).expect("positive rates")
    })
}

proptest! {
    /// Attainable throughput is monotone in intensity and capped at peak.
    #[test]
    fn attainable_monotone_and_capped(
        rl in arb_roofline(),
        ai1 in 0.0f64..1.0e6,
        ai2 in 0.0f64..1.0e6,
    ) {
        let (lo, hi) = if ai1 <= ai2 { (ai1, ai2) } else { (ai2, ai1) };
        prop_assert!(rl.attainable(lo) <= rl.attainable(hi) + 1e-9);
        prop_assert!(rl.attainable(hi) <= rl.peak().get() + 1e-9);
    }

    /// At the ridge point, both bounds coincide.
    #[test]
    fn ridge_is_the_crossover(rl in arb_roofline()) {
        let ridge = rl.ridge_point();
        let at_ridge = rl.attainable(ridge);
        prop_assert!((at_ridge - rl.peak().get()).abs() / rl.peak().get() < 1e-12);
        prop_assert!(rl.is_bandwidth_bound(ridge * 0.999));
        prop_assert!(!rl.is_bandwidth_bound(ridge * 1.001));
    }

    /// The balanced memory is exactly the model-inverse of the ridge, and
    /// evaluating there attains (nearly) peak.
    #[test]
    fn balanced_memory_attains_peak(
        rl in arb_roofline(),
        coeff in 0.05f64..5.0,
        exponent in 0.2f64..0.9,
    ) {
        let model = IntensityModel::Power { coeff, exponent };
        match rl.balanced_memory(&model) {
            Ok(m) if m.get() >= 100 => {
                // Integer rounding matters below ~100 words; above it the
                // attained throughput is within 2% of peak.
                let t = rl.attainable_at_memory(&model, m);
                prop_assert!(t >= 0.98 * rl.peak().get(),
                    "attained {t} vs peak {}", rl.peak().get());
            }
            Ok(_) => {} // tiny balanced memories: rounding dominates
            Err(BalanceError::MemoryOverflow { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Series points agree with the roofline pointwise.
    #[test]
    fn series_matches_roofline(rl in arb_roofline(), coeff in 0.1f64..4.0) {
        let model = IntensityModel::sqrt_m(coeff);
        let mems: Vec<u64> = (2..=20).map(|k| 1u64 << k).collect();
        let series = kernel_series("k", &rl, &model, &mems).unwrap();
        for p in &series.points {
            let expect = rl.attainable(model.eval(p.memory as f64));
            prop_assert!((p.attainable - expect).abs() <= 1e-9 * expect.max(1.0));
            prop_assert_eq!(p.bandwidth_bound, rl.is_bandwidth_bound(p.intensity));
        }
    }

    /// Constant-intensity kernels never get a balanced memory.
    #[test]
    fn constant_kernels_have_no_crossing(rl in arb_roofline(), v in 0.01f64..100.0) {
        let model = IntensityModel::constant(v);
        prop_assert!(matches!(
            rl.balanced_memory(&model),
            Err(BalanceError::IoBounded)
        ));
    }

    /// The hierarchical roofline with exactly one level reduces to the flat
    /// [`Roofline`]: same ridge, same attainable throughput everywhere,
    /// same balanced memory for any power-law model.
    #[test]
    fn one_level_hierarchical_reduces_to_flat(
        rl in arb_roofline(),
        cap in 1u64..1_000_000,
        ai in 0.0f64..1.0e6,
        coeff in 0.05f64..5.0,
    ) {
        let spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(cap), rl.bandwidth()).unwrap(),
        ]).unwrap();
        let h = HierarchicalRoofline::new(rl.peak(), &spec).unwrap();
        prop_assert_eq!(h.ridge_at(0).to_bits(), rl.ridge_point().to_bits());
        prop_assert_eq!(h.attainable(&[ai]).to_bits(), rl.attainable(ai).to_bits());
        prop_assert_eq!(h.flat(), Some(rl));
        let model = IntensityModel::sqrt_m(coeff);
        prop_assert_eq!(
            h.balanced_memory_at(0, &model),
            rl.balanced_memory(&model)
        );
        // A bandwidth slope binds exactly when it sits below the roof
        // (including ai = 0, where the slope pins attainable at zero).
        prop_assert_eq!(
            h.binding_level(&[ai]).is_some(),
            rl.attainable(ai) < rl.peak().get()
        );
    }

    /// Adding a level never raises attainable throughput (every slope is
    /// another min-term), and the binding level names a genuine minimizer.
    #[test]
    fn deeper_ladders_only_constrain(
        peak in 1.0f64..1.0e9,
        bw0 in 1.0f64..1.0e8,
        bw1 in 1.0f64..1.0e8,
        ai0 in 0.001f64..1.0e5,
        ai1 in 0.001f64..1.0e5,
    ) {
        let spec1 = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(16), WordsPerSec::new(bw0)).unwrap(),
        ]).unwrap();
        let spec2 = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(16), WordsPerSec::new(bw0)).unwrap(),
            LevelSpec::new(Words::new(64), WordsPerSec::new(bw1)).unwrap(),
        ]).unwrap();
        let peak = OpsPerSec::new(peak);
        let one = HierarchicalRoofline::new(peak, &spec1).unwrap();
        let two = HierarchicalRoofline::new(peak, &spec2).unwrap();
        prop_assert!(two.attainable(&[ai0, ai1]) <= one.attainable(&[ai0]));
        if let Some(level) = two.binding_level(&[ai0, ai1]) {
            let slopes = [ai0 * bw0, ai1 * bw1];
            prop_assert!((slopes[level] - two.attainable(&[ai0, ai1])).abs() <= 1e-9 * slopes[level].max(1.0));
        }
    }
}
