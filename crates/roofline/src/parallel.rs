//! The parallel roofline: compute roof, external-I/O slope, and a
//! bisection-bandwidth slope.
//!
//! A §4 processor collection has three candidate bottlenecks: its
//! aggregate compute bandwidth, the bandwidth of its single external
//! boundary, and — new relative to the one-PE roofline — the internal
//! links its decomposition communicates over, summarized by the
//! **bisection bandwidth** (links cut by a worst-case bisection × per-link
//! word rate). At external intensity `AI_ext` (ops per external word) and
//! communication intensity `AI_comm` (ops per communicated word):
//!
//! ```text
//! attainable(AI_ext, AI_comm) = min(C_total, AI_ext·IO_ext, AI_comm·BW_bis)
//! ```
//!
//! With an unconstrained bisection (`AI_comm = ∞`, e.g. a communication-
//! free workload or a 1-PE machine) this reduces exactly to the flat
//! [`Roofline`] — pinned by property test.

use core::fmt;

use balance_core::{BalanceError, OpsPerSec, WordsPerSec};

use crate::model::Roofline;

/// Which term of the parallel roofline binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelBound {
    /// The aggregate compute roof.
    Compute,
    /// The external I/O slope — the §4 balance condition's subject.
    ExternalIo,
    /// The bisection-bandwidth slope: the arrangement's internal links
    /// cannot feed the PEs fast enough.
    Bisection,
}

impl fmt::Display for ParallelBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelBound::Compute => write!(f, "compute roof"),
            ParallelBound::ExternalIo => write!(f, "external I/O"),
            ParallelBound::Bisection => write!(f, "bisection"),
        }
    }
}

/// A three-term roofline for a multi-PE machine.
///
/// # Examples
///
/// ```
/// use balance_core::{OpsPerSec, WordsPerSec};
/// use balance_roofline::{ParallelBound, ParallelRoofline};
///
/// // 8 PEs of 1e7 op/s behind a 1e7 word/s port, ring links of 2e7
/// // word/s with bisection width 1.
/// let rl = ParallelRoofline::new(
///     OpsPerSec::new(8.0e7),
///     WordsPerSec::new(1.0e7),
///     WordsPerSec::new(2.0e7),
/// )?;
/// assert_eq!(rl.ridge_external(), 8.0);
/// // Plenty of reuse externally (AI 100) but heavy chatter (AI 1):
/// // the bisection binds at 2e7 op/s.
/// assert_eq!(rl.attainable(100.0, 1.0), 2.0e7);
/// assert_eq!(rl.binding(100.0, 1.0), ParallelBound::Bisection);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelRoofline {
    peak: OpsPerSec,
    external_bw: WordsPerSec,
    bisection_bw: WordsPerSec,
}

impl ParallelRoofline {
    /// Builds the roofline from aggregate compute, external I/O
    /// bandwidth, and bisection bandwidth (links cut × per-link rate).
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for any non-positive or
    /// non-finite rate.
    pub fn new(
        peak: OpsPerSec,
        external_bw: WordsPerSec,
        bisection_bw: WordsPerSec,
    ) -> Result<Self, BalanceError> {
        if !peak.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "aggregate compute",
                value: peak.get(),
            });
        }
        if !external_bw.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "external bandwidth",
                value: external_bw.get(),
            });
        }
        if !bisection_bw.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "bisection bandwidth",
                value: bisection_bw.get(),
            });
        }
        Ok(ParallelRoofline {
            peak,
            external_bw,
            bisection_bw,
        })
    }

    /// Aggregate compute rate.
    #[must_use]
    pub fn peak(&self) -> OpsPerSec {
        self.peak
    }

    /// External I/O bandwidth.
    #[must_use]
    pub fn external_bw(&self) -> WordsPerSec {
        self.external_bw
    }

    /// Bisection bandwidth.
    #[must_use]
    pub fn bisection_bw(&self) -> WordsPerSec {
        self.bisection_bw
    }

    /// The external ridge `C_total / IO_ext` — the aggregate machine
    /// balance the §4 memory laws must reach.
    #[must_use]
    pub fn ridge_external(&self) -> f64 {
        self.peak.get() / self.external_bw.get()
    }

    /// The bisection ridge `C_total / BW_bis`: the ops-per-communicated-
    /// word a decomposition must exceed to keep the links off the
    /// critical path.
    #[must_use]
    pub fn ridge_bisection(&self) -> f64 {
        self.peak.get() / self.bisection_bw.get()
    }

    /// Attainable throughput at external intensity `ai_ext` and
    /// communication intensity `ai_comm` (both ops/word; `f64::INFINITY`
    /// marks an unconstrained term).
    #[must_use]
    pub fn attainable(&self, ai_ext: f64, ai_comm: f64) -> f64 {
        let mut best = self.peak.get();
        if ai_ext.is_finite() {
            best = best.min(ai_ext * self.external_bw.get());
        }
        if ai_comm.is_finite() {
            best = best.min(ai_comm * self.bisection_bw.get());
        }
        best
    }

    /// The binding term at the given intensities (ties resolve roof, then
    /// external, then bisection — the reporting order).
    #[must_use]
    pub fn binding(&self, ai_ext: f64, ai_comm: f64) -> ParallelBound {
        let attainable = self.attainable(ai_ext, ai_comm);
        if attainable >= self.peak.get() {
            ParallelBound::Compute
        } else if ai_ext.is_finite() && ai_ext * self.external_bw.get() <= attainable {
            ParallelBound::ExternalIo
        } else {
            ParallelBound::Bisection
        }
    }

    /// The flat one-PE [`Roofline`] this reduces to when the bisection is
    /// never binding (compute roof + external slope only).
    #[must_use]
    pub fn external_only(&self) -> Roofline {
        Roofline::new(self.peak, self.external_bw).expect("rates validated")
    }
}

impl fmt::Display for ParallelRoofline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C = {} over IO_ext = {} (ridge {:.3}) and BW_bis = {} (ridge {:.3})",
            self.peak,
            self.external_bw,
            self.ridge_external(),
            self.bisection_bw,
            self.ridge_bisection()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(c: f64, ext: f64, bis: f64) -> ParallelRoofline {
        ParallelRoofline::new(
            OpsPerSec::new(c),
            WordsPerSec::new(ext),
            WordsPerSec::new(bis),
        )
        .unwrap()
    }

    #[test]
    fn attainable_is_the_three_way_min() {
        let r = rl(100.0, 10.0, 5.0);
        assert_eq!(r.attainable(4.0, 100.0), 40.0);
        assert_eq!(r.binding(4.0, 100.0), ParallelBound::ExternalIo);
        assert_eq!(r.attainable(100.0, 4.0), 20.0);
        assert_eq!(r.binding(100.0, 4.0), ParallelBound::Bisection);
        assert_eq!(r.attainable(100.0, 100.0), 100.0);
        assert_eq!(r.binding(100.0, 100.0), ParallelBound::Compute);
    }

    #[test]
    fn infinite_intensities_are_unconstrained() {
        let r = rl(100.0, 10.0, 5.0);
        // A comm-free machine (1 PE, or transpose-style partitioning).
        assert_eq!(r.attainable(4.0, f64::INFINITY), 40.0);
        // Fully resident: external unconstrained too.
        assert_eq!(r.attainable(f64::INFINITY, f64::INFINITY), 100.0);
        assert_eq!(r.binding(f64::INFINITY, f64::INFINITY), ParallelBound::Compute);
    }

    #[test]
    fn reduces_to_flat_roofline_without_comm() {
        let r = rl(100.0, 10.0, 5.0);
        let flat = r.external_only();
        for ai in [0.0, 0.5, 5.0, 10.0, 1000.0] {
            assert_eq!(r.attainable(ai, f64::INFINITY), flat.attainable(ai), "ai {ai}");
        }
        assert_eq!(r.ridge_external(), flat.ridge_point());
    }

    #[test]
    fn ridges_and_accessors() {
        let r = rl(80.0, 10.0, 20.0);
        assert_eq!(r.ridge_external(), 8.0);
        assert_eq!(r.ridge_bisection(), 4.0);
        assert_eq!(r.peak().get(), 80.0);
        assert_eq!(r.external_bw().get(), 10.0);
        assert_eq!(r.bisection_bw().get(), 20.0);
        let s = r.to_string();
        assert!(s.contains("ridge"), "{s}");
        assert_eq!(ParallelBound::Compute.to_string(), "compute roof");
        assert_eq!(ParallelBound::ExternalIo.to_string(), "external I/O");
        assert_eq!(ParallelBound::Bisection.to_string(), "bisection");
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(ParallelRoofline::new(
            OpsPerSec::new(0.0),
            WordsPerSec::new(1.0),
            WordsPerSec::new(1.0)
        )
        .is_err());
        assert!(ParallelRoofline::new(
            OpsPerSec::new(1.0),
            WordsPerSec::new(-1.0),
            WordsPerSec::new(1.0)
        )
        .is_err());
        assert!(ParallelRoofline::new(
            OpsPerSec::new(1.0),
            WordsPerSec::new(1.0),
            WordsPerSec::new(f64::NAN)
        )
        .is_err());
    }
}
