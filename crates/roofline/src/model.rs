//! The roofline model, derived from the balance law.
//!
//! Kung's balance condition `C/IO = C_comp/C_io` is the ridge point of what
//! later became the roofline model (Williams, Waterman & Patterson 2009): a
//! machine with peak compute `C` and memory bandwidth `IO` attains
//!
//! ```text
//! attainable(AI) = min(C, AI · IO)
//! ```
//!
//! at operational intensity `AI`. The "ridge" `AI = C/IO` is exactly the
//! balance point; Kung's contribution is the *memory dimension*: for a given
//! computation, `AI` is a function of the local memory `M`, so the ridge
//! translates into a **balanced memory size** — the `M` at which the kernel
//! leaves the bandwidth-bound slope and reaches peak compute.

use balance_core::{BalanceError, IntensityModel, OpsPerSec, PeSpec, Words, WordsPerSec};

/// A two-parameter roofline: peak compute and memory bandwidth.
///
/// # Examples
///
/// ```
/// use balance_core::{IntensityModel, OpsPerSec, WordsPerSec};
/// use balance_roofline::Roofline;
///
/// let rl = Roofline::new(OpsPerSec::new(100.0), WordsPerSec::new(10.0))?;
/// assert_eq!(rl.ridge_point(), 10.0);
/// assert_eq!(rl.attainable(5.0), 50.0);   // bandwidth-bound
/// assert_eq!(rl.attainable(40.0), 100.0); // compute-bound
///
/// // The memory at which blocked matmul (r = √M) reaches the ridge:
/// let m = rl.balanced_memory(&IntensityModel::sqrt_m(1.0))?;
/// assert_eq!(m.get(), 100);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    peak: OpsPerSec,
    bandwidth: WordsPerSec,
}

impl Roofline {
    /// Creates a roofline from peak compute and memory bandwidth.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for non-positive rates.
    pub fn new(peak: OpsPerSec, bandwidth: WordsPerSec) -> Result<Self, BalanceError> {
        if !peak.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "peak compute",
                value: peak.get(),
            });
        }
        if !bandwidth.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "memory bandwidth",
                value: bandwidth.get(),
            });
        }
        Ok(Roofline { peak, bandwidth })
    }

    /// Builds the roofline of a PE specification.
    #[must_use]
    pub fn from_pe(pe: &PeSpec) -> Self {
        Roofline {
            peak: pe.comp_bw(),
            bandwidth: pe.io_bw(),
        }
    }

    /// Peak compute rate.
    #[must_use]
    pub fn peak(&self) -> OpsPerSec {
        self.peak
    }

    /// Memory bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> WordsPerSec {
        self.bandwidth
    }

    /// The ridge point `C/IO` in ops per word — Kung's machine balance.
    #[must_use]
    pub fn ridge_point(&self) -> f64 {
        self.peak.get() / self.bandwidth.get()
    }

    /// Attainable throughput (ops/s) at operational intensity `ai`.
    #[must_use]
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth.get()).min(self.peak.get())
    }

    /// True when intensity `ai` is bandwidth-bound (left of the ridge).
    #[must_use]
    pub fn is_bandwidth_bound(&self, ai: f64) -> bool {
        ai < self.ridge_point()
    }

    /// The memory size at which a kernel with intensity model `model`
    /// reaches the ridge — Kung's balanced memory.
    ///
    /// # Errors
    ///
    /// [`BalanceError::IoBounded`] for constant-intensity kernels that sit
    /// below the ridge forever.
    pub fn balanced_memory(&self, model: &IntensityModel) -> Result<Words, BalanceError> {
        model.balanced_memory(self.ridge_point())
    }

    /// Attainable throughput of a kernel at memory `m` under this roofline.
    #[must_use]
    pub fn attainable_at_memory(&self, model: &IntensityModel, m: Words) -> f64 {
        self.attainable(model.eval_words(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl() -> Roofline {
        Roofline::new(OpsPerSec::new(100.0e6), WordsPerSec::new(10.0e6)).unwrap()
    }

    #[test]
    fn ridge_is_machine_balance() {
        assert_eq!(rl().ridge_point(), 10.0);
        let pe = PeSpec::new(
            OpsPerSec::new(10.0e6),
            WordsPerSec::new(20.0e6),
            Words::new(1024),
        )
        .unwrap();
        assert_eq!(Roofline::from_pe(&pe).ridge_point(), pe.machine_balance());
    }

    #[test]
    fn attainable_has_two_regimes() {
        let r = rl();
        // Bandwidth-bound slope.
        assert_eq!(r.attainable(1.0), 10.0e6);
        assert_eq!(r.attainable(5.0), 50.0e6);
        assert!(r.is_bandwidth_bound(5.0));
        // Flat compute roof.
        assert_eq!(r.attainable(10.0), 100.0e6);
        assert_eq!(r.attainable(1000.0), 100.0e6);
        assert!(!r.is_bandwidth_bound(10.0));
    }

    #[test]
    fn balanced_memory_is_ridge_inversion() {
        let r = rl();
        // sqrt model: √M = 10 => M = 100.
        assert_eq!(
            r.balanced_memory(&IntensityModel::sqrt_m(1.0))
                .unwrap()
                .get(),
            100
        );
        // log model: log2 M = 10 => M = 1024.
        assert_eq!(
            r.balanced_memory(&IntensityModel::log2_m(1.0))
                .unwrap()
                .get(),
            1024
        );
        // Constant model: never reaches the ridge.
        assert_eq!(
            r.balanced_memory(&IntensityModel::constant(2.0)),
            Err(BalanceError::IoBounded)
        );
    }

    #[test]
    fn kernel_throughput_grows_with_memory_until_the_roof() {
        let r = rl();
        let matmul = IntensityModel::sqrt_m(1.0);
        let t_small = r.attainable_at_memory(&matmul, Words::new(4)); // AI=2
        let t_bal = r.attainable_at_memory(&matmul, Words::new(100)); // AI=10
        let t_big = r.attainable_at_memory(&matmul, Words::new(10_000)); // AI=100
        assert_eq!(t_small, 20.0e6);
        assert_eq!(t_bal, 100.0e6);
        assert_eq!(t_big, 100.0e6); // no benefit past balance
    }

    #[test]
    fn invalid_rates_rejected() {
        assert!(Roofline::new(OpsPerSec::new(0.0), WordsPerSec::new(1.0)).is_err());
        assert!(Roofline::new(OpsPerSec::new(1.0), WordsPerSec::new(f64::NAN)).is_err());
    }
}
