//! # balance-roofline
//!
//! A roofline-model extension of Kung's balance analysis. The paper's
//! balance condition `C/IO = C_comp/C_io` is precisely the *ridge point* of
//! the roofline model that appeared two decades later; this crate makes the
//! connection executable:
//!
//! * [`model::Roofline`] — peak/bandwidth rooflines, attainable throughput,
//!   and the **balanced memory size** (the `M` at which a kernel's
//!   intensity `r(M)` reaches the ridge);
//! * [`hierarchical::HierarchicalRoofline`] — the N-level generalization:
//!   `attainable(AI) = min(C, min_i AI_i · IO_i)`, one ridge and one
//!   balanced-memory point per level, reducing exactly to [`Roofline`]
//!   for one-level machines;
//! * [`parallel::ParallelRoofline`] — the multi-PE machine's three-term
//!   roofline: `min(C_total, AI_ext·IO_ext, AI_comm·BW_bis)`, adding the
//!   topology's bisection bandwidth as a bound on internal communication;
//! * [`series`] — kernels swept across memory sizes, tracing their path up
//!   the bandwidth slope onto the compute roof;
//! * [`plot`] — ASCII roofline charts for the `repro` harness.
//!
//! ## Example
//!
//! ```
//! use balance_core::{IntensityModel, OpsPerSec, WordsPerSec};
//! use balance_roofline::Roofline;
//!
//! let rl = Roofline::new(OpsPerSec::new(1.0e8), WordsPerSec::new(1.0e7))?;
//! // Blocked matmul reaches peak exactly at the balanced memory:
//! let m = rl.balanced_memory(&IntensityModel::sqrt_m(1.0))?;
//! assert_eq!(rl.attainable_at_memory(&IntensityModel::sqrt_m(1.0), m), 1.0e8);
//! # Ok::<(), balance_core::BalanceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hierarchical;
pub mod model;
pub mod parallel;
pub mod plot;
pub mod series;

pub use hierarchical::HierarchicalRoofline;
pub use model::Roofline;
pub use parallel::{ParallelBound, ParallelRoofline};
pub use plot::render;
pub use series::{kernel_series, KernelSeries, SeriesPoint};
