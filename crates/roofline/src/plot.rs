//! ASCII roofline plots for the terminal-based `repro` harness.

use crate::model::Roofline;
use crate::series::KernelSeries;

/// Renders a log–log roofline chart with kernel paths as ASCII art.
///
/// Columns are decades of operational intensity; rows are decades of
/// throughput. The roof itself is drawn with `/` and `-`; each kernel's
/// sampled points are drawn with its first letter.
#[must_use]
pub fn render(roofline: &Roofline, series: &[KernelSeries], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(8);

    // Intensity range: from 1e-1 to 10x the ridge or max sample.
    let ridge = roofline.ridge_point();
    let mut ai_max: f64 = ridge * 10.0;
    let mut ai_min: f64 = 0.1;
    for s in series {
        for p in &s.points {
            if p.intensity > 0.0 {
                ai_max = ai_max.max(p.intensity * 1.5);
                ai_min = ai_min.min(p.intensity);
            }
        }
    }
    let (lx0, lx1) = (ai_min.log10(), ai_max.log10());
    let peak = roofline.peak().get();
    let y_max = peak * 2.0;
    let y_min = roofline.attainable(ai_min) / 2.0;
    let (ly0, ly1) = (y_min.log10(), y_max.log10());

    let to_col = |ai: f64| -> usize {
        let t = (ai.log10() - lx0) / (lx1 - lx0);
        ((t * (width - 1) as f64).round() as isize).clamp(0, width as isize - 1) as usize
    };
    let to_row = |y: f64| -> usize {
        let t = (y.log10() - ly0) / (ly1 - ly0);
        let r = ((1.0 - t) * (height - 1) as f64).round() as isize;
        r.clamp(0, height as isize - 1) as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    // Draw the roof.
    #[allow(clippy::needless_range_loop)] // col drives both axis and grid
    for col in 0..width {
        let ai = 10f64.powf(lx0 + (lx1 - lx0) * col as f64 / (width - 1) as f64);
        let y = roofline.attainable(ai);
        let row = to_row(y);
        grid[row][col] = if roofline.is_bandwidth_bound(ai) {
            '/'
        } else {
            '-'
        };
    }
    // Mark the ridge.
    let ridge_col = to_col(ridge);
    let ridge_row = to_row(peak);
    grid[ridge_row][ridge_col] = '+';
    // Draw kernel samples.
    for s in series {
        let mark = s.name.chars().next().unwrap_or('?');
        for p in &s.points {
            if p.intensity > 0.0 {
                let (r, c) = (to_row(p.attainable), to_col(p.intensity));
                if grid[r][c] == ' ' || grid[r][c] == '/' || grid[r][c] == '-' {
                    grid[r][c] = mark;
                }
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "roofline: peak {:.3e} op/s, bw {:.3e} word/s, ridge {:.2} op/word\n",
        peak,
        roofline.bandwidth().get(),
        ridge
    ));
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "x: intensity 10^{lx0:.1} .. 10^{lx1:.1} op/word (log); y: throughput (log)\n"
    ));
    for s in series {
        let bal = s.balanced_memory.map_or_else(
            || "never (I/O-bounded)".to_string(),
            |m| format!("{m} words"),
        );
        out.push_str(&format!(
            "  {} = {} (balanced memory: {})\n",
            s.name.chars().next().unwrap_or('?'),
            s.name,
            bal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::kernel_series;
    use balance_core::{IntensityModel, OpsPerSec, WordsPerSec};

    #[test]
    fn renders_roof_and_legend() {
        let rl = Roofline::new(OpsPerSec::new(100.0), WordsPerSec::new(10.0)).unwrap();
        let mems: Vec<u64> = (2..=12).map(|k| 1u64 << k).collect();
        let s1 = kernel_series("matmul", &rl, &IntensityModel::sqrt_m(1.0), &mems).unwrap();
        let s2 = kernel_series("vecmat", &rl, &IntensityModel::constant(2.0), &mems).unwrap();
        let art = render(&rl, &[s1, s2], 60, 16);
        assert!(art.contains('/'));
        assert!(art.contains('-'));
        assert!(art.contains('+'));
        assert!(art.contains("matmul"));
        assert!(art.contains("I/O-bounded"));
        // 16 grid rows + header + axis + 2 legend lines.
        assert!(art.lines().count() >= 19);
    }

    #[test]
    fn degenerate_dimensions_are_clamped() {
        let rl = Roofline::new(OpsPerSec::new(10.0), WordsPerSec::new(1.0)).unwrap();
        let art = render(&rl, &[], 1, 1);
        assert!(art.lines().count() >= 8);
    }
}
