//! The hierarchical roofline: one ridge per memory level.
//!
//! On an N-level machine the attainable throughput at per-level intensities
//! `AI_i = C_comp / traffic_i` is
//!
//! ```text
//! attainable(AI) = min(C, min_i AI_i · IO_i)
//! ```
//!
//! — the compute roof and one bandwidth slope per boundary. Each level has
//! its own ridge `C / IO_i` and therefore its own **balanced-memory point**:
//! the capacity `M_i` at which the kernel's intensity model reaches that
//! level's ridge. The binding level is whichever slope sits lowest; as the
//! innermost capacity grows (raising `AI_0`), the binding constraint walks
//! outward down the ladder. With one level this reduces exactly to
//! [`Roofline`] (pinned by property test).

use balance_core::{
    BalanceError, HierarchySpec, IntensityModel, LevelSpec, OpsPerSec, Words,
};

use crate::model::Roofline;

/// A multi-level roofline: peak compute over one bandwidth slope per
/// memory boundary.
///
/// # Examples
///
/// ```
/// use balance_core::{HierarchySpec, IntensityModel, LevelSpec, OpsPerSec, Words, WordsPerSec};
/// use balance_roofline::HierarchicalRoofline;
///
/// let spec = HierarchySpec::new(vec![
///     LevelSpec::new(Words::new(100), WordsPerSec::new(1.0e7))?,
///     LevelSpec::new(Words::new(10_000), WordsPerSec::new(1.0e6))?,
/// ])?;
/// let rl = HierarchicalRoofline::new(OpsPerSec::new(1.0e8), &spec)?;
///
/// // Ridges: 10 op/word at the port, 100 op/word at the outer boundary.
/// assert_eq!(rl.ridge_at(0), 10.0);
/// assert_eq!(rl.ridge_at(1), 100.0);
///
/// // √M kernel: r(100) = 10 saturates level 0; r(10_000) = 100 saturates
/// // level 1 — this ladder is balanced at every boundary simultaneously.
/// let matmul = IntensityModel::sqrt_m(1.0);
/// assert_eq!(rl.attainable_model(&matmul), 1.0e8);
/// # Ok::<(), balance_core::BalanceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalRoofline {
    peak: OpsPerSec,
    levels: Vec<LevelSpec>,
}

impl HierarchicalRoofline {
    /// Builds the roofline of `spec` under peak compute `peak`.
    ///
    /// # Errors
    ///
    /// [`BalanceError::InvalidQuantity`] for a non-positive peak (the
    /// spec's bandwidths are already validated by [`HierarchySpec`]).
    pub fn new(peak: OpsPerSec, spec: &HierarchySpec) -> Result<Self, BalanceError> {
        if !peak.is_valid() {
            return Err(BalanceError::InvalidQuantity {
                what: "peak compute",
                value: peak.get(),
            });
        }
        Ok(HierarchicalRoofline {
            peak,
            levels: spec.levels().to_vec(),
        })
    }

    /// Peak compute rate.
    #[must_use]
    pub fn peak(&self) -> OpsPerSec {
        self.peak
    }

    /// Number of levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels, innermost first.
    #[must_use]
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// The ridge `C / IO_i` of boundary `level`, in ops per word — the
    /// machine balance of that level pair.
    ///
    /// `IO_i` here is the level's *effective* bandwidth
    /// ([`LevelSpec::effective_bandwidth`]): the nominal channel rate with
    /// the per-word access latency charged, so a nonzero-latency level has
    /// a higher ridge (it needs more reuse to keep the machine busy). With
    /// zero latencies this is exactly the nominal `C / IO_i`.
    ///
    /// # Panics
    ///
    /// Panics when `level ≥ depth()`.
    #[must_use]
    pub fn ridge_at(&self, level: usize) -> f64 {
        self.peak.get() / self.levels[level].effective_bandwidth().get()
    }

    /// Attainable throughput (ops/s) at per-level intensities `ai`
    /// (innermost first): `min(C, min_i ai_i · IO_i)`, with each `IO_i`
    /// the level's latency-adjusted effective bandwidth.
    ///
    /// Intensities beyond `ai.len()` are treated as unconstrained (their
    /// boundary saw no traffic), and extra entries are ignored; callers
    /// normally pass exactly one intensity per level.
    #[must_use]
    pub fn attainable(&self, ai: &[f64]) -> f64 {
        let mut best = self.peak.get();
        for (level, intensity) in self.levels.iter().zip(ai) {
            best = best.min(intensity * level.effective_bandwidth().get());
        }
        best
    }

    /// The boundary whose bandwidth slope binds at intensities `ai`, or
    /// `None` when the compute roof does (ties resolve to the innermost
    /// binding boundary).
    #[must_use]
    pub fn binding_level(&self, ai: &[f64]) -> Option<usize> {
        let attainable = self.attainable(ai);
        if attainable >= self.peak.get() {
            return None;
        }
        self.levels
            .iter()
            .zip(ai)
            .position(|(level, intensity)| {
                intensity * level.effective_bandwidth().get() <= attainable
            })
    }

    /// Attainable throughput for a kernel with intensity model `model`,
    /// each level blocked for its own capacity: `AI_i = r(M_i)`.
    ///
    /// This is the scheme-optimal projection — a decomposition scheme that
    /// blocks for every level (matching the inclusive accounting of
    /// `balance_machine::Hierarchy`) reaches intensity `r(M_i)` at boundary
    /// `i` because the working set resident in level `i` is what the
    /// paper's one-level analysis would keep in `M = M_i`.
    #[must_use]
    pub fn attainable_model(&self, model: &IntensityModel) -> f64 {
        let ai: Vec<f64> = self
            .levels
            .iter()
            .map(|l| model.eval_words(l.capacity()))
            .collect();
        self.attainable(&ai)
    }

    /// The capacity at which `model` reaches boundary `level`'s ridge —
    /// Kung's balanced memory, per level.
    ///
    /// # Errors
    ///
    /// [`BalanceError::IoBounded`] for constant-intensity kernels that sit
    /// below every ridge forever.
    ///
    /// # Panics
    ///
    /// Panics when `level ≥ depth()`.
    pub fn balanced_memory_at(
        &self,
        level: usize,
        model: &IntensityModel,
    ) -> Result<Words, BalanceError> {
        model.balanced_memory(self.ridge_at(level))
    }

    /// The one-level [`Roofline`] this reduces to, when `depth() == 1`
    /// (built on the level's effective bandwidth, so a latency-laden flat
    /// machine reduces consistently too).
    #[must_use]
    pub fn flat(&self) -> Option<Roofline> {
        if self.levels.len() == 1 {
            Roofline::new(self.peak, self.levels[0].effective_bandwidth()).ok()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::WordsPerSec;

    fn spec(levels: &[(u64, f64)]) -> HierarchySpec {
        HierarchySpec::new(
            levels
                .iter()
                .map(|&(cap, bw)| {
                    LevelSpec::new(Words::new(cap), WordsPerSec::new(bw)).unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn one_level_reduces_to_flat_roofline() {
        let h = HierarchicalRoofline::new(OpsPerSec::new(1.0e8), &spec(&[(4096, 1.0e7)]))
            .unwrap();
        let flat = h.flat().unwrap();
        assert_eq!(h.ridge_at(0), flat.ridge_point());
        for ai in [0.0, 0.5, 5.0, 10.0, 1000.0] {
            assert_eq!(h.attainable(&[ai]), flat.attainable(ai), "ai = {ai}");
        }
        assert!(HierarchicalRoofline::new(
            OpsPerSec::new(1.0),
            &spec(&[(10, 1.0), (100, 0.5)])
        )
        .unwrap()
        .flat()
        .is_none());
    }

    #[test]
    fn attainable_is_min_over_levels_and_roof() {
        let h = HierarchicalRoofline::new(OpsPerSec::new(100.0), &spec(&[(10, 10.0), (100, 2.0)]))
            .unwrap();
        // Level 0 binds: 3·10 = 30 < 20·2 = 40 < 100. Wait: min(30, 40) = 30.
        assert_eq!(h.attainable(&[3.0, 20.0]), 30.0);
        assert_eq!(h.binding_level(&[3.0, 20.0]), Some(0));
        // Level 1 binds once the port intensity rises.
        assert_eq!(h.attainable(&[8.0, 20.0]), 40.0);
        assert_eq!(h.binding_level(&[8.0, 20.0]), Some(1));
        // The roof binds when both slopes clear it.
        assert_eq!(h.attainable(&[100.0, 100.0]), 100.0);
        assert_eq!(h.binding_level(&[100.0, 100.0]), None);
    }

    #[test]
    fn missing_intensities_are_unconstrained() {
        let h = HierarchicalRoofline::new(OpsPerSec::new(100.0), &spec(&[(10, 10.0), (100, 2.0)]))
            .unwrap();
        // Only the port intensity known: the outer slope cannot bind.
        assert_eq!(h.attainable(&[5.0]), 50.0);
    }

    #[test]
    fn per_level_ridges_and_balanced_memories() {
        let h = HierarchicalRoofline::new(
            OpsPerSec::new(1.0e8),
            &spec(&[(64, 1.0e7), (65536, 1.0e6)]),
        )
        .unwrap();
        assert_eq!(h.ridge_at(0), 10.0);
        assert_eq!(h.ridge_at(1), 100.0);
        let sqrt = IntensityModel::sqrt_m(1.0);
        assert_eq!(h.balanced_memory_at(0, &sqrt).unwrap().get(), 100);
        assert_eq!(h.balanced_memory_at(1, &sqrt).unwrap().get(), 10_000);
        assert_eq!(
            h.balanced_memory_at(1, &IntensityModel::constant(2.0)),
            Err(BalanceError::IoBounded)
        );
    }

    #[test]
    fn model_projection_reads_capacities_per_level() {
        // Port: r(100) = 10 → 10·1e7 = 1e8 (at the roof). Outer: r(2500) =
        // 50 → 50·1e6 = 5e7 — the outer level is starved and binds.
        let h = HierarchicalRoofline::new(
            OpsPerSec::new(1.0e8),
            &spec(&[(100, 1.0e7), (2500, 1.0e6)]),
        )
        .unwrap();
        let sqrt = IntensityModel::sqrt_m(1.0);
        assert_eq!(h.attainable_model(&sqrt), 5.0e7);
    }

    #[test]
    fn level_latency_raises_ridges_and_lowers_slopes() {
        use balance_core::Seconds;
        // Same nominal ladder, outer level latency 0 vs 1e-7 s/word
        // (which halves its 1e7 word/s effective bandwidth).
        let zero = HierarchicalRoofline::new(
            OpsPerSec::new(1.0e8),
            &spec(&[(64, 1.0e7), (65536, 1.0e7)]),
        )
        .unwrap();
        let lat_spec = HierarchySpec::new(vec![
            LevelSpec::new(Words::new(64), WordsPerSec::new(1.0e7)).unwrap(),
            LevelSpec::new(Words::new(65536), WordsPerSec::new(1.0e7))
                .unwrap()
                .with_latency(Seconds::new(1.0e-7))
                .unwrap(),
        ])
        .unwrap();
        let lat = HierarchicalRoofline::new(OpsPerSec::new(1.0e8), &lat_spec).unwrap();
        assert_eq!(zero.ridge_at(1), 10.0);
        assert_eq!(lat.ridge_at(1), 20.0, "latency doubles the outer ridge");
        // At ai = 5 op/word on both boundaries, the latency-laden ladder
        // attains half the throughput of the latency-free one.
        assert_eq!(zero.attainable(&[5.0, 5.0]), 5.0e7);
        assert_eq!(lat.attainable(&[5.0, 5.0]), 2.5e7);
        assert_eq!(lat.binding_level(&[5.0, 5.0]), Some(1));
    }

    #[test]
    fn invalid_peak_rejected() {
        assert!(
            HierarchicalRoofline::new(OpsPerSec::new(0.0), &spec(&[(10, 1.0)])).is_err()
        );
    }

    #[test]
    fn accessors() {
        let h = HierarchicalRoofline::new(OpsPerSec::new(50.0), &spec(&[(10, 1.0), (20, 0.5)]))
            .unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.peak().get(), 50.0);
        assert_eq!(h.levels()[1].capacity().get(), 20);
    }
}
