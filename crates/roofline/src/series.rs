//! Roofline series: kernels swept across memory sizes.
//!
//! For experiment E12: each kernel's operational intensity is a function of
//! `M`, so sweeping `M` traces a path along the roofline — up the bandwidth
//! slope and (for non-I/O-bounded kernels) onto the compute roof at exactly
//! the balanced memory size.

use balance_core::{BalanceError, IntensityModel, Words};

use crate::model::Roofline;

/// One sampled point of a kernel's path along the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Local memory size, words.
    pub memory: u64,
    /// Operational intensity at that memory.
    pub intensity: f64,
    /// Attainable throughput (ops/s).
    pub attainable: f64,
    /// Whether the point is bandwidth-bound.
    pub bandwidth_bound: bool,
}

/// A kernel's roofline path.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSeries {
    /// Kernel label.
    pub name: String,
    /// Sampled points, ascending in memory.
    pub points: Vec<SeriesPoint>,
    /// The balanced memory (ridge crossing), if one exists.
    pub balanced_memory: Option<u64>,
}

/// Sweeps `model` across `memories` under `roofline`.
///
/// # Errors
///
/// Propagates unexpected model errors; an I/O-bounded kernel yields
/// `balanced_memory = None` rather than an error.
pub fn kernel_series(
    name: impl Into<String>,
    roofline: &Roofline,
    model: &IntensityModel,
    memories: &[u64],
) -> Result<KernelSeries, BalanceError> {
    let points = memories
        .iter()
        .map(|&m| {
            let intensity = model.eval_words(Words::new(m));
            SeriesPoint {
                memory: m,
                intensity,
                attainable: roofline.attainable(intensity),
                bandwidth_bound: roofline.is_bandwidth_bound(intensity),
            }
        })
        .collect();
    let balanced_memory = match roofline.balanced_memory(model) {
        Ok(m) => Some(m.get()),
        Err(BalanceError::IoBounded) => None,
        Err(BalanceError::MemoryOverflow { .. }) => None,
        Err(e) => return Err(e),
    };
    Ok(KernelSeries {
        name: name.into(),
        points,
        balanced_memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use balance_core::{OpsPerSec, WordsPerSec};

    fn rl() -> Roofline {
        Roofline::new(OpsPerSec::new(100.0), WordsPerSec::new(10.0)).unwrap()
    }

    fn mems() -> Vec<u64> {
        (2..=14).map(|k| 1u64 << k).collect()
    }

    #[test]
    fn sqrt_kernel_crosses_the_ridge() {
        let s = kernel_series("matmul", &rl(), &IntensityModel::sqrt_m(1.0), &mems()).unwrap();
        assert_eq!(s.balanced_memory, Some(100));
        // Below 100 words: bandwidth-bound; above: compute-bound.
        for p in &s.points {
            assert_eq!(p.bandwidth_bound, p.memory < 100, "m = {}", p.memory);
        }
        // Attainable is monotone nondecreasing and capped at the peak.
        for w in s.points.windows(2) {
            assert!(w[1].attainable >= w[0].attainable);
        }
        assert_eq!(s.points.last().unwrap().attainable, 100.0);
    }

    #[test]
    fn constant_kernel_never_crosses() {
        let s = kernel_series("matvec", &rl(), &IntensityModel::constant(2.0), &mems()).unwrap();
        assert_eq!(s.balanced_memory, None);
        assert!(s.points.iter().all(|p| p.bandwidth_bound));
        assert!(s.points.iter().all(|p| p.attainable == 20.0));
    }

    #[test]
    fn log_kernel_crossing_is_exponentially_far() {
        // Ridge 10 with r = log2 M: balanced at M = 1024.
        let s = kernel_series("fft", &rl(), &IntensityModel::log2_m(1.0), &mems()).unwrap();
        assert_eq!(s.balanced_memory, Some(1024));
    }

    #[test]
    fn overflowing_balanced_memory_reported_as_none() {
        // Ridge 10 with r = 0.01·log2 M: M = 2^1000 overflows.
        let s = kernel_series("slowlog", &rl(), &IntensityModel::log2_m(0.01), &mems()).unwrap();
        assert_eq!(s.balanced_memory, None);
    }
}
