//! Experiment report types shared by the `repro` binary and the
//! integration tests.

use core::fmt;

/// One checked finding: expected vs measured, with a pass flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// What is being checked.
    pub label: String,
    /// The paper's prediction.
    pub expected: String,
    /// What the code measured.
    pub measured: String,
    /// Whether the measurement confirms the prediction.
    pub ok: bool,
}

impl Finding {
    /// Creates a finding.
    pub fn new(
        label: impl Into<String>,
        expected: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Self {
        Finding {
            label: label.into(),
            expected: expected.into(),
            measured: measured.into(),
            ok,
        }
    }
}

/// A full experiment report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Experiment id (e.g. `"E2"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Free-form table/diagram body (already formatted).
    pub body: String,
    /// The checked findings.
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when every finding passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.ok)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        if !self.body.is_empty() {
            writeln!(f, "{}", self.body)?;
        }
        if !self.findings.is_empty() {
            writeln!(
                f,
                "{:<44} {:>24} {:>24} {:>6}",
                "check", "paper", "measured", "status"
            )?;
            for finding in &self.findings {
                writeln!(
                    f,
                    "{:<44} {:>24} {:>24} {:>6}",
                    finding.label,
                    finding.expected,
                    finding.measured,
                    if finding.ok { "OK" } else { "FAIL" }
                )?;
            }
        }
        writeln!(
            f,
            "--- {} {} ---",
            self.id,
            if self.passed() { "PASSED" } else { "FAILED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_fail_logic() {
        let mut r = Report {
            id: "E0",
            title: "test",
            body: String::new(),
            findings: vec![Finding::new("a", "1", "1", true)],
        };
        assert!(r.passed());
        r.findings.push(Finding::new("b", "2", "3", false));
        assert!(!r.passed());
    }

    #[test]
    fn display_includes_findings() {
        let r = Report {
            id: "E9",
            title: "mesh",
            body: "a table".into(),
            findings: vec![Finding::new("slope", "0", "0.001", true)],
        };
        let s = r.to_string();
        assert!(s.contains("E9"));
        assert!(s.contains("a table"));
        assert!(s.contains("slope"));
        assert!(s.contains("PASSED"));
    }
}
