//! # balance-bench
//!
//! The experiment harness for the kung-balance reproduction: one executable
//! regenerator per table and figure in Kung (1985), plus the Criterion
//! benchmarks. See `DESIGN.md` at the workspace root for the experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Run everything:
//!
//! ```bash
//! cargo run --release -p balance-bench --bin repro -- all
//! ```
//!
//! or a single experiment:
//!
//! ```bash
//! cargo run --release -p balance-bench --bin repro -- E5 F2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;
pub mod experiments;
pub mod report;
pub mod storecli;

pub use experiments::{run_all, run_by_id, run_by_id_at, Scale, ALL_IDS};
pub use report::{Finding, Report};
