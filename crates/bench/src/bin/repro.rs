//! Regenerates every table and figure of Kung (1985).
//!
//! Usage: `repro [--scale small|large] [all | <id>...]` where ids are
//! F1–F4, E1–E15, and E20–E26 (aliases: `hierarchy`, `parallel`,
//! `onepass`, `bigtrace`, `resume`, `analytic`, `devices`). `--scale
//! large` runs the scale-sensitive
//! experiments at the sizes the measurement engine was rebuilt for:
//! E13's 402M-address ablation and E23's 1.03G-address segmented +
//! sampled capacity curve. Exits nonzero if any requested experiment's
//! findings fail.

use balance_bench::{run_by_id_at, Scale, ALL_IDS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    let mut scale = Scale::Small;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if pos + 1 >= args.len() {
            eprintln!("--scale requires a value (small | large)");
            std::process::exit(1);
        }
        match Scale::parse(&args[pos + 1]) {
            Ok(s) => scale = s,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        args.drain(pos..=pos + 1);
    }

    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case("all"))
    {
        ALL_IDS.iter().map(|s| (*s).to_string()).collect()
    } else {
        args
    };

    let mut all_ok = true;
    for id in &ids {
        match run_by_id_at(id, scale) {
            Some(report) => {
                println!("{report}");
                all_ok &= report.passed();
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {})",
                    ALL_IDS.join(", ")
                );
                all_ok = false;
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
