//! Regenerates every table and figure of Kung (1985).
//!
//! Usage: `repro [all | <id>...]` where ids are F1–F4, E1–E15.
//! Exits nonzero if any requested experiment's findings fail.

use balance_bench::{run_by_id, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case("all"))
    {
        ALL_IDS.iter().map(|s| (*s).to_string()).collect()
    } else {
        args
    };

    let mut all_ok = true;
    for id in &ids {
        match run_by_id(id) {
            Some(report) => {
                println!("{report}");
                all_ok &= report.passed();
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {})",
                    ALL_IDS.join(", ")
                );
                all_ok = false;
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
