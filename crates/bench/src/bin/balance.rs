//! The `balance` CLI: explore the Kung (1985) model from the terminal.
//!
//! See `balance help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match balance_bench::cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
