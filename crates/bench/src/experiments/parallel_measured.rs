//! Experiment E21: the §4 scaling laws, validated by measurement.
//!
//! E8/E9 evaluate Kung's closed forms (per-PE memory ∝ `p` on a linear
//! array for the matrix law; constant on a mesh); this experiment *runs*
//! the kernels on measured multi-PE machines (`balance-parallel`'s
//! `ParallelMachine`) and finds the per-PE memory-at-balance by search
//! over real executions:
//!
//! * **linear matmul** — the α = p memory-per-PE walk: the smallest
//!   per-PE memory whose measured aggregate intensity reaches `p · C/IO`
//!   grows linearly in `p` (Fig. 3, by measurement);
//! * **mesh matmul** — self-balancing: the measured per-PE requirement
//!   stays flat while the PE count grows quadratically (Fig. 4);
//! * **fitted law** — the growth law fitted from the measured
//!   `(total memory, intensity)` cloud snaps to the paper's α² matrix
//!   law, so the analytic series and the measured series coincide;
//! * **transpose** — no per-PE memory balances an I/O-bounded computation
//!   on any arrangement: the §3.6 "impossible" verdict survives
//!   parallelism;
//! * **grid relaxation** — PEs pool memory through halo *communication*:
//!   a traffic class distinct from external I/O, priced against the
//!   topology's bisection bandwidth by the parallel roofline.

use balance_core::{GrowthLaw, OpsPerSec, PeSpec, Words, WordsPerSec};
use balance_kernels::Verify;
use balance_parallel::{
    growth_exponent, linear_array_series, measured_balance_memory, measured_growth_law,
    measured_series, MeasuredBalanceConfig, ParGrid2d, ParMatMul, ParTranspose, ParallelKernel,
    ParallelSweepConfig, Topology, TopologyKind,
};
use balance_roofline::{ParallelBound, ParallelRoofline};

use crate::report::{Finding, Report};

/// The per-PE cell: 2 op/word of machine balance (2e7 op/s over 1e7
/// word/s) — modest enough that small measured machines can balance.
fn cell() -> PeSpec {
    PeSpec::new(
        OpsPerSec::new(2.0e7),
        WordsPerSec::new(1.0e7),
        Words::new(65_536),
    )
    .unwrap_or_else(|e| panic!("harness invariant violated: {e}"))
}

fn balance_cfg(n: usize) -> MeasuredBalanceConfig {
    MeasuredBalanceConfig {
        cell: cell(),
        n,
        seed: 21,
        verify: Verify::Full,
        m_max: 1 << 16,
    }
}

fn series_table(
    body: &mut String,
    label: &str,
    series: &[balance_parallel::ScalingPoint],
    analytic_per_pe: impl Fn(u64) -> u64,
) {
    body.push_str(&format!(
        "-- {label} --\n{:>6} {:>22} {:>22}\n",
        "p", "measured per-PE M_bal", "analytic per-PE M_bal"
    ));
    for pt in series {
        body.push_str(&format!(
            "{:>6} {:>22} {:>22}\n",
            pt.p,
            pt.per_pe_memory,
            analytic_per_pe(pt.p)
        ));
    }
}

/// E21 — measured parallel balance: run the registry on P-PE machines.
#[must_use]
pub fn e21_parallel() -> Report {
    let mut body = String::from(
        "cell: C = 2e7 op/s, IO = 1e7 word/s (balance 2 op/word); \
         aggregate target = alpha x 2 op/word\n\n",
    );
    let mut findings = Vec::new();

    // --- Linear array matmul: the alpha = p memory-per-PE walk. ---
    let lin = measured_series(&ParMatMul, TopologyKind::Linear, &[1, 2, 4, 8], &balance_cfg(32))
        .unwrap_or_else(|e| panic!("matmul balances on small linear arrays: {e}"));
    let m1 = lin[0].per_pe_memory;
    series_table(&mut body, "linear array, matmul (n = 32)", &lin, |p| p * m1);
    let slope = growth_exponent(&lin);
    findings.push(Finding::new(
        "linear matmul: measured per-PE memory growth",
        "exponent 1.0 (per-PE memory walks with p)",
        format!("{slope:.3}"),
        (slope - 1.0).abs() < 0.35,
    ));
    findings.push(Finding::new(
        "linear matmul: measured walk brackets the analytic line",
        "0.5.p.M1 <= M_p <= 2.p.M1",
        format!("M1 = {m1}, series {:?}", lin.iter().map(|s| s.per_pe_memory).collect::<Vec<_>>()),
        lin.iter()
            .all(|s| s.per_pe_memory * 2 >= s.p * m1 && s.per_pe_memory <= 2 * s.p * m1),
    ));

    // --- Mesh matmul: self-balancing (constant per-PE memory). ---
    let mesh = measured_series(&ParMatMul, TopologyKind::Mesh, &[1, 2, 3], &balance_cfg(32))
        .unwrap_or_else(|e| panic!("matmul balances on small meshes: {e}"));
    body.push('\n');
    series_table(&mut body, "square mesh, matmul (n = 32)", &mesh, |_| m1);
    let mesh_slope = growth_exponent(&mesh);
    findings.push(Finding::new(
        "mesh matmul: measured per-PE memory is flat",
        "exponent ~0 while PE count grows 9x",
        format!("{mesh_slope:.3}"),
        mesh_slope.abs() < 0.35,
    ));

    // --- Fitted law: measurement recovers alpha^2, series coincide. ---
    let sweep = ParallelSweepConfig::new(
        64,
        vec![
            Topology::linear(1).unwrap_or_else(|e| panic!("harness invariant violated: {e}")),
            Topology::linear(2).unwrap_or_else(|e| panic!("harness invariant violated: {e}")),
            Topology::linear(4).unwrap_or_else(|e| panic!("harness invariant violated: {e}")),
        ],
        (5..=11).map(|k| 1usize << k).collect(),
        21,
    )
    .with_verify(Verify::Freivalds { rounds: 2 });
    let law = measured_growth_law(&ParMatMul, &sweep, 0.35).unwrap_or_else(|e| panic!("fit succeeds: {e}"));
    findings.push(Finding::new(
        "fitted measured law (pooled across 1/2/4-PE machines)",
        "M_new = alpha^2 . M_old",
        format!("{law}"),
        law == GrowthLaw::Polynomial { degree: 2.0 },
    ));
    let analytic = linear_array_series(
        cell(),
        GrowthLaw::Polynomial { degree: 2.0 },
        Words::new(m1),
        &[2, 4, 8, 16, 32],
    )
    .unwrap_or_else(|e| panic!("law is possible: {e}"));
    let from_measured_law =
        linear_array_series(cell(), law, Words::new(m1), &[2, 4, 8, 16, 32]).unwrap_or_else(|e| panic!("fit law: {e}"));
    findings.push(Finding::new(
        "measured-law series == analytic series (div_ceil exact)",
        "identical at every p",
        format!(
            "{:?}",
            from_measured_law.iter().map(|s| s.per_pe_memory).collect::<Vec<_>>()
        ),
        analytic
            .iter()
            .zip(&from_measured_law)
            .all(|(a, b)| a.per_pe_memory == b.per_pe_memory && a.total_memory == b.total_memory),
    ));

    // --- Transpose: I/O-bounded stays impossible on any arrangement. ---
    let impossible = measured_balance_memory(
        &ParTranspose,
        Topology::linear(2).unwrap_or_else(|e| panic!("harness invariant violated: {e}")),
        &MeasuredBalanceConfig {
            m_max: 4096,
            ..balance_cfg(24)
        },
    )
    .unwrap_or_else(|e| panic!("runs succeed: {e}"));
    findings.push(Finding::new(
        "transpose on 2 PEs: measured memory-at-balance",
        "none (I/O-bounded, paper section 3.6)",
        format!("{impossible:?}"),
        impossible.is_none(),
    ));

    // --- Grid relaxation: comm is a distinct, memory-pooling class. ---
    let flat = balance_core::HierarchySpec::flat_words(600);
    let g1 = ParGrid2d
        .run_on(Topology::linear(1).unwrap_or_else(|e| panic!("harness invariant violated: {e}")), 30, &flat, 21, Verify::Full)
        .unwrap_or_else(|e| panic!("grid runs: {e}"));
    let g4 = ParGrid2d
        .run_on(Topology::linear(4).unwrap_or_else(|e| panic!("harness invariant violated: {e}")), 30, &flat, 21, Verify::Full)
        .unwrap_or_else(|e| panic!("grid runs: {e}"));
    body.push_str(&format!(
        "\n-- grid2d (30 sweeps, 600 words per PE) --\n\
         {:>4} {:>10} {:>12} {:>12} {:>10} {:>10}\n",
        "p", "S", "ext words", "comm words", "r_ext", "r_comm"
    ));
    for (p, run) in [(1usize, &g1), (4, &g4)] {
        let s = ParGrid2d::super_tile_side(600, p);
        body.push_str(&format!(
            "{:>4} {:>10} {:>12} {:>12} {:>10.2} {:>10.2}\n",
            p,
            s,
            run.execution.external_words(),
            run.execution.comm_words,
            run.external_intensity(),
            run.execution.comm_intensity(),
        ));
    }
    findings.push(Finding::new(
        "grid2d: PEs pool memory through communication",
        "4 PEs raise aggregate intensity >= 1.5x; comm only at p > 1",
        format!(
            "r {:.2} -> {:.2}, comm {} -> {}",
            g1.external_intensity(),
            g4.external_intensity(),
            g1.execution.comm_words,
            g4.execution.comm_words
        ),
        g4.external_intensity() >= 1.5 * g1.external_intensity()
            && g1.execution.comm_words == 0
            && g4.execution.comm_words > 0,
    ));

    // --- Parallel roofline: the three-term verdict for a chattering
    //     matmul on the line's single-link bisection. ---
    let topo = Topology::linear(4).unwrap_or_else(|e| panic!("harness invariant violated: {e}"));
    let mm4 = ParMatMul
        .run_on(topo, 32, &balance_core::HierarchySpec::flat_words(12), 21, Verify::Full)
        .unwrap_or_else(|e| panic!("matmul runs: {e}"));
    let agg = topo.aggregate(cell()).unwrap_or_else(|e| panic!("aggregate: {e}"));
    let roofline = ParallelRoofline::new(
        agg.comp_bw(),
        agg.io_bw(),
        WordsPerSec::new(cell().io_bw().get() * topo.bisection_links() as f64),
    )
    .unwrap_or_else(|e| panic!("rates valid: {e}"));
    let attain = roofline.attainable(mm4.external_intensity(), mm4.execution.comm_intensity());
    let binding = roofline.binding(mm4.external_intensity(), mm4.execution.comm_intensity());
    body.push_str(&format!(
        "\nparallel roofline, linear(4): {roofline}\n\
         matmul (n=32, 12 words/PE): r_ext {:.2}, r_comm {:.2} -> \
         attainable {attain:.3e} op/s, binding: {binding}\n",
        mm4.external_intensity(),
        mm4.execution.comm_intensity(),
    ));
    findings.push(Finding::new(
        "starved matmul is bound below the aggregate roof",
        "attainable < C_total (external I/O or bisection binds)",
        format!("{attain:.3e} op/s, binds {binding}"),
        attain < agg.comp_bw().get() && binding != ParallelBound::Compute,
    ));

    // --- Conservation across everything this experiment ran. ---
    let conserved = g1.execution.is_conserved() && g4.execution.is_conserved();
    findings.push(Finding::new(
        "external I/O conservation (per-PE ledgers vs machine boundary)",
        "sums agree on every run",
        format!("{conserved}"),
        conserved,
    ));

    Report {
        id: "E21",
        title: "measured parallel balance: the section-4 laws by execution",
        body,
        findings,
    }
}
