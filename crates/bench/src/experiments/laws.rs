//! Experiments E1–E7: the Section-3 summary table, one row at a time.
//!
//! Every law in the paper is *measured*: the instrumented kernel runs across
//! a memory sweep, the law shape is recovered by least squares, and the
//! rebalancing rule is derived empirically from the measured curve (no law
//! assumed) and compared with the paper's closed form.
//!
//! ## Finite-size methodology
//!
//! The paper's laws are asymptotic (`N ≫ M`). At measurable sizes two
//! finite-size effects appear and are handled explicitly rather than hidden:
//!
//! * **Write-back / halo overheads** shift measured rebalance factors above
//!   the pure `α^k`; E2/E3 therefore also check that the deviation *shrinks
//!   as N grows* (convergence to the law), and E4 checks the exact invariant
//!   underneath the law (the tile side must grow by exactly `α`).
//! * **Discretization staircases** (integer tile sides, integer pass
//!   counts) are removed at the source by sweeping memory sizes that map to
//!   exact tile sides / divisor pass counts.

use balance_core::fit::FittedLaw;
use balance_core::solver::MeasuredCurve;
use balance_core::GrowthLaw;
use balance_kernels::fft::block_points;
use balance_kernels::prelude::*;
use balance_kernels::sweep::SweepResult;

use crate::report::{Finding, Report};

/// Seed for every experiment workload (reproducibility).
pub const SEED: u64 = 0x5eed_cafe;

fn law_name(law: GrowthLaw) -> String {
    law.to_string()
}

fn sweep(kernel: &dyn Kernel, cfg: &SweepConfig) -> SweepResult {
    // All law sweeps run on the parallel executor (bit-identical to the
    // serial one) under the config's own verification policy.
    intensity_sweep_par(kernel, cfg)
        .unwrap_or_else(|e| panic!("kernel {} failed its verified sweep: {e}", kernel.name()))
}

fn points_table(result: &SweepResult) -> String {
    let mut s = format!(
        "{:>10} {:>14} {:>14} {:>12}\n",
        "M (words)", "C_comp", "C_io", "ratio"
    );
    for run in &result.runs {
        s.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>12.3}\n",
            run.m,
            run.execution.cost.comp_ops(),
            run.execution.cost.io_words(),
            run.intensity()
        ));
    }
    s
}

/// A grid sweep at exact tile sides, with iterations scaled to the tile
/// (`T = 4s`) so halo I/O dominates as the paper assumes.
///
/// The recorded memory coordinate is the **paper's `M`**: the `s^d` words of
/// grid state the PE is responsible for ("each PE is responsible for the
/// storing and updating of all the grid points in a `√M × √M` subgrid").
/// Our implementation additionally buffers the incoming halo shell
/// (`(s+2)^d` scratch words, reported via peak memory); that constant-factor
/// overhead vanishes as `s` grows and is not part of the law.
fn grid_sweep(d: usize, sides: &[usize]) -> SweepResult {
    let kernel = GridRelaxation::new(d);
    let results = par_map(sides, |_, &s| {
        let m = (s + 2).pow(d as u32) + s.pow(d as u32);
        assert_eq!(kernel.tile_side(m), s, "memory {m} must give side {s}");
        let iters = 4 * s;
        let run = kernel
            .run(iters, m, SEED)
            .unwrap_or_else(|e| panic!("grid{d}d s={s} failed: {e}"));
        let m_paper = s.pow(d as u32) as f64;
        (balance_core::fit::DataPoint::new(m_paper, run.intensity()), run)
    });
    let (points, runs) = results.into_iter().unzip();
    SweepResult {
        kernel: kernel.name(),
        points,
        runs,
        provenance: None,
    }
}

/// A sorting sweep in the paper's own regime: `N = M²`, so phase 2 is a
/// single `M`-way merge of `N/M = M` runs (§3.5's exact setup) and the
/// intensity follows the smooth `Θ(log₂M)` law instead of a merge-level
/// staircase.
fn sort_sweep(ms: &[usize]) -> SweepResult {
    let results = par_map(ms, |_, &m| {
        let n = m * m;
        let run = ExternalSort
            .run(n, m, SEED)
            .unwrap_or_else(|e| panic!("sort m={m} failed: {e}"));
        (balance_core::fit::DataPoint::new(m as f64, run.intensity()), run)
    });
    let (points, runs) = results.into_iter().unzip();
    SweepResult {
        kernel: "sort",
        points,
        runs,
        provenance: None,
    }
}

/// Memory sizes `3b²` for tile sides `b` dividing `n` — every block of the
/// matmul sweep is then full-size and the measured curve is free of
/// edge-block staircase noise.
fn matmul_memories(n: usize, bs: &[usize]) -> Vec<usize> {
    bs.iter()
        .map(|&b| {
            assert_eq!(n % b, 0, "tile {b} must divide {n}");
            3 * b * b
        })
        .collect()
}

/// An FFT sweep at pass-divisible block sizes (`μ | t`), avoiding the
/// partial-pass staircase.
fn fft_sweep(t: u32) -> SweepResult {
    let n = 1usize << t;
    let memories: Vec<usize> = (1..=t)
        .filter(|mu| t.is_multiple_of(*mu) && *mu < t)
        .map(|mu| 2usize << mu) // m = 2·B = 2^(μ+1)
        .collect();
    let cfg = SweepConfig {
        n,
        memories,
        seed: SEED,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    sweep(&Fft, &cfg)
}

/// Checks an empirical rebalance against the paper's growth law.
fn rebalance_findings(
    curve: &MeasuredCurve,
    law: GrowthLaw,
    m_old: f64,
    alphas: &[f64],
    tol: f64,
    findings: &mut Vec<Finding>,
) {
    for &alpha in alphas {
        let expected = match law {
            GrowthLaw::Polynomial { degree } => alpha.powf(degree),
            GrowthLaw::Exponential => m_old.powf(alpha) / m_old,
            GrowthLaw::Impossible => f64::INFINITY,
        };
        match curve.empirical_rebalance(alpha, m_old) {
            Ok(m_new) => {
                let factor = m_new / m_old;
                let ok = (factor / expected - 1.0).abs() < tol;
                findings.push(Finding::new(
                    format!("rebalance α={alpha} from M={m_old}"),
                    format!("×{expected:.2}"),
                    format!("×{factor:.2}"),
                    ok,
                ));
            }
            Err(e) => findings.push(Finding::new(
                format!("rebalance α={alpha} from M={m_old}"),
                format!("×{expected:.2}"),
                format!("error: {e}"),
                false,
            )),
        }
    }
}

/// Measures the empirical α=2 memory-growth factor at one problem size.
fn alpha2_factor(kernel: &dyn Kernel, n: usize, memories: &[usize], m_old: f64) -> f64 {
    let cfg = SweepConfig {
        n,
        memories: memories.to_vec(),
        seed: SEED,
        // Anchored Freivalds beyond n = 64 — the sweep's cost knob.
        verify: Verify::auto(n),
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let result = sweep(kernel, &cfg);
    let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));
    curve.empirical_rebalance(2.0, m_old).unwrap_or_else(|e| panic!("curve grows: {e}")) / m_old
}

/// E2 — §3.1 matrix multiplication: `r(M) = Θ(√M)`, `M_new = α²·M_old`.
#[must_use]
pub fn e2_matmul() -> Report {
    let n = 96;
    let cfg = SweepConfig {
        n,
        memories: matmul_memories(n, &[4, 6, 8, 12, 16, 24, 32, 48]),
        seed: SEED,
        // n = 96: anchored Freivalds keeps the verify share O(n²).
        verify: Verify::auto(n),
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let result = sweep(&MatMul, &cfg);
    let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));
    let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));

    let mut findings = Vec::new();
    let exponent = match fit.best {
        FittedLaw::Power { exponent, .. } => exponent,
        _ => f64::NAN,
    };
    findings.push(Finding::new(
        "fitted law shape",
        "r ∝ M^0.5",
        format!("{}", fit.best),
        (exponent - 0.5).abs() < 0.08,
    ));
    rebalance_findings(
        &curve,
        GrowthLaw::Polynomial { degree: 2.0 },
        108.0, // b = 6
        &[2.0, 3.0, 4.0],
        0.30,
        &mut findings,
    );
    // Finite-N convergence: the deviation from α² must shrink with N.
    let f_small = alpha2_factor(&MatMul, 64, &matmul_memories(64, &[4, 8, 16, 32]), 192.0);
    let f_large = alpha2_factor(&MatMul, 128, &matmul_memories(128, &[4, 8, 16, 32]), 192.0);
    findings.push(Finding::new(
        "α=2 factor converges to 4 as N grows",
        "|err(N=128)| < |err(N=64)|",
        format!("N=64: ×{f_small:.2}, N=128: ×{f_large:.2}"),
        (f_large - 4.0).abs() < (f_small - 4.0).abs(),
    ));
    Report {
        id: "E2",
        title: "matrix multiplication (§3.1): M_new = α²·M_old",
        body: points_table(&result),
        findings,
    }
}

/// E3 — §3.2 triangularization: `r(M) = Θ(√M)`, `M_new = α²·M_old`.
#[must_use]
pub fn e3_triangularization() -> Report {
    let cfg = SweepConfig::pow2(128, 5, 13, SEED).with_verify(Verify::auto(128));
    let result = sweep(&Triangularization, &cfg);
    let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));
    let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));

    let mut findings = Vec::new();
    let exponent = match fit.best {
        FittedLaw::Power { exponent, .. } => exponent,
        _ => f64::NAN,
    };
    findings.push(Finding::new(
        "fitted law shape",
        "r ∝ M^0.5",
        format!("{}", fit.best),
        (exponent - 0.5).abs() < 0.10,
    ));
    rebalance_findings(
        &curve,
        GrowthLaw::Polynomial { degree: 2.0 },
        256.0,
        &[2.0],
        0.30,
        &mut findings,
    );
    // Convergence toward α² with growing N.
    let mems: Vec<usize> = (5..=12).map(|k| 1usize << k).collect();
    let f_small = alpha2_factor(&Triangularization, 64, &mems, 256.0);
    let f_large = alpha2_factor(&Triangularization, 128, &mems, 256.0);
    findings.push(Finding::new(
        "α=2 factor converges to 4 as N grows",
        "|err(N=128)| < |err(N=64)|",
        format!("N=64: ×{f_small:.2}, N=128: ×{f_large:.2}"),
        (f_large - 4.0).abs() < (f_small - 4.0).abs(),
    ));
    Report {
        id: "E3",
        title: "matrix triangularization (§3.2): M_new = α²·M_old",
        body: points_table(&result),
        findings,
    }
}

/// E4 — §3.3 grid relaxation: `r(M) = Θ(M^(1/d))`, `M_new = α^d·M_old`.
#[must_use]
pub fn e4_grid() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();
    for d in 1..=4usize {
        // Exact tile sides, small→large, with an α=2 pair (s, 2s) embedded.
        let sides: Vec<usize> = match d {
            1 => vec![8, 16, 32, 64, 128, 256],
            2 => vec![4, 8, 12, 16, 24, 32],
            3 => vec![3, 5, 7, 10, 14],
            _ => vec![3, 4, 6, 8, 12],
        };
        let result = grid_sweep(d, &sides);
        body.push_str(&format!(
            "-- grid{d}d (M = s^d) --\n{}",
            points_table(&result)
        ));

        let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));
        let exponent = match fit.best {
            FittedLaw::Power { exponent, .. } => exponent,
            _ => f64::NAN,
        };
        let want = 1.0 / d as f64;
        findings.push(Finding::new(
            format!("grid{d}d fitted exponent"),
            format!("M^{want:.3}"),
            format!("M^{exponent:.3}"),
            (exponent - want).abs() < 0.05 * want,
        ));

        // The rebalancing rule: α = 2 must multiply the tile memory by
        // exactly α^d (equivalently: double the tile side).
        let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));
        let s_old = sides[1];
        let m_old = (s_old as f64).powi(d as i32);
        let m_new = curve
            .empirical_rebalance(2.0, m_old)
            .unwrap_or_else(|e| panic!("growing curve: {e}"));
        let factor = m_new / m_old;
        let ideal = 2.0f64.powi(d as i32);
        findings.push(Finding::new(
            format!("grid{d}d: α=2 memory factor"),
            format!("×{ideal:.0}"),
            format!("×{factor:.2}"),
            (factor / ideal - 1.0).abs() < 0.10,
        ));
        // Honesty check on the implementation overhead: the halo shell
        // scratch stays a bounded constant factor above the paper's M.
        let last = result.runs.last().unwrap_or_else(|| panic!("nonempty"));
        let s_last = *sides.last().unwrap_or_else(|| panic!("nonempty"));
        let overhead = last.execution.peak_memory.get() as f64 / (s_last as f64).powi(d as i32);
        findings.push(Finding::new(
            format!("grid{d}d: halo-buffer overhead at s={s_last}"),
            "bounded (≤ 3× of s^d, → 2×)",
            format!("×{overhead:.2}"),
            overhead <= 3.0,
        ));
    }
    Report {
        id: "E4",
        title: "d-dimensional grid relaxation (§3.3): M_new = α^d·M_old",
        body,
        findings,
    }
}

/// E5 — §3.4 FFT: `r(M) = Θ(log₂M)`, `M_new = M_old^α`.
#[must_use]
pub fn e5_fft() -> Report {
    let t = 12u32;
    let n = 1u64 << t;
    let result = fft_sweep(t);
    let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));

    let mut findings = Vec::new();
    findings.push(Finding::new(
        "fitted law shape",
        "r ∝ log₂M  (⇒ M_new = M_old^α)",
        format!("{}", fit.best),
        matches!(fit.best, FittedLaw::Log2 { .. }),
    ));
    findings.push(Finding::new(
        "growth classification",
        "exponential",
        law_name(fit.best.growth_law()),
        fit.best.growth_law() == GrowthLaw::Exponential,
    ));

    // Per-pass (block-level) intensity: the paper's Θ(M log M / M) law is
    // exact per block: 12 ops per butterfly × μ stages over 8 words moved.
    let mut body = points_table(&result);
    body.push_str(&format!(
        "{:>10} {:>8} {:>16} {:>16}\n",
        "M", "log₂B", "per-pass ratio", "1.5·log₂B"
    ));
    let mut per_pass_ok = true;
    for run in &result.runs {
        let io = run.execution.cost.io_words();
        let comp = run.execution.cost.comp_ops();
        let passes = io / (4 * n) - 1; // total io = bit-rev 4N + 4N per pass
        let r_pass = comp as f64 / (4 * n * passes) as f64;
        let mu = block_points(run.m).trailing_zeros() as f64;
        let expected = 1.5 * mu;
        per_pass_ok &= (r_pass / expected - 1.0).abs() < 0.01;
        body.push_str(&format!(
            "{:>10} {:>8} {:>16.3} {:>16.3}\n",
            run.m, mu, r_pass, expected
        ));
    }
    findings.push(Finding::new(
        "per-pass intensity = 1.5·log₂(block)",
        "within 1%",
        if per_pass_ok { "matches" } else { "deviates" },
        per_pass_ok,
    ));

    // The headline law, within the block-size constant: M_new = M_old^α up
    // to the ×2 complex-word factor (our B = M/2 words per block).
    let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));
    for (m_old, alpha) in [(16.0f64, 2.0f64), (32.0, 2.0)] {
        let ideal = m_old.powf(alpha);
        match curve.empirical_rebalance(alpha, m_old) {
            Ok(m_new) => {
                let off = if m_new > ideal {
                    m_new / ideal
                } else {
                    ideal / m_new
                };
                findings.push(Finding::new(
                    format!("rebalance α={alpha} from M={m_old}"),
                    format!("≈ M^α = {ideal:.0} (within ×4)"),
                    format!("{m_new:.0}"),
                    off <= 4.0,
                ));
            }
            Err(e) => findings.push(Finding::new(
                format!("rebalance α={alpha} from M={m_old}"),
                format!("≈ {ideal:.0}"),
                format!("error: {e}"),
                false,
            )),
        }
    }
    Report {
        id: "E5",
        title: "FFT (§3.4): M_new = M_old^α",
        body,
        findings,
    }
}

/// E6 — §3.5 sorting: `r(M) = Θ(log₂M)`, `M_new = M_old^α`.
///
/// Measured in the paper's own configuration `N = M²`: phase 1 makes
/// `N/M = M` runs of `M` keys, phase 2 merges them in a single `M`-way heap
/// merge. Both phases then cost `Θ(log₂M)` comparisons per word moved.
#[must_use]
pub fn e6_sorting() -> Report {
    let result = sort_sweep(&[32, 48, 64, 96, 128, 192, 256, 384, 512]);
    let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));

    let mut findings = Vec::new();
    findings.push(Finding::new(
        "fitted law shape",
        "r ∝ log₂M  (⇒ M_new = M_old^α)",
        format!("{}", fit.best),
        matches!(fit.best, FittedLaw::Log2 { .. }),
    ));
    findings.push(Finding::new(
        "growth classification",
        "exponential",
        law_name(fit.best.growth_law()),
        fit.best.growth_law() == GrowthLaw::Exponential,
    ));
    // I/O in this regime is exactly 6N words: run formation moves 2N, and
    // the M runs merge in two k-way levels (k = M/3 < M), 2N each.
    let io_exact = result
        .runs
        .iter()
        .all(|r| r.execution.cost.io_words() == 6 * (r.n as u64));
    findings.push(Finding::new(
        "I/O = 6N words (run formation + 2 merge levels)",
        "exact",
        if io_exact { "exact" } else { "deviates" },
        io_exact,
    ));
    Report {
        id: "E6",
        title: "sorting (§3.5): M_new = M_old^α (measured at N = M²)",
        body: points_table(&result),
        findings,
    }
}

/// E7 — §3.6 I/O-bounded computations: rebalancing impossible.
#[must_use]
pub fn e7_io_bounded() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();
    let kernels: [(&dyn Kernel, usize); 2] = [(&MatVec, 96), (&TriSolve, 96)];
    for (kernel, n) in kernels {
        let cfg = SweepConfig::pow2(n, 3, 13, SEED).with_verify(Verify::auto(n));
        let result = sweep(kernel, &cfg);
        body.push_str(&format!(
            "-- {} --\n{}",
            kernel.name(),
            points_table(&result)
        ));
        let fit = result.fit().unwrap_or_else(|e| panic!("enough points: {e}"));
        findings.push(Finding::new(
            format!("{} classification", kernel.name()),
            "impossible (I/O-bounded)",
            law_name(fit.best.growth_law()),
            fit.best.growth_law() == GrowthLaw::Impossible,
        ));
        let curve = result.curve().unwrap_or_else(|e| panic!("enough points: {e}"));
        let slope = curve.tail_slope();
        findings.push(Finding::new(
            format!("{} intensity tail slope", kernel.name()),
            "≈ 0 (saturated)",
            format!("{slope:.4}"),
            slope.abs() < 0.05,
        ));
        // The rebalancing question must be unanswerable.
        let attempt = curve.empirical_rebalance(2.0, 1024.0);
        findings.push(Finding::new(
            format!("{} rebalance α=2", kernel.name()),
            "no finite memory",
            match &attempt {
                Ok(m) => format!("M = {m:.0} (!)"),
                Err(e) => format!("{e}"),
            },
            attempt.is_err(),
        ));
    }
    Report {
        id: "E7",
        title: "I/O-bounded computations (§3.6): rebalancing impossible",
        body,
        findings,
    }
}

/// E1 — the full Section-3 summary table, measured.
#[must_use]
pub fn e1_summary_table() -> Report {
    let mut rows: Vec<(&'static str, GrowthLaw, FittedLaw)> = Vec::new();

    let fit_of = |result: &SweepResult| result.fit().unwrap_or_else(|e| panic!("enough points: {e}")).best;

    // Matrix computations: keep b ≪ N by capping the sweep.
    let mm = sweep(&MatMul, &SweepConfig::pow2(64, 5, 10, SEED));
    rows.push(("matmul", GrowthLaw::Polynomial { degree: 2.0 }, fit_of(&mm)));
    let lu = sweep(&Triangularization, &SweepConfig::pow2(64, 5, 10, SEED));
    rows.push((
        "triangularization",
        GrowthLaw::Polynomial { degree: 2.0 },
        fit_of(&lu),
    ));

    // Grids at exact tile sides with T = 4s.
    let g2 = grid_sweep(2, &[4, 8, 12, 16, 24, 32]);
    rows.push(("grid2d", GrowthLaw::Polynomial { degree: 2.0 }, fit_of(&g2)));
    let g3 = grid_sweep(3, &[3, 5, 7, 10, 14]);
    rows.push(("grid3d", GrowthLaw::Polynomial { degree: 3.0 }, fit_of(&g3)));

    // FFT at pass-divisible blocks; sorting in the N = M² regime.
    let ff = fft_sweep(12);
    rows.push(("fft", GrowthLaw::Exponential, fit_of(&ff)));
    let so = sort_sweep(&[32, 64, 128, 256, 512]);
    rows.push(("sort", GrowthLaw::Exponential, fit_of(&so)));

    // I/O-bounded.
    let mv = sweep(&MatVec, &SweepConfig::pow2(64, 3, 12, SEED));
    rows.push(("matvec", GrowthLaw::Impossible, fit_of(&mv)));
    let ts = sweep(&TriSolve, &SweepConfig::pow2(64, 3, 12, SEED));
    rows.push(("trisolve", GrowthLaw::Impossible, fit_of(&ts)));

    let mut body = format!(
        "{:<20} {:>26} {:>34}\n",
        "computation", "paper law", "measured law"
    );
    let mut findings = Vec::new();
    for (name, expected, fitted) in &rows {
        let got = balance_core::fit::snap_degree(fitted.growth_law(), 0.35);
        let ok = match (*expected, got) {
            (GrowthLaw::Polynomial { degree: a }, GrowthLaw::Polynomial { degree: b }) => {
                (a - b).abs() < 0.01
            }
            (a, b) => a == b,
        };
        body.push_str(&format!(
            "{:<20} {:>26} {:>34}\n",
            name,
            law_name(*expected),
            format!("{fitted}")
        ));
        findings.push(Finding::new(
            format!("{name} growth law"),
            law_name(*expected),
            law_name(got),
            ok,
        ));
    }
    Report {
        id: "E1",
        title: "Section-3 summary table, measured end to end",
        body,
        findings,
    }
}
