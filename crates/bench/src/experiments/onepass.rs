//! Experiment E22 (one-pass): a full capacity curve from a single replay.
//!
//! Every curve in the paper is "I/O (and hence intensity) as a function of
//! memory size M". Because LRU is a stack algorithm, the *cache-model*
//! version of that curve is a pure function of one reuse-distance
//! histogram: a single replay of a kernel's canonical trace through the
//! Mattson stack-distance engine answers `IO(M)` for **every** `M` —
//! where the replay engine pays one full trace replay per point.
//!
//! This experiment produces 16-point capacity curves for matmul, fft, and
//! sort from one replay each, then:
//!
//! * cross-checks three anchor capacities per kernel against the
//!   per-capacity replay engine — **bit-identical**, the tentpole
//!   guarantee;
//! * verifies the stack property as it surfaces in the curves (misses
//!   monotone non-increasing in `M`, compulsory floor = distinct
//!   addresses);
//! * reads a three-level ladder's per-boundary traffic off the same
//!   histogram and checks inclusion (`io_{i+1} ≤ io_i`) plus agreement
//!   with an actual `Hierarchy` ladder replay.

use balance_core::{LevelSpec, Words, WordsPerSec};
use balance_kernels::fft::Fft;
use balance_kernels::matmul::MatMul;
use balance_kernels::sorting::ExternalSort;
use balance_kernels::sweep::{
    capacity_sweep, hierarchy_capacity_sweep, Engine, SweepConfig, SweepResult,
};
use balance_kernels::{Kernel, Verify};

use crate::report::{Finding, Report};

/// One kernel's slice of the experiment: its 16-point one-pass curve plus
/// the three-point replay anchors.
struct Curve {
    name: &'static str,
    onepass: SweepResult,
    anchors: SweepResult,
    /// Expected compulsory floor (distinct addresses of the trace).
    floor: u64,
}

fn sweep_16pt(kernel: &dyn Kernel, n: usize, floor: u64) -> Curve {
    let memories: Vec<usize> = (2..=17u32).map(|k| 1usize << k).collect();
    debug_assert_eq!(memories.len(), 16);
    let cfg = SweepConfig {
        n,
        memories: memories.clone(),
        seed: 0,
        verify: Verify::Full,
        engine: Engine::StackDist,
        ..SweepConfig::default()
    };
    let onepass = capacity_sweep(kernel, &cfg).unwrap_or_else(|e| panic!("traced kernel: {e}"));
    // Three anchors re-measured on the per-capacity replay engine.
    let anchor_cfg = SweepConfig {
        n,
        memories: vec![memories[0], memories[7], memories[15]],
        seed: 0,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let anchors = capacity_sweep(kernel, &anchor_cfg).unwrap_or_else(|e| panic!("traced kernel: {e}"));
    Curve {
        name: kernel.name(),
        onepass,
        anchors,
        floor,
    }
}

/// E22 — 16-point capacity curves for matmul/fft/sort from one replay
/// each, anchored against the replay engine.
#[must_use]
pub fn e22_onepass() -> Report {
    let (mm_n, fft_n, sort_n) = (32usize, 256usize, 4096usize);
    let curves = [
        sweep_16pt(&MatMul, mm_n, 3 * (mm_n as u64).pow(2)),
        sweep_16pt(&Fft, fft_n, 2 * fft_n as u64),
        sweep_16pt(&ExternalSort, sort_n, 2 * sort_n as u64),
    ];

    let mut body = format!(
        "{:<8} {:>9} {:>12} {:>10}   (16 capacities per kernel, one replay each)\n",
        "kernel", "M", "IO(M)", "r(M)"
    );
    let mut findings = Vec::new();

    for curve in &curves {
        for run in &curve.onepass.runs {
            body.push_str(&format!(
                "{:<8} {:>9} {:>12} {:>10.3}\n",
                curve.name,
                run.m,
                run.execution.cost.io_words(),
                run.intensity()
            ));
        }

        // Anchors: the replay engine at three capacities must reproduce
        // the one-pass points bit for bit.
        let anchors_ok = curve.anchors.runs.iter().all(|a| {
            curve
                .onepass
                .runs
                .iter()
                .any(|o| o.m == a.m && o == a)
        });
        findings.push(Finding::new(
            format!("{}: replay anchors bit-identical", curve.name),
            "3 anchor capacities re-run on Engine::Replay",
            format!("{} anchors checked", curve.anchors.runs.len()),
            anchors_ok && curve.anchors.runs.len() == 3,
        ));

        // Stack property: a bigger memory never misses more.
        let ios: Vec<u64> = curve
            .onepass
            .runs
            .iter()
            .map(|r| r.execution.cost.io_words())
            .collect();
        findings.push(Finding::new(
            format!("{}: IO(M) monotone non-increasing", curve.name),
            "inclusion property",
            format!("{} -> {}", ios.first().unwrap_or_else(|| panic!("harness invariant violated: value missing")), ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing"))),
            ios.windows(2).all(|w| w[1] <= w[0]),
        ));

        // Compulsory floor: once everything is resident, only first
        // touches remain.
        findings.push(Finding::new(
            format!("{}: large-M floor is compulsory", curve.name),
            format!("{} distinct addresses", curve.floor),
            format!("{}", ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing"))),
            *ios.last().unwrap_or_else(|| panic!("harness invariant violated: value missing")) == curve.floor,
        ));
    }

    // Multi-level read: a 3-level matmul ladder off the same histogram,
    // cross-checked against the replay engine (which runs an actual
    // chained-LRU ladder per point).
    let outer = [
        LevelSpec::new(Words::new(1024), WordsPerSec::new(1.0)).unwrap_or_else(|e| panic!("valid: {e}")),
        LevelSpec::new(Words::new(4096), WordsPerSec::new(1.0)).unwrap_or_else(|e| panic!("valid: {e}")),
    ];
    let ladder_cfg = SweepConfig {
        n: mm_n,
        memories: vec![16, 64, 256],
        seed: 0,
        verify: Verify::Full,
        engine: Engine::StackDist,
        ..SweepConfig::default()
    };
    let ladder = hierarchy_capacity_sweep(&MatMul, &ladder_cfg, &outer).unwrap_or_else(|e| panic!("traced: {e}"));
    let ladder_replay = hierarchy_capacity_sweep(
        &MatMul,
        &ladder_cfg.clone().with_engine(Engine::Replay),
        &outer,
    )
    .unwrap_or_else(|e| panic!("traced: {e}"));
    body.push_str("\nmatmul 3-level ladder (M1 swept under 1024- and 4096-word levels):\n");
    for run in &ladder.runs {
        body.push_str(&format!(
            "  M1 = {:>4}: traffic {}\n",
            run.m,
            run.execution.cost.traffic()
        ));
    }
    findings.push(Finding::new(
        "3-level ladder read matches ladder replay",
        "bit-identical per-boundary traffic",
        format!("{} points", ladder.runs.len()),
        ladder.runs == ladder_replay.runs && !ladder.runs.is_empty(),
    ));
    findings.push(Finding::new(
        "3-level ladder traffic is inclusive",
        "io_{i+1} <= io_i",
        "all points".to_string(),
        ladder
            .runs
            .iter()
            .all(|r| r.execution.cost.traffic().is_monotone_non_increasing()),
    ));

    Report {
        id: "E22",
        title: "one-pass stack-distance engine: IO(M) for every capacity from one replay",
        body,
        findings,
    }
}
