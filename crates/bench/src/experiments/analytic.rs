//! Experiment E25 (analytic): closed-form capacity curves with zero replay.
//!
//! PR 5 collapsed a capacity sweep to one trace replay; PR 6 scaled that
//! replay to a billion addresses. This experiment demonstrates the tier
//! that removes the replay altogether: for affine kernels the
//! reuse-distance histogram is a closed form in `n`
//! ([`Kernel::analytic_profile`]), so `Engine::Analytic` draws the exact
//! curve in `O(poly(log n))` time at sizes no replay could touch.
//!
//! Three demonstrations:
//!
//! * **registry coverage** — which kernels derive a histogram (9 of the
//!   11; fft and triangularization fall through to the measured engines);
//! * **anchors at replayable n** — the analytic 16-point matmul/grid2d/
//!   sort curves at n = 96/100/4096 are bit-identical to the one-pass
//!   stack-distance engine (the registry proptests pin this at *every*
//!   capacity; here it is cross-checked end-to-end through the sweep);
//! * **the unreachable size** — a 16-point matmul curve at n = 10⁴, whose
//!   canonical trace is 3×10¹² addresses (≈ 8 hours at the ~10⁸ addr/s
//!   the one-pass engine sustains, and a ~2.4 TB address stream), drawn
//!   in well under a second with zero replay.

use std::time::Instant;

use balance_kernels::grid::GridRelaxation;
use balance_kernels::matmul::MatMul;
use balance_kernels::sorting::ExternalSort;
use balance_kernels::sweep::{capacity_sweep, Engine, SweepConfig};
use balance_kernels::{all_kernels, extension_kernels, Kernel, Verify};

use crate::report::{Finding, Report};

/// A 16-point pow-2 sweep config on the given engine.
fn cfg_16pt(n: usize, lo: u32, engine: Engine) -> SweepConfig {
    let memories: Vec<usize> = (lo..lo + 16).map(|k| 1usize << k).collect();
    SweepConfig {
        n,
        memories,
        seed: 0,
        verify: Verify::None,
        engine,
        ..SweepConfig::default()
    }
}

/// E25 — analytic capacity profiles: exact curves with zero replay.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn e25_analytic() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();

    // 1. Registry coverage: who derives a closed form at a probe size?
    let mut kernels = all_kernels();
    let registry_count = kernels.len();
    kernels.extend(extension_kernels());
    let mut covered = Vec::new();
    let mut uncovered = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        if k.analytic_profile(8).is_some() {
            covered.push((i < registry_count, k.name()));
        } else {
            uncovered.push(k.name());
        }
    }
    let registry_covered = covered.iter().filter(|(reg, _)| *reg).count();
    body.push_str(&format!(
        "analytic coverage: {} of {} kernels ({}); without a derivation: {}\n",
        covered.len(),
        kernels.len(),
        covered
            .iter()
            .map(|(_, n)| *n)
            .collect::<Vec<_>>()
            .join(", "),
        uncovered.join(", "),
    ));
    findings.push(Finding::new(
        "registry kernels with exact analytic profiles",
        ">= 4 (ISSUE 8 acceptance)",
        format!("{registry_covered} of {registry_count} (plus all 3 extensions)"),
        registry_covered >= 4 && covered.len() == 9,
    ));

    // 2. Anchors at replayable n: the full 16-point analytic sweep must be
    // bit-identical to the one-pass engine, end to end through the sweep
    // pipeline (runs, intensities, everything).
    let anchors: [(&dyn Kernel, usize, u32); 3] = [
        (&MatMul, 96, 2),
        (&GridRelaxation::new(2), 100, 2),
        (&ExternalSort, 4096, 2),
    ];
    for (kernel, n, lo) in anchors {
        let analytic = capacity_sweep(kernel, &cfg_16pt(n, lo, Engine::Analytic))
            .unwrap_or_else(|e| panic!("covered kernel: {e}"));
        let onepass = capacity_sweep(kernel, &cfg_16pt(n, lo, Engine::StackDist))
            .unwrap_or_else(|e| panic!("traced kernel: {e}"));
        findings.push(Finding::new(
            format!("{} n={}: analytic ≡ stackdist, all 16 points", kernel.name(), n),
            "bit-identical sweep",
            format!("{} points", analytic.runs.len()),
            analytic.runs == onepass.runs && analytic.runs.len() == 16,
        ));
    }

    // 3. The unreachable size: matmul at n = 10⁴. The canonical trace is
    // 3n³ = 3×10¹² addresses; the memories span 2¹² .. 2²⁷, crossing the
    // saturation capacity (n² + 3n + 1 ≈ 1.0003×10⁸ words) so the curve
    // runs all the way down to its compulsory floor.
    let n = 10_000usize;
    let n64 = n as u64;
    let start = Instant::now();
    let big = capacity_sweep(&MatMul, &cfg_16pt(n, 12, Engine::Analytic))
        .unwrap_or_else(|e| panic!("covered kernel: {e}"));
    let elapsed = start.elapsed();
    let trace_len = 3 * n64.pow(3);
    body.push_str(&format!(
        "\nmatmul n = 10^4 (trace = {:.1e} addresses, never generated):\n{:<10} {:>16} {:>10}\n",
        trace_len as f64, "M (words)", "IO(M)", "r(M)"
    ));
    for run in &big.runs {
        body.push_str(&format!(
            "{:<10} {:>16} {:>10.3}\n",
            run.m,
            run.execution.cost.io_words(),
            run.intensity()
        ));
    }
    body.push_str(&format!(
        "drawn in {elapsed:.2?}; the one-pass replay at ~1e8 addr/s would need ~{:.0} hours\n",
        trace_len as f64 / 1e8 / 3600.0
    ));

    findings.push(Finding::new(
        "matmul n=10^4: 16-point curve with zero replay",
        "< 1 s (replay estimate: hours)",
        format!("{elapsed:.2?}"),
        big.runs.len() == 16 && elapsed.as_secs_f64() < 1.0,
    ));
    let ios: Vec<u64> = big.runs.iter().map(|r| r.execution.cost.io_words()).collect();
    findings.push(Finding::new(
        "n=10^4 curve: IO(M) monotone non-increasing",
        "stack property",
        format!(
            "{} -> {}",
            ios.first().unwrap_or_else(|| panic!("16 points present")),
            ios.last().unwrap_or_else(|| panic!("16 points present"))
        ),
        ios.windows(2).all(|w| w[1] <= w[0]),
    ));
    findings.push(Finding::new(
        "n=10^4 curve: large-M floor is compulsory",
        format!("3n^2 = {}", 3 * n64 * n64),
        format!("{}", ios.last().unwrap_or_else(|| panic!("16 points present"))),
        *ios.last().unwrap_or_else(|| panic!("16 points present")) == 3 * n64 * n64,
    ));

    Report {
        id: "E25",
        title: "analytic capacity profiles: closed-form IO(M), zero replay, any n",
        body,
        findings,
    }
}
