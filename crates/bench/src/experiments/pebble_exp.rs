//! Experiment E11: the Hong–Kung optimality citations, executed.
//!
//! The paper's "best possible" claims for matmul and FFT decompositions rest
//! on red–blue pebble game lower bounds. This experiment pebbles the actual
//! DAGs with the paper's blocked orders and checks the achieved I/O against
//! (a) the conservative lower bounds and (b) the exact optimum on instances
//! small enough to solve exactly.

use balance_pebble::bounds::{fft_lower_bound, matmul_lower_bound};
use balance_pebble::builders::{diamond_dag, fft_dag, matmul_dag, tree_dag};
use balance_pebble::optimal::minimum_io;
use balance_pebble::strategies::{
    blocked_fft_order, blocked_matmul_order, natural_order, schedule_with_order, staged_fft_order,
};
use balance_pebble::{EvictionPolicy, Game};

use crate::report::{Finding, Report};

/// E11 — Hong–Kung lower bounds vs achieved pebbling I/O.
#[must_use]
pub fn e11_pebble() -> Report {
    let mut body = String::new();
    let mut findings = Vec::new();

    // --- Matmul DAGs under the blocked order ---
    body.push_str(&format!(
        "{:>8} {:>4} {:>4} {:>10} {:>12} {:>8}\n",
        "dag", "S", "b", "achieved", "lower bound", "ratio"
    ));
    for (n, b, s) in [(6usize, 2usize, 16usize), (8, 2, 16), (8, 4, 52)] {
        let dag = matmul_dag(n);
        let out = schedule_with_order(&dag, &blocked_matmul_order(n, b), s, EvictionPolicy::Belady)
            .unwrap_or_else(|e| panic!("valid order: {e}"));
        // Replay for legality.
        let mut game = Game::new(&dag, s);
        game.play(&out.schedule).unwrap_or_else(|e| panic!("legal schedule: {e}"));
        assert!(game.is_complete());
        let bound = matmul_lower_bound(n, s);
        let ratio = out.io as f64 / bound as f64;
        body.push_str(&format!(
            "{:>8} {:>4} {:>4} {:>10} {:>12} {:>8.2}\n",
            format!("mm{n}"),
            s,
            b,
            out.io,
            bound,
            ratio
        ));
        findings.push(Finding::new(
            format!("matmul n={n}, S={s} achieved vs bound"),
            "≥ 1× and ≤ 24× bound",
            format!("{ratio:.2}×"),
            out.io >= bound && ratio <= 24.0,
        ));
    }

    // --- FFT DAGs under the blocked (Fig. 2) order ---
    for (n, block, s) in [(16usize, 4usize, 12usize), (64, 8, 24)] {
        let dag = fft_dag(n);
        let blocked = schedule_with_order(
            &dag,
            &blocked_fft_order(n, block),
            s,
            EvictionPolicy::Belady,
        )
        .unwrap_or_else(|e| panic!("valid order: {e}"));
        let staged = schedule_with_order(&dag, &staged_fft_order(n), s, EvictionPolicy::Belady)
            .unwrap_or_else(|e| panic!("valid order: {e}"));
        let bound = fft_lower_bound(n, s);
        let ratio = blocked.io as f64 / bound as f64;
        body.push_str(&format!(
            "{:>8} {:>4} {:>4} {:>10} {:>12} {:>8.2}\n",
            format!("fft{n}"),
            s,
            block,
            blocked.io,
            bound,
            ratio
        ));
        findings.push(Finding::new(
            format!("fft n={n}, S={s} achieved vs bound"),
            "≥ 1× and ≤ 24× bound",
            format!("{ratio:.2}×"),
            blocked.io >= bound && ratio <= 24.0,
        ));
        findings.push(Finding::new(
            format!("fft n={n}: blocked (Fig 2) vs per-stage order"),
            "blocked ≤ staged",
            format!("{} vs {}", blocked.io, staged.io),
            blocked.io <= staged.io,
        ));
    }

    // --- Exact optima on tiny DAGs ---
    for (name, dag, s) in [
        ("tree(8)", tree_dag(8), 4usize),
        ("diamond(3)", diamond_dag(3), 5),
    ] {
        let opt = minimum_io(&dag, s).unwrap_or_else(|| panic!("solvable"));
        let greedy = schedule_with_order(&dag, &natural_order(&dag), s, EvictionPolicy::Belady)
            .unwrap_or_else(|e| panic!("schedulable: {e}"));
        findings.push(Finding::new(
            format!("{name}: greedy vs exact optimum"),
            format!("≥ {opt} (optimal)"),
            format!("{}", greedy.io),
            greedy.io >= opt && greedy.io <= 2 * opt,
        ));
    }

    Report {
        id: "E11",
        title: "Hong–Kung pebble-game optimality checks",
        body,
        findings,
    }
}
