//! Experiment E20: the balance law per level of a memory hierarchy.
//!
//! Kung states the balance condition for one PE/memory/I-O boundary; §5 and
//! every successor system apply it per level pair of a hierarchy. This
//! experiment runs the instrumented kernels against two- and three-level
//! machines (`Kernel::run_on` + the chained-LRU accounting in
//! `balance-machine`) and reads the per-boundary traffic off the execution
//! records:
//!
//! * as the local memory `M_1` grows, the port intensity `r_0` climbs its
//!   law while the outer boundary's traffic stays compulsory once its level
//!   holds the whole problem — so the **binding level** of the hierarchical
//!   roofline walks outward (matmul crosses from level 1 to level 2 inside
//!   the sweep);
//! * an I/O-bounded kernel (transpose) has the *same* constant intensity at
//!   every boundary: no `M_1` moves its attainable throughput at all — the
//!   per-level restatement of the paper's "impossible" verdict;
//! * on three levels the traffic vector filters monotonically
//!   (`io_0 ≥ io_1 ≥ io_2`, pinned as the inclusion property), with the
//!   outermost boundary reduced to the compulsory minimum.

use balance_core::{HierarchySpec, LevelSpec, OpsPerSec, Words, WordsPerSec};
use balance_kernels::sweep::{hierarchy_sweep_par, Engine, SweepConfig};
use balance_kernels::{Kernel, KernelRun, Verify};
use balance_roofline::HierarchicalRoofline;

use crate::report::{Finding, Report};

/// Peak compute of the modeled machine: high enough that the bandwidth
/// slopes, not the roof, tell the story.
const PEAK: f64 = 1.0e10;
/// Boundary bandwidths, innermost first: a fast port over a 10/3× slower
/// second boundary over a 3× slower third.
const BW: [f64; 3] = [1.0e8, 3.0e7, 1.0e7];

fn level(cap: usize, bw: f64) -> LevelSpec {
    LevelSpec::new(Words::new(cap as u64), WordsPerSec::new(bw)).unwrap_or_else(|e| panic!("harness invariant violated: {e}"))
}

/// The outer levels for the given capacities, with their `BW` bandwidths —
/// the single source of truth shared by the sweeps and the roofline.
fn outer_levels(outer: &[usize]) -> Vec<LevelSpec> {
    outer
        .iter()
        .enumerate()
        .map(|(i, &cap)| level(cap, BW[i + 1]))
        .collect()
}

/// The ladder for one sweep point: `m1` under the fixed outer capacities.
fn ladder(m1: usize, outer: &[usize]) -> HierarchySpec {
    let mut levels = vec![level(m1, BW[0])];
    levels.extend(outer_levels(outer));
    HierarchySpec::new(levels).unwrap_or_else(|e| panic!("experiment ladders are well-formed: {e}"))
}

/// Measured per-level intensities of one run, innermost first.
fn intensities(run: &KernelRun) -> Vec<f64> {
    (0..run.execution.cost.level_count())
        .map(|i| run.execution.intensity_at(i).unwrap_or_else(|| panic!("level in range")))
        .collect()
}

/// One sweep of `kernel` at problem size `n` over `m1s`, with fixed outer
/// capacities; returns the runs plus the per-point binding level (`None` =
/// compute roof).
fn sweep(
    kernel: &dyn Kernel,
    n: usize,
    m1s: &[usize],
    outer: &[usize],
) -> (Vec<KernelRun>, Vec<Option<usize>>) {
    let cfg = SweepConfig {
        n,
        memories: m1s.to_vec(),
        seed: 20,
        verify: Verify::Full,
        engine: Engine::Replay,
        ..SweepConfig::default()
    };
    let result = hierarchy_sweep_par(kernel, &cfg, &outer_levels(outer)).unwrap_or_else(|e| panic!("verified sweep: {e}"));
    let bindings = result
        .runs
        .iter()
        .map(|run| {
            let roofline =
                HierarchicalRoofline::new(OpsPerSec::new(PEAK), &ladder(run.m, outer))
                    .unwrap_or_else(|e| panic!("valid roofline: {e}"));
            roofline.binding_level(&intensities(run))
        })
        .collect();
    (result.runs, bindings)
}

fn binding_label(b: Option<usize>) -> String {
    b.map_or_else(|| "roof".to_string(), |l| format!("L{}", l + 1))
}

/// Appends one sweep's table (one row per point: per-level traffic,
/// per-level intensity, binding level) to `body`.
fn render_sweep(body: &mut String, kernel_name: &str, runs: &[KernelRun], bindings: &[Option<usize>]) {
    for (run, &binding) in runs.iter().zip(bindings) {
        let cost = &run.execution.cost;
        let depth = cost.level_count();
        let io: Vec<String> = (0..depth)
            .map(|i| format!("{:>9}", cost.io_at(i).unwrap_or_else(|| panic!("harness invariant violated: value missing"))))
            .collect();
        let r: Vec<String> = (0..depth)
            .map(|i| format!("{:>8.2}", cost.intensity_at(i).unwrap_or_else(|| panic!("harness invariant violated: value missing"))))
            .collect();
        body.push_str(&format!(
            "{:<10} {:>6} {:>6} {} {} {:>7}\n",
            kernel_name,
            run.n,
            run.m,
            io.join(" "),
            r.join(" "),
            binding_label(binding),
        ));
    }
}

/// E20 — which level binds as `M_1` grows, on two- and three-level ladders.
#[must_use]
pub fn e20_hierarchy() -> Report {
    let matmul = balance_kernels::matmul::MatMul;
    let transpose = balance_kernels::transpose::Transpose;
    let fft = balance_kernels::fft::Fft;

    let mut body = format!(
        "machine: C = {PEAK:.0e} op/s, boundary bandwidths {:.0e} / {:.0e} / {:.0e} word/s\n\n\
         {:<10} {:>6} {:>6} {:>9}… io_i (words) {:>8}… r_i (op/word)  binds\n",
        BW[0], BW[1], BW[2], "kernel", "n", "M1", "io_0", "r_0",
    );

    // --- Two-level sweeps: M1 under a 4096-word second level. ---
    let l2 = [4096usize];
    let (mm_runs, mm_bind) = sweep(&matmul, 32, &[48, 108, 192, 432, 768], &l2);
    render_sweep(&mut body, "matmul", &mm_runs, &mm_bind);
    let (tr_runs, tr_bind) = sweep(&transpose, 32, &[48, 108, 192, 432, 768], &l2);
    render_sweep(&mut body, "transpose", &tr_runs, &tr_bind);
    let (fft_runs, fft_bind) = sweep(&fft, 256, &[8, 16, 64, 256, 1024], &l2);
    render_sweep(&mut body, "fft", &fft_runs, &fft_bind);

    // --- Three-level matmul: L2 too small for the problem, L3 holds it. ---
    body.push('\n');
    let (mm3_runs, mm3_bind) = sweep(&matmul, 48, &[48, 192, 768], &[4096, 16384]);
    render_sweep(&mut body, "matmul", &mm3_runs, &mm3_bind);

    let mut findings = Vec::new();

    // Inclusion: traffic never grows with depth, at any point of any sweep.
    let all_runs: Vec<&KernelRun> = mm_runs
        .iter()
        .chain(&tr_runs)
        .chain(&fft_runs)
        .chain(&mm3_runs)
        .collect();
    findings.push(Finding::new(
        "inclusive accounting: io_{i+1} <= io_i everywhere",
        "monotone traffic vectors",
        format!("{} runs checked", all_runs.len()),
        all_runs
            .iter()
            .all(|r| r.execution.cost.traffic().is_monotone_non_increasing()),
    ));

    // Matmul, two levels: once L2 (4096 words) holds all of A, B, C
    // (3n² = 3072), the outer boundary sees compulsory traffic only —
    // independent of M1.
    let compulsory = 3 * 32u64 * 32;
    let outer_io: Vec<u64> = mm_runs
        .iter()
        .map(|r| r.execution.io_at(1).unwrap_or_else(|| panic!("harness invariant violated: value missing")))
        .collect();
    findings.push(Finding::new(
        "matmul L2 traffic is compulsory once resident",
        format!("= 3n^2 = {compulsory} at every M1"),
        format!("{outer_io:?}"),
        outer_io.iter().all(|&io| io == compulsory),
    ));

    // Matmul: r_0 grows with M1 (the sqrt law at the port), so the binding
    // level walks outward and crosses from the port (L1) to the second
    // boundary (L2) inside the sweep.
    let mm_levels: Vec<usize> = mm_bind.iter().map(|b| b.map_or(usize::MAX, |l| l)).collect();
    findings.push(Finding::new(
        "matmul binding level walks outward with M1",
        "L1 at small M1 -> L2 at large M1",
        format!(
            "{:?}",
            mm_bind.iter().copied().map(binding_label).collect::<Vec<_>>()
        ),
        mm_levels.windows(2).all(|w| w[1] >= w[0])
            && mm_bind.first() == Some(&Some(0))
            && mm_bind.last() == Some(&Some(1)),
    ));

    // Transpose: constant intensity at *every* boundary — attainable
    // throughput is flat in M1 (the per-level "impossible" verdict).
    let attainable: Vec<f64> = tr_runs
        .iter()
        .map(|run| {
            HierarchicalRoofline::new(OpsPerSec::new(PEAK), &ladder(run.m, &l2))
                .unwrap_or_else(|e| panic!("valid roofline: {e}"))
                .attainable(&intensities(run))
        })
        .collect();
    let flat = attainable.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6);
    findings.push(Finding::new(
        "transpose attainable is flat in M1 (I/O-bounded)",
        "no M1 helps",
        format!("{:.3e} op/s at every M1", attainable[0]),
        flat,
    ));

    // FFT: the log2 M law also climbs, so its binding level never walks
    // back inward.
    let fft_levels: Vec<usize> = fft_bind.iter().map(|b| b.map_or(usize::MAX, |l| l)).collect();
    findings.push(Finding::new(
        "fft binding level is non-decreasing in M1",
        "monotone outward",
        format!(
            "{:?}",
            fft_bind.iter().copied().map(binding_label).collect::<Vec<_>>()
        ),
        fft_levels.windows(2).all(|w| w[1] >= w[0]),
    ));

    // Three levels: L3 (16384) holds the whole problem, so the outermost
    // boundary is exactly compulsory at every point. L2 (4096) cannot hold
    // 3n² = 6912 words — small tiles keep its panel working set resident
    // anyway, but at the largest M1 the starvation shows through as
    // above-compulsory io_1.
    let compulsory3 = 3 * 48u64 * 48;
    let io12: Vec<(u64, u64)> = mm3_runs
        .iter()
        .map(|r| {
            (
                r.execution.io_at(1).unwrap_or_else(|| panic!("harness invariant violated: value missing")),
                r.execution.io_at(2).unwrap_or_else(|| panic!("harness invariant violated: value missing")),
            )
        })
        .collect();
    let ok3 = io12.iter().all(|&(io1, io2)| io2 == compulsory3 && io1 >= compulsory3)
        && io12.last().is_some_and(|&(io1, _)| io1 > compulsory3);
    findings.push(Finding::new(
        "3-level: L3 compulsory everywhere, starved L2 shows at large M1",
        format!("io_2 = {compulsory3}; io_1 > that at the last point"),
        format!("{io12:?}"),
        ok3,
    ));

    Report {
        id: "E20",
        title: "memory hierarchy: per-level balance and the binding level",
        body,
        findings,
    }
}
